# Empty compiler generated dependencies file for bench_fig5_map_reduce.
# This may be replaced when dependencies are built.
