file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_map_reduce.dir/bench_fig5_map_reduce.cc.o"
  "CMakeFiles/bench_fig5_map_reduce.dir/bench_fig5_map_reduce.cc.o.d"
  "bench_fig5_map_reduce"
  "bench_fig5_map_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_map_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
