file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_primitives.dir/bench_fig9_primitives.cc.o"
  "CMakeFiles/bench_fig9_primitives.dir/bench_fig9_primitives.cc.o.d"
  "bench_fig9_primitives"
  "bench_fig9_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
