# Empty dependencies file for bench_fig9_primitives.
# This may be replaced when dependencies are built.
