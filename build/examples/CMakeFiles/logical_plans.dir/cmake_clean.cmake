file(REMOVE_RECURSE
  "CMakeFiles/logical_plans.dir/logical_plans.cc.o"
  "CMakeFiles/logical_plans.dir/logical_plans.cc.o.d"
  "logical_plans"
  "logical_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
