# Empty dependencies file for logical_plans.
# This may be replaced when dependencies are built.
