# Empty dependencies file for execution_models.
# This may be replaced when dependencies are built.
