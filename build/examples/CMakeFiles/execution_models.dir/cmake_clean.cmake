file(REMOVE_RECURSE
  "CMakeFiles/execution_models.dir/execution_models.cc.o"
  "CMakeFiles/execution_models.dir/execution_models.cc.o.d"
  "execution_models"
  "execution_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
