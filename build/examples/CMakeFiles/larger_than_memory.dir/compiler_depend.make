# Empty compiler generated dependencies file for larger_than_memory.
# This may be replaced when dependencies are built.
