file(REMOVE_RECURSE
  "CMakeFiles/larger_than_memory.dir/larger_than_memory.cc.o"
  "CMakeFiles/larger_than_memory.dir/larger_than_memory.cc.o.d"
  "larger_than_memory"
  "larger_than_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/larger_than_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
