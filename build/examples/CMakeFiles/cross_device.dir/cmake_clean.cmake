file(REMOVE_RECURSE
  "CMakeFiles/cross_device.dir/cross_device.cc.o"
  "CMakeFiles/cross_device.dir/cross_device.cc.o.d"
  "cross_device"
  "cross_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
