# Empty compiler generated dependencies file for cross_device.
# This may be replaced when dependencies are built.
