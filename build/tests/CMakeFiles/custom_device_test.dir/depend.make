# Empty dependencies file for custom_device_test.
# This may be replaced when dependencies are built.
