file(REMOVE_RECURSE
  "CMakeFiles/custom_device_test.dir/custom_device_test.cc.o"
  "CMakeFiles/custom_device_test.dir/custom_device_test.cc.o.d"
  "custom_device_test"
  "custom_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
