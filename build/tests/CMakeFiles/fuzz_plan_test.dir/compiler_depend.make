# Empty compiler generated dependencies file for fuzz_plan_test.
# This may be replaced when dependencies are built.
