file(REMOVE_RECURSE
  "CMakeFiles/fuzz_plan_test.dir/fuzz_plan_test.cc.o"
  "CMakeFiles/fuzz_plan_test.dir/fuzz_plan_test.cc.o.d"
  "fuzz_plan_test"
  "fuzz_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
