file(REMOVE_RECURSE
  "CMakeFiles/hub_test.dir/hub_test.cc.o"
  "CMakeFiles/hub_test.dir/hub_test.cc.o.d"
  "hub_test"
  "hub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
