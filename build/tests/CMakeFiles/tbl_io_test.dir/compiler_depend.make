# Empty compiler generated dependencies file for tbl_io_test.
# This may be replaced when dependencies are built.
