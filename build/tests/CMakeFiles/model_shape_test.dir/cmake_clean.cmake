file(REMOVE_RECURSE
  "CMakeFiles/model_shape_test.dir/model_shape_test.cc.o"
  "CMakeFiles/model_shape_test.dir/model_shape_test.cc.o.d"
  "model_shape_test"
  "model_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
