# Empty dependencies file for model_shape_test.
# This may be replaced when dependencies are built.
