
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/task/containers.cc" "src/task/CMakeFiles/adamant_task.dir/containers.cc.o" "gcc" "src/task/CMakeFiles/adamant_task.dir/containers.cc.o.d"
  "/root/repo/src/task/kernel_registry.cc" "src/task/CMakeFiles/adamant_task.dir/kernel_registry.cc.o" "gcc" "src/task/CMakeFiles/adamant_task.dir/kernel_registry.cc.o.d"
  "/root/repo/src/task/kernels.cc" "src/task/CMakeFiles/adamant_task.dir/kernels.cc.o" "gcc" "src/task/CMakeFiles/adamant_task.dir/kernels.cc.o.d"
  "/root/repo/src/task/primitive.cc" "src/task/CMakeFiles/adamant_task.dir/primitive.cc.o" "gcc" "src/task/CMakeFiles/adamant_task.dir/primitive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamant_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/adamant_device.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/adamant_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adamant_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
