file(REMOVE_RECURSE
  "libadamant_task.a"
)
