# Empty dependencies file for adamant_task.
# This may be replaced when dependencies are built.
