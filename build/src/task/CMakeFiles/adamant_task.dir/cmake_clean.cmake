file(REMOVE_RECURSE
  "CMakeFiles/adamant_task.dir/containers.cc.o"
  "CMakeFiles/adamant_task.dir/containers.cc.o.d"
  "CMakeFiles/adamant_task.dir/kernel_registry.cc.o"
  "CMakeFiles/adamant_task.dir/kernel_registry.cc.o.d"
  "CMakeFiles/adamant_task.dir/kernels.cc.o"
  "CMakeFiles/adamant_task.dir/kernels.cc.o.d"
  "CMakeFiles/adamant_task.dir/primitive.cc.o"
  "CMakeFiles/adamant_task.dir/primitive.cc.o.d"
  "libadamant_task.a"
  "libadamant_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
