# Empty compiler generated dependencies file for adamant_common.
# This may be replaced when dependencies are built.
