file(REMOVE_RECURSE
  "CMakeFiles/adamant_common.dir/aligned_buffer.cc.o"
  "CMakeFiles/adamant_common.dir/aligned_buffer.cc.o.d"
  "CMakeFiles/adamant_common.dir/bit_util.cc.o"
  "CMakeFiles/adamant_common.dir/bit_util.cc.o.d"
  "CMakeFiles/adamant_common.dir/date.cc.o"
  "CMakeFiles/adamant_common.dir/date.cc.o.d"
  "CMakeFiles/adamant_common.dir/logging.cc.o"
  "CMakeFiles/adamant_common.dir/logging.cc.o.d"
  "CMakeFiles/adamant_common.dir/status.cc.o"
  "CMakeFiles/adamant_common.dir/status.cc.o.d"
  "libadamant_common.a"
  "libadamant_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
