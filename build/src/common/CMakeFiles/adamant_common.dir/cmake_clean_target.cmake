file(REMOVE_RECURSE
  "libadamant_common.a"
)
