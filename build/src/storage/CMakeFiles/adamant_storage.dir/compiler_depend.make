# Empty compiler generated dependencies file for adamant_storage.
# This may be replaced when dependencies are built.
