file(REMOVE_RECURSE
  "CMakeFiles/adamant_storage.dir/dictionary.cc.o"
  "CMakeFiles/adamant_storage.dir/dictionary.cc.o.d"
  "CMakeFiles/adamant_storage.dir/table.cc.o"
  "CMakeFiles/adamant_storage.dir/table.cc.o.d"
  "CMakeFiles/adamant_storage.dir/tbl_io.cc.o"
  "CMakeFiles/adamant_storage.dir/tbl_io.cc.o.d"
  "libadamant_storage.a"
  "libadamant_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
