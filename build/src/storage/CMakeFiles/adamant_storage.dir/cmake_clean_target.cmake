file(REMOVE_RECURSE
  "libadamant_storage.a"
)
