# Empty dependencies file for adamant_baseline.
# This may be replaced when dependencies are built.
