file(REMOVE_RECURSE
  "CMakeFiles/adamant_baseline.dir/heavydb_model.cc.o"
  "CMakeFiles/adamant_baseline.dir/heavydb_model.cc.o.d"
  "libadamant_baseline.a"
  "libadamant_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
