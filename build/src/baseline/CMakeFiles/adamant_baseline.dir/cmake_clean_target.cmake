file(REMOVE_RECURSE
  "libadamant_baseline.a"
)
