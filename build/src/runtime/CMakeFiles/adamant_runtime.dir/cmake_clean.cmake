file(REMOVE_RECURSE
  "CMakeFiles/adamant_runtime.dir/chunk_tuner.cc.o"
  "CMakeFiles/adamant_runtime.dir/chunk_tuner.cc.o.d"
  "CMakeFiles/adamant_runtime.dir/executor.cc.o"
  "CMakeFiles/adamant_runtime.dir/executor.cc.o.d"
  "CMakeFiles/adamant_runtime.dir/primitive_graph.cc.o"
  "CMakeFiles/adamant_runtime.dir/primitive_graph.cc.o.d"
  "CMakeFiles/adamant_runtime.dir/transfer_hub.cc.o"
  "CMakeFiles/adamant_runtime.dir/transfer_hub.cc.o.d"
  "libadamant_runtime.a"
  "libadamant_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
