file(REMOVE_RECURSE
  "libadamant_runtime.a"
)
