
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/chunk_tuner.cc" "src/runtime/CMakeFiles/adamant_runtime.dir/chunk_tuner.cc.o" "gcc" "src/runtime/CMakeFiles/adamant_runtime.dir/chunk_tuner.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/adamant_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/adamant_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/primitive_graph.cc" "src/runtime/CMakeFiles/adamant_runtime.dir/primitive_graph.cc.o" "gcc" "src/runtime/CMakeFiles/adamant_runtime.dir/primitive_graph.cc.o.d"
  "/root/repo/src/runtime/transfer_hub.cc" "src/runtime/CMakeFiles/adamant_runtime.dir/transfer_hub.cc.o" "gcc" "src/runtime/CMakeFiles/adamant_runtime.dir/transfer_hub.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamant_common.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/adamant_device.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/adamant_task.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/adamant_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adamant_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
