# Empty dependencies file for adamant_runtime.
# This may be replaced when dependencies are built.
