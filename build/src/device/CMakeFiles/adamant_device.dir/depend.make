# Empty dependencies file for adamant_device.
# This may be replaced when dependencies are built.
