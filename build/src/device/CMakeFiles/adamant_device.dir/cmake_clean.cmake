file(REMOVE_RECURSE
  "CMakeFiles/adamant_device.dir/buffer.cc.o"
  "CMakeFiles/adamant_device.dir/buffer.cc.o.d"
  "CMakeFiles/adamant_device.dir/device_manager.cc.o"
  "CMakeFiles/adamant_device.dir/device_manager.cc.o.d"
  "CMakeFiles/adamant_device.dir/drivers.cc.o"
  "CMakeFiles/adamant_device.dir/drivers.cc.o.d"
  "CMakeFiles/adamant_device.dir/sim_device.cc.o"
  "CMakeFiles/adamant_device.dir/sim_device.cc.o.d"
  "libadamant_device.a"
  "libadamant_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
