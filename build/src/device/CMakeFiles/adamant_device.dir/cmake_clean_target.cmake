file(REMOVE_RECURSE
  "libadamant_device.a"
)
