
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/buffer.cc" "src/device/CMakeFiles/adamant_device.dir/buffer.cc.o" "gcc" "src/device/CMakeFiles/adamant_device.dir/buffer.cc.o.d"
  "/root/repo/src/device/device_manager.cc" "src/device/CMakeFiles/adamant_device.dir/device_manager.cc.o" "gcc" "src/device/CMakeFiles/adamant_device.dir/device_manager.cc.o.d"
  "/root/repo/src/device/drivers.cc" "src/device/CMakeFiles/adamant_device.dir/drivers.cc.o" "gcc" "src/device/CMakeFiles/adamant_device.dir/drivers.cc.o.d"
  "/root/repo/src/device/sim_device.cc" "src/device/CMakeFiles/adamant_device.dir/sim_device.cc.o" "gcc" "src/device/CMakeFiles/adamant_device.dir/sim_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamant_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adamant_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
