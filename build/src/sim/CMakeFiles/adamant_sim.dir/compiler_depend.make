# Empty compiler generated dependencies file for adamant_sim.
# This may be replaced when dependencies are built.
