file(REMOVE_RECURSE
  "CMakeFiles/adamant_sim.dir/memory_arena.cc.o"
  "CMakeFiles/adamant_sim.dir/memory_arena.cc.o.d"
  "CMakeFiles/adamant_sim.dir/perf_model.cc.o"
  "CMakeFiles/adamant_sim.dir/perf_model.cc.o.d"
  "CMakeFiles/adamant_sim.dir/presets.cc.o"
  "CMakeFiles/adamant_sim.dir/presets.cc.o.d"
  "CMakeFiles/adamant_sim.dir/timeline.cc.o"
  "CMakeFiles/adamant_sim.dir/timeline.cc.o.d"
  "CMakeFiles/adamant_sim.dir/trace_export.cc.o"
  "CMakeFiles/adamant_sim.dir/trace_export.cc.o.d"
  "libadamant_sim.a"
  "libadamant_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
