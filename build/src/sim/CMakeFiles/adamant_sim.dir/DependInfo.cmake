
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/memory_arena.cc" "src/sim/CMakeFiles/adamant_sim.dir/memory_arena.cc.o" "gcc" "src/sim/CMakeFiles/adamant_sim.dir/memory_arena.cc.o.d"
  "/root/repo/src/sim/perf_model.cc" "src/sim/CMakeFiles/adamant_sim.dir/perf_model.cc.o" "gcc" "src/sim/CMakeFiles/adamant_sim.dir/perf_model.cc.o.d"
  "/root/repo/src/sim/presets.cc" "src/sim/CMakeFiles/adamant_sim.dir/presets.cc.o" "gcc" "src/sim/CMakeFiles/adamant_sim.dir/presets.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/sim/CMakeFiles/adamant_sim.dir/timeline.cc.o" "gcc" "src/sim/CMakeFiles/adamant_sim.dir/timeline.cc.o.d"
  "/root/repo/src/sim/trace_export.cc" "src/sim/CMakeFiles/adamant_sim.dir/trace_export.cc.o" "gcc" "src/sim/CMakeFiles/adamant_sim.dir/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamant_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
