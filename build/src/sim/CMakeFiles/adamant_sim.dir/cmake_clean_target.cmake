file(REMOVE_RECURSE
  "libadamant_sim.a"
)
