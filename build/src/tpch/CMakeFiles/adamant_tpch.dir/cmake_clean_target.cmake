file(REMOVE_RECURSE
  "libadamant_tpch.a"
)
