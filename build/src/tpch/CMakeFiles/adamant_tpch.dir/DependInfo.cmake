
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/reference.cc" "src/tpch/CMakeFiles/adamant_tpch.dir/reference.cc.o" "gcc" "src/tpch/CMakeFiles/adamant_tpch.dir/reference.cc.o.d"
  "/root/repo/src/tpch/tbl_schemas.cc" "src/tpch/CMakeFiles/adamant_tpch.dir/tbl_schemas.cc.o" "gcc" "src/tpch/CMakeFiles/adamant_tpch.dir/tbl_schemas.cc.o.d"
  "/root/repo/src/tpch/tpch_gen.cc" "src/tpch/CMakeFiles/adamant_tpch.dir/tpch_gen.cc.o" "gcc" "src/tpch/CMakeFiles/adamant_tpch.dir/tpch_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/adamant_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/adamant_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
