file(REMOVE_RECURSE
  "CMakeFiles/adamant_tpch.dir/reference.cc.o"
  "CMakeFiles/adamant_tpch.dir/reference.cc.o.d"
  "CMakeFiles/adamant_tpch.dir/tbl_schemas.cc.o"
  "CMakeFiles/adamant_tpch.dir/tbl_schemas.cc.o.d"
  "CMakeFiles/adamant_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/adamant_tpch.dir/tpch_gen.cc.o.d"
  "libadamant_tpch.a"
  "libadamant_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
