# Empty dependencies file for adamant_tpch.
# This may be replaced when dependencies are built.
