# Empty compiler generated dependencies file for adamant_plan.
# This may be replaced when dependencies are built.
