file(REMOVE_RECURSE
  "CMakeFiles/adamant_plan.dir/interpreter.cc.o"
  "CMakeFiles/adamant_plan.dir/interpreter.cc.o.d"
  "CMakeFiles/adamant_plan.dir/logical_plan.cc.o"
  "CMakeFiles/adamant_plan.dir/logical_plan.cc.o.d"
  "CMakeFiles/adamant_plan.dir/lowering.cc.o"
  "CMakeFiles/adamant_plan.dir/lowering.cc.o.d"
  "CMakeFiles/adamant_plan.dir/placement_optimizer.cc.o"
  "CMakeFiles/adamant_plan.dir/placement_optimizer.cc.o.d"
  "CMakeFiles/adamant_plan.dir/selectivity.cc.o"
  "CMakeFiles/adamant_plan.dir/selectivity.cc.o.d"
  "CMakeFiles/adamant_plan.dir/tpch_logical.cc.o"
  "CMakeFiles/adamant_plan.dir/tpch_logical.cc.o.d"
  "CMakeFiles/adamant_plan.dir/tpch_plans.cc.o"
  "CMakeFiles/adamant_plan.dir/tpch_plans.cc.o.d"
  "libadamant_plan.a"
  "libadamant_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adamant_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
