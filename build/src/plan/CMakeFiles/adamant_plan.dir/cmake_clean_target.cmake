file(REMOVE_RECURSE
  "libadamant_plan.a"
)
