
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/interpreter.cc" "src/plan/CMakeFiles/adamant_plan.dir/interpreter.cc.o" "gcc" "src/plan/CMakeFiles/adamant_plan.dir/interpreter.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/plan/CMakeFiles/adamant_plan.dir/logical_plan.cc.o" "gcc" "src/plan/CMakeFiles/adamant_plan.dir/logical_plan.cc.o.d"
  "/root/repo/src/plan/lowering.cc" "src/plan/CMakeFiles/adamant_plan.dir/lowering.cc.o" "gcc" "src/plan/CMakeFiles/adamant_plan.dir/lowering.cc.o.d"
  "/root/repo/src/plan/placement_optimizer.cc" "src/plan/CMakeFiles/adamant_plan.dir/placement_optimizer.cc.o" "gcc" "src/plan/CMakeFiles/adamant_plan.dir/placement_optimizer.cc.o.d"
  "/root/repo/src/plan/selectivity.cc" "src/plan/CMakeFiles/adamant_plan.dir/selectivity.cc.o" "gcc" "src/plan/CMakeFiles/adamant_plan.dir/selectivity.cc.o.d"
  "/root/repo/src/plan/tpch_logical.cc" "src/plan/CMakeFiles/adamant_plan.dir/tpch_logical.cc.o" "gcc" "src/plan/CMakeFiles/adamant_plan.dir/tpch_logical.cc.o.d"
  "/root/repo/src/plan/tpch_plans.cc" "src/plan/CMakeFiles/adamant_plan.dir/tpch_plans.cc.o" "gcc" "src/plan/CMakeFiles/adamant_plan.dir/tpch_plans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/adamant_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/adamant_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/adamant_task.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/adamant_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adamant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/adamant_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adamant_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
