# Empty dependencies file for run_tpch.
# This may be replaced when dependencies are built.
