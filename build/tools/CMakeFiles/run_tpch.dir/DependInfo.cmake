
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/run_tpch.cc" "tools/CMakeFiles/run_tpch.dir/run_tpch.cc.o" "gcc" "tools/CMakeFiles/run_tpch.dir/run_tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/adamant_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/adamant_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/adamant_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/adamant_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/adamant_task.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/adamant_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/adamant_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adamant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/adamant_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
