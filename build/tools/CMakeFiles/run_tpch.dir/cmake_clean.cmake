file(REMOVE_RECURSE
  "CMakeFiles/run_tpch.dir/run_tpch.cc.o"
  "CMakeFiles/run_tpch.dir/run_tpch.cc.o.d"
  "run_tpch"
  "run_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
