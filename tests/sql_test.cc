// SQL frontend tests: lexer/parser/binder diagnostics (line:col positions,
// no aborts), compile-and-run parity of the q1/q3/q4/q6 built-ins against
// the hand-built logical plans across every execution model, the two
// SQL-only built-ins against host-loop references, EXPLAIN content, and
// QuerySpec::sql submission through the service.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "adamant/adamant.h"
#include "plan/feedback.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace adamant {
namespace {

struct SqlFixture {
  std::shared_ptr<Catalog> catalog;

  static const SqlFixture& Get() {
    static const SqlFixture* const kFixture = [] {
      auto* fixture = new SqlFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

const ExecutionModelKind kAllModels[] = {
    ExecutionModelKind::kOperatorAtATime,
    ExecutionModelKind::kChunked,
    ExecutionModelKind::kPipelined,
    ExecutionModelKind::kFourPhaseChunked,
    ExecutionModelKind::kFourPhasePipelined,
    ExecutionModelKind::kDeviceParallel,
};

std::unique_ptr<DeviceManager> TwoGpuManager() {
  auto manager = std::make_unique<DeviceManager>();
  for (int i = 0; i < 2; ++i) {
    auto device = manager->AddDriver(sim::DriverKind::kCudaGpu,
                                     "cuda_gpu." + std::to_string(i));
    ADAMANT_CHECK(device.ok()) << device.status().ToString();
    ADAMANT_CHECK(BindStandardKernels(manager->device(*device)).ok());
  }
  return manager;
}

ExecutionOptions OptionsFor(ExecutionModelKind model) {
  ExecutionOptions options;
  options.model = model;
  options.chunk_elems = 1024;  // several chunks even at SF 0.002
  if (model == ExecutionModelKind::kDeviceParallel) {
    options.device_set = {0, 1};
  }
  if (model == ExecutionModelKind::kPipelined ||
      model == ExecutionModelKind::kFourPhasePipelined) {
    options.pipeline_depth = 2;
  }
  return options;
}

const std::string& BuiltinSql(const char* name) {
  const sql::BuiltinQuery* builtin = sql::FindBuiltinQuery(name);
  ADAMANT_CHECK(builtin != nullptr) << name;
  return builtin->sql;
}

/// Compiles `sql_text` and runs it under `model`, returning the extracted
/// result set.
Result<sql::SqlResultSet> CompileAndRun(const std::string& sql_text,
                                        const Catalog& catalog,
                                        DeviceManager* manager,
                                        ExecutionModelKind model,
                                        sql::CompiledQuery* compiled_out =
                                            nullptr) {
  sql::PlannerOptions planner_options;
  planner_options.manager = manager;
  ADAMANT_ASSIGN_OR_RETURN(sql::CompiledQuery compiled,
                           sql::Compile(sql_text, catalog, planner_options));
  ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                           plan::LowerPlan(*compiled.plan, catalog, 0));
  QueryExecutor executor(manager);
  ADAMANT_ASSIGN_OR_RETURN(
      QueryExecution exec,
      executor.Run(bundle.graph.get(), OptionsFor(model)));
  ADAMANT_ASSIGN_OR_RETURN(sql::SqlResultSet results,
                           sql::ExtractResults(compiled, bundle, exec));
  ADAMANT_RETURN_NOT_OK(
      sql::VerifyAgainstInterpreter(compiled, bundle, exec, catalog));
  if (compiled_out != nullptr) *compiled_out = std::move(compiled);
  return results;
}

// --- Lexer ---

TEST(SqlLexer, TokenizesWithPositions) {
  auto tokens = sql::Lex("SELECT a,\n  b FROM t");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 7u);  // incl. end token
  EXPECT_EQ((*tokens)[0].text, "select");  // identifiers lowercase
  EXPECT_EQ((*tokens)[0].pos.line, 1);
  EXPECT_EQ((*tokens)[0].pos.col, 1);
  EXPECT_EQ((*tokens)[3].text, "b");
  EXPECT_EQ((*tokens)[3].pos.line, 2);
  EXPECT_EQ((*tokens)[3].pos.col, 3);
}

TEST(SqlLexer, DecimalScales100) {
  auto tokens = sql::Lex("0.05 1.5 150000.00 24");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, sql::TokenKind::kDecimal);
  EXPECT_EQ((*tokens)[0].int_val, 5);
  EXPECT_EQ((*tokens)[1].int_val, 150);
  EXPECT_EQ((*tokens)[2].int_val, 15000000);
  EXPECT_EQ((*tokens)[3].kind, sql::TokenKind::kInt);
  EXPECT_EQ((*tokens)[3].int_val, 24);
}

TEST(SqlLexer, ErrorsCarryLineCol) {
  auto too_precise = sql::Lex("SELECT 0.123");
  ASSERT_FALSE(too_precise.ok());
  EXPECT_NE(too_precise.status().ToString().find("1:8"), std::string::npos)
      << too_precise.status().ToString();

  auto unterminated = sql::Lex("SELECT a FROM t WHERE b = 'oops");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().ToString().find("1:27"), std::string::npos)
      << unterminated.status().ToString();

  auto bad_char = sql::Lex("SELECT a ? b");
  ASSERT_FALSE(bad_char.ok());
  EXPECT_NE(bad_char.status().ToString().find("1:10"), std::string::npos);
}

// --- Parser ---

TEST(SqlParser, ErrorsCarryLineCol) {
  struct Case {
    const char* sql;
    const char* pos;
  };
  const Case cases[] = {
      {"SELECT FROM t", "1:8"},               // missing select list
      {"SELECT a\nFROM", "2:5"},              // missing table
      {"SELECT a FROM t WHERE", "1:22"},      // missing condition
      {"SELECT a FROM t GROUP a", "1:23"},    // missing BY
      {"SELECT a FROM t LIMIT x", "1:23"},    // LIMIT wants an integer
      {"SELECT SUM(a FROM t", "1:14"},        // unclosed aggregate call
      {"SELECT a FROM t JOIN u ON a < b", "1:27"},  // ON wants equality
  };
  for (const Case& c : cases) {
    auto stmt = sql::Parse(c.sql);
    ASSERT_FALSE(stmt.ok()) << c.sql;
    EXPECT_NE(stmt.status().ToString().find(c.pos), std::string::npos)
        << c.sql << " -> " << stmt.status().ToString();
  }
}

TEST(SqlParser, AcceptsTheAnalyticSubset) {
  const char* accepted[] = {
      "SELECT COUNT(*) AS n FROM t",
      "SELECT a, SUM(b * 2) FROM t WHERE c BETWEEN 1 AND 5 GROUP BY a",
      "SELECT a FROM t, u WHERE t.k = u.k AND a IN (1, 2) ORDER BY a DESC "
      "LIMIT 3",
      "SELECT a FROM t JOIN u ON t.k = u.k WHERE d >= DATE '1994-01-01';",
      "SELECT SUM(p * (1 - d)) FROM t -- trailing comment",
  };
  for (const char* sql : accepted) {
    auto stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status().ToString();
  }
}

TEST(SqlParser, RejectsDeepNesting) {
  std::string sql = "SELECT ";
  for (int i = 0; i < 100; ++i) sql += "(";
  sql += "1";
  for (int i = 0; i < 100; ++i) sql += ")";
  sql += " FROM t";
  auto stmt = sql::Parse(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().ToString().find("nest"), std::string::npos);
}

// --- Binder ---

TEST(SqlBinder, RejectsUnknownNamesWithPositions) {
  const auto& fixture = SqlFixture::Get();
  struct Case {
    const char* sql;
    const char* pos;
    const char* fragment;
  };
  const Case cases[] = {
      {"SELECT l_quantity FROM lineitems", "1:24", "lineitems"},
      {"SELECT l_quantityy FROM lineitem", "1:8", "l_quantityy"},
      {"SELECT SUM(l_quantity) FROM lineitem\nWHERE l_shipmode = nope",
       "2:20", "nope"},
      {"SELECT o_orderkey FROM orders, lineitem\n"
       "WHERE l_orderkey = o_orderkey AND COUNT(l_orderkey) = 1",
       "2:35", "predicates compare"},
  };
  for (const Case& c : cases) {
    auto stmt = sql::Parse(c.sql);
    if (!stmt.ok()) {
      ADD_FAILURE() << c.sql << " failed to parse: "
                    << stmt.status().ToString();
      continue;
    }
    auto bound = sql::Bind(**stmt, *fixture.catalog);
    ASSERT_FALSE(bound.ok()) << c.sql;
    const std::string message = bound.status().ToString();
    EXPECT_NE(message.find(c.pos), std::string::npos)
        << c.sql << " -> " << message;
    EXPECT_NE(message.find(c.fragment), std::string::npos)
        << c.sql << " -> " << message;
  }
}

TEST(SqlBinder, ReportsAmbiguousColumns) {
  const auto& fixture = SqlFixture::Get();
  auto stmt = sql::Parse(
      "SELECT l_orderkey FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND comment = 'x'");
  // Neither table has "comment", so this surfaces as unknown; use a column
  // both sides share instead. TPC-H columns are prefixed, so craft the
  // ambiguity with an unqualified prefix-free name only if one exists;
  // otherwise the unknown-column diagnostic is the contract.
  ASSERT_TRUE(stmt.ok());
  auto bound = sql::Bind(**stmt, *fixture.catalog);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().ToString().find("comment"), std::string::npos);
}

TEST(SqlBinder, RejectsOrderedCompareOnDictColumn) {
  const auto& fixture = SqlFixture::Get();
  auto stmt = sql::Parse(
      "SELECT COUNT(*) FROM lineitem WHERE l_shipmode < 'RAIL'");
  ASSERT_TRUE(stmt.ok());
  auto bound = sql::Bind(**stmt, *fixture.catalog);
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().ToString().find("l_shipmode"), std::string::npos);
}

TEST(SqlBinder, UnknownDictLiteralBindsToNeverMatch) {
  // A miss in the dictionary is an empty result, not an error.
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto results = CompileAndRun(
      "SELECT COUNT(*) AS n FROM lineitem WHERE l_shipmode = 'WARP DRIVE'",
      *fixture.catalog, manager.get(), ExecutionModelKind::kChunked);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->rows.size(), 1u);
  EXPECT_EQ(results->rows[0][0].i, 0);
}

// --- Parity with the hand-built plans, across every execution model ---

TEST(SqlParity, Q6AllModels) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto want = tpch::Q6Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  for (ExecutionModelKind model : kAllModels) {
    auto results = CompileAndRun(BuiltinSql("q6"), *fixture.catalog,
                                 manager.get(), model);
    ASSERT_TRUE(results.ok()) << ExecutionModelName(model) << ": "
                              << results.status().ToString();
    ASSERT_EQ(results->rows.size(), 1u);
    EXPECT_EQ(results->rows[0][0].i, *want) << ExecutionModelName(model);

    // Bit-identical to the hand-built logical plan's execution.
    auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
    ASSERT_TRUE(bundle.ok());
    QueryExecutor executor(manager.get());
    auto exec = executor.Run(bundle->graph.get(), OptionsFor(model));
    ASSERT_TRUE(exec.ok());
    auto hand = plan::ExtractQ6(*bundle, *exec);
    ASSERT_TRUE(hand.ok());
    EXPECT_EQ(results->rows[0][0].i, *hand) << ExecutionModelName(model);
  }
}

TEST(SqlParity, Q1AllModels) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto want = tpch::Q1Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  // Reference rows keyed by (returnflag, linestatus) dictionary codes.
  std::map<std::pair<int32_t, int32_t>, tpch::Q1Row> expected;
  for (const tpch::Q1Row& row : *want) {
    expected[{row.returnflag, row.linestatus}] = row;
  }
  for (ExecutionModelKind model : kAllModels) {
    sql::CompiledQuery compiled;
    auto results = CompileAndRun(BuiltinSql("q1"), *fixture.catalog,
                                 manager.get(), model, &compiled);
    ASSERT_TRUE(results.ok()) << ExecutionModelName(model) << ": "
                              << results.status().ToString();
    // returnflag, linestatus, sum_qty, sum_base, sum_disc_price,
    // sum_charge, avg_qty, count
    ASSERT_EQ(results->column_names.size(), 8u);
    ASSERT_EQ(results->rows.size(), expected.size())
        << ExecutionModelName(model);
    for (const auto& row : results->rows) {
      const auto key = std::make_pair(static_cast<int32_t>(row[0].i),
                                      static_cast<int32_t>(row[1].i));
      auto it = expected.find(key);
      ASSERT_NE(it, expected.end()) << ExecutionModelName(model);
      const tpch::Q1Row& ref = it->second;
      EXPECT_EQ(row[2].i, ref.sum_qty);
      EXPECT_EQ(row[3].i, ref.sum_base_price);
      EXPECT_EQ(row[4].i, ref.sum_disc_price);
      EXPECT_EQ(row[5].i, ref.sum_charge);
      ASSERT_TRUE(row[6].is_double);
      EXPECT_DOUBLE_EQ(row[6].d, static_cast<double>(ref.sum_qty) /
                                     static_cast<double>(ref.count));
      EXPECT_EQ(row[7].i, ref.count);
    }
    // The hand-built Q1 packs its group key with a different modulus (8 vs
    // the planner's dictionary-derived power of two); decoded rows must
    // still agree bit for bit.
    auto bundle = plan::BuildQ1(*fixture.catalog, {}, 0);
    ASSERT_TRUE(bundle.ok());
    QueryExecutor executor(manager.get());
    auto exec = executor.Run(bundle->graph.get(), OptionsFor(model));
    ASSERT_TRUE(exec.ok()) << ExecutionModelName(model);
    auto hand = plan::ExtractQ1(*bundle, *exec);
    ASSERT_TRUE(hand.ok());
    for (const tpch::Q1Row& row : *hand) {
      auto it = expected.find({row.returnflag, row.linestatus});
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(row, it->second) << ExecutionModelName(model);
    }
  }
}

TEST(SqlParity, Q3AllModels) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto want = tpch::Q3Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  for (ExecutionModelKind model : kAllModels) {
    auto results = CompileAndRun(BuiltinSql("q3"), *fixture.catalog,
                                 manager.get(), model);
    ASSERT_TRUE(results.ok()) << ExecutionModelName(model) << ": "
                              << results.status().ToString();
    ASSERT_EQ(results->rows.size(), want->size())
        << ExecutionModelName(model);
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ(results->rows[i][0].i, (*want)[i].orderkey)
          << ExecutionModelName(model) << " row " << i;
      EXPECT_EQ(results->rows[i][1].i, (*want)[i].revenue)
          << ExecutionModelName(model) << " row " << i;
    }
  }
}

TEST(SqlParity, Q4AllModels) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto want = tpch::Q4Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  for (ExecutionModelKind model : kAllModels) {
    auto results = CompileAndRun(BuiltinSql("q4"), *fixture.catalog,
                                 manager.get(), model);
    ASSERT_TRUE(results.ok()) << ExecutionModelName(model) << ": "
                              << results.status().ToString();
    ASSERT_EQ(results->rows.size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ(results->rows[i][0].i, (*want)[i].priority);
      EXPECT_EQ(results->rows[i][1].i, (*want)[i].order_count);
    }
    // Same rows as the hand-built semi-join plan.
    auto bundle = plan::BuildQ4(*fixture.catalog, {}, 0);
    ASSERT_TRUE(bundle.ok());
    QueryExecutor executor(manager.get());
    auto exec = executor.Run(bundle->graph.get(), OptionsFor(model));
    ASSERT_TRUE(exec.ok());
    auto hand = plan::ExtractQ4(*bundle, *exec);
    ASSERT_TRUE(hand.ok());
    ASSERT_EQ(hand->size(), results->rows.size());
    for (size_t i = 0; i < hand->size(); ++i) {
      EXPECT_EQ(results->rows[i][0].i, (*hand)[i].priority);
      EXPECT_EQ(results->rows[i][1].i, (*hand)[i].order_count);
    }
  }
}

// --- SQL-only built-ins vs host-loop references ---

TEST(SqlOnly, ShipmodeRollupMatchesHostLoop) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();

  auto table = fixture.catalog->GetTable("lineitem");
  ASSERT_TRUE(table.ok());
  auto shipdate = (*table)->GetColumn("l_shipdate");
  auto shipmode = (*table)->GetColumn("l_shipmode");
  auto returnflag = (*table)->GetColumn("l_returnflag");
  auto price = (*table)->GetColumn("l_extendedprice");
  auto discount = (*table)->GetColumn("l_discount");
  ASSERT_TRUE(shipdate.ok() && shipmode.ok() && returnflag.ok() &&
              price.ok() && discount.ok());
  const int32_t lo = Date::FromYmd(1995, 1, 1).days();
  const int32_t hi = Date::FromYmd(1996, 1, 1).days();
  // key -> (revenue, count), revenue in the kernels' integer fixed point.
  std::map<std::pair<int32_t, int32_t>, std::pair<int64_t, int64_t>> want;
  for (size_t i = 0; i < (*shipdate)->length(); ++i) {
    const int32_t date = (*shipdate)->Value<int32_t>(i);
    if (date < lo || date >= hi) continue;
    const auto key = std::make_pair((*shipmode)->Value<int32_t>(i),
                                    (*returnflag)->Value<int32_t>(i));
    const int64_t extended = (*price)->Value<int64_t>(i);
    const int64_t disc = (*discount)->Value<int32_t>(i);
    want[key].first += extended * (100 - disc) / 100;
    want[key].second += 1;
  }

  for (ExecutionModelKind model : kAllModels) {
    auto results = CompileAndRun(BuiltinSql("shipmode_rollup"),
                                 *fixture.catalog, manager.get(), model);
    ASSERT_TRUE(results.ok()) << ExecutionModelName(model) << ": "
                              << results.status().ToString();
    ASSERT_EQ(results->rows.size(), want.size());
    int64_t previous_revenue = INT64_MAX;
    for (const auto& row : results->rows) {
      const auto key = std::make_pair(static_cast<int32_t>(row[0].i),
                                      static_cast<int32_t>(row[1].i));
      auto it = want.find(key);
      ASSERT_NE(it, want.end());
      EXPECT_EQ(row[2].i, it->second.first) << ExecutionModelName(model);
      EXPECT_EQ(row[3].i, it->second.second) << ExecutionModelName(model);
      // ORDER BY revenue DESC.
      EXPECT_LE(row[2].i, previous_revenue);
      previous_revenue = row[2].i;
    }
  }
}

TEST(SqlOnly, PriorityWindowMatchesHostLoop) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();

  auto table = fixture.catalog->GetTable("orders");
  ASSERT_TRUE(table.ok());
  auto orderdate = (*table)->GetColumn("o_orderdate");
  auto priority = (*table)->GetColumn("o_orderpriority");
  auto total = (*table)->GetColumn("o_totalprice");
  ASSERT_TRUE(orderdate.ok() && priority.ok() && total.ok());
  const int32_t lo = Date::FromYmd(1994, 1, 1).days();
  const int32_t hi = Date::FromYmd(1994, 7, 1).days();
  std::map<int32_t, std::pair<int64_t, int64_t>> want;  // count, sum(price)
  for (size_t i = 0; i < (*orderdate)->length(); ++i) {
    const int32_t date = (*orderdate)->Value<int32_t>(i);
    if (date < lo || date >= hi) continue;
    if ((*total)->Value<int64_t>(i) <= 15000000) continue;  // $150000.00
    auto& entry = want[(*priority)->Value<int32_t>(i)];
    entry.first += 1;
    entry.second += (*total)->Value<int64_t>(i);
  }

  for (ExecutionModelKind model : kAllModels) {
    auto results = CompileAndRun(BuiltinSql("priority_window"),
                                 *fixture.catalog, manager.get(), model);
    ASSERT_TRUE(results.ok()) << ExecutionModelName(model) << ": "
                              << results.status().ToString();
    ASSERT_EQ(results->rows.size(), want.size());
    for (const auto& row : results->rows) {
      auto it = want.find(static_cast<int32_t>(row[0].i));
      ASSERT_NE(it, want.end());
      EXPECT_EQ(row[1].i, it->second.first) << ExecutionModelName(model);
      ASSERT_TRUE(row[2].is_double);
      EXPECT_DOUBLE_EQ(row[2].d,
                       static_cast<double>(it->second.second) /
                           static_cast<double>(it->second.first))
          << ExecutionModelName(model);
    }
  }
}

// --- ORDER BY / LIMIT / AVG ---

TEST(SqlFeatures, OrderByAndLimit) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto results = CompileAndRun(
      "SELECT l_shipmode, COUNT(*) AS n FROM lineitem "
      "GROUP BY l_shipmode ORDER BY n DESC, l_shipmode LIMIT 3",
      *fixture.catalog, manager.get(), ExecutionModelKind::kChunked);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->rows.size(), 3u);
  EXPECT_GE(results->rows[0][1].i, results->rows[1][1].i);
  EXPECT_GE(results->rows[1][1].i, results->rows[2][1].i);
}

TEST(SqlFeatures, OrderByPosition) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto results = CompileAndRun(
      "SELECT l_linenumber, SUM(l_quantity) AS q FROM lineitem "
      "GROUP BY l_linenumber ORDER BY 1",
      *fixture.catalog, manager.get(), ExecutionModelKind::kChunked);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_GE(results->rows.size(), 2u);
  for (size_t i = 1; i < results->rows.size(); ++i) {
    EXPECT_LT(results->rows[i - 1][0].i, results->rows[i][0].i);
  }
}

TEST(SqlFeatures, AvgIsSumOverCount) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  auto results = CompileAndRun(
      "SELECT SUM(l_quantity) AS s, COUNT(*) AS n, AVG(l_quantity) AS a "
      "FROM lineitem WHERE l_quantity < 10",
      *fixture.catalog, manager.get(), ExecutionModelKind::kChunked);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->rows.size(), 1u);
  const auto& row = results->rows[0];
  ASSERT_TRUE(row[2].is_double);
  EXPECT_DOUBLE_EQ(row[2].d, static_cast<double>(row[0].i) /
                                 static_cast<double>(row[1].i));
}

// --- EXPLAIN ---

TEST(SqlExplain, ShowsPushdownAndCostedJoinOrder) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  sql::PlannerOptions planner_options;
  planner_options.manager = manager.get();
  // Two build sides on the fact table -> the planner prices both orders.
  auto compiled = sql::Compile(
      "SELECT l_shipmode, SUM(l_extendedprice) AS total "
      "FROM lineitem, orders, part "
      "WHERE l_orderkey = o_orderkey AND l_partkey = p_partkey "
      "  AND p_size < 20 AND o_orderdate >= DATE '1995-01-01' "
      "GROUP BY l_shipmode",
      *fixture.catalog, planner_options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string text = sql::ExplainCompiled(*compiled);
  EXPECT_NE(text.find("pushed-down predicates:"), std::string::npos) << text;
  EXPECT_NE(text.find("orders: o_orderdate >="), std::string::npos) << text;
  EXPECT_NE(text.find("part: p_size <"), std::string::npos) << text;
  EXPECT_NE(text.find("join order: lineitem joins"), std::string::npos)
      << text;
  EXPECT_NE(text.find("costed build orders:"), std::string::npos) << text;
  EXPECT_NE(text.find("(chosen)"), std::string::npos) << text;
  EXPECT_NE(text.find("join selectivities:"), std::string::npos) << text;
  EXPECT_EQ(compiled->join_candidates.size(), 2u);  // 2 permutations priced
  EXPECT_EQ(compiled->fact_table, "lineitem");
}

TEST(SqlExplain, Q6ShowsMergedDateRange) {
  const auto& fixture = SqlFixture::Get();
  auto compiled = sql::Compile(BuiltinSql("q6"), *fixture.catalog);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const std::string text = sql::ExplainCompiled(*compiled);
  // >= lo AND < hi merges into one inclusive Between, like the hand-built
  // plan's shape.
  EXPECT_NE(text.find("l_shipdate between"), std::string::npos) << text;
  EXPECT_NE(text.find("(no joins)"), std::string::npos) << text;
}

// --- Selectivity feedback into the planner ---

// Collects every node of a given kind, probe-side-first.
void CollectNodes(const plan::LogicalNodePtr& node,
                  plan::LogicalNode::Kind kind,
                  std::vector<const plan::LogicalNode*>* out) {
  if (node == nullptr) return;
  CollectNodes(node->child, kind, out);
  CollectNodes(node->build, kind, out);
  if (node->kind == kind) out->push_back(node.get());
}

double PredicateProduct(const plan::LogicalNode& filter) {
  double product = 1.0;
  for (const auto& predicate : filter.predicates) {
    product *= predicate.selectivity;
  }
  return product;
}

obs::OperatorStats SyntheticObservation(const std::string& feedback_key,
                                        uint64_t rows_in, uint64_t rows_out) {
  obs::OperatorStats op;
  op.label = feedback_key;  // unique label -> stable per-label ordinal
  op.kind = "MATERIALIZE";
  op.feedback_key = feedback_key;
  op.selective = true;
  op.rows_in = rows_in;
  op.rows_out = rows_out;
  op.max_chunk_selectivity =
      static_cast<double>(rows_out) / static_cast<double>(rows_in);
  op.launches = 1;
  return op;
}

// The planner consults the selectivity feedback cache on recompile: observed
// step selectivities override the sampled predicate estimates and the join
// selectivity, while a compile without feedback (or under a different query
// name) is untouched.
TEST(SqlFeedback, ObservedSelectivitiesOverridePlannerEstimates) {
  const auto& fixture = SqlFixture::Get();

  auto baseline = sql::Compile(BuiltinSql("q3"), *fixture.catalog);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::vector<const plan::LogicalNode*> filters;
  std::vector<const plan::LogicalNode*> joins;
  CollectNodes(baseline->plan, plan::LogicalNode::Kind::kFilter, &filters);
  CollectNodes(baseline->plan, plan::LogicalNode::Kind::kHashJoin, &joins);
  ASSERT_FALSE(filters.empty());
  ASSERT_FALSE(joins.empty());
  const plan::LogicalNode& base_filter = *filters.front();
  ASSERT_FALSE(base_filter.predicates.empty());
  const std::string filter_column = base_filter.predicates.back().column;
  const std::string probe_key = joins.front()->probe_key;
  const double base_product = PredicateProduct(base_filter);
  const double base_join = joins.front()->join_selectivity;

  // Feed the cache the keys lowering stamps on the filter chain's
  // MATERIALIZE and the join's HASH_PROBE, with observed selectivities far
  // from the sampled estimates.
  const double fed_filter = 0.007;
  const double fed_join = 333.0 / 1024.0;  // odd ratio, can't collide with
                                           // a sampled estimate
  plan::SelectivityFeedback feedback;
  feedback.Observe(
      "q3", {SyntheticObservation("step:lower.filter(" + filter_column + ")",
                                  1000000, 7000),
             SyntheticObservation("step:lower.probe(" + probe_key + ")", 1024,
                                  333)});
  ASSERT_EQ(feedback.RunsObserved("q3"), 1u);

  sql::PlannerOptions with_feedback;
  with_feedback.feedback = &feedback;
  with_feedback.feedback_name = "q3";
  auto tuned = sql::Compile(BuiltinSql("q3"), *fixture.catalog, with_feedback);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  filters.clear();
  joins.clear();
  CollectNodes(tuned->plan, plan::LogicalNode::Kind::kFilter, &filters);
  CollectNodes(tuned->plan, plan::LogicalNode::Kind::kHashJoin, &joins);
  ASSERT_FALSE(filters.empty());
  ASSERT_FALSE(joins.empty());
  // The correction is spread across the conjuncts, so only the product is
  // pinned: it must land on the measured cumulative selectivity.
  EXPECT_NEAR(PredicateProduct(*filters.front()), fed_filter, 1e-9);
  EXPECT_GT(std::abs(PredicateProduct(*filters.front()) - base_product),
            1e-4);
  EXPECT_DOUBLE_EQ(joins.front()->join_selectivity, fed_join);
  EXPECT_NE(joins.front()->join_selectivity, base_join);

  // A different feedback name leaves the plan at the sampled estimates.
  sql::PlannerOptions other_name;
  other_name.feedback = &feedback;
  other_name.feedback_name = "not-q3";
  auto untouched =
      sql::Compile(BuiltinSql("q3"), *fixture.catalog, other_name);
  ASSERT_TRUE(untouched.ok()) << untouched.status().ToString();
  filters.clear();
  CollectNodes(untouched->plan, plan::LogicalNode::Kind::kFilter, &filters);
  ASSERT_FALSE(filters.empty());
  EXPECT_DOUBLE_EQ(PredicateProduct(*filters.front()), base_product);
}

// --- Service submission via QuerySpec::sql ---

TEST(SqlService, SubmitsSqlText) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();

  sql::PlannerOptions planner_options;
  planner_options.manager = manager.get();
  auto compiled =
      sql::Compile(BuiltinSql("q6"), *fixture.catalog, planner_options);
  ASSERT_TRUE(compiled.ok());
  auto bundle = plan::LowerPlan(*compiled->plan, *fixture.catalog, 0);
  ASSERT_TRUE(bundle.ok());
  auto want = tpch::Q6Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());

  ServiceConfig config;
  config.workers = 2;
  QueryService service(manager.get(), config);
  QuerySpec spec;
  spec.sql = BuiltinSql("q6");
  spec.sql_catalog = fixture.catalog.get();
  spec.options = OptionsFor(ExecutionModelKind::kChunked);
  auto ticket = service.Submit(std::move(spec));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  const auto& result = (*ticket)->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*ticket)->name(), "sql");

  auto results = sql::ExtractResults(*compiled, *bundle, *result);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->rows.size(), 1u);
  EXPECT_EQ(results->rows[0][0].i, *want);
  service.Stop();
}

TEST(SqlService, CompileErrorsSurfaceAtSubmit) {
  const auto& fixture = SqlFixture::Get();
  auto manager = TwoGpuManager();
  ServiceConfig config;
  config.workers = 1;
  QueryService service(manager.get(), config);

  QuerySpec bad_sql;
  bad_sql.sql = "SELECT nope FROM lineitem";
  bad_sql.sql_catalog = fixture.catalog.get();
  auto ticket = service.Submit(std::move(bad_sql));
  ASSERT_FALSE(ticket.ok());
  EXPECT_NE(ticket.status().ToString().find("1:8"), std::string::npos)
      << ticket.status().ToString();

  QuerySpec no_catalog;
  no_catalog.sql = "SELECT COUNT(*) FROM lineitem";
  auto missing = service.Submit(std::move(no_catalog));
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("sql_catalog"),
            std::string::npos);
  service.Stop();
}

}  // namespace
}  // namespace adamant
