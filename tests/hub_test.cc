// Unit tests for the data transfer hub (router / load_data /
// prepare_output_buffer) and the task-layer containers.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "device/device_manager.h"
#include "runtime/transfer_hub.h"
#include "task/containers.h"
#include "task/hash_table.h"
#include "task/kernel_registry.h"

namespace adamant {
namespace {

class HubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gpu = manager_.AddDriver(sim::DriverKind::kCudaGpu);
    auto cpu = manager_.AddDriver(sim::DriverKind::kOpenMpCpu);
    ASSERT_TRUE(gpu.ok() && cpu.ok());
    gpu_ = *gpu;
    cpu_ = *cpu;
    ASSERT_TRUE(BindStandardKernels(manager_.device(gpu_)).ok());
    ASSERT_TRUE(BindStandardKernels(manager_.device(cpu_)).ok());
  }

  DeviceManager manager_;
  DeviceId gpu_ = 0;
  DeviceId cpu_ = 0;
};

TEST_F(HubTest, LoadDataPlacesBytes) {
  DataTransferHub hub(&manager_, DataContainer::WithDefaultTransforms());
  std::vector<int32_t> data = {1, 2, 3, 4};
  auto buf = hub.LoadData(gpu_, data.data(), 16);
  ASSERT_TRUE(buf.ok());
  int32_t got[4];
  ASSERT_TRUE(manager_.device(gpu_)->RetrieveData(*buf, got, 16, 0).ok());
  EXPECT_EQ(got[2], 3);
  EXPECT_EQ(hub.bytes_host_to_device(), 16u);
}

TEST_F(HubTest, RouterSameDeviceIsNoop) {
  DataTransferHub hub(&manager_, DataContainer::WithDefaultTransforms());
  std::vector<int32_t> data = {9};
  auto buf = hub.LoadData(gpu_, data.data(), 4);
  ASSERT_TRUE(buf.ok());
  // Regression: the data is already resident, so the short-circuit must not
  // charge either transfer counter.
  const size_t h2d_before = hub.bytes_host_to_device();
  const size_t d2h_before = hub.bytes_device_to_host();
  auto routed = hub.Router(gpu_, *buf, gpu_, 4);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(*routed, *buf);
  EXPECT_EQ(hub.bytes_host_to_device(), h2d_before);
  EXPECT_EQ(hub.bytes_device_to_host(), d2h_before);
}

TEST_F(HubTest, RouterMovesAcrossDevicesThroughHost) {
  DataTransferHub hub(&manager_, DataContainer::WithDefaultTransforms());
  std::vector<int32_t> data = {5, 6, 7};
  auto src = hub.LoadData(gpu_, data.data(), 12);
  ASSERT_TRUE(src.ok());
  const size_t d2h_before = hub.bytes_device_to_host();
  auto dst = hub.Router(gpu_, *src, cpu_, 12);
  ASSERT_TRUE(dst.ok());
  int32_t got[3];
  ASSERT_TRUE(manager_.device(cpu_)->RetrieveData(*dst, got, 12, 0).ok());
  EXPECT_EQ(got[0], 5);
  EXPECT_EQ(got[2], 7);
  EXPECT_EQ(hub.bytes_device_to_host() - d2h_before, 12u)
      << "cross-device routing goes through the host";
}

TEST_F(HubTest, EnsureFormatUsesTransformWhenAllowed) {
  DataTransferHub hub(&manager_, DataContainer::WithDefaultTransforms());
  std::vector<int32_t> data = {1};
  auto buf = hub.LoadData(gpu_, data.data(), 4);
  ASSERT_TRUE(buf.ok());
  const size_t d2h_before = hub.bytes_device_to_host();
  auto converted = hub.EnsureFormat(gpu_, *buf, SdkFormat::kThrustVector, 4);
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(*converted, *buf) << "in-place transform keeps the buffer";
  EXPECT_EQ(hub.bytes_device_to_host(), d2h_before) << "no data movement";
  EXPECT_EQ(*manager_.device(gpu_)->BufferFormat(*buf),
            SdkFormat::kThrustVector);
}

TEST_F(HubTest, EnsureFormatFallsBackToRoundTrip) {
  DataTransferHub hub(&manager_, DataContainer::WithoutTransforms());
  std::vector<int32_t> data = {42};
  auto buf = hub.LoadData(gpu_, data.data(), 4);
  ASSERT_TRUE(buf.ok());
  const size_t d2h_before = hub.bytes_device_to_host();
  auto converted = hub.EnsureFormat(gpu_, *buf, SdkFormat::kThrustVector, 4);
  ASSERT_TRUE(converted.ok());
  EXPECT_GE(hub.bytes_device_to_host() - d2h_before, 4u)
      << "naive path retrieves the buffer to the host (Fig. 4)";
  int32_t got = 0;
  ASSERT_TRUE(manager_.device(gpu_)->RetrieveData(*converted, &got, 4, 0).ok());
  EXPECT_EQ(got, 42);
  EXPECT_EQ(*manager_.device(gpu_)->BufferFormat(*converted),
            SdkFormat::kThrustVector);
}

TEST_F(HubTest, EnsureFormatNoopWhenAlreadyTarget) {
  DataTransferHub hub(&manager_, DataContainer::WithoutTransforms());
  std::vector<int32_t> data = {1};
  auto buf = hub.LoadData(gpu_, data.data(), 4);
  ASSERT_TRUE(buf.ok());
  auto same = hub.EnsureFormat(gpu_, *buf, SdkFormat::kCudaDevPtr, 4);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*same, *buf);
}

TEST_F(HubTest, PrepareOutputBufferInitializesHashTables) {
  DataTransferHub hub(&manager_, DataContainer::WithDefaultTransforms());
  const size_t slots = 32;
  auto table = hub.PrepareOutputBuffer(gpu_, DataSemantic::kHashTable,
                                       HashTableLayout::BuildTableBytes(slots));
  ASSERT_TRUE(table.ok());
  std::vector<HashTableLayout::BuildSlot> got(slots);
  ASSERT_TRUE(manager_.device(gpu_)
                  ->RetrieveData(*table, got.data(),
                                 HashTableLayout::BuildTableBytes(slots), 0)
                  .ok());
  for (const auto& slot : got) {
    EXPECT_EQ(slot.key, HashTableLayout::kEmptyKey);
  }
}

TEST_F(HubTest, PrepareOutputBufferPinned) {
  DataTransferHub hub(&manager_, DataContainer::WithDefaultTransforms());
  const size_t pinned_before = manager_.device(gpu_)->pinned_arena().used();
  auto buf = hub.PrepareOutputBuffer(gpu_, DataSemantic::kNumeric, 1024,
                                     /*pinned=*/true);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(manager_.device(gpu_)->pinned_arena().used() - pinned_before,
            1024u);
}

// --- DataContainer (task layer) ---

TEST(DataContainer, DefaultTableAllowsAllPairs) {
  DataContainer dc = DataContainer::WithDefaultTransforms();
  EXPECT_TRUE(dc.CanTransform(SdkFormat::kCudaDevPtr, SdkFormat::kThrustVector));
  EXPECT_TRUE(
      dc.CanTransform(SdkFormat::kOpenClBuffer, SdkFormat::kBoostComputeVec));
  EXPECT_TRUE(dc.CanTransform(SdkFormat::kOpenClBuffer, SdkFormat::kCudaDevPtr));
}

TEST(DataContainer, RoutePlanning) {
  DataContainer dc;
  dc.AllowTransform(SdkFormat::kCudaDevPtr, SdkFormat::kThrustVector);
  EXPECT_EQ(dc.PlanRoute(SdkFormat::kCudaDevPtr, SdkFormat::kCudaDevPtr),
            DataContainer::Route::kNone);
  EXPECT_EQ(dc.PlanRoute(SdkFormat::kCudaDevPtr, SdkFormat::kThrustVector),
            DataContainer::Route::kTransform);
  EXPECT_EQ(dc.PlanRoute(SdkFormat::kThrustVector, SdkFormat::kCudaDevPtr),
            DataContainer::Route::kHostRoundTrip)
      << "transforms are directional";
}

TEST(DataContainer, AllowTransformIdempotent) {
  DataContainer dc;
  dc.AllowTransform(SdkFormat::kRaw, SdkFormat::kCudaDevPtr);
  dc.AllowTransform(SdkFormat::kRaw, SdkFormat::kCudaDevPtr);
  EXPECT_TRUE(dc.CanTransform(SdkFormat::kRaw, SdkFormat::kCudaDevPtr));
}

TEST(KernelContainer, CarriesRuntimeInfo) {
  bool ran = false;
  KernelContainer container(
      "custom", [&ran](KernelExecContext*) {
        ran = true;
        return Status::OK();
      },
      "__kernel void custom() {}");
  EXPECT_EQ(container.name(), "custom");
  EXPECT_TRUE(container.has_source());
  KernelSource source = container.ToKernelSource();
  EXPECT_EQ(source.source_text, "__kernel void custom() {}");
  ASSERT_TRUE(source.fn != nullptr);
  EXPECT_TRUE(source.fn(nullptr).ok());
  EXPECT_TRUE(ran);
}

TEST(KernelContainer, HandWrittenWithoutSource) {
  KernelContainer container("hand", [](KernelExecContext*) {
    return Status::OK();
  });
  EXPECT_FALSE(container.has_source())
      << "hand-written kernels need no runtime compilation";
}

}  // namespace
}  // namespace adamant
