// Behavioural tests of the query executor and the four execution models on
// small synthetic plans: correctness, chunk accounting, larger-than-memory
// behaviour, error propagation, cross-device routing, timing relations.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "device/device_manager.h"
#include "runtime/executor.h"
#include "runtime/primitive_graph.h"
#include "task/kernel_registry.h"

namespace adamant {
namespace {

ColumnPtr Iota(const std::string& name, int32_t n) {
  std::vector<int32_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return Column::FromVector(name, v);
}

/// sum of values < `limit` over an iota column — one pipeline:
/// filter -> materialize -> agg_block.
struct SumPlan {
  PrimitiveGraph graph;
  int agg = -1;

  explicit SumPlan(DeviceId device, int32_t n, int32_t limit,
                   double selectivity = 1.0) {
    NodeConfig fcfg;
    fcfg.cmp_op = CmpOp::kLt;
    fcfg.lo = limit;
    int f = graph.AddNode(PrimitiveKind::kFilterBitmap, device, fcfg);
    NodeConfig mcfg;
    mcfg.selectivity = selectivity;
    int m = graph.AddNode(PrimitiveKind::kMaterialize, device, mcfg);
    NodeConfig acfg;
    acfg.agg_op = AggOp::kSum;
    agg = graph.AddNode(PrimitiveKind::kAggBlock, device, acfg);
    auto col = Iota("v", n);
    EXPECT_TRUE(graph.ConnectScan(col, f, 0).ok());
    EXPECT_TRUE(graph.ConnectScan(col, m, 0).ok());
    EXPECT_TRUE(graph.Connect(f, 0, m, 1).ok());
    EXPECT_TRUE(graph.Connect(m, 0, agg, 0).ok());
  }
};

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto gpu = manager_.AddDriver(sim::DriverKind::kCudaGpu);
    auto cpu = manager_.AddDriver(sim::DriverKind::kOpenMpCpu);
    ASSERT_TRUE(gpu.ok() && cpu.ok());
    gpu_ = *gpu;
    cpu_ = *cpu;
    ASSERT_TRUE(BindStandardKernels(manager_.device(gpu_)).ok());
    ASSERT_TRUE(BindStandardKernels(manager_.device(cpu_)).ok());
  }

  DeviceManager manager_;
  DeviceId gpu_ = 0;
  DeviceId cpu_ = 0;
};

TEST_F(ExecutorTest, SumPlanAllModels) {
  const int32_t n = 1000, limit = 700;
  const int64_t expected = int64_t{699} * 700 / 2;
  for (auto model :
       {ExecutionModelKind::kOperatorAtATime, ExecutionModelKind::kChunked,
        ExecutionModelKind::kPipelined, ExecutionModelKind::kFourPhaseChunked,
        ExecutionModelKind::kFourPhasePipelined}) {
    SumPlan plan(gpu_, n, limit);
    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = 128;
    QueryExecutor executor(&manager_);
    auto exec = executor.Run(&plan.graph, options);
    ASSERT_TRUE(exec.ok()) << ExecutionModelName(model) << ": "
                           << exec.status().ToString();
    ASSERT_TRUE(exec->AggValue(plan.agg).ok());
    EXPECT_EQ(*exec->AggValue(plan.agg), expected) << ExecutionModelName(model);
  }
}

TEST_F(ExecutorTest, ChunkCountMatchesInput) {
  SumPlan plan(gpu_, 1000, 1000);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 300;
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&plan.graph, options);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->stats.chunks, 4u) << "ceil(1000/300)";
}

TEST_F(ExecutorTest, OaatRunsSingleChunk) {
  SumPlan plan(gpu_, 1000, 1000);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kOperatorAtATime;
  options.chunk_elems = 10;  // ignored by OAAT
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&plan.graph, options);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->stats.chunks, 1u);
}

TEST_F(ExecutorTest, ProgressPointersReachInputSize) {
  SumPlan plan(gpu_, 1000, 1000);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 256;
  QueryExecutor executor(&manager_);
  ASSERT_TRUE(executor.Run(&plan.graph, options).ok());
  for (const GraphEdge& edge : plan.graph.edges()) {
    if (!edge.is_scan()) continue;
    EXPECT_EQ(edge.fetched_until, 1000u);
    EXPECT_EQ(edge.processed_until, 1000u);
  }
}

// The paper's Section IV-A: OAAT cannot scale beyond device memory, chunked
// execution can.
TEST_F(ExecutorTest, LargerThanMemoryOaatFailsChunkedSucceeds) {
  // Inflate 4 KiB of actual data into ~40 GiB nominal (capacity is 11 GiB).
  manager_.SetDataScale(1e7);
  SumPlan plan(gpu_, 1000, 1000);
  QueryExecutor executor(&manager_);

  ExecutionOptions oaat;
  oaat.model = ExecutionModelKind::kOperatorAtATime;
  EXPECT_TRUE(executor.Run(&plan.graph, oaat).status().IsOutOfMemory());

  SumPlan chunked_plan(gpu_, 1000, 1000);
  ExecutionOptions chunked;
  chunked.model = ExecutionModelKind::kChunked;
  chunked.chunk_elems = size_t{1} << 25;  // nominal, divided by scale
  auto exec = executor.Run(&chunked_plan.graph, chunked);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*exec->AggValue(chunked_plan.agg), int64_t{999} * 1000 / 2);
  manager_.SetDataScale(1.0);
}

TEST_F(ExecutorTest, OomReleasesEverything) {
  manager_.SetDataScale(1e7);
  SumPlan plan(gpu_, 1000, 1000);
  QueryExecutor executor(&manager_);
  ExecutionOptions oaat;
  oaat.model = ExecutionModelKind::kOperatorAtATime;
  ASSERT_TRUE(executor.Run(&plan.graph, oaat).status().IsOutOfMemory());
  EXPECT_EQ(manager_.device(gpu_)->device_arena().used(), 0u)
      << "failed runs must not leak device memory";
  manager_.SetDataScale(1.0);
}

TEST_F(ExecutorTest, SelectivityUnderestimateSurfacesOverflow) {
  // Estimate 1% but everything matches: the materialize output overflows.
  SumPlan plan(gpu_, 10000, 10000, /*selectivity=*/0.01);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 10000;
  QueryExecutor executor(&manager_);
  EXPECT_TRUE(executor.Run(&plan.graph, options).status().IsExecutionError());
}

TEST_F(ExecutorTest, TerminalStreamingOutputCollected) {
  // A bare filter_position plan: per-chunk position lists come back.
  PrimitiveGraph graph;
  NodeConfig fcfg;
  fcfg.cmp_op = CmpOp::kGe;
  fcfg.lo = 900;
  int f = graph.AddNode(PrimitiveKind::kFilterPosition, gpu_, fcfg);
  ASSERT_TRUE(graph.ConnectScan(Iota("v", 1000), f, 0).ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 250;
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&graph, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto output = exec->Output(f);
  ASSERT_TRUE(output.ok());
  ASSERT_EQ((*output)->parts.size(), 4u);
  // Chunks 0-2 contain no matches; chunk 3 (rows 750..999) has 100.
  EXPECT_EQ((*output)->parts[0].count, 0);
  EXPECT_EQ((*output)->parts[3].count, 100);
  EXPECT_EQ((*output)->parts[3].base_row, 750u);
  const auto* positions =
      reinterpret_cast<const int32_t*>((*output)->parts[3].data.data());
  EXPECT_EQ(positions[0], 150) << "chunk-local position of row 900";
}

TEST_F(ExecutorTest, CrossDevicePipelineRoutesThroughHost) {
  // Materialize on the CPU feeding aggregation on the GPU.
  PrimitiveGraph graph;
  NodeConfig fcfg;
  fcfg.cmp_op = CmpOp::kLt;
  fcfg.lo = 500;
  int f = graph.AddNode(PrimitiveKind::kFilterBitmap, cpu_, fcfg);
  int m = graph.AddNode(PrimitiveKind::kMaterialize, cpu_, {});
  NodeConfig acfg;
  acfg.agg_op = AggOp::kSum;
  int agg = graph.AddNode(PrimitiveKind::kAggBlock, gpu_, acfg);
  auto col = Iota("v", 1000);
  ASSERT_TRUE(graph.ConnectScan(col, f, 0).ok());
  ASSERT_TRUE(graph.ConnectScan(col, m, 0).ok());
  ASSERT_TRUE(graph.Connect(f, 0, m, 1).ok());
  ASSERT_TRUE(graph.Connect(m, 0, agg, 0).ok());

  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 400;
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&graph, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*exec->AggValue(agg), int64_t{499} * 500 / 2);
  EXPECT_GT(exec->stats.bytes_d2h, 0u)
      << "cross-device edges round-trip through the host";
}

TEST_F(ExecutorTest, PipelinedNotSlowerThanChunked) {
  auto elapsed = [&](ExecutionModelKind model) {
    SumPlan plan(gpu_, 100000, 100000);
    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = 4096;
    QueryExecutor executor(&manager_);
    auto exec = executor.Run(&plan.graph, options);
    EXPECT_TRUE(exec.ok());
    return exec->stats.elapsed_us;
  };
  const double chunked = elapsed(ExecutionModelKind::kChunked);
  const double pipelined = elapsed(ExecutionModelKind::kPipelined);
  const double four_phase = elapsed(ExecutionModelKind::kFourPhaseChunked);
  EXPECT_LT(pipelined, chunked) << "overlap must help a transfer-bound plan";
  EXPECT_LT(four_phase, chunked) << "pinned transfers must help";
}

TEST_F(ExecutorTest, PipelineRingDepthBoundsOverlap) {
  // A single-column, transfer-dominated pipeline (nominal scaling makes the
  // chunk transfer outweigh the kernels). Depth 1: the lone staging slot
  // serializes the next transfer behind the previous chunk's last reader
  // (chunked-like). Depth 2+: copy/compute overlap returns. Results are
  // identical regardless. (Multi-column pipelines like Q6 already overlap
  // within their own transfer block, so depth barely moves them — see
  // bench_ablation's ring panel.)
  manager_.SetDataScale(1000.0);
  auto run = [&](size_t depth) {
    SumPlan plan(gpu_, 100000, 100000);
    ExecutionOptions options;
    options.model = ExecutionModelKind::kPipelined;
    options.chunk_elems = 4096 * 1000;  // nominal; 4096 actual per chunk
    options.pipeline_depth = depth;
    QueryExecutor executor(&manager_);
    auto exec = executor.Run(&plan.graph, options);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(*exec->AggValue(plan.agg), int64_t{99999} * 100000 / 2);
    return exec->stats.elapsed_us;
  };
  const double depth1 = run(1);
  const double depth2 = run(2);
  const double depth4 = run(4);
  const double unbounded = run(0);
  manager_.SetDataScale(1.0);
  EXPECT_GT(depth1, depth2 * 1.05) << "double buffering must beat one slot";
  // Past depth 2 the schedule is already fully overlapped; deeper rings only
  // add a few microseconds of staging allocations.
  EXPECT_NEAR(depth2, depth4, depth2 * 0.01);
  EXPECT_NEAR(depth4, unbounded, depth4 * 0.05)
      << "deeper rings approach the unbounded transfer thread";
}

TEST_F(ExecutorTest, RingReusesBuffersInsteadOfReallocating) {
  SumPlan plan(gpu_, 10000, 10000);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kPipelined;
  options.chunk_elems = 1000;
  options.pipeline_depth = 2;
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&plan.graph, options);
  ASSERT_TRUE(exec.ok());
  // 10 chunks, 1 distinct scan column: 2 staging allocations instead of 10.
  // (Intermediates are still allocated per chunk.)
  const auto& dev = exec->stats.devices[static_cast<size_t>(gpu_)];
  SumPlan unbounded_plan(gpu_, 10000, 10000);
  options.pipeline_depth = 0;
  auto unbounded = executor.Run(&unbounded_plan.graph, options);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_LT(dev.prepare_calls,
            unbounded->stats.devices[static_cast<size_t>(gpu_)].prepare_calls);
}

TEST_F(ExecutorTest, FourPhaseUsesPinnedMemory) {
  SumPlan plan(gpu_, 10000, 10000);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kFourPhaseChunked;
  options.chunk_elems = 1024;
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&plan.graph, options);
  ASSERT_TRUE(exec.ok());
  EXPECT_GT(exec->stats.devices[static_cast<size_t>(gpu_)].pinned_mem_high_water,
            0u);

  SumPlan plain(gpu_, 10000, 10000);
  options.model = ExecutionModelKind::kChunked;
  auto exec2 = executor.Run(&plain.graph, options);
  ASSERT_TRUE(exec2.ok());
  EXPECT_EQ(
      exec2->stats.devices[static_cast<size_t>(gpu_)].pinned_mem_high_water,
      0u);
}

TEST_F(ExecutorTest, StatsInternallyConsistent) {
  SumPlan plan(gpu_, 50000, 25000);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 8192;
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&plan.graph, options);
  ASSERT_TRUE(exec.ok());
  const QueryStats& stats = exec->stats;
  EXPECT_GT(stats.elapsed_us, 0);
  EXPECT_GT(stats.kernel_body_us, 0);
  EXPECT_LE(stats.kernel_body_us, stats.elapsed_us);
  const DeviceRunStats& dev = stats.devices[static_cast<size_t>(gpu_)];
  EXPECT_GE(dev.compute_busy_us, dev.kernel_body_us)
      << "engine busy time includes launch overhead";
  EXPECT_LE(dev.h2d_busy_us, stats.elapsed_us);
  EXPECT_GT(dev.execute_calls, 0u);
  EXPECT_GT(stats.bytes_h2d, 0u);
  EXPECT_GT(dev.device_mem_high_water, 0u);
}

TEST_F(ExecutorTest, SharedScanColumnTransferredOncePerChunk) {
  // SumPlan scans the same column into filter and materialize.
  SumPlan plan(gpu_, 1000, 1000);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 1000;
  QueryExecutor executor(&manager_);
  auto exec = executor.Run(&plan.graph, options);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->stats.bytes_h2d, 4000u)
      << "one 4-byte x 1000 transfer despite two scan edges";
}

TEST_F(ExecutorTest, PrefixSumChunkedRejectedOaatWorks) {
  auto build = [&](PrimitiveGraph* graph) {
    int p = graph->AddNode(PrimitiveKind::kPrefixSum, gpu_, {});
    ASSERT_TRUE(graph->ConnectScan(Iota("v", 100), p, 0).ok());
  };
  QueryExecutor executor(&manager_);
  {
    PrimitiveGraph graph;
    build(&graph);
    ExecutionOptions options;
    options.model = ExecutionModelKind::kChunked;
    options.chunk_elems = 10;
    EXPECT_TRUE(executor.Run(&graph, options).status().IsNotSupported());
  }
  {
    PrimitiveGraph graph;
    build(&graph);
    ExecutionOptions options;
    options.model = ExecutionModelKind::kOperatorAtATime;
    EXPECT_TRUE(executor.Run(&graph, options).ok());
  }
}

TEST_F(ExecutorTest, HashNodesRequireExpectedRows) {
  PrimitiveGraph graph;
  NodeConfig cfg;  // expected_build_rows left at 0
  int b = graph.AddNode(PrimitiveKind::kHashBuild, gpu_, cfg);
  ASSERT_TRUE(graph.ConnectScan(Iota("k", 10), b, 0).ok());
  QueryExecutor executor(&manager_);
  ExecutionOptions options;
  EXPECT_TRUE(executor.Run(&graph, options).status().IsInvalidArgument());
}

TEST_F(ExecutorTest, NullAndEmptyInputsRejected) {
  QueryExecutor executor(&manager_);
  EXPECT_TRUE(executor.Run(nullptr, {}).status().IsInvalidArgument());
  DeviceManager empty;
  QueryExecutor no_devices(&empty);
  PrimitiveGraph graph;
  graph.AddNode(PrimitiveKind::kMap, 0, {});
  EXPECT_TRUE(no_devices.Run(&graph, {}).status().IsInvalidArgument());
}

TEST_F(ExecutorTest, UnknownDeviceAnnotationFails) {
  SumPlan plan(/*device=*/42, 100, 100);
  QueryExecutor executor(&manager_);
  EXPECT_TRUE(executor.Run(&plan.graph, {}).status().IsNotFound());
}

TEST_F(ExecutorTest, RerunningSamePlanIsDeterministic) {
  SumPlan plan(gpu_, 5000, 2500);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kFourPhasePipelined;
  options.chunk_elems = 512;
  QueryExecutor executor(&manager_);
  auto first = executor.Run(&plan.graph, options);
  auto second = executor.Run(&plan.graph, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first->AggValue(plan.agg), *second->AggValue(plan.agg));
  EXPECT_DOUBLE_EQ(first->stats.elapsed_us, second->stats.elapsed_us)
      << "the simulation is bit-deterministic";
}

}  // namespace
}  // namespace adamant
