// Tests for the HeavyDB-style baseline model: residency/OOM behaviour and
// the cold-vs-hot timing relations of Fig. 11.

#include <gtest/gtest.h>

#include "adamant/adamant.h"

namespace adamant {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static const Catalog& SharedCatalog() {
    static const Catalog* const kCatalog = [] {
      tpch::TpchConfig config;
      config.scale_factor = 0.02;
      config.include_dimension_tables = false;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok());
      return new Catalog(**catalog);
    }();
    return *kCatalog;
  }

  // The paper's HeavyDB comparison runs at SF 100-140; the A100 setup is
  // the one with enough memory for Q4/Q6 in-place tables.
  void SetUpManager(double nominal_sf) {
    manager_ = std::make_unique<DeviceManager>(sim::HardwareSetup::kSetup2);
    manager_->SetDataScale(nominal_sf / 0.02);
    auto gpu = manager_->AddDriver(sim::DriverKind::kCudaGpu);
    ASSERT_TRUE(gpu.ok());
    gpu_ = *gpu;
    ASSERT_TRUE(BindStandardKernels(manager_->device(gpu_)).ok());
  }

  std::unique_ptr<DeviceManager> manager_;
  DeviceId gpu_ = 0;
};

TEST_F(BaselineTest, Q3OutOfMemoryAtSf100) {
  SetUpManager(100);
  auto bundle = plan::BuildQ3(SharedCatalog(), {}, gpu_);
  ASSERT_TRUE(bundle.ok());
  baseline::HeavyDbExecutor heavy(manager_.get(), gpu_);
  EXPECT_TRUE(heavy.Run(*bundle->graph, {}).status().IsOutOfMemory())
      << "the paper: Q3 cannot be executed at the given scale factors";
}

TEST_F(BaselineTest, Q4AndQ6RunAtSf100Through140) {
  for (double sf : {100.0, 120.0, 140.0}) {
    SetUpManager(sf);
    baseline::HeavyDbExecutor heavy(manager_.get(), gpu_);
    auto q4 = plan::BuildQ4(SharedCatalog(), {}, gpu_);
    auto q6 = plan::BuildQ6(SharedCatalog(), {}, gpu_);
    ASSERT_TRUE(q4.ok() && q6.ok());
    EXPECT_TRUE(heavy.Run(*q4->graph, {}).ok()) << "Q4 at SF " << sf;
    EXPECT_TRUE(heavy.Run(*q6->graph, {}).ok()) << "Q6 at SF " << sf;
  }
}

TEST_F(BaselineTest, ColdStartPaysFullTableTransfer) {
  SetUpManager(100);
  auto bundle = plan::BuildQ6(SharedCatalog(), {}, gpu_);
  ASSERT_TRUE(bundle.ok());
  baseline::HeavyDbExecutor heavy(manager_.get(), gpu_);
  auto cold = heavy.Run(*bundle->graph, {/*with_transfer=*/true});
  auto hot = heavy.Run(*bundle->graph, {/*with_transfer=*/false});
  ASSERT_TRUE(cold.ok() && hot.ok());
  EXPECT_GT(cold->transfer_us, 0);
  EXPECT_DOUBLE_EQ(hot->transfer_us, 0);
  EXPECT_DOUBLE_EQ(cold->compute_us, hot->compute_us);
  EXPECT_GT(cold->elapsed_us, 2 * hot->elapsed_us)
      << "full-table transfer dominates cold start (Fig. 11)";
}

TEST_F(BaselineTest, InPlaceComparableToAdamantChunked) {
  SetUpManager(100);
  auto bundle = plan::BuildQ6(SharedCatalog(), {}, gpu_);
  ASSERT_TRUE(bundle.ok());
  baseline::HeavyDbExecutor heavy(manager_.get(), gpu_);
  auto hot = heavy.Run(*bundle->graph, {/*with_transfer=*/false});
  ASSERT_TRUE(hot.ok());

  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  QueryExecutor executor(manager_.get());
  auto chunked = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(chunked.ok()) << chunked.status().ToString();

  const double ratio = chunked->stats.elapsed_us / hot->elapsed_us;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 3.0) << "in-place HeavyDB is comparable with chunked";
}

TEST_F(BaselineTest, AdamantBeatsColdStart) {
  SetUpManager(100);
  auto bundle = plan::BuildQ6(SharedCatalog(), {}, gpu_);
  ASSERT_TRUE(bundle.ok());
  baseline::HeavyDbExecutor heavy(manager_.get(), gpu_);
  auto cold = heavy.Run(*bundle->graph, {/*with_transfer=*/true});
  ASSERT_TRUE(cold.ok());

  ExecutionOptions options;
  options.model = ExecutionModelKind::kFourPhaseChunked;
  QueryExecutor executor(manager_.get());
  auto adamant = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(adamant.ok());
  EXPECT_GT(cold->elapsed_us / adamant->stats.elapsed_us, 2.0)
      << "ADAMANT transfers only the chunks of needed columns";
}

TEST_F(BaselineTest, ResidentBytesScaleWithSf) {
  SetUpManager(100);
  auto bundle = plan::BuildQ6(SharedCatalog(), {}, gpu_);
  ASSERT_TRUE(bundle.ok());
  baseline::HeavyDbExecutor heavy(manager_.get(), gpu_);
  auto at100 = heavy.Run(*bundle->graph, {});
  ASSERT_TRUE(at100.ok());
  SetUpManager(140);
  baseline::HeavyDbExecutor heavy140(manager_.get(), gpu_);
  auto at140 = heavy140.Run(*bundle->graph, {});
  ASSERT_TRUE(at140.ok());
  EXPECT_NEAR(static_cast<double>(at140->resident_bytes) /
                  static_cast<double>(at100->resident_bytes),
              1.4, 0.05);
}

}  // namespace
}  // namespace adamant
