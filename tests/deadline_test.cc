// Deadline / cancellation tests: the CancelToken carrier, cooperative
// unwinding through every execution model (ledger drains to zero, results
// stay bit-identical on re-run), the WorkerPool tile-claim cancel, the
// transfer hub's pre-transfer checks, and the service-layer SLO machinery —
// admission shedding, queue eviction, mid-run deadline cancellation, and
// the hung-device watchdog quarantining a stalled device exactly like a
// crasher.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "adamant/adamant.h"
#include "common/cancel.h"
#include "task/worker_pool.h"

namespace adamant {
namespace {

struct DeadlineFixture {
  std::shared_ptr<Catalog> catalog;

  static const DeadlineFixture& Get() {
    static const DeadlineFixture* const kFixture = [] {
      auto* fixture = new DeadlineFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

QuerySpec Q6Spec(const Catalog* catalog) {
  QuerySpec spec;
  spec.name = "Q6";
  spec.make_graph =
      [catalog](DeviceId device) -> Result<std::unique_ptr<PrimitiveGraph>> {
    ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                             plan::BuildQ6(*catalog, {}, device));
    return std::move(bundle.graph);
  };
  return spec;
}

/// Runs Q6 once on device 0 of `manager` and returns the revenue (or the
/// run's error). A fresh bundle per run: graphs are single-use.
Result<int64_t> RunQ6Once(DeviceManager* manager,
                          const ExecutionOptions& options) {
  const auto& fixture = DeadlineFixture::Get();
  ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                           plan::BuildQ6(*fixture.catalog, {}, 0));
  QueryExecutor executor(manager);
  ADAMANT_ASSIGN_OR_RETURN(QueryExecution exec,
                           executor.Run(bundle.graph.get(), options));
  return plan::ExtractQ6(bundle, exec);
}

constexpr ExecutionModelKind kAllModels[] = {
    ExecutionModelKind::kOperatorAtATime,
    ExecutionModelKind::kChunked,
    ExecutionModelKind::kPipelined,
    ExecutionModelKind::kFourPhaseChunked,
    ExecutionModelKind::kFourPhasePipelined,
    ExecutionModelKind::kDeviceParallel,
};

// --- CancelToken semantics ---------------------------------------------------

TEST(CancelTokenTest, FirstCauseWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());

  token.Cancel(CancelCause::kUser, "client hung up");
  token.Cancel(CancelCause::kWatchdog, "too slow", 3);  // loses the race
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), CancelCause::kUser);

  Status st = token.Check();
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_FALSE(st.IsTransient());
  EXPECT_NE(st.ToString().find("client hung up"), std::string::npos);
  // The losing watchdog's device tag must not leak in.
  EXPECT_EQ(st.device_id(), -1);
}

TEST(CancelTokenTest, LapsedDeadlineTripsLazilyOnCheck) {
  CancelToken token;
  token.SetDeadlineAfterMs(-1.0);  // already lapsed
  EXPECT_TRUE(token.has_deadline());
  EXPECT_LT(token.RemainingMs(), 0.0);
  // cancelled() is the cheap relaxed view: the lapse is unobserved so far.
  EXPECT_FALSE(token.cancelled());

  Status st = token.Check();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_FALSE(st.IsTransient());
  // The lazy trip is sticky: later observers agree.
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), CancelCause::kDeadline);
}

TEST(CancelTokenTest, UnlapsedDeadlineStaysOk) {
  CancelToken token;
  token.SetDeadlineAfterMs(60000.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_GT(token.RemainingMs(), 0.0);
  EXPECT_LE(token.RemainingMs(), 60000.0);
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, WatchdogCancelTagsTheBlamedDevice) {
  CancelToken token;
  token.Cancel(CancelCause::kWatchdog, "hung on gpu", 2);
  Status st = token.Check();
  EXPECT_TRUE(st.IsCancelled());
  // The tag is what routes the cancellation into DeviceHealth.
  EXPECT_EQ(st.device_id(), 2);
  EXPECT_EQ(token.cause(), CancelCause::kWatchdog);
}

TEST(CancelTokenTest, CauseNames) {
  EXPECT_STREQ(CancelCauseToString(CancelCause::kUser), "user");
  EXPECT_STREQ(CancelCauseToString(CancelCause::kDeadline), "deadline");
  EXPECT_STREQ(CancelCauseToString(CancelCause::kWatchdog), "watchdog");
}

// --- Executor: cancellation unwinds every model ------------------------------

TEST(ExecutorCancelTest, PreCancelledTokenUnwindsEveryModel) {
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0");
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  MemoryLedger ledger(&manager, 0);

  // Fault-free reference revenue.
  auto baseline = RunQ6Once(&manager, {});
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (ExecutionModelKind model : kAllModels) {
    SCOPED_TRACE(ExecutionModelName(model));
    CancelToken token;
    token.Cancel(CancelCause::kUser, "cancelled before dispatch");

    ExecutionOptions options;
    options.model = model;
    options.cancel_token = &token;
    options.memory_listener = &ledger;
    auto cancelled = RunQ6Once(&manager, options);
    ASSERT_FALSE(cancelled.ok());
    EXPECT_TRUE(cancelled.status().IsCancelled())
        << cancelled.status().ToString();
    // The unwind returned every charged byte.
    EXPECT_EQ(ledger.budget(0).live_bytes(), 0u);

    // The device is perfectly reusable: a clean run is bit-identical.
    ExecutionOptions clean;
    clean.model = model;
    auto rerun = RunQ6Once(&manager, clean);
    ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
    EXPECT_EQ(*rerun, *baseline);
  }
}

TEST(ExecutorCancelTest, LapsedDeadlineFailsRunAndDrainsLedger) {
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0");
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  MemoryLedger ledger(&manager, 0);

  CancelToken token;
  token.SetDeadlineAfterMs(0.0);  // lapses before the first check
  ExecutionOptions options;
  options.cancel_token = &token;
  options.memory_listener = &ledger;
  auto result = RunQ6Once(&manager, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_EQ(ledger.budget(0).live_bytes(), 0u);
}

// The seeded cancellation soak (ISSUE satellite): fire a user cancel at a
// randomized point of the run, across every execution model, and assert the
// two invariants that make cancellation safe — the ledger drains to zero no
// matter where the token tripped, and a surviving (or subsequent) run is
// bit-identical to the fault-free baseline.
TEST(ExecutorCancelTest, SeededCancellationPointSoak) {
  DeviceManager manager;
  // A small wall-clock stall on every Execute stretches each run to ~10 ms
  // of real time, so the randomized cancels land *inside* runs rather than
  // after them. The stall succeeds: surviving runs stay bit-identical.
  auto device =
      manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                        FaultPlan::StickyStall(InterfaceCall::kExecute, 2.0));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  MemoryLedger ledger(&manager, 0);

  auto baseline = RunQ6Once(&manager, {});
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::mt19937 rng(17);
  std::uniform_int_distribution<int> delay_us(0, 12000);
  size_t cancelled_runs = 0;
  for (ExecutionModelKind model : kAllModels) {
    SCOPED_TRACE(ExecutionModelName(model));
    for (int iter = 0; iter < 4; ++iter) {
      CancelToken token;
      std::thread canceller([&token, delay = delay_us(rng)] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
        token.Cancel(CancelCause::kUser, "soak cancel");
      });

      ExecutionOptions options;
      options.model = model;
      // Small chunks: many chunk boundaries = many cancellation points.
      options.chunk_elems = 2048;
      options.cancel_token = &token;
      options.memory_listener = &ledger;
      auto result = RunQ6Once(&manager, options);
      canceller.join();

      if (result.ok()) {
        // The cancel arrived too late: the run must be untouched.
        EXPECT_EQ(*result, *baseline) << "iter " << iter;
      } else {
        EXPECT_TRUE(result.status().IsCancelled())
            << result.status().ToString();
        ++cancelled_runs;
      }
      // Either way: no leaked charge survives onto the next run.
      ASSERT_EQ(ledger.budget(0).live_bytes(), 0u)
          << ExecutionModelName(model) << " iter " << iter;
    }

    // The model still produces the exact baseline after the soak.
    ExecutionOptions clean;
    clean.model = model;
    clean.chunk_elems = 2048;
    clean.memory_listener = &ledger;
    auto rerun = RunQ6Once(&manager, clean);
    ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
    EXPECT_EQ(*rerun, *baseline);
    EXPECT_EQ(ledger.budget(0).live_bytes(), 0u);
  }
  // The soak is meaningless if nothing was ever interrupted.
  EXPECT_GT(cancelled_runs, 0u);
}

// EXPLAIN ANALYZE under cancellation (ISSUE satellite): with operator-stats
// collection on and a stats sink attached, a deadline that trips mid-run
// must still leave a *finalized, internally consistent* OperatorStats tree
// in the sink — no double counting from partial chunks, no rows invented by
// the unwind — across every execution model.
TEST(ExecutorCancelTest, SeededDeadlineLeavesConsistentOperatorStats) {
  DeviceManager manager;
  // Stall each Execute so the randomized deadlines lapse *inside* runs.
  auto device =
      manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                        FaultPlan::StickyStall(InterfaceCall::kExecute, 2.0));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  MemoryLedger ledger(&manager, 0);

  std::mt19937 rng(23);
  std::uniform_real_distribution<double> deadline_ms(0.5, 12.0);
  size_t cancelled_runs = 0;
  for (ExecutionModelKind model : kAllModels) {
    SCOPED_TRACE(ExecutionModelName(model));
    for (int iter = 0; iter < 4; ++iter) {
      CancelToken token;
      token.SetDeadlineAfterMs(deadline_ms(rng));
      QueryStats sink;
      ExecutionOptions options;
      options.model = model;
      options.chunk_elems = 2048;
      options.cancel_token = &token;
      options.memory_listener = &ledger;
      options.collect_operator_stats = true;
      options.stats_sink = &sink;
      auto result = RunQ6Once(&manager, options);
      if (!result.ok()) {
        EXPECT_TRUE(result.status().IsDeadlineExceeded() ||
                    result.status().IsCancelled())
            << result.status().ToString();
        ++cancelled_runs;
      }
      ASSERT_EQ(ledger.budget(0).live_bytes(), 0u);

      // Finalized on every exit path: one entry per graph node, in node-id
      // order, each internally consistent however far the run got.
      const std::vector<obs::OperatorStats>& ops = sink.profile.operators;
      ASSERT_FALSE(ops.empty()) << "stats sink not finalized";
      uint64_t total_rows_in = 0;
      for (size_t i = 0; i < ops.size(); ++i) {
        const obs::OperatorStats& op = ops[i];
        SCOPED_TRACE(op.label);
        if (i > 0) {
          EXPECT_GT(op.node_id, ops[i - 1].node_id);
        }
        if (op.selective) {
          EXPECT_LE(op.rows_out, op.rows_in);
        }
        // Variant attribution never exceeds the measured wall total.
        EXPECT_LE(op.scalar_ms + op.parallel_ms + op.fused_ms,
                  op.kernel_ms + 1e-6);
        // Device slices sum exactly to the operator totals (merge performs
        // no double counting, partial chunks included).
        uint64_t slice_in = 0, slice_out = 0;
        size_t slice_launches = 0;
        for (const obs::OperatorDeviceSlice& slice : op.devices) {
          slice_in += slice.rows_in;
          slice_out += slice.rows_out;
          slice_launches += slice.launches;
        }
        EXPECT_EQ(slice_in, op.rows_in);
        EXPECT_EQ(slice_out, op.rows_out);
        EXPECT_EQ(slice_launches, op.launches);
        total_rows_in += op.rows_in;
      }
      if (result.ok()) {
        EXPECT_GT(total_rows_in, 0u);
      }
    }
  }
  // The soak is meaningless if no deadline ever landed mid-run.
  EXPECT_GT(cancelled_runs, 0u);
}

// --- WorkerPool: the tile-claim loop honors the token ------------------------

TEST(WorkerPoolCancelTest, PreCancelledTokenClaimsNoTiles) {
  CancelToken token;
  token.Cancel(CancelCause::kUser, "cancelled before the region");
  std::atomic<size_t> ran{0};
  Status st = task::WorkerPool::Global().ParallelTiles(
      32, 4, "cancel_test",
      [&ran](size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      &token);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_EQ(ran.load(), 0u);
}

TEST(WorkerPoolCancelTest, MidRegionCancelStopsFurtherClaims) {
  CancelToken token;
  std::atomic<size_t> ran{0};
  Status st = task::WorkerPool::Global().ParallelTiles(
      64, 4, "cancel_test",
      [&ran, &token](size_t) {
        if (ran.fetch_add(1, std::memory_order_relaxed) + 1 == 8) {
          token.Cancel(CancelCause::kUser, "enough");
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        return Status::OK();
      },
      &token);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // Claims stop once tripped; only tiles already in flight finish.
  EXPECT_GE(ran.load(), 8u);
  EXPECT_LT(ran.load(), 64u);
}

TEST(WorkerPoolCancelTest, TileErrorBeatsCancelDeterministically) {
  CancelToken token;
  Status st = task::WorkerPool::Global().ParallelTiles(
      16, 2, "cancel_test",
      [&token](size_t tile) -> Status {
        if (tile == 0) {
          token.Cancel(CancelCause::kUser, "racing cancel");
          return Status::ExecutionError("tile 0 failed first");
        }
        return Status::OK();
      },
      &token);
  // The lowest failing tile's error wins over the (sentinel-index) cancel.
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(st.IsCancelled()) << st.ToString();
  EXPECT_NE(st.ToString().find("tile 0 failed first"), std::string::npos);
}

// --- Transfer hub: tokens stop transfers before bytes move -------------------

TEST(TransferHubCancelTest, CancelledTokenStopsLoads) {
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0");
  ASSERT_TRUE(device.ok());

  auto column = std::make_shared<Column>("c", ElementType::kInt32);
  column->Resize(32);
  for (int i = 0; i < 32; ++i) column->mutable_data<int32_t>()[i] = i;

  DataTransferHub hub(&manager, DataContainer::WithDefaultTransforms());
  CancelToken token;
  hub.set_cancel_token(&token);

  // Armed but untripped: loads pass.
  auto ok_load = hub.LoadColumnChunk(0, column, 0, 32, sizeof(int32_t));
  ASSERT_TRUE(ok_load.ok()) << ok_load.status().ToString();

  token.Cancel(CancelCause::kUser, "stop the transfer");
  auto cancelled = hub.LoadColumnChunk(0, column, 0, 32, sizeof(int32_t));
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled())
      << cancelled.status().ToString();
}

// --- Profile: cancelled runs are marked --------------------------------------

TEST(ProfileCancelTest, CancelMarksSerializeToJson) {
  obs::QueryProfile profile;
  profile.collected = true;
  profile.cancelled_cause = "deadline";
  obs::PipelineProfile pipeline;
  pipeline.index = 0;
  pipeline.cancelled = true;
  profile.pipelines.push_back(pipeline);

  const std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"cancelled\":\"deadline\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cancelled\":true"), std::string::npos) << json;
}

// --- Service: admission shedding ---------------------------------------------

TEST(ServiceDeadlineTest, AdmissionShedsUnmeetableDeadline) {
  const auto& fixture = DeadlineFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  std::string json;
  {
    ServiceConfig config;
    config.workers = 1;
    QueryService service(&manager, config);

    QuerySpec spec = Q6Spec(fixture.catalog.get());
    // Far below the prediction floor (min_predicted_ms = 5): unmeetable.
    spec.deadline_ms = 0.01;
    auto ticket = service.Submit(std::move(spec));
    ASSERT_FALSE(ticket.ok());
    EXPECT_TRUE(ticket.status().IsDeadlineExceeded())
        << ticket.status().ToString();
    // Shedding is deliberate back-pressure, not a transient hiccup.
    EXPECT_FALSE(ticket.status().IsTransient());

    ServiceStats stats = service.GetStats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.admitted, 0u);
    json = recorder.ExportChromeJson();
  }
  recorder.Disable();
  EXPECT_NE(json.find("\"name\":\"shed\""), std::string::npos);
}

TEST(ServiceDeadlineTest, GenerousDeadlineAdmitsAndRecordsSlack) {
  const auto& fixture = DeadlineFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  QueryService service(&manager, config);

  QuerySpec spec = Q6Spec(fixture.catalog.get());
  spec.deadline_ms = 60000.0;
  auto ticket = service.Submit(std::move(spec));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  ASSERT_TRUE((*ticket)->Wait().ok());
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  // The met deadline left its margin in the slack histogram.
  const std::string text = service.metrics().ToPrometheusText();
  EXPECT_NE(text.find("adamant_service_deadline_slack_ms"), std::string::npos);
}

// --- Service: queue eviction of lapsed deadlines -----------------------------

TEST(ServiceDeadlineTest, LapsedQueuedQueryIsEvicted) {
  const auto& fixture = DeadlineFixture::Get();
  DeviceManager manager;
  // Every Execute stalls 60 ms (wall clock) but succeeds: the single worker
  // is pinned long enough for the queued query's deadline to lapse.
  auto device =
      manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                        FaultPlan::StickyStall(InterfaceCall::kExecute, 60.0));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  std::string json;
  {
    ServiceConfig config;
    config.workers = 1;
    QueryService service(&manager, config);

    auto slow = service.Submit(Q6Spec(fixture.catalog.get()));
    ASSERT_TRUE(slow.ok());

    QuerySpec doomed = Q6Spec(fixture.catalog.get());
    doomed.deadline_ms = 20.0;  // lapses while queued behind the stalled run
    auto evicted = service.Submit(std::move(doomed));
    ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();

    const Result<QueryExecution>& evicted_result = (*evicted)->Wait();
    ASSERT_FALSE(evicted_result.ok());
    EXPECT_TRUE(evicted_result.status().IsDeadlineExceeded())
        << evicted_result.status().ToString();
    // It never dispatched: eviction happened in the queue.
    EXPECT_EQ((*evicted)->placed_device(), -1);

    EXPECT_TRUE((*slow)->Wait().ok());
    service.Drain();

    ServiceStats stats = service.GetStats();
    EXPECT_EQ(stats.deadline_evictions, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
    json = recorder.ExportChromeJson();
  }
  recorder.Disable();
  EXPECT_NE(json.find("\"name\":\"shed:evict\""), std::string::npos);
}

// --- Service: a deadline lapsing mid-run cancels the run ---------------------

TEST(ServiceDeadlineTest, MidRunDeadlineCancelsWithoutRetry) {
  const auto& fixture = DeadlineFixture::Get();
  DeviceManager manager;
  auto device =
      manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                        FaultPlan::StickyStall(InterfaceCall::kExecute, 200.0));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  config.retry.max_attempts = 5;
  QueryService service(&manager, config);

  QuerySpec spec = Q6Spec(fixture.catalog.get());
  spec.deadline_ms = 30.0;  // admitted (predicted ~5 ms), lapses in the stall
  auto ticket = service.Submit(std::move(spec));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();

  const Result<QueryExecution>& result = (*ticket)->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // A missed deadline is final: retrying cannot un-miss it.
  EXPECT_EQ((*ticket)->attempts(), 1u);
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
}

// --- Service: a pre-cancelled client token is final --------------------------

TEST(ServiceDeadlineTest, ClientCancelMidRunIsFinalNoRetry) {
  const auto& fixture = DeadlineFixture::Get();
  DeviceManager manager;
  auto device =
      manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                        FaultPlan::StickyStall(InterfaceCall::kExecute, 200.0));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  config.retry.max_attempts = 5;
  QueryService service(&manager, config);

  CancelToken token;
  QuerySpec spec = Q6Spec(fixture.catalog.get());
  spec.options.cancel_token = &token;
  auto ticket = service.Submit(std::move(spec));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();

  // The idle worker dispatches immediately and hangs in the 200 ms stall;
  // the client hangs up 50 ms in.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.Cancel(CancelCause::kUser, "client went away");

  const Result<QueryExecution>& result = (*ticket)->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  // A user cancel is final: no retry may resurrect the query.
  EXPECT_EQ((*ticket)->attempts(), 1u);
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
}

// A client token that trips while the query is still queued evicts it
// without a dispatch: zero attempts, and the ticket fails with the token's
// own cancel status.
TEST(ServiceDeadlineTest, ClientCancelWhileQueuedEvicts) {
  const auto& fixture = DeadlineFixture::Get();
  DeviceManager manager;
  auto device =
      manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                        FaultPlan::StickyStall(InterfaceCall::kExecute, 60.0));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  QueryService service(&manager, config);

  // Pin the single worker behind a stalled run...
  auto slow = service.Submit(Q6Spec(fixture.catalog.get()));
  ASSERT_TRUE(slow.ok());

  // ...then queue a query whose client token is already dead.
  CancelToken token;
  token.Cancel(CancelCause::kUser, "cancelled while queued");
  QuerySpec spec = Q6Spec(fixture.catalog.get());
  spec.options.cancel_token = &token;
  auto queued = service.Submit(std::move(spec));
  ASSERT_TRUE(queued.ok()) << queued.status().ToString();

  const Result<QueryExecution>& result = (*queued)->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ((*queued)->attempts(), 0u);       // never dispatched
  EXPECT_EQ((*queued)->placed_device(), -1);

  EXPECT_TRUE((*slow)->Wait().ok());
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.deadline_evictions, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
}

// --- The headline acceptance test: watchdog vs a stalled device --------------

// A sticky wall-clock stall on gpu.0's Execute makes every run there hang far
// past its predicted cost. The watchdog must cancel the run, blame the device
// (quarantine, exactly like a crasher), and the retry on the healthy sibling
// must produce the bit-identical result.
TEST(ServiceDeadlineTest, WatchdogCancelsStalledDeviceRetryMatchesBaseline) {
  const auto& fixture = DeadlineFixture::Get();

  // Fault-free reference revenue on a clean manager.
  DeviceManager clean;
  auto clean_dev = clean.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(clean_dev.ok());
  ASSERT_TRUE(BindStandardKernels(clean.device(*clean_dev)).ok());
  auto q6_bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(q6_bundle.ok());
  QueryExecutor executor(&clean);
  auto clean_exec = executor.Run(q6_bundle->graph.get(), {});
  ASSERT_TRUE(clean_exec.ok());
  auto baseline = plan::ExtractQ6(*q6_bundle, *clean_exec);
  ASSERT_TRUE(baseline.ok());

  DeviceManager manager;
  // gpu.0 stalls 250 ms on every Execute, forever; gpu.1 is healthy.
  auto stalled =
      manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                        FaultPlan::StickyStall(InterfaceCall::kExecute, 250.0));
  auto healthy = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.1");
  ASSERT_TRUE(stalled.ok() && healthy.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*stalled)).ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*healthy)).ok());

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  std::string json;
  {
    ServiceConfig config;
    config.workers = 1;
    config.retry.max_attempts = 5;
    // Budget = max(3 x predicted, 50 ms) << the 250 ms stall.
    config.slo.watchdog_factor = 3.0;
    config.health.quarantine_threshold = 1;
    config.health.probe_cooldown_ms = 60000.0;  // no probe during the test
    QueryService service(&manager, config);

    QuerySpec spec = Q6Spec(fixture.catalog.get());
    spec.deadline_ms = 60000.0;  // generous: the watchdog, not the deadline
    auto ticket = service.Submit(std::move(spec));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();

    const Result<QueryExecution>& result = (*ticket)->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Attempt 1 hung on gpu.0 and was cancelled; attempt 2 ran on gpu.1.
    EXPECT_EQ((*ticket)->attempts(), 2u);
    EXPECT_EQ((*ticket)->placed_device(), *healthy);
    auto revenue = plan::ExtractQ6(*q6_bundle, *result);
    ASSERT_TRUE(revenue.ok());
    EXPECT_EQ(*revenue, *baseline);
    service.Drain();

    ServiceStats stats = service.GetStats();
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GE(stats.watchdog_fires, 1u);
    EXPECT_GE(stats.cancelled, 1u);
    EXPECT_GE(stats.retries, 1u);
    // The chronic straggler took the same health hit as a crasher.
    EXPECT_GE(stats.quarantines, 1u);
    EXPECT_TRUE(stats.devices[0].quarantined);
    EXPECT_FALSE(stats.devices[1].quarantined);
    // Both unwinds were clean.
    EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
    EXPECT_EQ(service.ledger().budget(1).live_bytes(), 0u);
    json = recorder.ExportChromeJson();
  }
  recorder.Disable();

  EXPECT_NE(json.find("\"name\":\"watchdog_fire\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cancel\""), std::string::npos);
  obs::TraceCheckResult check = obs::ValidateChromeTrace(json);
  EXPECT_TRUE(check.ok) << check.Summary();
}

// --- Service: seeded cancellation soak stays deterministic -------------------

// Mix deadlined and undeadlined queries under a single worker with a seeded
// submission order; some miss their deadline mid-run (stall), the rest
// complete. Every completion must be bit-identical to the baseline and both
// runs of the same seed must agree on every counter.
TEST(ServiceDeadlineTest, SeededDeadlineSoakIsDeterministic) {
  const auto& fixture = DeadlineFixture::Get();

  DeviceManager clean;
  auto clean_dev = clean.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(clean_dev.ok());
  ASSERT_TRUE(BindStandardKernels(clean.device(*clean_dev)).ok());
  auto q6_bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(q6_bundle.ok());
  QueryExecutor executor(&clean);
  auto clean_exec = executor.Run(q6_bundle->graph.get(), {});
  ASSERT_TRUE(clean_exec.ok());
  auto baseline = plan::ExtractQ6(*q6_bundle, *clean_exec);
  ASSERT_TRUE(baseline.ok());

  auto run_once = [&]() {
    DeviceManager manager;
    // Every Execute stalls 30 ms: queries with the 25 ms deadline always
    // miss it (mid-run before calibration, shed at admission after), while
    // undeadlined queries complete — slowly, but bit-identically.
    auto device = manager.AddDriver(
        sim::DriverKind::kCudaGpu, "gpu.0",
        FaultPlan::StickyStall(InterfaceCall::kExecute, 30.0));
    ADAMANT_CHECK(device.ok());
    ADAMANT_CHECK(BindStandardKernels(manager.device(*device)).ok());

    ServiceConfig config;
    config.workers = 1;  // one worker + sequential waits = one call order
    QueryService service(&manager, config);

    std::mt19937 rng(23);
    std::uniform_int_distribution<int> coin(0, 1);
    size_t matched = 0;
    size_t missed = 0;
    for (int i = 0; i < 12; ++i) {
      QuerySpec spec = Q6Spec(fixture.catalog.get());
      if (coin(rng) == 1) spec.deadline_ms = 25.0;
      auto ticket = service.Submit(std::move(spec));
      if (!ticket.ok()) {
        // Shed at admission: once calibration has seen a (stalled) run, the
        // predicted cost alone exceeds the deadline.
        EXPECT_TRUE(ticket.status().IsDeadlineExceeded())
            << ticket.status().ToString();
        ++missed;
        continue;
      }
      const Result<QueryExecution>& result = (*ticket)->Wait();
      if (result.ok()) {
        auto revenue = plan::ExtractQ6(*q6_bundle, *result);
        ADAMANT_CHECK(revenue.ok());
        EXPECT_EQ(*revenue, *baseline) << "query " << i;
        ++matched;
      } else {
        EXPECT_TRUE(result.status().IsDeadlineExceeded())
            << result.status().ToString();
        ++missed;
      }
      EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u) << "query " << i;
    }
    service.Drain();
    ServiceStats stats = service.GetStats();
    EXPECT_EQ(stats.completed, matched);
    EXPECT_EQ(stats.failed + stats.shed, missed);
    return stats;
  };

  const ServiceStats a = run_once();
  const ServiceStats b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.cancelled, b.cancelled);
  // The soak must exercise both outcomes to mean anything.
  EXPECT_GT(a.completed, 0u);
  EXPECT_GT(a.cancelled + a.shed, 0u);
}

}  // namespace
}  // namespace adamant
