// End-to-end smoke: generate TPC-H, run Q6 on the CUDA driver under every
// execution model, compare against the scalar reference.

#include <gtest/gtest.h>

#include "adamant/adamant.h"

namespace adamant {
namespace {

TEST(Smoke, Q6AllModels) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  config.include_dimension_tables = false;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  tpch::Q6Params params;
  auto expected = tpch::Q6Reference(**catalog, params);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok()) << gpu.status().ToString();
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());

  for (ExecutionModelKind model :
       {ExecutionModelKind::kOperatorAtATime, ExecutionModelKind::kChunked,
        ExecutionModelKind::kPipelined, ExecutionModelKind::kFourPhaseChunked,
        ExecutionModelKind::kFourPhasePipelined}) {
    auto bundle = plan::BuildQ6(**catalog, params, *gpu);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = 1024;  // force many chunks at this tiny scale

    QueryExecutor executor(&manager);
    auto exec = executor.Run(bundle->graph.get(), options);
    ASSERT_TRUE(exec.ok()) << ExecutionModelName(model) << ": "
                           << exec.status().ToString();
    auto revenue = plan::ExtractQ6(*bundle, *exec);
    ASSERT_TRUE(revenue.ok()) << revenue.status().ToString();
    EXPECT_EQ(*revenue, *expected) << ExecutionModelName(model);
    EXPECT_GT(exec->stats.elapsed_us, 0) << ExecutionModelName(model);
  }
}

}  // namespace
}  // namespace adamant
