// Degenerate-input edge cases: empty filter results, zero-row streams
// flowing through whole pipelines, single-element inputs, chunk boundaries
// at exact multiples, and empty hash tables.

#include <gtest/gtest.h>

#include <numeric>

#include "adamant/adamant.h"
#include "task/hash_table.h"

namespace adamant {
namespace {

struct Rig {
  DeviceManager manager;
  DeviceId gpu = 0;

  Rig() {
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
    ADAMANT_CHECK(device.ok());
    gpu = *device;
    ADAMANT_CHECK(BindStandardKernels(manager.device(gpu)).ok());
  }

  Result<QueryExecution> Run(PrimitiveGraph* graph, size_t chunk,
                             ExecutionModelKind model =
                                 ExecutionModelKind::kChunked) {
    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = chunk;
    QueryExecutor executor(&manager);
    return executor.Run(graph, options);
  }
};

/// filter(v < limit) -> materialize -> sum over an iota column.
struct SumPlan {
  PrimitiveGraph graph;
  int agg = -1;

  SumPlan(DeviceId device, int32_t n, int32_t limit) {
    std::vector<int32_t> values(static_cast<size_t>(n));
    std::iota(values.begin(), values.end(), 0);
    auto col = Column::FromVector("v", values);
    NodeConfig fcfg;
    fcfg.cmp_op = CmpOp::kLt;
    fcfg.lo = limit;
    int f = graph.AddNode(PrimitiveKind::kFilterBitmap, device, fcfg);
    int m = graph.AddNode(PrimitiveKind::kMaterialize, device, {});
    NodeConfig acfg;
    acfg.agg_op = AggOp::kSum;
    agg = graph.AddNode(PrimitiveKind::kAggBlock, device, acfg);
    EXPECT_TRUE(graph.ConnectScan(col, f, 0).ok());
    EXPECT_TRUE(graph.ConnectScan(col, m, 0).ok());
    EXPECT_TRUE(graph.Connect(f, 0, m, 1).ok());
    EXPECT_TRUE(graph.Connect(m, 0, agg, 0).ok());
  }
};

TEST(EdgeCases, NoRowSurvivesTheFilter) {
  Rig rig;
  for (auto model :
       {ExecutionModelKind::kOperatorAtATime, ExecutionModelKind::kChunked,
        ExecutionModelKind::kFourPhasePipelined}) {
    SumPlan plan(rig.gpu, 1000, /*limit=*/0);  // nothing matches
    auto exec = rig.Run(&plan.graph, 128, model);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_EQ(*exec->AggValue(plan.agg), 0) << ExecutionModelName(model);
  }
}

TEST(EdgeCases, SingleRowInput) {
  Rig rig;
  SumPlan plan(rig.gpu, 1, 10);
  auto exec = rig.Run(&plan.graph, 128);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(*exec->AggValue(plan.agg), 0);  // the single value is 0
  EXPECT_EQ(exec->stats.chunks, 1u);
}

TEST(EdgeCases, ChunkExactlyDividesInput) {
  Rig rig;
  SumPlan plan(rig.gpu, 1024, 1024);
  auto exec = rig.Run(&plan.graph, 256);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->stats.chunks, 4u);
  EXPECT_EQ(*exec->AggValue(plan.agg), int64_t{1023} * 1024 / 2);
}

TEST(EdgeCases, ChunkLargerThanInput) {
  Rig rig;
  SumPlan plan(rig.gpu, 100, 100);
  auto exec = rig.Run(&plan.graph, 1 << 20);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->stats.chunks, 1u);
  EXPECT_EQ(*exec->AggValue(plan.agg), int64_t{99} * 100 / 2);
}

TEST(EdgeCases, ChunkOfOneElement) {
  Rig rig;
  SumPlan plan(rig.gpu, 37, 37);
  auto exec = rig.Run(&plan.graph, 1);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->stats.chunks, 37u);
  EXPECT_EQ(*exec->AggValue(plan.agg), int64_t{36} * 37 / 2);
}

TEST(EdgeCases, ProbeAgainstEmptyHashTable) {
  // Build side's filter rejects everything: the table stays empty and every
  // probe misses; downstream aggregation sees zero rows.
  Rig rig;
  std::vector<int32_t> build_keys(100), probe_keys(200);
  std::iota(build_keys.begin(), build_keys.end(), 1);
  std::iota(probe_keys.begin(), probe_keys.end(), 1);

  PrimitiveGraph graph;
  NodeConfig reject;
  reject.cmp_op = CmpOp::kLt;
  reject.lo = -1000;  // nothing matches
  int f = graph.AddNode(PrimitiveKind::kFilterBitmap, rig.gpu, reject);
  int m = graph.AddNode(PrimitiveKind::kMaterialize, rig.gpu, {});
  NodeConfig build_cfg;
  build_cfg.expected_build_rows = 100;
  int build = graph.AddNode(PrimitiveKind::kHashBuild, rig.gpu, build_cfg);
  NodeConfig probe_cfg;
  int probe = graph.AddNode(PrimitiveKind::kHashProbe, rig.gpu, probe_cfg);
  NodeConfig agg_cfg;
  agg_cfg.agg_op = AggOp::kCount;
  agg_cfg.expected_build_rows = 16;
  agg_cfg.build_rows_scale_with_data = false;
  int agg = graph.AddNode(PrimitiveKind::kHashAgg, rig.gpu, agg_cfg);

  auto bcol = Column::FromVector("b", build_keys);
  auto pcol = Column::FromVector("p", probe_keys);
  ASSERT_TRUE(graph.ConnectScan(bcol, f, 0).ok());
  ASSERT_TRUE(graph.ConnectScan(bcol, m, 0).ok());
  ASSERT_TRUE(graph.Connect(f, 0, m, 1).ok());
  ASSERT_TRUE(graph.Connect(m, 0, build, 0).ok());
  ASSERT_TRUE(graph.ConnectScan(pcol, probe, 0).ok());
  ASSERT_TRUE(graph.Connect(build, 0, probe, 1).ok());
  ASSERT_TRUE(graph.Connect(probe, 1, agg, 0).ok());

  auto exec = rig.Run(&graph, 64);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto groups = exec->GroupResults(agg);
  ASSERT_TRUE(groups.ok());
  EXPECT_TRUE(groups->empty());
}

TEST(EdgeCases, TerminalFilterWithNoMatchesYieldsEmptyParts) {
  Rig rig;
  std::vector<int32_t> values(500, 7);
  PrimitiveGraph graph;
  NodeConfig fcfg;
  fcfg.cmp_op = CmpOp::kEq;
  fcfg.lo = 9;  // never
  int f = graph.AddNode(PrimitiveKind::kFilterPosition, rig.gpu, fcfg);
  ASSERT_TRUE(graph.ConnectScan(Column::FromVector("v", values), f, 0).ok());
  auto exec = rig.Run(&graph, 100);
  ASSERT_TRUE(exec.ok());
  auto output = exec->Output(f);
  ASSERT_TRUE(output.ok());
  ASSERT_EQ((*output)->parts.size(), 5u);
  for (const auto& part : (*output)->parts) {
    EXPECT_EQ(part.count, 0);
    EXPECT_TRUE(part.data.empty());
  }
}

TEST(EdgeCases, TinyTpchScaleStillConsistent) {
  // The smallest possible catalog (a handful of rows everywhere) must agree
  // with the reference on all queries.
  tpch::TpchConfig config;
  config.scale_factor = 1e-5;  // 1-2 customers, a few orders
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());
  Rig rig;
  auto bundle = plan::BuildQ6(**catalog, {}, rig.gpu);
  ASSERT_TRUE(bundle.ok());
  auto exec = rig.Run(bundle->graph.get(), 16);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*plan::ExtractQ6(*bundle, *exec),
            *tpch::Q6Reference(**catalog, {}));

  auto q4 = plan::BuildQ4(**catalog, {}, rig.gpu);
  ASSERT_TRUE(q4.ok());
  auto exec4 = rig.Run(q4->graph.get(), 16);
  ASSERT_TRUE(exec4.ok()) << exec4.status().ToString();
  EXPECT_EQ(*plan::ExtractQ4(*q4, *exec4), *tpch::Q4Reference(**catalog, {}));
}

TEST(EdgeCases, MinMaxAggregatesOverNegativeValues) {
  Rig rig;
  std::vector<int32_t> values = {-5, 3, -9, 0, 7, -1};
  for (auto [op, want] : std::vector<std::pair<AggOp, int64_t>>{
           {AggOp::kMin, -9}, {AggOp::kMax, 7}}) {
    PrimitiveGraph graph;
    NodeConfig acfg;
    acfg.agg_op = op;
    int agg = graph.AddNode(PrimitiveKind::kAggBlock, rig.gpu, acfg);
    ASSERT_TRUE(
        graph.ConnectScan(Column::FromVector("v", values), agg, 0).ok());
    // Chunked: the identity re-initialization across chunks must not leak
    // into the result (min of a later chunk vs earlier accumulator).
    auto exec = rig.Run(&graph, 2);
    ASSERT_TRUE(exec.ok());
    EXPECT_EQ(*exec->AggValue(agg), want);
  }
}

}  // namespace
}  // namespace adamant
