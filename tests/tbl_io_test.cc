// Tests for dbgen-style .tbl import/export: parsing, encodings, error
// handling, round trips, and query consistency on imported data.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "adamant/adamant.h"
#include "storage/tbl_io.h"
#include "tpch/tbl_schemas.h"

namespace adamant {
namespace {

using K = TblColumnSpec::Kind;

/// Temp-directory scratch file, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("/tmp/adamant_tbl_test_" + name) {}
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }
  void Write(const std::string& content) const {
    std::ofstream out(path_);
    out << content;
  }

 private:
  std::string path_;
};

TEST(TblIo, ParsesAllEncodings) {
  ScratchFile file("encodings.tbl");
  file.Write(
      "1|ignored|1234.56|0.06|1995-03-15|MAIL|\n"
      "2|ignored|-7.05|0.10|1992-01-01|SHIP|\n");
  std::vector<TblColumnSpec> specs = {
      {"id", K::kInt32},   {"junk", K::kSkip}, {"price", K::kMoney},
      {"disc", K::kPct},   {"day", K::kDate},  {"mode", K::kDict}};
  auto table = ReadTblFile(file.path(), "t", specs);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->num_columns(), 5u) << "skip column dropped";
  EXPECT_EQ((*(*table)->GetColumn("id"))->Value<int32_t>(1), 2);
  EXPECT_EQ((*(*table)->GetColumn("price"))->Value<int64_t>(0), 123456);
  EXPECT_EQ((*(*table)->GetColumn("price"))->Value<int64_t>(1), -705);
  EXPECT_EQ((*(*table)->GetColumn("disc"))->Value<int32_t>(0), 6);
  EXPECT_EQ((*(*table)->GetColumn("disc"))->Value<int32_t>(1), 10);
  EXPECT_EQ((*(*table)->GetColumn("day"))->Value<int32_t>(0),
            Date::FromYmd(1995, 3, 15).days());
  const StringDictionary* dict = (*table)->FindDictionary("mode");
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict->GetString(
                (*(*table)->GetColumn("mode"))->Value<int32_t>(0)),
            "MAIL");
  EXPECT_EQ(dict->GetString(
                (*(*table)->GetColumn("mode"))->Value<int32_t>(1)),
            "SHIP");
}

TEST(TblIo, ErrorsCarryRowNumbers) {
  ScratchFile file("bad.tbl");
  file.Write("1|10.00|\n2|not-a-number|\n");
  std::vector<TblColumnSpec> specs = {{"id", K::kInt32}, {"v", K::kMoney}};
  auto table = ReadTblFile(file.path(), "t", specs);
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsInvalidArgument());
  EXPECT_NE(table.status().message().find("row 2"), std::string::npos);
}

TEST(TblIo, MissingFieldsRejected) {
  ScratchFile file("short.tbl");
  file.Write("1|\n");
  std::vector<TblColumnSpec> specs = {{"a", K::kInt32}, {"b", K::kInt32}};
  EXPECT_TRUE(
      ReadTblFile(file.path(), "t", specs).status().IsInvalidArgument());
}

TEST(TblIo, MissingFileIsIoError) {
  EXPECT_TRUE(ReadTblFile("/nonexistent/nope.tbl", "t", {{"a", K::kInt32}})
                  .status()
                  .IsIOError());
}

TEST(TblIo, MalformedDateRejected) {
  ScratchFile file("baddate.tbl");
  file.Write("1995-13-40|\n");
  EXPECT_TRUE(ReadTblFile(file.path(), "t", {{"d", K::kDate}})
                  .status()
                  .IsInvalidArgument());
}

TEST(TblIo, RoundTripPreservesValues) {
  // Generate lineitem, export, re-import with a matching spec, compare.
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  config.include_dimension_tables = false;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());
  auto lineitem = *(*catalog)->GetTable("lineitem");

  std::vector<TblColumnSpec> specs = {
      {"l_orderkey", K::kInt32},   {"l_quantity", K::kInt32},
      {"l_extendedprice", K::kMoney}, {"l_discount", K::kPct},
      {"l_returnflag", K::kDict},  {"l_shipdate", K::kDate}};
  ScratchFile file("roundtrip.tbl");
  ASSERT_TRUE(WriteTblFile(*lineitem, file.path(), specs).ok());
  auto loaded = ReadTblFile(file.path(), "lineitem", specs);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_rows(), lineitem->num_rows());

  for (const auto& spec : specs) {
    auto original = *lineitem->GetColumn(spec.name);
    auto round = *(*loaded)->GetColumn(spec.name);
    for (size_t i = 0; i < lineitem->num_rows(); ++i) {
      if (spec.kind == K::kMoney) {
        EXPECT_EQ(original->Value<int64_t>(i), round->Value<int64_t>(i))
            << spec.name << "[" << i << "]";
      } else if (spec.kind == K::kDict) {
        // Codes may differ (first-seen order); compare decoded strings.
        EXPECT_EQ(lineitem->FindDictionary(spec.name)->GetString(
                      original->Value<int32_t>(i)),
                  (*loaded)->FindDictionary(spec.name)->GetString(
                      round->Value<int32_t>(i)))
            << spec.name << "[" << i << "]";
      } else {
        EXPECT_EQ(original->Value<int32_t>(i), round->Value<int32_t>(i))
            << spec.name << "[" << i << "]";
      }
    }
  }
}

TEST(TblIo, DbgenLayoutImportRunsQueries) {
  // Export our generated tables in the FULL dbgen layouts (filling the text
  // columns the executor never reads with placeholders), re-import through
  // the official specs, and check Q6 agrees with the original catalog.
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  config.include_dimension_tables = false;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());
  auto lineitem = *(*catalog)->GetTable("lineitem");

  // Hand-write dbgen-shaped rows from the generated columns.
  ScratchFile dir_marker("lineitem_dir");
  const std::string dir = "/tmp/adamant_tbl_test_dir";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream out(dir + "/lineitem.tbl");
    const auto* ok = (*lineitem->GetColumn("l_orderkey"))->data<int32_t>();
    const auto* pk = (*lineitem->GetColumn("l_partkey"))->data<int32_t>();
    const auto* sk = (*lineitem->GetColumn("l_suppkey"))->data<int32_t>();
    const auto* ln = (*lineitem->GetColumn("l_linenumber"))->data<int32_t>();
    const auto* qty = (*lineitem->GetColumn("l_quantity"))->data<int32_t>();
    const auto* price =
        (*lineitem->GetColumn("l_extendedprice"))->data<int64_t>();
    const auto* disc = (*lineitem->GetColumn("l_discount"))->data<int32_t>();
    const auto* tax = (*lineitem->GetColumn("l_tax"))->data<int32_t>();
    const auto* rf = (*lineitem->GetColumn("l_returnflag"))->data<int32_t>();
    const auto* ls = (*lineitem->GetColumn("l_linestatus"))->data<int32_t>();
    const auto* sm = (*lineitem->GetColumn("l_shipmode"))->data<int32_t>();
    const auto* sd = (*lineitem->GetColumn("l_shipdate"))->data<int32_t>();
    const auto* cd = (*lineitem->GetColumn("l_commitdate"))->data<int32_t>();
    const auto* rd = (*lineitem->GetColumn("l_receiptdate"))->data<int32_t>();
    const StringDictionary* rf_dict = lineitem->FindDictionary("l_returnflag");
    const StringDictionary* ls_dict = lineitem->FindDictionary("l_linestatus");
    const StringDictionary* sm_dict = lineitem->FindDictionary("l_shipmode");
    char money[32], disc_text[16], tax_text[16];
    for (size_t i = 0; i < lineitem->num_rows(); ++i) {
      std::snprintf(money, sizeof(money), "%lld.%02lld",
                    static_cast<long long>(price[i] / 100),
                    static_cast<long long>(price[i] % 100));
      std::snprintf(disc_text, sizeof(disc_text), "0.%02d", disc[i]);
      std::snprintf(tax_text, sizeof(tax_text), "0.%02d", tax[i]);
      out << ok[i] << '|' << pk[i] << '|' << sk[i] << '|' << ln[i] << '|'
          << qty[i] << '|' << money << '|' << disc_text << '|'
          << tax_text << '|' << rf_dict->GetString(rf[i]) << '|'
          << ls_dict->GetString(ls[i]) << '|' << Date(sd[i]).ToString() << '|'
          << Date(cd[i]).ToString() << '|' << Date(rd[i]).ToString() << '|'
          << "DELIVER IN PERSON|" << sm_dict->GetString(sm[i])
          << "|comment text|\n";
    }
  }
  auto loaded = tpch::LoadTblDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  auto bundle = plan::BuildQ6(**loaded, {}, *gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 512;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*plan::ExtractQ6(*bundle, *exec),
            *tpch::Q6Reference(**catalog, {}));
  ASSERT_EQ(std::system(("rm -rf " + dir).c_str()), 0);
}

TEST(TblIo, LoadDirectoryWithNoFilesFails) {
  EXPECT_TRUE(tpch::LoadTblDirectory("/tmp").status().IsNotFound());
}

TEST(TblIo, DerivePromoFlagMatchesDictionary) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());
  auto part = *(*catalog)->GetTable("part");

  // Re-derive on a copy without the flag and compare with the generator's.
  auto copy = std::make_shared<Table>("part_copy");
  ASSERT_TRUE(copy->AddColumn(*part->GetColumn("p_partkey")).ok());
  ASSERT_TRUE(copy->AddColumn(*part->GetColumn("p_type")).ok());
  *copy->GetDictionary("p_type") = *part->FindDictionary("p_type");
  ASSERT_TRUE(tpch::DerivePartPromoFlag(copy.get()).ok());
  const auto* want = (*part->GetColumn("p_ispromo"))->data<int32_t>();
  const auto* got = (*copy->GetColumn("p_ispromo"))->data<int32_t>();
  for (size_t i = 0; i < part->num_rows(); ++i) {
    EXPECT_EQ(got[i], want[i]);
  }
}

TEST(TblIo, ExportRejectsSkipAndUnknownColumns) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  config.include_dimension_tables = false;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());
  auto lineitem = *(*catalog)->GetTable("lineitem");
  ScratchFile file("reject.tbl");
  EXPECT_TRUE(WriteTblFile(*lineitem, file.path(), {{"x", K::kSkip}})
                  .IsInvalidArgument());
  EXPECT_TRUE(WriteTblFile(*lineitem, file.path(), {{"missing", K::kInt32}})
                  .IsNotFound());
}

}  // namespace
}  // namespace adamant
