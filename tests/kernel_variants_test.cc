// Parallel kernel variants: bit-identity property tests against the scalar
// reference, plus WorkerPool unit tests.
//
// Every kernel with a parallel variant runs the same launch twice on a fresh
// parallel-native (openmp_cpu) device — once forced scalar, once forced
// parallel — across a size sweep covering 0, 1, tile-1, tile, tile+1,
// non-tile-multiples and larger sizes. Outputs must be byte-identical and
// failure Statuses (message included) must match, including the capacity
// overflow, gather-range, and hash-table error paths.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/bit_util.h"
#include "common/random.h"
#include "device/device_manager.h"
#include "task/hash_table.h"
#include "task/kernel_registry.h"
#include "task/kernels.h"
#include "task/worker_pool.h"

namespace adamant {
namespace {

// Size sweep around the tile boundary (ParallelTileElems() == 16384): below
// 2 tiles the parallel variant falls back to scalar, so both the fallback
// and the genuinely tiled paths are exercised.
const size_t kSizes[] = {0,     1,     2,     63,    64,    1000,  16383,
                         16384, 16385, 32768, 40000, 49153, 100000};

/// Fresh openmp_cpu (parallel-native) device per run plus typed helpers.
/// Outputs are always pushed zero-filled so untouched tails compare equal.
struct Rig {
  std::unique_ptr<DeviceManager> manager;
  SimulatedDevice* dev = nullptr;

  Rig() {
    manager = std::make_unique<DeviceManager>();
    auto id = manager->AddDriver(sim::DriverKind::kOpenMpCpu);
    ADAMANT_CHECK(id.ok()) << id.status().ToString();
    ADAMANT_CHECK(BindStandardKernels(manager->device(*id)).ok());
    dev = manager->device(*id);
  }

  BufferId Push(const void* data, size_t bytes) {
    auto buf = dev->PrepareMemory(std::max<size_t>(bytes, 1));
    ADAMANT_CHECK(buf.ok()) << buf.status().ToString();
    if (bytes > 0) {
      ADAMANT_CHECK(dev->PlaceData(*buf, data, bytes, 0).ok());
    }
    return *buf;
  }
  template <typename T>
  BufferId PushVec(const std::vector<T>& v) {
    return Push(v.data(), v.size() * sizeof(T));
  }
  BufferId PushZeros(size_t bytes) {
    std::vector<uint8_t> zeros(std::max<size_t>(bytes, 1), 0);
    return Push(zeros.data(), zeros.size());
  }
  std::vector<uint8_t> PullBytes(BufferId id, size_t bytes) {
    std::vector<uint8_t> out(bytes);
    if (bytes > 0) {
      ADAMANT_CHECK(dev->RetrieveData(id, out.data(), bytes, 0).ok());
    }
    return out;
  }
};

struct Launched {
  KernelLaunch launch;
  /// Buffers whose full contents must be bit-identical across variants.
  std::vector<std::pair<BufferId, size_t>> outputs;
};

using SetupFn = std::function<Launched(Rig&)>;

struct RunResult {
  Status status = Status::OK();
  std::vector<std::vector<uint8_t>> outputs;
};

RunResult RunVariant(KernelVariantRequest variant, const SetupFn& setup) {
  Rig rig;
  Launched l = setup(rig);
  l.launch.variant = variant;
  l.launch.num_threads = kDefaultKernelThreads;
  RunResult result;
  result.status = rig.dev->Execute(l.launch);
  if (result.status.ok()) {
    for (const auto& [id, bytes] : l.outputs) {
      result.outputs.push_back(rig.PullBytes(id, bytes));
    }
  }
  return result;
}

/// The property: scalar and parallel runs of the same launch agree on
/// Status (message included) and every output byte.
void ExpectParity(const SetupFn& setup, const std::string& what) {
  RunResult scalar = RunVariant(KernelVariantRequest::kScalar, setup);
  RunResult parallel = RunVariant(KernelVariantRequest::kParallel, setup);
  EXPECT_EQ(scalar.status.ok(), parallel.status.ok()) << what;
  EXPECT_EQ(scalar.status.ToString(), parallel.status.ToString()) << what;
  ASSERT_EQ(scalar.outputs.size(), parallel.outputs.size()) << what;
  for (size_t i = 0; i < scalar.outputs.size(); ++i) {
    EXPECT_EQ(scalar.outputs[i], parallel.outputs[i])
        << what << " output " << i;
  }
}

std::vector<int32_t> RandomInts(size_t n, uint64_t seed, int64_t lo,
                                int64_t hi) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng.Uniform(lo, hi));
  return v;
}

// --- MAP -------------------------------------------------------------------

TEST(KernelVariantParity, Map) {
  for (size_t n : kSizes) {
    ExpectParity(
        [n](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 11 + n, -1000, 1000);
          BufferId in_buf = rig.PushVec(in);
          BufferId out = rig.PushZeros(n * 8);
          return Launched{kernels::MakeMap(in_buf, kInvalidBuffer, out,
                                           MapOp::kMulScalar,
                                           ElementType::kInt32,
                                           ElementType::kInt64, -7, n),
                          {{out, n * 8}}};
        },
        "map mul_scalar n=" + std::to_string(n));
  }
}

TEST(KernelVariantParity, MapNeqPrevCrossesTileBoundary) {
  // kNeqPrev reads in0[i-1]; the first row of every tile except tile 0
  // reads across the tile boundary.
  for (size_t n : kSizes) {
    ExpectParity(
        [n](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 13 + n, 0, 3);  // repeats
          BufferId in_buf = rig.PushVec(in);
          BufferId out = rig.PushZeros(n * 4);
          return Launched{kernels::MakeMap(in_buf, kInvalidBuffer, out,
                                           MapOp::kNeqPrev,
                                           ElementType::kInt32,
                                           ElementType::kInt32, 0, n),
                          {{out, n * 4}}};
        },
        "map neq_prev n=" + std::to_string(n));
  }
}

TEST(KernelVariantParity, MapRespectsDeviceCount) {
  // has_count_in: the device-resident count truncates the launch; the
  // parallel variant must tile min(work_items, count), not work_items.
  const size_t n = 50000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int64_t> count = {33000};
        BufferId count_buf = rig.PushVec(count);
        std::vector<int32_t> in = RandomInts(n, 17, -50, 50);
        BufferId in_buf = rig.PushVec(in);
        BufferId out = rig.PushZeros(n * 4);
        return Launched{kernels::MakeMap(in_buf, kInvalidBuffer, out,
                                         MapOp::kAddScalar,
                                         ElementType::kInt32,
                                         ElementType::kInt32, 3, n, count_buf),
                        {{out, n * 4}}};
      },
      "map count_in");
}

// --- FILTER_BITMAP ---------------------------------------------------------

TEST(KernelVariantParity, FilterBitmap) {
  for (size_t n : kSizes) {
    ExpectParity(
        [n](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 19 + n, 0, 1000);
          BufferId in_buf = rig.PushVec(in);
          const size_t bitmap_bytes = bit_util::BytesForBits(n);
          BufferId bitmap = rig.PushZeros(bitmap_bytes);
          return Launched{kernels::MakeFilterBitmap(in_buf, bitmap,
                                                    CmpOp::kBetween,
                                                    ElementType::kInt32, 100,
                                                    700, false, n),
                          {{bitmap, bitmap_bytes}}};
        },
        "filter_bitmap n=" + std::to_string(n));
  }
}

TEST(KernelVariantParity, FilterBitmapCombineAnd) {
  for (size_t n : {size_t{40000}, size_t{100000}}) {
    ExpectParity(
        [n](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 23 + n, 0, 1000);
          BufferId in_buf = rig.PushVec(in);
          const size_t bitmap_bytes = bit_util::BytesForBits(n);
          // Pre-populated bitmap the predicate must AND into.
          std::vector<uint8_t> prior(bitmap_bytes);
          Rng rng(29);
          for (auto& b : prior) b = static_cast<uint8_t>(rng.Uniform(0, 255));
          BufferId bitmap = rig.PushVec(prior);
          return Launched{kernels::MakeFilterBitmap(in_buf, bitmap, CmpOp::kGe,
                                                    ElementType::kInt32, 500,
                                                    0, true, n),
                          {{bitmap, bitmap_bytes}}};
        },
        "filter_bitmap combine_and n=" + std::to_string(n));
  }
}

// --- FILTER_POSITION -------------------------------------------------------

TEST(KernelVariantParity, FilterPosition) {
  for (size_t n : kSizes) {
    ExpectParity(
        [n](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 31 + n, 0, 1000);
          BufferId in_buf = rig.PushVec(in);
          BufferId positions = rig.PushZeros(n * 4);
          BufferId count = rig.PushZeros(8);
          return Launched{kernels::MakeFilterPosition(in_buf, positions, count,
                                                      CmpOp::kLt,
                                                      ElementType::kInt32, 500,
                                                      0, n),
                          {{positions, n * 4}, {count, 8}}};
        },
        "filter_position n=" + std::to_string(n));
  }
}

TEST(KernelVariantParity, FilterPositionOverflowErrorParity) {
  // Capacity for ~n/8 positions, ~n/2 selected: the overflow row reported by
  // the parallel variant must equal the scalar failure row.
  const size_t n = 60000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int32_t> in = RandomInts(n, 37, 0, 1000);
        BufferId in_buf = rig.PushVec(in);
        BufferId positions = rig.PushZeros((n / 8) * 4);
        BufferId count = rig.PushZeros(8);
        return Launched{kernels::MakeFilterPosition(in_buf, positions, count,
                                                    CmpOp::kLt,
                                                    ElementType::kInt32, 500,
                                                    0, n),
                        {}};
      },
      "filter_position overflow");
}

// --- MATERIALIZE -----------------------------------------------------------

TEST(KernelVariantParity, Materialize) {
  for (size_t n : kSizes) {
    ExpectParity(
        [n](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 41 + n, -500, 500);
          BufferId in_buf = rig.PushVec(in);
          const size_t bitmap_bytes = bit_util::BytesForBits(n);
          std::vector<uint8_t> bitmap_host(std::max<size_t>(bitmap_bytes, 1));
          Rng rng(43 + n);
          for (auto& b : bitmap_host) {
            b = static_cast<uint8_t>(rng.Uniform(0, 255));
          }
          BufferId bitmap = rig.Push(bitmap_host.data(), bitmap_bytes);
          BufferId out = rig.PushZeros(n * 4);
          BufferId count = rig.PushZeros(8);
          return Launched{kernels::MakeMaterialize(in_buf, bitmap, out, count,
                                                   ElementType::kInt32, n),
                          {{out, n * 4}, {count, 8}}};
        },
        "materialize n=" + std::to_string(n));
  }
}

TEST(KernelVariantParity, MaterializeOverflowErrorParity) {
  const size_t n = 60000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int32_t> in = RandomInts(n, 47, -500, 500);
        BufferId in_buf = rig.PushVec(in);
        const size_t bitmap_bytes = bit_util::BytesForBits(n);
        std::vector<uint8_t> bitmap_host(bitmap_bytes, 0xFF);  // all selected
        BufferId bitmap = rig.Push(bitmap_host.data(), bitmap_bytes);
        BufferId out = rig.PushZeros((n / 3) * 4);
        BufferId count = rig.PushZeros(8);
        return Launched{kernels::MakeMaterialize(in_buf, bitmap, out, count,
                                                 ElementType::kInt32, n),
                        {}};
      },
      "materialize overflow");
}

// --- MATERIALIZE_POSITION --------------------------------------------------

TEST(KernelVariantParity, MaterializePosition) {
  for (size_t n : kSizes) {
    ExpectParity(
        [n](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 53 + n, -9999, 9999);
          std::vector<int32_t> pos(n);
          Rng rng(59 + n);
          for (auto& p : pos) {
            p = n > 0 ? static_cast<int32_t>(rng.Uniform(0, n - 1)) : 0;
          }
          BufferId in_buf = rig.PushVec(in);
          BufferId pos_buf = rig.PushVec(pos);
          BufferId out = rig.PushZeros(n * 4);
          return Launched{kernels::MakeMaterializePosition(
                              in_buf, pos_buf, out, ElementType::kInt32, n),
                          {{out, n * 4}}};
        },
        "materialize_position n=" + std::to_string(n));
  }
}

TEST(KernelVariantParity, MaterializePositionBadGatherErrorParity) {
  // The only out-of-range position sits in a late tile: the pool must
  // report exactly that row (lowest failing tile, first bad row in it).
  const size_t n = 60000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int32_t> in = RandomInts(n, 61, 0, 100);
        std::vector<int32_t> pos(n, 5);
        pos[45000] = static_cast<int32_t>(n + 7);  // out of range, tile 2
        BufferId in_buf = rig.PushVec(in);
        BufferId pos_buf = rig.PushVec(pos);
        BufferId out = rig.PushZeros(n * 4);
        return Launched{kernels::MakeMaterializePosition(
                            in_buf, pos_buf, out, ElementType::kInt32, n),
                        {}};
      },
      "materialize_position bad gather");
}

// --- PREFIX_SUM ------------------------------------------------------------

TEST(KernelVariantParity, PrefixSum) {
  for (size_t n : kSizes) {
    for (bool exclusive : {false, true}) {
      ExpectParity(
          [n, exclusive](Rig& rig) {
            // Large magnitudes force int32 wraparound; the parallel tile
            // bases must reproduce the scalar accumulator mod 2^32.
            std::vector<int32_t> in =
                RandomInts(n, 67 + n, -(int64_t{1} << 30), int64_t{1} << 30);
            BufferId in_buf = rig.PushVec(in);
            BufferId out = rig.PushZeros(n * 4);
            return Launched{
                kernels::MakePrefixSum(in_buf, out, exclusive, n),
                {{out, n * 4}}};
          },
          "prefix_sum n=" + std::to_string(n) +
              (exclusive ? " exclusive" : " inclusive"));
    }
  }
}

// --- AGG_BLOCK -------------------------------------------------------------

TEST(KernelVariantParity, AggBlock) {
  for (size_t n : kSizes) {
    for (AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kMin, AggOp::kMax}) {
      ExpectParity(
          [n, op](Rig& rig) {
            std::vector<int32_t> in = RandomInts(n, 71 + n, -100000, 100000);
            BufferId in_buf = rig.PushVec(in);
            BufferId acc = rig.PushZeros(8);
            return Launched{kernels::MakeAggBlock(in_buf, acc, op,
                                                  ElementType::kInt32,
                                                  /*init=*/true, n),
                            {{acc, 8}}};
          },
          "agg_block op=" + std::to_string(static_cast<int>(op)) +
              " n=" + std::to_string(n));
    }
  }
}

TEST(KernelVariantParity, AggBlockAccumulatesWithoutInit) {
  // init=false folds into the accumulator's prior value.
  const size_t n = 50000;
  for (AggOp op : {AggOp::kSum, AggOp::kCount, AggOp::kMin, AggOp::kMax}) {
    ExpectParity(
        [n, op](Rig& rig) {
          std::vector<int32_t> in = RandomInts(n, 73, -100, 100);
          BufferId in_buf = rig.PushVec(in);
          std::vector<int64_t> prior = {-42};
          BufferId acc = rig.PushVec(prior);
          return Launched{kernels::MakeAggBlock(in_buf, acc, op,
                                                ElementType::kInt32,
                                                /*init=*/false, n),
                          {{acc, 8}}};
        },
        "agg_block no-init op=" + std::to_string(static_cast<int>(op)));
  }
}

// --- HASH_BUILD ------------------------------------------------------------

std::vector<int32_t> SentinelTable(size_t slots) {
  return std::vector<int32_t>(HashTableLayout::BuildTableBytes(slots) / 4,
                              HashTableLayout::kEmptyKey);
}

TEST(KernelVariantParity, HashBuild) {
  for (size_t n : kSizes) {
    ExpectParity(
        [n](Rig& rig) {
          // Duplicate-heavy keys: linear-probe layout is insertion-order
          // dependent, so the whole table must match byte for byte.
          std::vector<int32_t> keys = RandomInts(n, 79 + n, 1, 5000);
          const size_t slots = HashTableLayout::SlotsFor(std::max<size_t>(n, 1));
          BufferId keys_buf = rig.PushVec(keys);
          BufferId table = rig.PushVec(SentinelTable(slots));
          return Launched{kernels::MakeHashBuild(keys_buf, kInvalidBuffer,
                                                 table, slots, 100, n),
                          {{table, HashTableLayout::BuildTableBytes(slots)}}};
        },
        "hash_build n=" + std::to_string(n));
  }
}

TEST(KernelVariantParity, HashBuildWithPayload) {
  const size_t n = 50000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int32_t> keys = RandomInts(n, 83, 1, 1 << 28);
        std::vector<int32_t> payload = RandomInts(n, 89, 0, 1 << 20);
        const size_t slots = HashTableLayout::SlotsFor(n);
        BufferId keys_buf = rig.PushVec(keys);
        BufferId payload_buf = rig.PushVec(payload);
        BufferId table = rig.PushVec(SentinelTable(slots));
        return Launched{kernels::MakeHashBuild(keys_buf, payload_buf, table,
                                               slots, 0, n),
                        {{table, HashTableLayout::BuildTableBytes(slots)}}};
      },
      "hash_build payload");
}

TEST(KernelVariantParity, HashBuildSentinelKeyErrorParity) {
  const size_t n = 50000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int32_t> keys = RandomInts(n, 97, 1, 1000);
        keys[40000] = HashTableLayout::kEmptyKey;
        const size_t slots = HashTableLayout::SlotsFor(n);
        BufferId keys_buf = rig.PushVec(keys);
        BufferId table = rig.PushVec(SentinelTable(slots));
        return Launched{kernels::MakeHashBuild(keys_buf, kInvalidBuffer, table,
                                               slots, 0, n),
                        {}};
      },
      "hash_build sentinel key");
}

TEST(KernelVariantParity, HashBuildTableFullErrorParity) {
  // More rows than slots: both variants must fail with the same message.
  const size_t n = 50000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int32_t> keys = RandomInts(n, 101, 1, 1 << 28);
        const size_t slots = 16384;
        BufferId keys_buf = rig.PushVec(keys);
        BufferId table = rig.PushVec(SentinelTable(slots));
        return Launched{kernels::MakeHashBuild(keys_buf, kInvalidBuffer, table,
                                               slots, 0, n),
                        {}};
      },
      "hash_build table full");
}

// --- HASH_PROBE ------------------------------------------------------------

/// Builds (scalar, so both runs see the identical table) and returns the
/// filled build table over `build_keys`.
BufferId BuildScalarTable(Rig& rig, const std::vector<int32_t>& build_keys,
                          size_t slots) {
  BufferId table = rig.PushVec(SentinelTable(slots));
  KernelLaunch build = kernels::MakeHashBuild(
      rig.PushVec(build_keys), kInvalidBuffer, table, slots, 0,
      build_keys.size());
  build.variant = KernelVariantRequest::kScalar;
  ADAMANT_CHECK(rig.dev->Execute(build).ok());
  return table;
}

TEST(KernelVariantParity, HashProbe) {
  for (size_t n : kSizes) {
    for (ProbeMode mode : {ProbeMode::kAll, ProbeMode::kSemi}) {
      ExpectParity(
          [n, mode](Rig& rig) {
            const size_t build_n = std::max<size_t>(n / 2, 8);
            std::vector<int32_t> build_keys =
                RandomInts(build_n, 103 + n, 1, 4000);
            std::vector<int32_t> probe_keys = RandomInts(n, 107 + n, 1, 4000);
            const size_t slots = HashTableLayout::SlotsFor(build_n);
            BufferId table = BuildScalarTable(rig, build_keys, slots);
            BufferId probe_buf = rig.PushVec(probe_keys);
            // kAll with duplicate keys fans out; 16x capacity is ample.
            const size_t cap = std::max<size_t>(n, 1) * 16;
            BufferId left = rig.PushZeros(cap * 4);
            BufferId right = rig.PushZeros(cap * 4);
            BufferId count = rig.PushZeros(8);
            return Launched{kernels::MakeHashProbe(probe_buf, table, left,
                                                   right, count, slots, mode,
                                                   77, n),
                            {{left, cap * 4}, {right, cap * 4}, {count, 8}}};
          },
          std::string("hash_probe ") +
              (mode == ProbeMode::kSemi ? "semi" : "all") +
              " n=" + std::to_string(n));
    }
  }
}

TEST(KernelVariantParity, HashProbeOverflowErrorParity) {
  const size_t n = 60000;
  ExpectParity(
      [n](Rig& rig) {
        std::vector<int32_t> build_keys = RandomInts(n / 2, 109, 1, 2000);
        std::vector<int32_t> probe_keys = RandomInts(n, 113, 1, 2000);
        const size_t slots = HashTableLayout::SlotsFor(n / 2);
        BufferId table = BuildScalarTable(rig, build_keys, slots);
        BufferId probe_buf = rig.PushVec(probe_keys);
        BufferId left = rig.PushZeros((n / 16) * 4);  // far too small
        BufferId right = rig.PushZeros((n / 16) * 4);
        BufferId count = rig.PushZeros(8);
        return Launched{kernels::MakeHashProbe(probe_buf, table, left, right,
                                               count, slots, ProbeMode::kAll,
                                               0, n),
                        {}};
      },
      "hash_probe overflow");
}

// --- Variant registry & device policy --------------------------------------

TEST(KernelVariantRegistry, EveryParallelKernelHasAScalarReference) {
  EXPECT_EQ(kernels::ParallelKernelNames().size(), 10u);
  for (const std::string& name : kernels::ParallelKernelNames()) {
    EXPECT_TRUE(kernels::HasKernel(name)) << name;
    EXPECT_TRUE(kernels::HasParallelKernel(name)) << name;
    EXPECT_TRUE(kernels::GetParallelKernelFn(name) != nullptr) << name;
  }
  EXPECT_FALSE(kernels::HasParallelKernel("hash_agg"));
  EXPECT_FALSE(kernels::HasParallelKernel("no_such_kernel"));
}

TEST(KernelVariantRegistry, CpuDriversAreParallelNativeGpusScalarNative) {
  DeviceManager manager;
  struct Want {
    sim::DriverKind kind;
    KernelVariant native;
  };
  const Want kWants[] = {
      {sim::DriverKind::kOpenMpCpu, KernelVariant::kParallel},
      {sim::DriverKind::kOpenClCpu, KernelVariant::kParallel},
      {sim::DriverKind::kCudaGpu, KernelVariant::kScalar},
      {sim::DriverKind::kOpenClGpu, KernelVariant::kScalar},
  };
  for (const Want& want : kWants) {
    auto id = manager.AddDriver(want.kind);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(BindStandardKernels(manager.device(*id)).ok());
    SimulatedDevice* dev = manager.device(*id);
    EXPECT_EQ(dev->default_kernel_variant(), want.native)
        << dev->perf_model().name;
    EXPECT_EQ(dev->kernel_threads(), kDefaultKernelThreads);
    EXPECT_TRUE(dev->HasParallelKernel("map")) << dev->perf_model().name;
  }
}

TEST(KernelVariantRegistry, ParallelLaunchCounterTracksDispatch) {
  Rig rig;
  const size_t n = 50000;
  std::vector<int32_t> in = RandomInts(n, 127, 0, 100);
  BufferId in_buf = rig.PushVec(in);
  BufferId out = rig.PushZeros(n * 4);
  KernelLaunch launch =
      kernels::MakeMap(in_buf, kInvalidBuffer, out, MapOp::kAddScalar,
                       ElementType::kInt32, ElementType::kInt32, 1, n);
  launch.variant = KernelVariantRequest::kScalar;
  ASSERT_TRUE(rig.dev->Execute(launch).ok());
  EXPECT_EQ(rig.dev->parallel_launches(), 0u);
  launch.variant = KernelVariantRequest::kAuto;  // openmp_cpu -> parallel
  ASSERT_TRUE(rig.dev->Execute(launch).ok());
  EXPECT_EQ(rig.dev->parallel_launches(), 1u);
}

// --- WorkerPool ------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryTileExactlyOnce) {
  constexpr size_t kTiles = 257;
  std::vector<std::atomic<int>> hits(kTiles);
  for (auto& h : hits) h.store(0);
  Status status = task::WorkerPool::Global().ParallelTiles(
      kTiles, 4, "test", [&](size_t tile) {
        hits[tile].fetch_add(1);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  for (size_t i = 0; i < kTiles; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "tile " << i;
  }
  EXPECT_GE(task::WorkerPool::Global().worker_count(), 2);
}

TEST(WorkerPoolTest, ZeroTilesIsANoOp) {
  bool called = false;
  Status status = task::WorkerPool::Global().ParallelTiles(
      0, 4, "test", [&](size_t) {
        called = true;
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(called);
}

TEST(WorkerPoolTest, SingleThreadBudgetRunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::vector<size_t> order;
  Status status = task::WorkerPool::Global().ParallelTiles(
      8, 1, "test", [&](size_t tile) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(tile);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(WorkerPoolTest, LowestFailingTileWinsDeterministically) {
  // Tiles 3, 7 and 11 fail; the region must always report tile 3's error,
  // regardless of scheduling. Repeat to shake out races.
  for (int round = 0; round < 25; ++round) {
    Status status = task::WorkerPool::Global().ParallelTiles(
        16, 4, "test", [&](size_t tile) {
          if (tile == 3 || tile == 7 || tile == 11) {
            return Status::ExecutionError("tile " + std::to_string(tile) +
                                          " failed");
          }
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.ToString(), "Execution error: tile 3 failed")
        << "round " << round;
  }
}

TEST(WorkerPoolTest, PoolIsReusableAcrossRegions) {
  std::atomic<size_t> total{0};
  for (int region = 0; region < 50; ++region) {
    Status status = task::WorkerPool::Global().ParallelTiles(
        10, 3, "test", [&](size_t) {
          total.fetch_add(1);
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << "region " << region;
  }
  EXPECT_EQ(total.load(), 500u);
}

TEST(WorkerPoolTest, ConcurrentSubmittersSerializeSafely) {
  // Several threads submit regions at once (the device-parallel driver's
  // partition threads do exactly this); regions must not interleave tiles.
  constexpr int kThreads = 4;
  constexpr int kRegionsEach = 8;
  std::atomic<size_t> total{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int r = 0; r < kRegionsEach; ++r) {
        Status status = task::WorkerPool::Global().ParallelTiles(
            20, 4, "test", [&](size_t) {
              total.fetch_add(1);
              return Status::OK();
            });
        if (!status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(total.load(), static_cast<size_t>(kThreads) * kRegionsEach * 20);
}

}  // namespace
}  // namespace adamant
