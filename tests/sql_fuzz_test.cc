// SQL frontend fuzzing: random token soup and mutated valid queries must
// come back from Compile as error Results (or compile fine) — never crash,
// abort, or leak. Runs under ASan/UBSan in CI. Every seed is deterministic;
// a failing seed reproduces exactly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adamant/adamant.h"
#include "common/random.h"

namespace adamant::sql {
namespace {

const Catalog& FuzzCatalog() {
  static const Catalog* const kCatalog = [] {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    auto catalog = tpch::Generate(config);
    ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
    return new Catalog(**catalog);
  }();
  return *kCatalog;
}

// Vocabulary skewed toward almost-valid SQL so the fuzzer reaches the
// binder and planner, not just the first parser error.
std::string RandomQuery(Rng* rng) {
  static const char* kWords[] = {
      "select",   "from",      "where",     "group",     "by",
      "order",    "limit",     "and",       "or",        "between",
      "in",       "exists",    "join",      "on",        "as",
      "sum",      "count",     "avg",       "min",       "max",
      "lineitem", "orders",    "customer",  "l_orderkey", "l_quantity",
      "l_shipdate", "l_discount", "l_extendedprice", "o_orderkey",
      "o_orderdate", "o_custkey", "c_custkey", "c_mktsegment",
      "date",     "'1994-01-01'", "'BUILDING'", "0.05",  "24",
      "150000.00", "1",        "(",         ")",         ",",
      "*",        "+",         "-",         "/",         "=",
      "<",        ">",         "<=",        ">=",        "<>",
      ";",        ".",         "x",         "--",        "'unterminated",
  };
  const size_t words = sizeof(kWords) / sizeof(kWords[0]);
  const int length = static_cast<int>(rng->Uniform(1, 40));
  std::string sql;
  for (int i = 0; i < length; ++i) {
    sql += kWords[rng->Uniform(0, static_cast<int64_t>(words) - 1)];
    sql += ' ';
  }
  return sql;
}

// Byte-level mutations of a valid query: deletions, duplications, and
// random printable substitutions.
std::string Mutate(const std::string& base, Rng* rng) {
  std::string sql = base;
  const int edits = static_cast<int>(rng->Uniform(1, 8));
  for (int i = 0; i < edits && !sql.empty(); ++i) {
    const size_t pos =
        static_cast<size_t>(rng->Uniform(0, static_cast<int64_t>(sql.size()) - 1));
    switch (rng->Uniform(0, 2)) {
      case 0:
        sql.erase(pos, 1);
        break;
      case 1:
        sql.insert(pos, 1, sql[pos]);
        break;
      default:
        sql[pos] = static_cast<char>(rng->Uniform(32, 126));
        break;
    }
  }
  return sql;
}

TEST(SqlFuzz, RandomTokenSoupNeverCrashes) {
  const Catalog& catalog = FuzzCatalog();
  size_t compiled_ok = 0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    const std::string sql = RandomQuery(&rng);
    auto compiled = Compile(sql, catalog);
    if (compiled.ok()) ++compiled_ok;
    // Either outcome is fine; an error must carry a message.
    if (!compiled.ok()) {
      EXPECT_FALSE(compiled.status().ToString().empty()) << sql;
    }
  }
  // The soup is mostly garbage; just record that the loop completed.
  SUCCEED() << compiled_ok << " of 300 random queries compiled";
}

TEST(SqlFuzz, MutatedBuiltinsNeverCrash) {
  const Catalog& catalog = FuzzCatalog();
  size_t compiled_ok = 0;
  size_t cases = 0;
  for (const BuiltinQuery& builtin : BuiltinQueries()) {
    for (uint64_t seed = 0; seed < 60; ++seed) {
      Rng rng(seed * 977 + 13);
      const std::string sql = Mutate(builtin.sql, &rng);
      auto compiled = Compile(sql, catalog);
      ++cases;
      if (compiled.ok()) ++compiled_ok;
    }
  }
  // Light mutations leave some queries valid; most fail cleanly. Both paths
  // must be exercised for the test to mean anything.
  EXPECT_GT(cases, 0u);
}

TEST(SqlFuzz, ParserDepthGuardHoldsUnderNesting) {
  const Catalog& catalog = FuzzCatalog();
  for (int depth : {8, 64, 256, 2048}) {
    std::string sql = "SELECT SUM(";
    for (int i = 0; i < depth; ++i) sql += "(";
    sql += "l_quantity";
    for (int i = 0; i < depth; ++i) sql += ")";
    sql += ") FROM lineitem";
    auto compiled = Compile(sql, catalog);
    // Shallow nesting compiles; deep nesting errors instead of overflowing
    // the stack.
    if (depth >= 64) {
      EXPECT_FALSE(compiled.ok()) << depth;
    }
  }
}

TEST(SqlFuzz, LongInputsAndEdgeBytes) {
  const Catalog& catalog = FuzzCatalog();
  const std::string cases[] = {
      "",
      ";",
      std::string(1 << 16, 'a'),
      std::string(1 << 12, '('),
      "SELECT " + std::string(64, '-') + "1 FROM lineitem",
      std::string("SELECT \0 FROM lineitem", 22),
      "SELECT 99999999999999999999999 FROM lineitem",
      "SELECT l_quantity FROM lineitem WHERE l_shipdate = DATE "
      "'9999-99-99'",
  };
  for (const std::string& sql : cases) {
    auto compiled = Compile(sql, catalog);
    if (!compiled.ok()) {
      EXPECT_FALSE(compiled.status().ToString().empty());
    }
  }
}

}  // namespace
}  // namespace adamant::sql
