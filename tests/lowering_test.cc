// Tests for the logical plan layer and the lowering pass: structural
// properties of lowered graphs, error handling, and full equivalence of the
// lowered TPC-H plans with the scalar references (and with the hand-built
// primitive graphs).

#include <gtest/gtest.h>

#include <numeric>

#include "adamant/adamant.h"
#include "plan/lowering.h"
#include "plan/placement_optimizer.h"
#include "plan/tpch_logical.h"

namespace adamant::plan {
namespace {

std::shared_ptr<Catalog> SmallCatalog() {
  auto catalog = std::make_shared<Catalog>();
  auto table = std::make_shared<Table>("t");
  std::vector<int32_t> keys(100), pct(100);
  std::vector<int64_t> money(100);
  for (int i = 0; i < 100; ++i) {
    keys[static_cast<size_t>(i)] = i % 10;
    pct[static_cast<size_t>(i)] = i % 11;
    money[static_cast<size_t>(i)] = 100 * (i + 1);
  }
  ADAMANT_CHECK(table->AddColumn(Column::FromVector("k", keys)).ok());
  ADAMANT_CHECK(table->AddColumn(Column::FromVector("pct", pct)).ok());
  ADAMANT_CHECK(table->AddColumn(Column::FromVector("money", money)).ok());
  ADAMANT_CHECK(catalog->AddTable(table).ok());
  return catalog;
}

struct Rig {
  DeviceManager manager;
  DeviceId gpu = 0;

  Rig() {
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
    ADAMANT_CHECK(device.ok());
    gpu = *device;
    ADAMANT_CHECK(BindStandardKernels(manager.device(gpu)).ok());
  }

  Result<QueryExecution> Run(PlanBundle* bundle,
                             ExecutionModelKind model =
                                 ExecutionModelKind::kChunked,
                             size_t chunk = 32) {
    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = chunk;
    QueryExecutor executor(&manager);
    return executor.Run(bundle->graph.get(), options);
  }
};

// --- Structural lowering behaviour ---

TEST(Lowering, FilterReduceProducesExpectedPrimitives) {
  auto catalog = SmallCatalog();
  Rig rig;
  auto root = Reduce(Filter(Scan("t"), {Predicate::Lt("k", 5, 0.5)}),
                     {{AggOp::kSum, "money", "total"}});
  auto bundle = LowerPlan(*root, *catalog, rig.gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  // filter_bitmap + materialize(money) + agg_block.
  std::map<PrimitiveKind, int> kinds;
  for (const GraphNode& node : bundle->graph->nodes()) kinds[node.kind]++;
  EXPECT_EQ(kinds[PrimitiveKind::kFilterBitmap], 1);
  EXPECT_EQ(kinds[PrimitiveKind::kMaterialize], 1);
  EXPECT_EQ(kinds[PrimitiveKind::kAggBlock], 1);

  auto exec = rig.Run(&*bundle);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  // sum of money where k < 5: rows with i%10 in 0..4.
  int64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 10 < 5) expected += 100 * (i + 1);
  }
  EXPECT_EQ(*exec->AggValue(bundle->nodes.at("total")), expected);
}

TEST(Lowering, ColumnsMaterializedOnceAndShared) {
  auto catalog = SmallCatalog();
  Rig rig;
  // money used by two aggregates: one materialize, shared.
  auto root = Reduce(Filter(Scan("t"), {Predicate::Lt("k", 5, 0.5)}),
                     {{AggOp::kSum, "money", "a"},
                      {AggOp::kMax, "money", "b"},
                      {AggOp::kMin, "k", "c"}});
  auto bundle = LowerPlan(*root, *catalog, rig.gpu);
  ASSERT_TRUE(bundle.ok());
  int materializes = 0;
  for (const GraphNode& node : bundle->graph->nodes()) {
    if (node.kind == PrimitiveKind::kMaterialize) ++materializes;
  }
  EXPECT_EQ(materializes, 2) << "money once, k once";
}

TEST(Lowering, ConjunctionChainsThroughBitmap) {
  auto catalog = SmallCatalog();
  Rig rig;
  auto root = Reduce(Filter(Scan("t"), {Predicate::Lt("k", 8, 0.8),
                                        Predicate::Gt("pct", 2, 0.7)}),
                     {{AggOp::kCount, "k", "n"}});
  auto bundle = LowerPlan(*root, *catalog, rig.gpu);
  ASSERT_TRUE(bundle.ok());
  int filters = 0, combines = 0;
  for (const GraphNode& node : bundle->graph->nodes()) {
    if (node.kind == PrimitiveKind::kFilterBitmap) {
      ++filters;
      combines += node.config.combine_and ? 1 : 0;
    }
  }
  EXPECT_EQ(filters, 2);
  EXPECT_EQ(combines, 1);

  auto exec = rig.Run(&*bundle);
  ASSERT_TRUE(exec.ok());
  int64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 10 < 8 && i % 11 > 2) ++expected;
  }
  EXPECT_EQ(*exec->AggValue(bundle->nodes.at("n")), expected);
}

TEST(Lowering, ProjectionsCanReferenceEarlierProjections) {
  auto catalog = SmallCatalog();
  Rig rig;
  auto root = Reduce(
      Project(Scan("t"), {{"twice", ScalarExpr::MulScalar(
                                        "k", 2, ElementType::kInt32)},
                          {"four", ScalarExpr::AddCol("twice", "twice",
                                                      ElementType::kInt32)}}),
      {{AggOp::kSum, "four", "total"}});
  auto bundle = LowerPlan(*root, *catalog, rig.gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = rig.Run(&*bundle);
  ASSERT_TRUE(exec.ok());
  int64_t expected = 0;
  for (int i = 0; i < 100; ++i) expected += 4 * (i % 10);
  EXPECT_EQ(*exec->AggValue(bundle->nodes.at("total")), expected);
}

TEST(Lowering, GroupByOverJoinGathersColumns) {
  // Self-join: every key in 0..9 matches ten build rows.
  auto catalog = SmallCatalog();
  Rig rig;
  auto root =
      GroupBy(HashJoin(Scan("t"), Filter(Scan("t"), {Predicate::Lt("k", 3,
                                                                   0.3)}),
                       "k", "k", ProbeMode::kSemi, 1.0),
              "k", {{AggOp::kCount, "", "n"}}, 16, false);
  auto bundle = LowerPlan(*root, *catalog, rig.gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = rig.Run(&*bundle);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto groups = exec->GroupResults(bundle->nodes.at("n"));
  ASSERT_TRUE(groups.ok());
  // Semi join keeps probe rows with k in {0,1,2}: ten rows per key.
  ASSERT_EQ(groups->size(), 3u);
  for (const auto& [key, count] : *groups) {
    EXPECT_LT(key, 3);
    EXPECT_EQ(count, 10);
  }
}

// --- Error handling ---

TEST(Lowering, ErrorsAreDiagnostic) {
  auto catalog = SmallCatalog();
  Rig rig;
  // Unknown table.
  auto bad_table = Reduce(Scan("missing"), {{AggOp::kSum, "x", "x"}});
  EXPECT_TRUE(LowerPlan(*bad_table, *catalog, rig.gpu).status().IsNotFound());
  // Unknown column.
  auto bad_column = Reduce(Scan("t"), {{AggOp::kSum, "nope", "x"}});
  EXPECT_TRUE(LowerPlan(*bad_column, *catalog, rig.gpu).status().IsNotFound());
  // Root must be a sink.
  auto no_sink = Filter(Scan("t"), {Predicate::Lt("k", 5, 0.5)});
  EXPECT_TRUE(
      LowerPlan(*no_sink, *catalog, rig.gpu).status().IsInvalidArgument());
  // Sink below the root.
  auto nested_sink = Reduce(Filter(GroupBy(Scan("t"), "k", {{AggOp::kCount,
                                                             "", "n"}},
                                           16, false),
                                   {Predicate::Lt("k", 5, 0.5)}),
                            {{AggOp::kSum, "k", "x"}});
  EXPECT_TRUE(
      LowerPlan(*nested_sink, *catalog, rig.gpu).status().IsInvalidArgument());
  // int64 join key.
  auto bad_key = GroupBy(HashJoin(Scan("t"), Scan("t"), "money", "money",
                                  ProbeMode::kAll, 1.0),
                         "k", {{AggOp::kCount, "", "n"}}, 16, false);
  EXPECT_TRUE(
      LowerPlan(*bad_key, *catalog, rig.gpu).status().IsInvalidArgument());
  // Reduce COUNT without a value column.
  auto bad_count = Reduce(Scan("t"), {{AggOp::kCount, "", "n"}});
  EXPECT_TRUE(
      LowerPlan(*bad_count, *catalog, rig.gpu).status().IsInvalidArgument());
  // Type mismatch in projection.
  auto bad_types = Reduce(
      Project(Scan("t"), {{"x", ScalarExpr::AddCol("k", "money")}}),
      {{AggOp::kSum, "x", "x"}});
  EXPECT_TRUE(
      LowerPlan(*bad_types, *catalog, rig.gpu).status().IsInvalidArgument());
}

TEST(LogicalPlan, ExplainRendersTree) {
  auto catalog = SmallCatalog();
  auto root = GroupBy(
      HashJoin(Filter(Scan("t"), {Predicate::Lt("k", 5, 0.5)}), Scan("t"),
               "k", "k", ProbeMode::kSemi, 0.5),
      "k", {{AggOp::kCount, "", "n"}}, 16, false);
  std::string text = ExplainPlan(*root);
  EXPECT_NE(text.find("GroupBy(k; COUNT())"), std::string::npos);
  EXPECT_NE(text.find("SemiJoin(k = k)"), std::string::npos);
  EXPECT_NE(text.find("Filter(k < 5)"), std::string::npos);
  EXPECT_NE(text.find("Scan(t)"), std::string::npos);
  EXPECT_NE(text.find("[build]"), std::string::npos);
}

// --- Placement policies ---

TEST(Placement, PerKindOverridesSplitWorkAcrossDevices) {
  auto catalog = SmallCatalog();
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  auto cpu = manager.AddDriver(sim::DriverKind::kOpenMpCpu);
  ASSERT_TRUE(gpu.ok() && cpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*cpu)).ok());

  // Streaming work on the CPU, hash aggregation on the GPU.
  PlacementPolicy policy;
  policy.default_device = *cpu;
  policy.by_kind[PrimitiveKind::kHashAgg] = *gpu;

  auto root = GroupBy(Filter(Scan("t"), {Predicate::Lt("k", 7, 0.7)}), "k",
                      {{AggOp::kSum, "money", "total"}}, 16, false);
  auto bundle = LowerPlan(*root, *catalog, policy);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  for (const GraphNode& node : bundle->graph->nodes()) {
    EXPECT_EQ(node.device,
              node.kind == PrimitiveKind::kHashAgg ? *gpu : *cpu)
        << node.label;
  }

  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 32;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto groups = exec->GroupResults(bundle->nodes.at("total"));
  ASSERT_TRUE(groups.ok());
  std::map<int32_t, int64_t> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 10 < 7) expected[i % 10] += 100 * (i + 1);
  }
  ASSERT_EQ(groups->size(), expected.size());
  for (const auto& [key, value] : *groups) EXPECT_EQ(expected.at(key), value);
  // Both devices actually executed kernels, and data crossed the host.
  EXPECT_GT(exec->stats.devices[static_cast<size_t>(*gpu)].execute_calls, 0u);
  EXPECT_GT(exec->stats.devices[static_cast<size_t>(*cpu)].execute_calls, 0u);
  EXPECT_GT(exec->stats.bytes_d2h, 0u);
}

TEST(Placement, AllOnEquivalentToDeviceOverload) {
  auto catalog = SmallCatalog();
  Rig rig;
  auto root = Reduce(Filter(Scan("t"), {Predicate::Lt("k", 5, 0.5)}),
                     {{AggOp::kSum, "money", "total"}});
  auto a = LowerPlan(*root, *catalog, rig.gpu);
  auto b = LowerPlan(*root, *catalog, PlacementPolicy::AllOn(rig.gpu));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->graph->nodes().size(), b->graph->nodes().size());
  for (size_t i = 0; i < a->graph->nodes().size(); ++i) {
    EXPECT_EQ(a->graph->nodes()[i].device, b->graph->nodes()[i].device);
    EXPECT_EQ(a->graph->nodes()[i].kind, b->graph->nodes()[i].kind);
  }
}

// --- What-if placement search ---

TEST(PlacementSearch, FindsFastestCandidateAndAllAgree) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  config.include_dimension_tables = false;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  auto cpu = manager.AddDriver(sim::DriverKind::kOpenMpCpu);
  ASSERT_TRUE(gpu.ok() && cpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*cpu)).ok());
  manager.SetDataScale(30.0 / 0.002);  // make placement matter

  auto logical = Q6Logical(**catalog, {});
  ASSERT_TRUE(logical.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  auto search = SearchPlacements(**logical, **catalog, &manager, options);
  ASSERT_TRUE(search.ok()) << search.status().ToString();
  // Two devices, three classes: 8 grid candidates, plus the heterogeneous
  // cost-ratio split across the unlike pair.
  EXPECT_EQ(search->evaluated.size(), 9u);
  bool saw_hetero = false;
  for (const auto& [name, elapsed] : search->evaluated) {
    if (name.rfind("device-parallel-hetero{", 0) == 0) saw_hetero = true;
    if (elapsed >= 0) {
      EXPECT_GE(elapsed, search->best_elapsed_us) << name;
    }
  }
  EXPECT_TRUE(saw_hetero);
  EXPECT_FALSE(search->best_name.empty());

  // The winning policy produces the reference answer (placement never
  // changes results).
  auto bundle = LowerPlan(**logical, **catalog, search->best);
  ASSERT_TRUE(bundle.ok());
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(*exec->AggValue(bundle->nodes.at("revenue")),
            *tpch::Q6Reference(**catalog, {}));
}

TEST(PlacementSearch, SingleDeviceDegeneratesToOneChoice) {
  auto catalog = SmallCatalog();
  Rig rig;
  auto root = Reduce(Filter(Scan("t"), {Predicate::Lt("k", 5, 0.5)}),
                     {{AggOp::kSum, "money", "total"}});
  ExecutionOptions options;
  options.chunk_elems = 64;
  auto search = SearchPlacements(*root, *catalog, &rig.manager, options);
  ASSERT_TRUE(search.ok());
  EXPECT_EQ(search->evaluated.size(), 1u);
}

TEST(PlacementSearch, NoDevicesRejected) {
  auto catalog = SmallCatalog();
  DeviceManager empty;
  auto root = Reduce(Scan("t"), {{AggOp::kSum, "money", "x"}});
  EXPECT_TRUE(SearchPlacements(*root, *catalog, &empty, {})
                  .status()
                  .IsInvalidArgument());
}

// --- TPC-H equivalence: lowered logical plans match the references ---

class LoweredTpchTest : public ::testing::Test {
 protected:
  static const Catalog& SharedCatalog() {
    static const Catalog* const kCatalog = [] {
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      config.include_dimension_tables = false;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok());
      return new Catalog(**catalog);
    }();
    return *kCatalog;
  }
};

TEST_F(LoweredTpchTest, Q6Equivalent) {
  Rig rig;
  auto logical = Q6Logical(SharedCatalog(), {});
  ASSERT_TRUE(logical.ok());
  auto bundle = LowerPlan(**logical, SharedCatalog(), rig.gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = rig.Run(&*bundle, ExecutionModelKind::kChunked, 512);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*exec->AggValue(bundle->nodes.at("revenue")),
            *tpch::Q6Reference(SharedCatalog(), {}));
}

TEST_F(LoweredTpchTest, Q4Equivalent) {
  Rig rig;
  auto logical = Q4Logical(SharedCatalog(), {});
  ASSERT_TRUE(logical.ok());
  auto bundle = LowerPlan(**logical, SharedCatalog(), rig.gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = rig.Run(&*bundle, ExecutionModelKind::kFourPhasePipelined, 512);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = ExtractQ4(*bundle, *exec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *tpch::Q4Reference(SharedCatalog(), {}));
}

TEST_F(LoweredTpchTest, Q3Equivalent) {
  Rig rig;
  auto logical = Q3Logical(SharedCatalog(), {});
  ASSERT_TRUE(logical.ok());
  auto bundle = LowerPlan(**logical, SharedCatalog(), rig.gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = rig.Run(&*bundle, ExecutionModelKind::kChunked, 512);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = ExtractQ3(*bundle, *exec, SharedCatalog(), {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *tpch::Q3Reference(SharedCatalog(), {}));
}

TEST_F(LoweredTpchTest, Q1Equivalent) {
  Rig rig;
  auto logical = Q1Logical(SharedCatalog(), {});
  ASSERT_TRUE(logical.ok());
  auto bundle = LowerPlan(**logical, SharedCatalog(), rig.gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = rig.Run(&*bundle, ExecutionModelKind::kChunked, 512);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = ExtractQ1(*bundle, *exec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *tpch::Q1Reference(SharedCatalog(), {}));
}

TEST_F(LoweredTpchTest, LoweredMatchesHandBuiltAcrossModels) {
  // The lowered and hand-built Q3 plans must agree on every execution model
  // (they differ structurally, e.g. in estimate margins, but not in
  // results).
  Rig rig;
  for (auto model :
       {ExecutionModelKind::kOperatorAtATime, ExecutionModelKind::kChunked,
        ExecutionModelKind::kFourPhasePipelined}) {
    auto logical = Q3Logical(SharedCatalog(), {});
    ASSERT_TRUE(logical.ok());
    auto lowered = LowerPlan(**logical, SharedCatalog(), rig.gpu);
    ASSERT_TRUE(lowered.ok());
    auto hand = BuildQ3(SharedCatalog(), {}, rig.gpu);
    ASSERT_TRUE(hand.ok());
    auto exec_lowered = rig.Run(&*lowered, model, 512);
    auto exec_hand = rig.Run(&*hand, model, 512);
    ASSERT_TRUE(exec_lowered.ok() && exec_hand.ok());
    auto a = ExtractQ3(*lowered, *exec_lowered, SharedCatalog(), {});
    auto b = ExtractQ3(*hand, *exec_hand, SharedCatalog(), {});
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << ExecutionModelName(model);
  }
}

}  // namespace
}  // namespace adamant::plan
