// Property-based tests: invariants that must hold for any input data, chunk
// size, driver or execution model. Inputs are generated from seeded PRNGs
// so every run is reproducible; failures print the seed via the test name.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <unordered_map>

#include "adamant/adamant.h"
#include "common/bit_util.h"
#include "common/random.h"
#include "task/hash_table.h"

namespace adamant {
namespace {

struct Rig {
  DeviceManager manager;
  DeviceId dev_id = 0;

  explicit Rig(sim::DriverKind kind = sim::DriverKind::kCudaGpu) {
    auto device = manager.AddDriver(kind);
    ADAMANT_CHECK(device.ok());
    dev_id = *device;
    ADAMANT_CHECK(BindStandardKernels(manager.device(dev_id)).ok());
  }
  SimulatedDevice* dev() { return manager.device(dev_id); }

  template <typename T>
  BufferId Push(const std::vector<T>& data) {
    auto buf = dev()->PrepareMemory(data.size() * sizeof(T));
    EXPECT_TRUE(buf.ok());
    EXPECT_TRUE(
        dev()->PlaceData(*buf, data.data(), data.size() * sizeof(T), 0).ok());
    return *buf;
  }
  BufferId Alloc(size_t bytes) {
    auto buf = dev()->PrepareMemory(bytes);
    EXPECT_TRUE(buf.ok());
    return *buf;
  }
  template <typename T>
  std::vector<T> Pull(BufferId id, size_t n) {
    std::vector<T> out(n);
    EXPECT_TRUE(dev()->RetrieveData(id, out.data(), n * sizeof(T), 0).ok());
    return out;
  }
};

// ---------------------------------------------------------------------------
// Property 1: for every comparison op and random data, the early path
// (filter_bitmap + materialize) and the late path (filter_position +
// materialize_position) select exactly the same values in the same order.
// ---------------------------------------------------------------------------

class MaterializationEquivalence
    : public ::testing::TestWithParam<std::tuple<int, CmpOp>> {};

TEST_P(MaterializationEquivalence, EarlyEqualsLate) {
  const auto [seed, op] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const size_t n = 500 + static_cast<size_t>(rng.Uniform(0, 1000));
  std::vector<int32_t> values(n), payload(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = static_cast<int32_t>(rng.Uniform(-50, 50));
    payload[i] = static_cast<int32_t>(rng.Uniform(-1000, 1000));
  }
  const int64_t lo = rng.Uniform(-30, 10);
  const int64_t hi = lo + static_cast<int64_t>(rng.Uniform(0, 40));

  Rig rig;
  BufferId v = rig.Push(values);
  BufferId p = rig.Push(payload);

  // Early: bitmap + materialize.
  BufferId bitmap = rig.Alloc(bit_util::BytesForBits(n));
  BufferId out_early = rig.Alloc(n * 4);
  BufferId count_early = rig.Alloc(8);
  ASSERT_TRUE(rig.dev()
                  ->Execute(kernels::MakeFilterBitmap(
                      v, bitmap, op, ElementType::kInt32, lo, hi, false, n))
                  .ok());
  ASSERT_TRUE(rig.dev()
                  ->Execute(kernels::MakeMaterialize(p, bitmap, out_early,
                                                     count_early,
                                                     ElementType::kInt32, n))
                  .ok());

  // Late: positions + gather.
  BufferId positions = rig.Alloc(n * 4);
  BufferId count_late = rig.Alloc(8);
  BufferId out_late = rig.Alloc(n * 4);
  ASSERT_TRUE(rig.dev()
                  ->Execute(kernels::MakeFilterPosition(
                      v, positions, count_late, op, ElementType::kInt32, lo,
                      hi, n))
                  .ok());
  ASSERT_TRUE(rig.dev()
                  ->Execute(kernels::MakeMaterializePosition(
                      p, positions, out_late, ElementType::kInt32, n,
                      count_late))
                  .ok());

  const int64_t k_early = rig.Pull<int64_t>(count_early, 1)[0];
  const int64_t k_late = rig.Pull<int64_t>(count_late, 1)[0];
  ASSERT_EQ(k_early, k_late);
  EXPECT_EQ(rig.Pull<int32_t>(out_early, static_cast<size_t>(k_early)),
            rig.Pull<int32_t>(out_late, static_cast<size_t>(k_late)));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByOp, MaterializationEquivalence,
    ::testing::Combine(::testing::Range(1, 6),
                       ::testing::Values(CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                                         CmpOp::kGe, CmpOp::kEq, CmpOp::kNe,
                                         CmpOp::kBetween, CmpOp::kInPair)));

// ---------------------------------------------------------------------------
// Property 2: hash build + probe equals a nested-loop join on random data
// with duplicate keys, for both probe modes.
// ---------------------------------------------------------------------------

class JoinEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalence, ProbeEqualsNestedLoop) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const size_t n_build = 64 + static_cast<size_t>(rng.Uniform(0, 200));
  const size_t n_probe = 200 + static_cast<size_t>(rng.Uniform(0, 500));
  const int32_t key_range = 1 + static_cast<int32_t>(rng.Uniform(8, 64));
  std::vector<int32_t> build_keys(n_build), payload(n_build),
      probe_keys(n_probe);
  for (size_t i = 0; i < n_build; ++i) {
    build_keys[i] = static_cast<int32_t>(rng.Uniform(1, key_range));
    payload[i] = static_cast<int32_t>(rng.Uniform(0, 1 << 20));
  }
  for (size_t i = 0; i < n_probe; ++i) {
    probe_keys[i] = static_cast<int32_t>(rng.Uniform(1, key_range * 2));
  }

  for (ProbeMode mode : {ProbeMode::kAll, ProbeMode::kSemi}) {
    Rig rig;
    const size_t slots = HashTableLayout::SlotsFor(n_build);
    BufferId bk = rig.Push(build_keys);
    BufferId pl = rig.Push(payload);
    BufferId pk = rig.Push(probe_keys);
    BufferId table = rig.Alloc(HashTableLayout::BuildTableBytes(slots));
    ASSERT_TRUE(
        rig.dev()
            ->Execute(kernels::MakeFill(table, HashTableLayout::kEmptyKey,
                                        HashTableLayout::BuildTableBytes(slots) /
                                            4))
            .ok());
    ASSERT_TRUE(rig.dev()
                    ->Execute(kernels::MakeHashBuild(bk, pl, table, slots, 0,
                                                     n_build))
                    .ok());
    const size_t cap = n_probe * n_build;
    BufferId left = rig.Alloc(cap * 4);
    BufferId right = rig.Alloc(cap * 4);
    BufferId count = rig.Alloc(8);
    ASSERT_TRUE(rig.dev()
                    ->Execute(kernels::MakeHashProbe(pk, table, left, right,
                                                     count, slots, mode, 0,
                                                     n_probe))
                    .ok());
    const auto k = static_cast<size_t>(rig.Pull<int64_t>(count, 1)[0]);
    auto got_left = rig.Pull<int32_t>(left, k);
    auto got_right = rig.Pull<int32_t>(right, k);

    // Nested-loop reference: multiset of (probe index, payload) pairs for
    // kAll; one match per matching probe key for kSemi.
    std::multiset<std::pair<int32_t, int32_t>> want, got;
    for (size_t i = 0; i < n_probe; ++i) {
      bool matched = false;
      for (size_t j = 0; j < n_build; ++j) {
        if (probe_keys[i] != build_keys[j]) continue;
        if (mode == ProbeMode::kSemi) {
          matched = true;
          break;
        }
        want.emplace(static_cast<int32_t>(i), payload[j]);
      }
      if (mode == ProbeMode::kSemi && matched) {
        want.emplace(static_cast<int32_t>(i), -1);  // payload unspecified
      }
    }
    for (size_t i = 0; i < k; ++i) {
      got.emplace(got_left[i], mode == ProbeMode::kSemi ? -1 : got_right[i]);
    }
    EXPECT_EQ(got, want) << "mode "
                         << (mode == ProbeMode::kSemi ? "semi" : "all");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalence, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Property 3: query results are invariant to chunk size and execution model
// (same device, wildly different schedules).
// ---------------------------------------------------------------------------

class ChunkInvariance : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkInvariance, Q3ResultIndependentOfChunking) {
  static const Catalog* const kCatalog = [] {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    config.include_dimension_tables = false;
    auto catalog = tpch::Generate(config);
    ADAMANT_CHECK(catalog.ok());
    return new Catalog(**catalog);
  }();
  static const auto* const kWant = [] {
    auto want = tpch::Q3Reference(*kCatalog, {});
    ADAMANT_CHECK(want.ok());
    return new std::vector<tpch::Q3Row>(*want);
  }();

  Rig rig;
  auto bundle = plan::BuildQ3(*kCatalog, {}, rig.dev_id);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kFourPhasePipelined;
  options.chunk_elems = GetParam();
  QueryExecutor executor(&rig.manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << "chunk " << GetParam() << ": "
                         << exec.status().ToString();
  auto got = plan::ExtractQ3(*bundle, *exec, *kCatalog, {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *kWant) << "chunk " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkInvariance,
                         ::testing::Values(64, 100, 127, 256, 1000, 4096,
                                           size_t{1} << 20));

// ---------------------------------------------------------------------------
// Property 4: hash aggregation is invariant to input order and chunking
// (associative, commutative accumulation).
// ---------------------------------------------------------------------------

class AggregationInvariance : public ::testing::TestWithParam<int> {};

TEST_P(AggregationInvariance, HashAggMatchesHostForRandomData) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
  const size_t n = 2000 + static_cast<size_t>(rng.Uniform(0, 3000));
  const int32_t groups = 1 + static_cast<int32_t>(rng.Uniform(1, 64));
  std::vector<int32_t> keys(n);
  std::vector<int64_t> values(n);
  std::unordered_map<int32_t, int64_t> want;
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<int32_t>(rng.Uniform(1, groups));
    values[i] = rng.Uniform(-10000, 10000);
    want[keys[i]] += values[i];
  }

  // Through the full executor, chunked, via the logical layer.
  auto catalog = std::make_shared<Catalog>();
  auto table = std::make_shared<Table>("r");
  ASSERT_TRUE(table->AddColumn(Column::FromVector("k", keys)).ok());
  ASSERT_TRUE(table->AddColumn(Column::FromVector("v", values)).ok());
  ASSERT_TRUE(catalog->AddTable(table).ok());

  Rig rig;
  auto root = plan::GroupBy(plan::Scan("r"), "k",
                            {{AggOp::kSum, "v", "total"}}, groups, false);
  auto bundle = plan::LowerPlan(*root, *catalog, rig.dev_id);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 333;  // deliberately not a divisor of n
  QueryExecutor executor(&rig.manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = exec->GroupResults(bundle->nodes.at("total"));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want.size());
  for (const auto& [key, value] : *got) {
    EXPECT_EQ(value, want.at(key)) << "group " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationInvariance, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Property 5: per-kernel time breakdown sums to the total kernel time.
// ---------------------------------------------------------------------------

TEST(StatsProperties, KernelBreakdownSumsToTotal) {
  static const Catalog* const kCatalog = [] {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    config.include_dimension_tables = false;
    auto catalog = tpch::Generate(config);
    ADAMANT_CHECK(catalog.ok());
    return new Catalog(**catalog);
  }();
  Rig rig;
  auto bundle = plan::BuildQ6(*kCatalog, {}, rig.dev_id);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 512;
  QueryExecutor executor(&rig.manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok());
  const auto& dev = exec->stats.devices[static_cast<size_t>(rig.dev_id)];
  double sum = 0;
  for (const auto& [name, us] : dev.kernel_body_by_name) sum += us;
  EXPECT_NEAR(sum, dev.kernel_body_us, 1e-6);
  EXPECT_GT(dev.kernel_body_by_name.count("filter_bitmap"), 0u);
  EXPECT_GT(dev.kernel_body_by_name.count("materialize"), 0u);
  EXPECT_GT(dev.kernel_body_by_name.count("map"), 0u);
  EXPECT_GT(dev.kernel_body_by_name.count("agg_block"), 0u);
}

}  // namespace
}  // namespace adamant
