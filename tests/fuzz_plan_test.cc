// Randomized plan fuzzing: generate random logical plans over random
// tables, lower and execute them on the simulated device, and compare
// against an independent row-wise host interpreter of the same logical
// algebra. Every seed is deterministic; a failing seed reproduces exactly.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "adamant/adamant.h"
#include "common/random.h"
#include "plan/interpreter.h"
#include "plan/lowering.h"

namespace adamant::plan {
namespace {

// The reference interpreter lives in the library (plan/interpreter.h); it
// shares only the operator *semantics* with the executor path — no kernels,
// no devices — so it still serves as an independent oracle here.
using HostResults = InterpreterResults;

Result<HostResults> EvalPlan(const LogicalNode& root, const Catalog& catalog) {
  return InterpretPlan(root, catalog);
}

// ---------------------------------------------------------------------------
// Random plan generation.
// ---------------------------------------------------------------------------

struct FuzzCase {
  std::shared_ptr<Catalog> catalog;
  LogicalNodePtr plan;
};

FuzzCase MakeCase(uint64_t seed) {
  Rng rng(seed);
  FuzzCase c;
  c.catalog = std::make_shared<Catalog>();

  auto make_table = [&](const std::string& name, size_t rows,
                        bool distinct_keys) {
    auto table = std::make_shared<Table>(name);
    std::vector<int32_t> key(rows), small(rows), pct(rows);
    std::vector<int64_t> value(rows);
    if (distinct_keys) {
      std::iota(key.begin(), key.end(), 1);
      // Deterministic shuffle.
      for (size_t i = rows; i > 1; --i) {
        std::swap(key[i - 1],
                  key[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(i) - 1))]);
      }
    } else {
      for (auto& k : key) k = static_cast<int32_t>(rng.Uniform(1, 40));
    }
    for (size_t i = 0; i < rows; ++i) {
      small[i] = static_cast<int32_t>(rng.Uniform(-20, 20));
      pct[i] = static_cast<int32_t>(rng.Uniform(0, 30));
      value[i] = rng.Uniform(-1000, 1000);
    }
    ADAMANT_CHECK(table->AddColumn(Column::FromVector("key", key)).ok());
    ADAMANT_CHECK(table->AddColumn(Column::FromVector("small", small)).ok());
    ADAMANT_CHECK(table->AddColumn(Column::FromVector("pct", pct)).ok());
    ADAMANT_CHECK(table->AddColumn(Column::FromVector("value", value)).ok());
    ADAMANT_CHECK(c.catalog->AddTable(table).ok());
  };
  const size_t probe_rows = 500 + static_cast<size_t>(rng.Uniform(0, 2000));
  make_table("probe_side", probe_rows, /*distinct_keys=*/false);
  make_table("build_side", 64 + static_cast<size_t>(rng.Uniform(0, 400)),
             /*distinct_keys=*/true);

  LogicalNodePtr stream = Scan("probe_side");

  // Optional filter with 1-2 predicates over random columns.
  if (rng.Bernoulli(0.8)) {
    std::vector<Predicate> preds;
    const int n_preds = 1 + static_cast<int>(rng.Uniform(0, 1));
    const char* pred_cols[] = {"key", "small", "pct"};
    for (int i = 0; i < n_preds; ++i) {
      const std::string col = pred_cols[rng.Uniform(0, 2)];
      switch (rng.Uniform(0, 3)) {
        case 0:
          preds.push_back(Predicate::Lt(col, rng.Uniform(-10, 30), 1.0));
          break;
        case 1:
          preds.push_back(Predicate::Ge(col, rng.Uniform(-10, 30), 1.0));
          break;
        case 2:
          preds.push_back(Predicate::Between(col, rng.Uniform(-10, 5),
                                             rng.Uniform(6, 30), 1.0));
          break;
        default:
          preds.push_back(Predicate::Ne(col, rng.Uniform(-10, 30), 1.0));
          break;
      }
    }
    stream = Filter(stream, std::move(preds));
  }

  // Optional projections (later ones may reference earlier ones).
  if (rng.Bernoulli(0.7)) {
    std::vector<std::pair<std::string, ScalarExpr>> exprs;
    exprs.emplace_back("d1", ScalarExpr{MapOp::kMulScalar, "value", "",
                                        rng.Uniform(-3, 3),
                                        ElementType::kInt64});
    if (rng.Bernoulli(0.6)) {
      exprs.emplace_back("d2", ScalarExpr{MapOp::kAddCol, "d1", "value", 0,
                                          ElementType::kInt64});
    }
    if (rng.Bernoulli(0.4)) {
      exprs.emplace_back("d3",
                         ScalarExpr::MulPctComplement(
                             exprs.size() > 1 ? "d2" : "d1", "pct"));
    }
    stream = Project(stream, std::move(exprs));
  }

  // Optional join against the (distinct-key) build side.
  if (rng.Bernoulli(0.6)) {
    LogicalNodePtr build = Scan("build_side");
    if (rng.Bernoulli(0.5)) {
      build = Filter(build, {Predicate::Gt("small", rng.Uniform(-15, 10),
                                           1.0)});
    }
    stream = HashJoin(stream, build, "key", "key",
                      rng.Bernoulli(0.5) ? ProbeMode::kAll : ProbeMode::kSemi,
                      /*join_selectivity=*/1.0);
  }

  // Sink.
  auto pick_value_col = [&]() -> std::string {
    return rng.Bernoulli(0.5) ? "value" : "small";
  };
  if (rng.Bernoulli(0.6)) {
    std::vector<AggSpec> aggs = {{AggOp::kSum, pick_value_col(), "sum"}};
    if (rng.Bernoulli(0.5)) aggs.push_back({AggOp::kCount, "", "count"});
    const std::string key_col = rng.Bernoulli(0.7) ? "key" : "pct";
    c.plan = GroupBy(stream, key_col, std::move(aggs),
                     /*expected_groups=*/3000, false);
  } else {
    std::vector<AggSpec> aggs = {{AggOp::kSum, pick_value_col(), "sum"}};
    switch (rng.Uniform(0, 2)) {
      case 0:
        aggs.push_back({AggOp::kMin, pick_value_col(), "min"});
        break;
      case 1:
        aggs.push_back({AggOp::kMax, pick_value_col(), "max"});
        break;
      default:
        aggs.push_back({AggOp::kCount, pick_value_col(), "count"});
        break;
    }
    c.plan = Reduce(stream, std::move(aggs));
  }
  return c;
}

// ---------------------------------------------------------------------------
// The fuzz harness.
// ---------------------------------------------------------------------------

class PlanFuzz
    : public ::testing::TestWithParam<std::tuple<int, ExecutionModelKind>> {};

TEST_P(PlanFuzz, ExecutorMatchesHostInterpreter) {
  const auto [seed, model] = GetParam();
  FuzzCase fuzz = MakeCase(static_cast<uint64_t>(seed) * 2654435761u);

  auto want = EvalPlan(*fuzz.plan, *fuzz.catalog);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  auto bundle = LowerPlan(*fuzz.plan, *fuzz.catalog, *gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  ExecutionOptions options;
  options.model = model;
  options.chunk_elems = 257;  // deliberately odd chunking
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  for (const auto& [name, want_groups] : *want) {
    ASSERT_TRUE(bundle->nodes.count(name)) << name;
    const int node = bundle->nodes.at(name);
    if (fuzz.plan->kind == LogicalNode::Kind::kGroupBy) {
      auto got = exec->GroupResults(node);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->size(), want_groups.size()) << "aggregate " << name;
      for (const auto& [key, value] : *got) {
        ASSERT_TRUE(want_groups.count(key)) << name << " key " << key;
        EXPECT_EQ(value, want_groups.at(key)) << name << " key " << key;
      }
    } else {
      auto got = exec->AggValue(node);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, want_groups.at(0)) << "aggregate " << name;
    }
  }
}

// Fusion property: lowering the same logical plan twice and force-fusing one
// copy must yield bit-identical results under every seed — the fused
// interpreter replays the unfused chain's arithmetic exactly (store/load
// truncation, predicate short-circuiting, row alignment across filters).
// Plans with joins exercise fused groups feeding HASH_PROBE; unfusable
// shapes must degrade to a plain run, never to a wrong answer.
TEST_P(PlanFuzz, FusedRunIsBitIdenticalToUnfused) {
  const auto [seed, model] = GetParam();
  FuzzCase fuzz = MakeCase(static_cast<uint64_t>(seed) * 2654435761u);

  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());

  auto plain = LowerPlan(*fuzz.plan, *fuzz.catalog, *gpu);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto fused = LowerPlan(*fuzz.plan, *fuzz.catalog, *gpu);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();

  ExecutionOptions options;
  options.model = model;
  options.chunk_elems = 257;  // deliberately odd chunking
  options.fusion = FusionMode::kOn;
  auto report = ApplyFusion(&*fused, options, &manager);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  QueryExecutor executor(&manager);
  auto run_plain = executor.Run(plain->graph.get(), options);
  ASSERT_TRUE(run_plain.ok()) << run_plain.status().ToString();
  auto run_fused = executor.Run(fused->graph.get(), options);
  ASSERT_TRUE(run_fused.ok()) << run_fused.status().ToString();

  auto want = EvalPlan(*fuzz.plan, *fuzz.catalog);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  for (const auto& [name, want_groups] : *want) {
    ASSERT_TRUE(plain->nodes.count(name)) << name;
    ASSERT_TRUE(fused->nodes.count(name)) << name;
    const int plain_node = plain->nodes.at(name);
    const int fused_node = fused->nodes.at(name);
    if (fuzz.plan->kind == LogicalNode::Kind::kGroupBy) {
      auto a = run_plain->GroupResults(plain_node);
      auto b = run_fused->GroupResults(fused_node);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(*a, *b) << "aggregate " << name;
    } else {
      auto a = run_plain->AggValue(plain_node);
      auto b = run_fused->AggValue(fused_node);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(*a, *b) << "aggregate " << name;
    }
  }
}

// The property test above is vacuous if the corpus never actually fuses
// anything; assert the random plans do produce fused groups.
TEST(FusionCoverage, CorpusProducesFusedGroups) {
  int groups = 0;
  int fused_nodes = 0;
  for (int seed = 1; seed <= 60; ++seed) {
    FuzzCase fuzz = MakeCase(static_cast<uint64_t>(seed) * 2654435761u);
    auto bundle = LowerPlan(*fuzz.plan, *fuzz.catalog, /*device=*/0);
    ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
    ExecutionOptions options;
    options.fusion = FusionMode::kOn;
    auto report = ApplyFusion(&*bundle, options);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    groups += report->groups;
    fused_nodes += report->nodes_fused;
  }
  EXPECT_GT(groups, 0);
  EXPECT_GE(fused_nodes, 2 * groups);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PlanFuzz,
    ::testing::Combine(
        ::testing::Range(1, 61),
        ::testing::Values(ExecutionModelKind::kChunked,
                          ExecutionModelKind::kFourPhasePipelined)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == ExecutionModelKind::kChunked
                  ? "_chunked"
                  : "_fourphasepipe");
    });

}  // namespace
}  // namespace adamant::plan
