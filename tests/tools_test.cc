// Tests for the tooling around the executor: chrome-trace export, the
// chunk-size tuner, and failure injection through a flaky device (error
// propagation and resource cleanup).

#include <gtest/gtest.h>

#include <numeric>

#include "adamant/adamant.h"
#include "runtime/chunk_tuner.h"
#include "common/bit_util.h"
#include "sim/trace_export.h"

namespace adamant {
namespace {

// --- Chrome trace export ---

TEST(TraceExport, EmitsThreadsAndEvents) {
  sim::ResourceTimeline h2d("gpu.h2d");
  sim::ResourceTimeline compute("gpu.compute");
  h2d.set_tracing(true);
  compute.set_tracing(true);
  h2d.Schedule(0, 100, "chunk0");
  compute.Schedule(100, 40, "filter_bitmap");
  h2d.Schedule(100, 100, "chunk1");

  std::string json = sim::ToChromeTrace({&h2d, &compute});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("gpu.h2d"), std::string::npos);
  EXPECT_NE(json.find("gpu.compute"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"chunk1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"filter_bitmap\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":40"), std::string::npos);
  // Valid-ish JSON: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, EscapesQuotesAndSkipsNull) {
  sim::ResourceTimeline timeline("t\"x");
  timeline.set_tracing(true);
  timeline.Schedule(0, 1, "label\"quoted");
  std::string json = sim::ToChromeTrace({nullptr, &timeline});
  EXPECT_NE(json.find("t\\\"x"), std::string::npos);
  EXPECT_NE(json.find("label\\\"quoted"), std::string::npos);
}

TEST(TraceExport, FullQueryTraceRoundTrip) {
  auto catalog = tpch::Generate(
      {.scale_factor = 0.002, .include_dimension_tables = false});
  ASSERT_TRUE(catalog.ok());
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  manager.device(*gpu)->transfer_timeline().set_tracing(true);
  manager.device(*gpu)->compute_timeline().set_tracing(true);

  auto bundle = plan::BuildQ6(**catalog, {}, *gpu);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kFourPhasePipelined;
  options.chunk_elems = 512;
  QueryExecutor executor(&manager);
  ASSERT_TRUE(executor.Run(bundle->graph.get(), options).ok());

  std::string json = sim::ToChromeTrace(
      {&manager.device(*gpu)->transfer_timeline(),
       &manager.device(*gpu)->compute_timeline()});
  EXPECT_NE(json.find("\"name\":\"h2d\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"filter_bitmap\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"agg_block\""), std::string::npos);
}

// --- Chunk tuner ---

TEST(ChunkTuner, ScalesInverselyWithRowWidth) {
  auto catalog = tpch::Generate(
      {.scale_factor = 0.002, .include_dimension_tables = false});
  ASSERT_TRUE(catalog.ok());
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  // Q6 reads 4 lineitem columns; Q3's widest pipeline also reads several —
  // both should land in a sane power-of-two range.
  auto q6 = plan::BuildQ6(**catalog, {}, *gpu);
  ASSERT_TRUE(q6.ok());
  auto chunk6 = SuggestChunkElems(*manager.device(*gpu), *q6->graph);
  ASSERT_TRUE(chunk6.ok());
  EXPECT_TRUE(bit_util::IsPowerOfTwo(*chunk6));
  EXPECT_GE(*chunk6, size_t{1} << 16);
  EXPECT_LE(*chunk6, size_t{1} << 26);
  // The paper's 2^25 on an 11 GiB GPU is within 2x of the suggestion.
  EXPECT_GE(*chunk6, size_t{1} << 24);
}

TEST(ChunkTuner, SmallerDeviceSmallerChunks) {
  auto catalog = tpch::Generate(
      {.scale_factor = 0.002, .include_dimension_tables = false});
  ASSERT_TRUE(catalog.ok());
  auto ctx = std::make_shared<SimContext>();
  auto model = sim::MakePerfModel(sim::DriverKind::kCudaGpu,
                                  sim::HardwareSetup::kSetup1);
  model.device_memory_bytes = size_t{512} << 20;  // tiny embedded GPU
  SimulatedDevice small("small_gpu", model, SdkFormat::kCudaDevPtr, false,
                        ctx);
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  auto q6 = plan::BuildQ6(**catalog, {}, *gpu);
  ASSERT_TRUE(q6.ok());
  auto big_chunk = SuggestChunkElems(*manager.device(*gpu), *q6->graph);
  auto small_chunk = SuggestChunkElems(small, *q6->graph);
  ASSERT_TRUE(big_chunk.ok() && small_chunk.ok());
  EXPECT_LT(*small_chunk, *big_chunk);
}

TEST(ChunkTuner, SuggestedChunkRunsCorrectly) {
  auto catalog = tpch::Generate(
      {.scale_factor = 0.002, .include_dimension_tables = false});
  ASSERT_TRUE(catalog.ok());
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  auto bundle = plan::BuildQ6(**catalog, {}, *gpu);
  ASSERT_TRUE(bundle.ok());
  auto chunk = SuggestChunkElems(*manager.device(*gpu), *bundle->graph);
  ASSERT_TRUE(chunk.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kFourPhaseChunked;
  options.chunk_elems = *chunk;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(*plan::ExtractQ6(*bundle, *exec),
            *tpch::Q6Reference(**catalog, {}));
}

// --- Failure injection ---

/// A device whose nth interface call of a chosen kind fails — models
/// transient driver/transfer errors.
class FlakyDevice : public SimulatedDevice {
 public:
  enum class FailPoint { kNone, kPlaceData, kExecute, kPrepareMemory };

  FlakyDevice(std::shared_ptr<SimContext> ctx)
      : SimulatedDevice("flaky",
                        sim::MakePerfModel(sim::DriverKind::kCudaGpu,
                                           sim::HardwareSetup::kSetup1),
                        SdkFormat::kCudaDevPtr, false, std::move(ctx)) {}

  void FailOn(FailPoint point, int countdown) {
    fail_point_ = point;
    countdown_ = countdown;
  }

  Status PlaceData(BufferId dst, const void* src, size_t bytes,
                   size_t dst_offset) override {
    if (ShouldFail(FailPoint::kPlaceData)) {
      return Status::IOError("injected DMA failure");
    }
    return SimulatedDevice::PlaceData(dst, src, bytes, dst_offset);
  }

  Status Execute(const KernelLaunch& launch) override {
    if (ShouldFail(FailPoint::kExecute)) {
      return Status::ExecutionError("injected kernel launch failure");
    }
    return SimulatedDevice::Execute(launch);
  }

  Result<BufferId> PrepareMemory(size_t bytes) override {
    if (ShouldFail(FailPoint::kPrepareMemory)) {
      return Status::OutOfMemory("injected allocation failure");
    }
    return SimulatedDevice::PrepareMemory(bytes);
  }

 private:
  bool ShouldFail(FailPoint point) {
    if (fail_point_ != point) return false;
    return --countdown_ == 0;
  }

  FailPoint fail_point_ = FailPoint::kNone;
  int countdown_ = 0;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto device = std::make_unique<FlakyDevice>(manager_.sim_context());
    flaky_ = device.get();
    auto id = manager_.AddDevice(std::move(device));
    ASSERT_TRUE(id.ok());
    device_ = *id;
    ASSERT_TRUE(BindStandardKernels(flaky_).ok());
    std::vector<int32_t> values(4096);
    std::iota(values.begin(), values.end(), 0);
    col_ = Column::FromVector("v", values);
  }

  PrimitiveGraph MakePlan() {
    PrimitiveGraph graph;
    NodeConfig fcfg;
    fcfg.cmp_op = CmpOp::kLt;
    fcfg.lo = 1000;
    int f = graph.AddNode(PrimitiveKind::kFilterBitmap, device_, fcfg);
    int m = graph.AddNode(PrimitiveKind::kMaterialize, device_, {});
    NodeConfig acfg;
    acfg.agg_op = AggOp::kSum;
    int agg = graph.AddNode(PrimitiveKind::kAggBlock, device_, acfg);
    EXPECT_TRUE(graph.ConnectScan(col_, f, 0).ok());
    EXPECT_TRUE(graph.ConnectScan(col_, m, 0).ok());
    EXPECT_TRUE(graph.Connect(f, 0, m, 1).ok());
    EXPECT_TRUE(graph.Connect(m, 0, agg, 0).ok());
    agg_ = agg;
    return graph;
  }

  Result<QueryExecution> Run(PrimitiveGraph* graph) {
    ExecutionOptions options;
    options.model = ExecutionModelKind::kChunked;
    options.chunk_elems = 512;
    QueryExecutor executor(&manager_);
    return executor.Run(graph, options);
  }

  DeviceManager manager_;
  FlakyDevice* flaky_ = nullptr;
  DeviceId device_ = 0;
  ColumnPtr col_;
  int agg_ = -1;
};

TEST_F(FaultInjectionTest, TransferFailureMidQueryPropagatesAndCleansUp) {
  PrimitiveGraph graph = MakePlan();
  flaky_->FailOn(FlakyDevice::FailPoint::kPlaceData, 5);  // mid-run chunk
  auto exec = Run(&graph);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsIOError());
  EXPECT_NE(exec.status().message().find("injected DMA failure"),
            std::string::npos);
  EXPECT_EQ(flaky_->device_arena().used(), 0u) << "no leaked device memory";
  EXPECT_EQ(flaky_->pinned_arena().used(), 0u);
}

TEST_F(FaultInjectionTest, KernelFailureCarriesNodeContext) {
  PrimitiveGraph graph = MakePlan();
  flaky_->FailOn(FlakyDevice::FailPoint::kExecute, 7);
  auto exec = Run(&graph);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsExecutionError());
  EXPECT_EQ(flaky_->device_arena().used(), 0u);
}

TEST_F(FaultInjectionTest, AllocationFailureSurfacesAsOom) {
  PrimitiveGraph graph = MakePlan();
  flaky_->FailOn(FlakyDevice::FailPoint::kPrepareMemory, 3);
  auto exec = Run(&graph);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsOutOfMemory());
  EXPECT_EQ(flaky_->device_arena().used(), 0u);
}

TEST_F(FaultInjectionTest, RecoversOnRetryWithoutFault) {
  PrimitiveGraph graph = MakePlan();
  flaky_->FailOn(FlakyDevice::FailPoint::kExecute, 4);
  ASSERT_FALSE(Run(&graph).ok());
  // The fault was one-shot; a rerun of the same plan succeeds.
  PrimitiveGraph fresh = MakePlan();
  auto exec = Run(&fresh);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*exec->AggValue(agg_), int64_t{999} * 1000 / 2);
}

}  // namespace
}  // namespace adamant
