// Cross-model parity matrix: Q3/Q4/Q6 must produce bit-identical extracted
// results under every execution model — including device-parallel split
// across two simulated devices — and the admission-control footprint
// estimate must upper-bound the observed device memory high water for each
// model (the invariant the service layer's budgets rely on).

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "adamant/adamant.h"

namespace adamant {
namespace {

// CI's sanitizer job reruns this whole binary with ADAMANT_FUSION=on: every
// matrix test then executes fused plans under ASan/UBSan, re-checking the
// same bit-identity invariants. Bundle node ids are remapped in place, so
// result extraction keeps working on the fused graph.
Status ApplyEnvFusion(plan::PlanBundle* bundle) {
  const char* env = std::getenv("ADAMANT_FUSION");
  if (env == nullptr || std::string(env) != "on") return Status::OK();
  ExecutionOptions options;
  options.fusion = FusionMode::kOn;
  return plan::ApplyFusion(bundle, options).status();
}

struct MatrixFixture {
  std::shared_ptr<Catalog> catalog;

  static const MatrixFixture& Get() {
    static const MatrixFixture* const kFixture = [] {
      auto* fixture = new MatrixFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

const ExecutionModelKind kAllModels[] = {
    ExecutionModelKind::kOperatorAtATime,
    ExecutionModelKind::kChunked,
    ExecutionModelKind::kPipelined,
    ExecutionModelKind::kFourPhaseChunked,
    ExecutionModelKind::kFourPhasePipelined,
    ExecutionModelKind::kDeviceParallel,
};

// Two identical simulated GPUs: models run on device 0; device-parallel
// splits across both.
std::unique_ptr<DeviceManager> TwoGpuManager() {
  auto manager = std::make_unique<DeviceManager>();
  for (int i = 0; i < 2; ++i) {
    auto device = manager->AddDriver(sim::DriverKind::kCudaGpu,
                                     "cuda_gpu." + std::to_string(i));
    ADAMANT_CHECK(device.ok()) << device.status().ToString();
    ADAMANT_CHECK(BindStandardKernels(manager->device(*device)).ok());
  }
  return manager;
}

ExecutionOptions OptionsFor(
    ExecutionModelKind model,
    KernelVariantRequest variant = KernelVariantRequest::kAuto) {
  ExecutionOptions options;
  options.model = model;
  options.chunk_elems = 1024;  // several chunks even at SF 0.002
  options.kernel_variant = variant;
  if (model == ExecutionModelKind::kDeviceParallel) {
    options.device_set = {0, 1};
  }
  if (model == ExecutionModelKind::kPipelined ||
      model == ExecutionModelKind::kFourPhasePipelined) {
    options.pipeline_depth = 2;
  }
  return options;
}

Result<QueryExecution> RunModel(DeviceManager* manager,
                                const plan::PlanBundle& bundle,
                                ExecutionModelKind model) {
  QueryExecutor executor(manager);
  return executor.Run(bundle.graph.get(), OptionsFor(model));
}

TEST(ParityMatrixTest, Q6AllModelsBitIdentical) {
  const auto& fixture = MatrixFixture::Get();
  auto manager = TwoGpuManager();
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
  auto want = tpch::Q6Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  for (ExecutionModelKind model : kAllModels) {
    auto exec = RunModel(manager.get(), *bundle, model);
    ASSERT_TRUE(exec.ok()) << ExecutionModelName(model) << ": "
                           << exec.status().ToString();
    auto revenue = plan::ExtractQ6(*bundle, *exec);
    ASSERT_TRUE(revenue.ok()) << ExecutionModelName(model);
    EXPECT_EQ(*revenue, *want) << ExecutionModelName(model);
  }
}

TEST(ParityMatrixTest, Q3AllModelsBitIdentical) {
  const auto& fixture = MatrixFixture::Get();
  auto manager = TwoGpuManager();
  auto bundle = plan::BuildQ3(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
  auto want = tpch::Q3Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  for (ExecutionModelKind model : kAllModels) {
    auto exec = RunModel(manager.get(), *bundle, model);
    ASSERT_TRUE(exec.ok()) << ExecutionModelName(model) << ": "
                           << exec.status().ToString();
    auto rows = plan::ExtractQ3(*bundle, *exec, *fixture.catalog, {});
    ASSERT_TRUE(rows.ok()) << ExecutionModelName(model);
    EXPECT_EQ(*rows, *want) << ExecutionModelName(model);
  }
}

TEST(ParityMatrixTest, Q4AllModelsBitIdentical) {
  const auto& fixture = MatrixFixture::Get();
  auto manager = TwoGpuManager();
  auto bundle = plan::BuildQ4(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
  auto want = tpch::Q4Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  for (ExecutionModelKind model : kAllModels) {
    auto exec = RunModel(manager.get(), *bundle, model);
    ASSERT_TRUE(exec.ok()) << ExecutionModelName(model) << ": "
                           << exec.status().ToString();
    auto rows = plan::ExtractQ4(*bundle, *exec);
    ASSERT_TRUE(rows.ok()) << ExecutionModelName(model);
    EXPECT_EQ(*rows, *want) << ExecutionModelName(model);
  }
}

TEST(ParityMatrixTest, DeviceParallelSplitsAcrossBothDevices) {
  const auto& fixture = MatrixFixture::Get();
  auto manager = TwoGpuManager();
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
  auto exec =
      RunModel(manager.get(), *bundle, ExecutionModelKind::kDeviceParallel);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->stats.chunks_by_device.size(), 2u);
  size_t split = 0;
  for (const auto& [device, chunks] : exec->stats.chunks_by_device) {
    EXPECT_GT(chunks, 0u) << "device " << device << " got no chunks";
    split += chunks;
  }
  EXPECT_EQ(split, exec->stats.chunks);
}

// --- Parallel kernel variants ----------------------------------------------

// The whole matrix again with the worker-pool kernel variants forced on:
// every model x Q3/Q4/Q6 must still match the host reference bit for bit.
// (The fixture devices are scalar-native GPUs, so this genuinely flips the
// executed Task-layer implementation rather than re-running the default.)
TEST(ParityMatrixTest, AllModelsBitIdenticalWithParallelVariants) {
  const auto& fixture = MatrixFixture::Get();
  struct Case {
    const char* name;
    std::function<Result<plan::PlanBundle>(DeviceId)> build;
    std::function<void(const plan::PlanBundle&, const QueryExecution&,
                       ExecutionModelKind)>
        check;
  };
  const Catalog& catalog = *fixture.catalog;
  const Case kCases[] = {
      {"Q3", [&](DeviceId d) { return plan::BuildQ3(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           ExecutionModelKind model) {
         auto want = tpch::Q3Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto rows = plan::ExtractQ3(bundle, exec, catalog, {});
         ASSERT_TRUE(rows.ok()) << ExecutionModelName(model);
         EXPECT_EQ(*rows, *want) << "Q3/" << ExecutionModelName(model);
       }},
      {"Q4", [&](DeviceId d) { return plan::BuildQ4(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           ExecutionModelKind model) {
         auto want = tpch::Q4Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto rows = plan::ExtractQ4(bundle, exec);
         ASSERT_TRUE(rows.ok()) << ExecutionModelName(model);
         EXPECT_EQ(*rows, *want) << "Q4/" << ExecutionModelName(model);
       }},
      {"Q6", [&](DeviceId d) { return plan::BuildQ6(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           ExecutionModelKind model) {
         auto want = tpch::Q6Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto revenue = plan::ExtractQ6(bundle, exec);
         ASSERT_TRUE(revenue.ok()) << ExecutionModelName(model);
         EXPECT_EQ(*revenue, *want) << "Q6/" << ExecutionModelName(model);
       }}};
  auto manager = TwoGpuManager();
  for (const Case& c : kCases) {
    auto bundle = c.build(0);
    ASSERT_TRUE(bundle.ok());
    ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
    for (ExecutionModelKind model : kAllModels) {
      QueryExecutor executor(manager.get());
      auto exec = executor.Run(
          bundle->graph.get(),
          OptionsFor(model, KernelVariantRequest::kParallel));
      ASSERT_TRUE(exec.ok()) << c.name << "/" << ExecutionModelName(model)
                             << ": " << exec.status().ToString();
      c.check(*bundle, *exec, model);
      // The stats must report what actually ran.
      for (const DeviceRunStats& device : exec->stats.devices) {
        if (device.execute_calls == 0) continue;
        EXPECT_EQ(device.kernel_variant, "parallel")
            << c.name << "/" << ExecutionModelName(model);
        EXPECT_GT(device.parallel_launches, 0u)
            << c.name << "/" << ExecutionModelName(model);
      }
    }
  }
}

// --- Fused composites ------------------------------------------------------

// The whole matrix again with the fusion pass forced on: every model x
// Q3/Q4/Q6 must match the host reference bit for bit when the fusable
// chains run as single FUSED / FUSED_AGG composites, and the per-device
// stats must show those composites actually launching.
TEST(ParityMatrixTest, AllModelsBitIdenticalWithFusionForced) {
  const auto& fixture = MatrixFixture::Get();
  struct Case {
    const char* name;
    std::function<Result<plan::PlanBundle>(DeviceId)> build;
    std::function<void(const plan::PlanBundle&, const QueryExecution&,
                       ExecutionModelKind)>
        check;
  };
  const Catalog& catalog = *fixture.catalog;
  const Case kCases[] = {
      {"Q3", [&](DeviceId d) { return plan::BuildQ3(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           ExecutionModelKind model) {
         auto want = tpch::Q3Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto rows = plan::ExtractQ3(bundle, exec, catalog, {});
         ASSERT_TRUE(rows.ok()) << ExecutionModelName(model);
         EXPECT_EQ(*rows, *want) << "Q3/" << ExecutionModelName(model);
       }},
      {"Q4", [&](DeviceId d) { return plan::BuildQ4(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           ExecutionModelKind model) {
         auto want = tpch::Q4Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto rows = plan::ExtractQ4(bundle, exec);
         ASSERT_TRUE(rows.ok()) << ExecutionModelName(model);
         EXPECT_EQ(*rows, *want) << "Q4/" << ExecutionModelName(model);
       }},
      {"Q6", [&](DeviceId d) { return plan::BuildQ6(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           ExecutionModelKind model) {
         auto want = tpch::Q6Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto revenue = plan::ExtractQ6(bundle, exec);
         ASSERT_TRUE(revenue.ok()) << ExecutionModelName(model);
         EXPECT_EQ(*revenue, *want) << "Q6/" << ExecutionModelName(model);
       }}};
  auto manager = TwoGpuManager();
  for (const Case& c : kCases) {
    auto bundle = c.build(0);
    ASSERT_TRUE(bundle.ok());
    ExecutionOptions fuse_options;
    fuse_options.fusion = FusionMode::kOn;
    auto report = plan::ApplyFusion(&*bundle, fuse_options, manager.get());
    ASSERT_TRUE(report.ok()) << c.name << ": " << report.status().ToString();
    ASSERT_GT(report->groups, 0) << c.name << " produced no fused groups";
    for (ExecutionModelKind model : kAllModels) {
      QueryExecutor executor(manager.get());
      auto exec = executor.Run(bundle->graph.get(), OptionsFor(model));
      ASSERT_TRUE(exec.ok()) << c.name << "/" << ExecutionModelName(model)
                             << ": " << exec.status().ToString();
      c.check(*bundle, *exec, model);
      size_t fused_launches = 0;
      for (const DeviceRunStats& device : exec->stats.devices) {
        fused_launches += device.fused_launches;
      }
      EXPECT_GT(fused_launches, 0u)
          << c.name << "/" << ExecutionModelName(model);
    }
  }
}

// --- Footprint estimate upper-bounds observed high water -------------------

TEST(ParityMatrixTest, EstimateUpperBoundsHighWaterForAllModels) {
  const auto& fixture = MatrixFixture::Get();
  struct Case {
    const char* name;
    std::function<Result<plan::PlanBundle>(DeviceId)> build;
  };
  const Catalog& catalog = *fixture.catalog;
  const Case kCases[] = {
      {"Q3", [&](DeviceId d) { return plan::BuildQ3(catalog, {}, d); }},
      {"Q4", [&](DeviceId d) { return plan::BuildQ4(catalog, {}, d); }},
      {"Q6", [&](DeviceId d) { return plan::BuildQ6(catalog, {}, d); }}};
  for (const Case& c : kCases) {
    for (ExecutionModelKind model : kAllModels) {
      // Fresh manager per run so high-water marks are not inherited.
      auto manager = TwoGpuManager();
      auto bundle = c.build(0);
      ASSERT_TRUE(bundle.ok());
      ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
      const ExecutionOptions options = OptionsFor(model);
      auto estimate = EstimateDeviceMemoryBytes(*bundle->graph, options,
                                                manager->data_scale());
      ASSERT_TRUE(estimate.ok()) << c.name << "/" << ExecutionModelName(model);
      QueryExecutor executor(manager.get());
      auto exec = executor.Run(bundle->graph.get(), options);
      ASSERT_TRUE(exec.ok()) << c.name << "/" << ExecutionModelName(model)
                             << ": " << exec.status().ToString();
      for (const DeviceRunStats& device : exec->stats.devices) {
        EXPECT_GE(*estimate, device.device_mem_high_water)
            << c.name << "/" << ExecutionModelName(model) << " on "
            << device.name;
      }
    }
  }
}

// --- Heterogeneous split ----------------------------------------------------

// Fast + slow device pair for the heterogeneous matrix: device 0 is the
// stock cuda_gpu driver, device 1 is the same model with 4x slower compute
// and a slower bus (the bench_hetero_split profile), so the cost-ratio
// search genuinely produces an asymmetric split.
std::unique_ptr<DeviceManager> HeteroManager() {
  auto manager = std::make_unique<DeviceManager>();
  auto fast = manager->AddDriver(sim::DriverKind::kCudaGpu, "cuda_fast.0");
  ADAMANT_CHECK(fast.ok()) << fast.status().ToString();
  ADAMANT_CHECK(BindStandardKernels(manager->device(*fast)).ok());
  DriverProps props =
      MakeDriverProps(sim::DriverKind::kCudaGpu, manager->setup());
  props.model = sim::ScalePerfModel(props.model, 0.25, 0.7);
  auto slow = manager->AddDevice(std::make_unique<SimulatedDevice>(
      "cuda_slow.1", std::move(props.model), props.format,
      props.runtime_compile, manager->sim_context()));
  ADAMANT_CHECK(slow.ok()) << slow.status().ToString();
  ADAMANT_CHECK(BindStandardKernels(manager->device(*slow)).ok());
  return manager;
}

// Q3/Q4/Q6 across the fast+slow pair, cost-ratio split, with runtime
// rebalancing on and off: every run must match the host reference bit for
// bit — stealing may move chunks between devices but never changes results.
TEST(ParityMatrixTest, HeterogeneousSplitBitIdenticalWithAndWithoutRebalance) {
  const auto& fixture = MatrixFixture::Get();
  const Catalog& catalog = *fixture.catalog;
  struct Case {
    const char* name;
    std::function<Result<plan::PlanBundle>(DeviceId)> build;
    std::function<void(const plan::PlanBundle&, const QueryExecution&,
                       const char*)>
        check;
  };
  const Case kCases[] = {
      {"Q3", [&](DeviceId d) { return plan::BuildQ3(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           const char* tag) {
         auto want = tpch::Q3Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto rows = plan::ExtractQ3(bundle, exec, catalog, {});
         ASSERT_TRUE(rows.ok()) << tag;
         EXPECT_EQ(*rows, *want) << tag;
       }},
      {"Q4", [&](DeviceId d) { return plan::BuildQ4(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           const char* tag) {
         auto want = tpch::Q4Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto rows = plan::ExtractQ4(bundle, exec);
         ASSERT_TRUE(rows.ok()) << tag;
         EXPECT_EQ(*rows, *want) << tag;
       }},
      {"Q6", [&](DeviceId d) { return plan::BuildQ6(catalog, {}, d); },
       [&](const plan::PlanBundle& bundle, const QueryExecution& exec,
           const char* tag) {
         auto want = tpch::Q6Reference(catalog, {});
         ASSERT_TRUE(want.ok());
         auto revenue = plan::ExtractQ6(bundle, exec);
         ASSERT_TRUE(revenue.ok()) << tag;
         EXPECT_EQ(*revenue, *want) << tag;
       }}};
  auto manager = HeteroManager();
  for (const Case& c : kCases) {
    auto bundle = c.build(0);
    ASSERT_TRUE(bundle.ok());
    ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
    for (bool rebalance : {true, false}) {
      SCOPED_TRACE(std::string(c.name) +
                   (rebalance ? "/rebalance" : "/static"));
      ExecutionOptions options = OptionsFor(ExecutionModelKind::kDeviceParallel);
      options.split_rebalance = rebalance;
      QueryExecutor executor(manager.get());
      auto exec = executor.Run(bundle->graph.get(), options);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      // The driver must have recorded an asymmetric cost-ratio split for
      // the pair (fast share strictly above even).
      ASSERT_EQ(exec->stats.split_ratio_by_device.size(), 2u);
      EXPECT_GT(exec->stats.split_ratio_by_device.begin()->second, 0.5);
      c.check(*bundle, *exec, c.name);
    }
  }
}

// Seeded mid-run cancellation on a deliberately asymmetric split: the
// canceller fires at a randomized point while the rebalancer is stealing
// from the overloaded slow device. Every cancelled run must unwind cleanly
// as Cancelled, and every surviving (and one final clean) run must stay
// bit-identical to the reference.
TEST(ParityMatrixTest, HeterogeneousSeededCancellationOnAsymmetricSplit) {
  const auto& fixture = MatrixFixture::Get();
  auto manager = HeteroManager();
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ASSERT_TRUE(ApplyEnvFusion(&*bundle).ok());
  auto want = tpch::Q6Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());

  std::mt19937 rng(29);
  std::uniform_int_distribution<int> delay_us(0, 4000);
  size_t cancelled_runs = 0;
  for (int iter = 0; iter < 6; ++iter) {
    CancelToken token;
    // Iteration 0 cancels before dispatch (deterministically Cancelled);
    // the rest fire at a randomized point of the run.
    if (iter == 0) token.Cancel(CancelCause::kUser, "pre-dispatch cancel");
    std::thread canceller([&token, delay = delay_us(rng)] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
      token.Cancel(CancelCause::kUser, "hetero soak cancel");
    });
    ExecutionOptions options = OptionsFor(ExecutionModelKind::kDeviceParallel);
    // Mis-set split (most work on the slow device) so rebalancing steals
    // while the cancel lands.
    options.device_split = {0.2, 0.8};
    options.cancel_token = &token;
    QueryExecutor executor(manager.get());
    auto exec = executor.Run(bundle->graph.get(), options);
    canceller.join();
    if (exec.ok()) {
      auto revenue = plan::ExtractQ6(*bundle, *exec);
      ASSERT_TRUE(revenue.ok());
      EXPECT_EQ(*revenue, *want) << "surviving run, iter " << iter;
    } else {
      EXPECT_TRUE(exec.status().IsCancelled()) << exec.status().ToString();
      ++cancelled_runs;
    }
  }
  // A clean run after the soak: the devices are perfectly reusable.
  ExecutionOptions clean = OptionsFor(ExecutionModelKind::kDeviceParallel);
  clean.device_split = {0.2, 0.8};
  QueryExecutor executor(manager.get());
  auto exec = executor.Run(bundle->graph.get(), clean);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto revenue = plan::ExtractQ6(*bundle, *exec);
  ASSERT_TRUE(revenue.ok());
  EXPECT_EQ(*revenue, *want);
  // With a zero-to-4ms fuse across six iterations at least one cancel
  // should land mid-run; if the runs got too fast to ever catch, that is
  // worth noticing rather than silently passing.
  EXPECT_GT(cancelled_runs, 0u);
}

}  // namespace
}  // namespace adamant
