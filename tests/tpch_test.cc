// Tests for the TPC-H generator (spec conformance of the distributions the
// evaluated queries depend on) and the scalar reference queries.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/date.h"
#include "tpch/reference.h"
#include "tpch/tpch_gen.h"

namespace adamant::tpch {
namespace {

const Catalog& TestCatalog() {
  static const Catalog* const kCatalog = [] {
    TpchConfig config;
    config.scale_factor = 0.01;
    auto catalog = Generate(config);
    ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
    // Intentionally leaked singleton (test process lifetime).
    return new Catalog(**catalog);
  }();
  return *kCatalog;
}

TEST(TpchGen, RowCountsScale) {
  EXPECT_EQ(CustomerRows(1.0), 150000);
  EXPECT_EQ(OrdersRows(1.0), 1500000);
  EXPECT_EQ(PartRows(1.0), 200000);
  EXPECT_EQ(SupplierRows(1.0), 10000);
  EXPECT_EQ(PartsuppRows(1.0), 800000);
  EXPECT_EQ(CustomerRows(0.01), 1500);
  EXPECT_EQ(CustomerRows(1e-9), 1) << "fractional SF clamps to >= 1 row";
}

TEST(TpchGen, RejectsNonPositiveScale) {
  TpchConfig config;
  config.scale_factor = 0;
  EXPECT_TRUE(Generate(config).status().IsInvalidArgument());
}

TEST(TpchGen, AllTablesPresent) {
  const Catalog& catalog = TestCatalog();
  for (const char* name : {"customer", "orders", "lineitem", "part",
                           "supplier", "partsupp", "nation", "region"}) {
    EXPECT_TRUE(catalog.GetTable(name).ok()) << name;
  }
  EXPECT_EQ((*catalog.GetTable("nation"))->num_rows(), 25u);
  EXPECT_EQ((*catalog.GetTable("region"))->num_rows(), 5u);
}

TEST(TpchGen, DimensionTablesOptional) {
  TpchConfig config;
  config.scale_factor = 0.001;
  config.include_dimension_tables = false;
  auto catalog = Generate(config);
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE((*catalog)->GetTable("lineitem").ok());
  EXPECT_TRUE((*catalog)->GetTable("part").status().IsNotFound());
}

TEST(TpchGen, DeterministicForSeed) {
  TpchConfig config;
  config.scale_factor = 0.001;
  auto a = Generate(config);
  auto b = Generate(config);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ca = *(*a)->GetTable("lineitem");
  auto cb = *(*b)->GetTable("lineitem");
  ASSERT_EQ(ca->num_rows(), cb->num_rows());
  auto pa = (*ca->GetColumn("l_extendedprice"))->data<int64_t>();
  auto pb = (*cb->GetColumn("l_extendedprice"))->data<int64_t>();
  for (size_t i = 0; i < ca->num_rows(); ++i) EXPECT_EQ(pa[i], pb[i]);
  config.seed = 42;
  auto c = Generate(config);
  ASSERT_TRUE(c.ok());
  auto cc = *(*c)->GetTable("lineitem");
  bool differs = cc->num_rows() != ca->num_rows();
  if (!differs) {
    auto pc = (*cc->GetColumn("l_extendedprice"))->data<int64_t>();
    for (size_t i = 0; i < ca->num_rows() && !differs; ++i) {
      differs = pa[i] != pc[i];
    }
  }
  EXPECT_TRUE(differs) << "different seed, different data";
}

TEST(TpchGen, KeysDenseAndForeignKeysValid) {
  const Catalog& catalog = TestCatalog();
  auto orders = *catalog.GetTable("orders");
  auto customer = *catalog.GetTable("customer");
  const auto* okey = (*orders->GetColumn("o_orderkey"))->data<int32_t>();
  const auto* ocust = (*orders->GetColumn("o_custkey"))->data<int32_t>();
  const auto n_cust = static_cast<int32_t>(customer->num_rows());
  for (size_t i = 0; i < orders->num_rows(); ++i) {
    EXPECT_EQ(okey[i], static_cast<int32_t>(i + 1));
    EXPECT_GE(ocust[i], 1);
    EXPECT_LE(ocust[i], n_cust);
  }
  auto lineitem = *catalog.GetTable("lineitem");
  const auto* lkey = (*lineitem->GetColumn("l_orderkey"))->data<int32_t>();
  const auto n_orders = static_cast<int32_t>(orders->num_rows());
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    EXPECT_GE(lkey[i], 1);
    EXPECT_LE(lkey[i], n_orders);
  }
}

TEST(TpchGen, LineitemSpecRanges) {
  const Catalog& catalog = TestCatalog();
  auto lineitem = *catalog.GetTable("lineitem");
  const size_t n = lineitem->num_rows();
  const auto* qty = (*lineitem->GetColumn("l_quantity"))->data<int32_t>();
  const auto* disc = (*lineitem->GetColumn("l_discount"))->data<int32_t>();
  const auto* tax = (*lineitem->GetColumn("l_tax"))->data<int32_t>();
  const auto* ship = (*lineitem->GetColumn("l_shipdate"))->data<int32_t>();
  const auto* commit = (*lineitem->GetColumn("l_commitdate"))->data<int32_t>();
  const auto* receipt =
      (*lineitem->GetColumn("l_receiptdate"))->data<int32_t>();
  const int32_t start = Date::FromYmd(1992, 1, 1).days();
  const int32_t end = Date::FromYmd(1998, 12, 31).days();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(qty[i], 1);
    EXPECT_LE(qty[i], 50);
    EXPECT_GE(disc[i], 0);
    EXPECT_LE(disc[i], 10);
    EXPECT_GE(tax[i], 0);
    EXPECT_LE(tax[i], 8);
    EXPECT_GE(ship[i], start);
    EXPECT_LE(ship[i], end);
    EXPECT_GT(receipt[i], ship[i]) << "receipt follows shipment";
    EXPECT_LE(receipt[i], end);
    EXPECT_GT(commit[i], start);
  }
}

TEST(TpchGen, ExtendedPriceFollowsRetailFormula) {
  const Catalog& catalog = TestCatalog();
  auto lineitem = *catalog.GetTable("lineitem");
  const auto* qty = (*lineitem->GetColumn("l_quantity"))->data<int32_t>();
  const auto* pk = (*lineitem->GetColumn("l_partkey"))->data<int32_t>();
  const auto* price =
      (*lineitem->GetColumn("l_extendedprice"))->data<int64_t>();
  for (size_t i = 0; i < lineitem->num_rows(); i += 7) {
    EXPECT_EQ(price[i], qty[i] * RetailPriceCents(pk[i]));
  }
}

TEST(TpchGen, RetailPriceSpecValues) {
  // Spec 4.2.3 spot checks.
  EXPECT_EQ(RetailPriceCents(1), 90000 + 0 + 100 * 1);
  EXPECT_EQ(RetailPriceCents(1000), 90000 + 100 + 0);
  EXPECT_EQ(RetailPriceCents(10), 90000 + 1 + 100 * 10);
}

TEST(TpchGen, DictionariesDecodable) {
  const Catalog& catalog = TestCatalog();
  auto customer = *catalog.GetTable("customer");
  const StringDictionary* seg = customer->FindDictionary("c_mktsegment");
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size(), 5u);
  EXPECT_TRUE(seg->Lookup("BUILDING").ok());
  auto orders = *catalog.GetTable("orders");
  const StringDictionary* prio = orders->FindDictionary("o_orderpriority");
  ASSERT_NE(prio, nullptr);
  EXPECT_EQ(prio->size(), 5u);
  // Priorities interned in spec order, so code k names priority k+1.
  EXPECT_EQ(prio->GetString(0), "1-URGENT");
  EXPECT_EQ(prio->GetString(4), "5-LOW");
  auto lineitem = *catalog.GetTable("lineitem");
  const StringDictionary* rf = lineitem->FindDictionary("l_returnflag");
  ASSERT_NE(rf, nullptr);
  EXPECT_EQ(rf->size(), 3u);  // R, A, N
}

TEST(TpchGen, SelectivityNearSpec) {
  const Catalog& catalog = TestCatalog();
  auto lineitem = *catalog.GetTable("lineitem");
  const auto* ship = (*lineitem->GetColumn("l_shipdate"))->data<int32_t>();
  Q6Params params;
  size_t in_window = 0;
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    in_window += (ship[i] >= params.date && ship[i] < params.date_end()) ? 1 : 0;
  }
  const double frac =
      static_cast<double>(in_window) / static_cast<double>(lineitem->num_rows());
  EXPECT_NEAR(frac, 1.0 / 7.0, 0.03) << "one year of a ~7-year window";
}

TEST(TpchGen, ShipModeAndPartTypeDictionaries) {
  const Catalog& catalog = TestCatalog();
  auto lineitem = *catalog.GetTable("lineitem");
  const StringDictionary* modes = lineitem->FindDictionary("l_shipmode");
  ASSERT_NE(modes, nullptr);
  EXPECT_EQ(modes->size(), 7u);
  EXPECT_TRUE(modes->Lookup("MAIL").ok());
  EXPECT_TRUE(modes->Lookup("SHIP").ok());
  const auto* shipmode = (*lineitem->GetColumn("l_shipmode"))->data<int32_t>();
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    EXPECT_GE(shipmode[i], 0);
    EXPECT_LT(shipmode[i], 7);
  }

  auto part = *catalog.GetTable("part");
  const StringDictionary* types = part->FindDictionary("p_type");
  ASSERT_NE(types, nullptr);
  EXPECT_EQ(types->size(), 150u) << "6 x 5 x 5 spec type strings";
  const auto* type = (*part->GetColumn("p_type"))->data<int32_t>();
  const auto* ispromo = (*part->GetColumn("p_ispromo"))->data<int32_t>();
  size_t promos = 0;
  for (size_t i = 0; i < part->num_rows(); ++i) {
    const bool starts_promo =
        types->GetString(type[i]).rfind("PROMO", 0) == 0;
    EXPECT_EQ(ispromo[i] != 0, starts_promo)
        << "pre-decoded flag must match the dictionary string";
    promos += ispromo[i];
  }
  const double frac =
      static_cast<double>(promos) / static_cast<double>(part->num_rows());
  EXPECT_NEAR(frac, 1.0 / 6.0, 0.05) << "PROMO is 1 of 6 leading words";
}

// --- Reference queries ---

TEST(Reference, Q6MatchesManualScan) {
  const Catalog& catalog = TestCatalog();
  Q6Params params;
  auto revenue = Q6Reference(catalog, params);
  ASSERT_TRUE(revenue.ok());
  EXPECT_GT(*revenue, 0);
  // Tighter discount band can only lower revenue.
  Q6Params narrow = params;
  narrow.discount_pct = 0;  // band [-1, 1] keeps only discount 0..1
  auto smaller = Q6Reference(catalog, narrow);
  ASSERT_TRUE(smaller.ok());
  EXPECT_LT(*smaller, *revenue);
}

TEST(Reference, Q4CountsBounded) {
  const Catalog& catalog = TestCatalog();
  Q4Params params;
  auto rows = Q4Reference(catalog, params);
  ASSERT_TRUE(rows.ok());
  EXPECT_LE(rows->size(), 5u);
  int64_t total = 0;
  for (const Q4Row& row : *rows) {
    EXPECT_GE(row.priority, 0);
    EXPECT_LE(row.priority, 4);
    total += row.order_count;
  }
  auto orders = *catalog.GetTable("orders");
  EXPECT_LE(total, static_cast<int64_t>(orders->num_rows()));
  EXPECT_GT(total, 0);
}

TEST(Reference, Q3TopKOrderedByRevenue) {
  const Catalog& catalog = TestCatalog();
  Q3Params params;
  auto rows = Q3Reference(catalog, params);
  ASSERT_TRUE(rows.ok());
  ASSERT_LE(rows->size(), params.limit);
  ASSERT_GT(rows->size(), 0u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_GE((*rows)[i - 1].revenue, (*rows)[i].revenue);
  }
  for (const Q3Row& row : *rows) {
    EXPECT_LT(row.orderdate, params.date)
        << "only orders placed before the cut date qualify";
  }
}

TEST(Reference, Q3UnknownSegmentFails) {
  const Catalog& catalog = TestCatalog();
  Q3Params params;
  params.segment = "SPACESHIPS";
  EXPECT_TRUE(Q3Reference(catalog, params).status().IsNotFound());
}

TEST(Reference, Q1CoversAllLineitemsBelowCutoff) {
  const Catalog& catalog = TestCatalog();
  Q1Params params;
  auto rows = Q1Reference(catalog, params);
  ASSERT_TRUE(rows.ok());
  EXPECT_GE(rows->size(), 3u);
  EXPECT_LE(rows->size(), 6u) << "R/A/N x O/F minus impossible combos";
  int64_t count = 0;
  for (const Q1Row& row : *rows) {
    count += row.count;
    EXPECT_GE(row.sum_disc_price, 0);
    EXPECT_LE(row.sum_disc_price, row.sum_base_price);
    EXPECT_GE(row.sum_charge, row.sum_disc_price);
  }
  auto lineitem = *catalog.GetTable("lineitem");
  EXPECT_LT(count, static_cast<int64_t>(lineitem->num_rows()));
  EXPECT_GT(count,
            static_cast<int64_t>(lineitem->num_rows() * 9 / 10))
      << "the 1998-09-02 cutoff keeps ~98% of lineitems";
}

TEST(Reference, Q5NationsBelongToRegion) {
  const Catalog& catalog = TestCatalog();
  auto rows = Q5Reference(catalog, Q5Params{});
  ASSERT_TRUE(rows.ok());
  ASSERT_GT(rows->size(), 0u);
  EXPECT_LE(rows->size(), 5u) << "at most the region's five nations";
  const char* kAsia[] = {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"};
  for (size_t i = 0; i < rows->size(); ++i) {
    const Q5Row& row = (*rows)[i];
    EXPECT_GT(row.revenue, 0);
    EXPECT_NE(std::find_if(std::begin(kAsia), std::end(kAsia),
                           [&](const char* n) { return row.nation == n; }),
              std::end(kAsia))
        << row.nation;
    if (i > 0) {
      EXPECT_GE((*rows)[i - 1].revenue, row.revenue);
    }
  }
}

TEST(Reference, Q5UnknownRegionFails) {
  const Catalog& catalog = TestCatalog();
  Q5Params params;
  params.region = "ATLANTIS";
  EXPECT_TRUE(Q5Reference(catalog, params).status().IsNotFound());
}

TEST(Reference, Q10TopKOrderedByRevenue) {
  const Catalog& catalog = TestCatalog();
  auto rows = Q10Reference(catalog, Q10Params{});
  ASSERT_TRUE(rows.ok());
  ASSERT_GT(rows->size(), 0u);
  EXPECT_LE(rows->size(), Q10Params{}.limit);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_GE((*rows)[i - 1].revenue, (*rows)[i].revenue);
  }
  auto customer = *catalog.GetTable("customer");
  for (const Q10Row& row : *rows) {
    EXPECT_GE(row.custkey, 1);
    EXPECT_LE(row.custkey, static_cast<int32_t>(customer->num_rows()));
    EXPECT_GT(row.revenue, 0);
  }
}

TEST(Reference, Q12HighPlusLowBoundedByLineitems) {
  const Catalog& catalog = TestCatalog();
  auto rows = Q12Reference(catalog, Q12Params{});
  ASSERT_TRUE(rows.ok());
  EXPECT_LE(rows->size(), 2u) << "two ship modes requested";
  int64_t total = 0;
  for (const Q12Row& row : *rows) {
    EXPECT_GE(row.high_line_count, 0);
    EXPECT_GE(row.low_line_count, 0);
    total += row.high_line_count + row.low_line_count;
  }
  auto lineitem = *catalog.GetTable("lineitem");
  EXPECT_GT(total, 0);
  EXPECT_LT(total, static_cast<int64_t>(lineitem->num_rows()));
}

TEST(Reference, Q12UnknownModeFails) {
  const Catalog& catalog = TestCatalog();
  Q12Params params;
  params.shipmode1 = "TELEPORT";
  EXPECT_TRUE(Q12Reference(catalog, params).status().IsNotFound());
}

TEST(Reference, Q14PromoShareWithinBounds) {
  const Catalog& catalog = TestCatalog();
  auto result = Q14Reference(catalog, Q14Params{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_revenue_cents, 0);
  EXPECT_GE(result->promo_revenue_cents, 0);
  EXPECT_LE(result->promo_revenue_cents, result->total_revenue_cents);
  // PROMO parts are ~1/6 of the population.
  EXPECT_GT(result->promo_pct(), 5.0);
  EXPECT_LT(result->promo_pct(), 30.0);
}

TEST(Reference, Q1SortedByFlagStatus) {
  const Catalog& catalog = TestCatalog();
  auto rows = Q1Reference(catalog, Q1Params{});
  ASSERT_TRUE(rows.ok());
  for (size_t i = 1; i < rows->size(); ++i) {
    const auto& a = (*rows)[i - 1];
    const auto& b = (*rows)[i];
    EXPECT_TRUE(a.returnflag < b.returnflag ||
                (a.returnflag == b.returnflag && a.linestatus < b.linestatus));
  }
}

}  // namespace
}  // namespace adamant::tpch
