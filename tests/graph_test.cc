// Unit tests for the primitive graph: construction, I/O-semantic validation,
// topological ordering, and pipeline splitting.

#include <gtest/gtest.h>

#include "runtime/primitive_graph.h"
#include "storage/column.h"
#include "task/primitive.h"

namespace adamant {
namespace {

ColumnPtr SmallColumn(const std::string& name, size_t n = 8) {
  auto col = std::make_shared<Column>(name, ElementType::kInt32);
  col->Resize(n);
  return col;
}

// --- Table I signatures ---

TEST(Signatures, TableOneComplete) {
  EXPECT_EQ(AllSignatures().size(), static_cast<size_t>(kNumPrimitiveKinds));
  for (const PrimitiveSignature& sig : AllSignatures()) {
    EXPECT_EQ(&GetSignature(sig.kind), &sig);
    EXPECT_FALSE(sig.inputs.empty());
    EXPECT_FALSE(sig.outputs.empty());
  }
}

TEST(Signatures, BreakersPerPaper) {
  // Dagger-marked primitives in Table I.
  EXPECT_TRUE(GetSignature(PrimitiveKind::kAggBlock).pipeline_breaker);
  EXPECT_TRUE(GetSignature(PrimitiveKind::kHashAgg).pipeline_breaker);
  EXPECT_TRUE(GetSignature(PrimitiveKind::kHashBuild).pipeline_breaker);
  EXPECT_TRUE(GetSignature(PrimitiveKind::kSortAgg).pipeline_breaker);
  EXPECT_TRUE(GetSignature(PrimitiveKind::kPrefixSum).pipeline_breaker);
  EXPECT_FALSE(GetSignature(PrimitiveKind::kMap).pipeline_breaker);
  EXPECT_FALSE(GetSignature(PrimitiveKind::kFilterBitmap).pipeline_breaker);
  EXPECT_FALSE(GetSignature(PrimitiveKind::kFilterPosition).pipeline_breaker);
  EXPECT_FALSE(GetSignature(PrimitiveKind::kHashProbe).pipeline_breaker);
  EXPECT_FALSE(GetSignature(PrimitiveKind::kMaterialize).pipeline_breaker);
  EXPECT_FALSE(
      GetSignature(PrimitiveKind::kMaterializePosition).pipeline_breaker);
}

TEST(Signatures, OutputSemantics) {
  EXPECT_EQ(GetSignature(PrimitiveKind::kFilterBitmap).outputs[0],
            DataSemantic::kBitmap);
  EXPECT_EQ(GetSignature(PrimitiveKind::kFilterPosition).outputs[0],
            DataSemantic::kPosition);
  EXPECT_EQ(GetSignature(PrimitiveKind::kHashBuild).outputs[0],
            DataSemantic::kHashTable);
  EXPECT_EQ(GetSignature(PrimitiveKind::kHashProbe).outputs[0],
            DataSemantic::kPosition);
  EXPECT_EQ(GetSignature(PrimitiveKind::kHashProbe).outputs[1],
            DataSemantic::kNumeric);
  EXPECT_EQ(GetSignature(PrimitiveKind::kPrefixSum).outputs[0],
            DataSemantic::kPrefixSum);
}

TEST(Signatures, ValidateEdgeSemantics) {
  // A bitmap may feed MATERIALIZE slot 1 but not slot 0.
  EXPECT_TRUE(ValidateEdge(DataSemantic::kBitmap, PrimitiveKind::kMaterialize,
                           1)
                  .ok());
  EXPECT_TRUE(ValidateEdge(DataSemantic::kBitmap, PrimitiveKind::kMaterialize,
                           0)
                  .IsInvalidArgument());
  // GENERIC bypasses checks in both directions.
  EXPECT_TRUE(
      ValidateEdge(DataSemantic::kGeneric, PrimitiveKind::kMaterialize, 0)
          .ok());
  // Out-of-range slot.
  EXPECT_TRUE(ValidateEdge(DataSemantic::kNumeric, PrimitiveKind::kMap, 5)
                  .IsInvalidArgument());
}

// --- Graph construction & validation ---

TEST(Graph, EmptyGraphInvalid) {
  PrimitiveGraph g;
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(Graph, SimpleChainValidates) {
  PrimitiveGraph g;
  NodeConfig fcfg;
  fcfg.cmp_op = CmpOp::kLt;
  fcfg.lo = 5;
  int f = g.AddNode(PrimitiveKind::kFilterBitmap, 0, fcfg);
  int m = g.AddNode(PrimitiveKind::kMaterialize, 0, {});
  ASSERT_TRUE(g.ConnectScan(SmallColumn("a"), f, 0).ok());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("a2"), m, 0).ok());
  ASSERT_TRUE(g.Connect(f, 0, m, 1).ok());
  EXPECT_TRUE(g.Validate().ok());
}

TEST(Graph, MissingRequiredInput) {
  PrimitiveGraph g;
  int m = g.AddNode(PrimitiveKind::kMaterialize, 0, {});
  ASSERT_TRUE(g.ConnectScan(SmallColumn("a"), m, 0).ok());
  // Missing the bitmap input.
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(Graph, SemanticMismatchRejected) {
  PrimitiveGraph g;
  NodeConfig fcfg;
  int f = g.AddNode(PrimitiveKind::kFilterBitmap, 0, fcfg);
  int m = g.AddNode(PrimitiveKind::kMaterializePosition, 0, {});
  ASSERT_TRUE(g.ConnectScan(SmallColumn("a"), f, 0).ok());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("b"), m, 0).ok());
  // BITMAP into a POSITION slot.
  ASSERT_TRUE(g.Connect(f, 0, m, 1).ok());
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(Graph, DuplicateSlotRejected) {
  PrimitiveGraph g;
  int m = g.AddNode(PrimitiveKind::kMap, 0, {});
  ASSERT_TRUE(g.ConnectScan(SmallColumn("a"), m, 0).ok());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("b"), m, 0).ok());
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(Graph, UnknownNodesRejectedAtConnect) {
  PrimitiveGraph g;
  int m = g.AddNode(PrimitiveKind::kMap, 0, {});
  EXPECT_TRUE(g.ConnectScan(SmallColumn("a"), 7, 0).status().IsNotFound());
  EXPECT_TRUE(g.Connect(7, 0, m, 0).status().IsNotFound());
  EXPECT_TRUE(g.Connect(m, 5, m, 0).status().IsInvalidArgument())
      << "map has one output slot";
  EXPECT_TRUE(g.ConnectScan(nullptr, m, 0).status().IsInvalidArgument());
}

TEST(Graph, CombineFilterNeedsBitmapInput) {
  PrimitiveGraph g;
  NodeConfig combine;
  combine.combine_and = true;
  int f = g.AddNode(PrimitiveKind::kFilterBitmap, 0, combine);
  ASSERT_TRUE(g.ConnectScan(SmallColumn("a"), f, 0).ok());
  EXPECT_TRUE(g.Validate().IsInvalidArgument()) << "slot 1 bitmap required";
}

TEST(Graph, TopoOrderRespectsEdges) {
  PrimitiveGraph g;
  int f = g.AddNode(PrimitiveKind::kFilterBitmap, 0, {});
  int m = g.AddNode(PrimitiveKind::kMaterialize, 0, {});
  NodeConfig agg;
  agg.agg_op = AggOp::kSum;
  int a = g.AddNode(PrimitiveKind::kAggBlock, 0, agg);
  ASSERT_TRUE(g.ConnectScan(SmallColumn("c"), f, 0).ok());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("c2"), m, 0).ok());
  ASSERT_TRUE(g.Connect(f, 0, m, 1).ok());
  ASSERT_TRUE(g.Connect(m, 0, a, 0).ok());
  auto order = g.TopoOrder();
  ASSERT_TRUE(order.ok());
  auto pos = [&](int node) {
    return std::find(order->begin(), order->end(), node) - order->begin();
  };
  EXPECT_LT(pos(f), pos(m));
  EXPECT_LT(pos(m), pos(a));
}

TEST(Graph, InputBytesCountsDistinctColumns) {
  PrimitiveGraph g;
  auto col = SmallColumn("a", 100);  // 400 bytes
  int f1 = g.AddNode(PrimitiveKind::kFilterBitmap, 0, {});
  int m = g.AddNode(PrimitiveKind::kMaterialize, 0, {});
  ASSERT_TRUE(g.ConnectScan(col, f1, 0).ok());
  ASSERT_TRUE(g.ConnectScan(col, m, 0).ok());  // same column twice
  ASSERT_TRUE(g.Connect(f1, 0, m, 1).ok());
  EXPECT_EQ(g.InputBytes(), 400u);
}

// --- Pipeline splitting ---

TEST(Pipelines, SinglePipelineChain) {
  PrimitiveGraph g;
  int f = g.AddNode(PrimitiveKind::kFilterBitmap, 0, {});
  int m = g.AddNode(PrimitiveKind::kMaterialize, 0, {});
  NodeConfig agg;
  int a = g.AddNode(PrimitiveKind::kAggBlock, 0, agg);
  ASSERT_TRUE(g.ConnectScan(SmallColumn("x", 100), f, 0).ok());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("y", 100), m, 0).ok());
  ASSERT_TRUE(g.Connect(f, 0, m, 1).ok());
  ASSERT_TRUE(g.Connect(m, 0, a, 0).ok());
  auto pipelines = g.SplitPipelines();
  ASSERT_TRUE(pipelines.ok());
  ASSERT_EQ(pipelines->size(), 1u);
  EXPECT_EQ((*pipelines)[0].nodes.size(), 3u);
  EXPECT_EQ((*pipelines)[0].input_rows, 100u);
  EXPECT_EQ((*pipelines)[0].scan_edges.size(), 2u);
}

TEST(Pipelines, BreakerStartsNewPipeline) {
  // build (pipeline 0), probe pipeline (pipeline 1).
  PrimitiveGraph g;
  NodeConfig build_cfg;
  build_cfg.expected_build_rows = 8;
  int build = g.AddNode(PrimitiveKind::kHashBuild, 0, build_cfg);
  NodeConfig probe_cfg;
  int probe = g.AddNode(PrimitiveKind::kHashProbe, 0, probe_cfg);
  ASSERT_TRUE(g.ConnectScan(SmallColumn("build_keys", 8), build, 0).ok());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("probe_keys", 32), probe, 0).ok());
  ASSERT_TRUE(g.Connect(build, 0, probe, 1).ok());
  auto pipelines = g.SplitPipelines();
  ASSERT_TRUE(pipelines.ok());
  ASSERT_EQ(pipelines->size(), 2u);
  EXPECT_EQ((*pipelines)[0].nodes, std::vector<int>{build});
  EXPECT_EQ((*pipelines)[0].input_rows, 8u);
  EXPECT_EQ((*pipelines)[1].nodes, std::vector<int>{probe});
  EXPECT_EQ((*pipelines)[1].input_rows, 32u);
}

TEST(Pipelines, MismatchedScanLengthsRejected) {
  PrimitiveGraph g;
  int m = g.AddNode(PrimitiveKind::kMap, 0,
                    [] {
                      NodeConfig cfg;
                      cfg.map_op = MapOp::kAddCol;
                      return cfg;
                    }());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("a", 10), m, 0).ok());
  ASSERT_TRUE(g.ConnectScan(SmallColumn("b", 20), m, 1).ok());
  EXPECT_TRUE(g.SplitPipelines().status().IsInvalidArgument());
}

TEST(Pipelines, ProgressPointersResettable) {
  PrimitiveGraph g;
  int f = g.AddNode(PrimitiveKind::kFilterBitmap, 0, {});
  auto edge = g.ConnectScan(SmallColumn("a"), f, 0);
  ASSERT_TRUE(edge.ok());
  g.edge(*edge).fetched_until = 100;
  g.edge(*edge).processed_until = 50;
  g.ResetProgress();
  EXPECT_EQ(g.edge(*edge).fetched_until, 0u);
  EXPECT_EQ(g.edge(*edge).processed_until, 0u);
}

TEST(Pipelines, EdgeAnnotationsCarryDataIds) {
  PrimitiveGraph g;
  int f = g.AddNode(PrimitiveKind::kFilterBitmap, 0, {});
  int m = g.AddNode(PrimitiveKind::kMaterialize, 0, {});
  auto e1 = g.ConnectScan(SmallColumn("a"), f, 0);
  auto e2 = g.ConnectScan(SmallColumn("b"), m, 0);
  auto e3 = g.Connect(f, 0, m, 1);
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  EXPECT_NE(*e1, *e2);
  EXPECT_NE(*e2, *e3);
  EXPECT_EQ(g.edges()[static_cast<size_t>(*e3)].semantic,
            DataSemantic::kBitmap);
  EXPECT_TRUE(g.edges()[static_cast<size_t>(*e1)].is_scan());
  EXPECT_FALSE(g.edges()[static_cast<size_t>(*e3)].is_scan());
}

}  // namespace
}  // namespace adamant
