// Unit tests for the columnar storage substrate.

#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/table.h"
#include "storage/types.h"

namespace adamant {
namespace {

TEST(ElementTypes, SizesAndNames) {
  EXPECT_EQ(ElementSize(ElementType::kInt32), 4u);
  EXPECT_EQ(ElementSize(ElementType::kInt64), 8u);
  EXPECT_EQ(ElementSize(ElementType::kFloat64), 8u);
  EXPECT_STREQ(ElementTypeName(ElementType::kInt32), "int32");
  EXPECT_STREQ(ElementTypeName(ElementType::kInt64), "int64");
}

TEST(Column, FromVectorTypedAccess) {
  auto col = Column::FromVector<int32_t>("c", {3, 1, 4, 1, 5});
  EXPECT_EQ(col->length(), 5u);
  EXPECT_EQ(col->type(), ElementType::kInt32);
  EXPECT_EQ(col->byte_size(), 20u);
  EXPECT_EQ(col->Value<int32_t>(2), 4);
  EXPECT_EQ(col->data<int32_t>()[4], 5);
}

TEST(Column, Int64AndDouble) {
  auto c64 = Column::FromVector<int64_t>("m", {int64_t{1} << 40});
  EXPECT_EQ(c64->Value<int64_t>(0), int64_t{1} << 40);
  auto cd = Column::FromVector<double>("d", {1.5, 2.5});
  EXPECT_EQ(cd->type(), ElementType::kFloat64);
  EXPECT_DOUBLE_EQ(cd->Value<double>(1), 2.5);
}

TEST(Column, AppendGrows) {
  Column col("a", ElementType::kInt32);
  for (int32_t i = 0; i < 100; ++i) col.Append(i * i);
  EXPECT_EQ(col.length(), 100u);
  EXPECT_EQ(col.Value<int32_t>(99), 99 * 99);
}

TEST(Column, ResizeZeroFills) {
  Column col("a", ElementType::kInt64);
  col.Resize(10);
  EXPECT_EQ(col.Value<int64_t>(9), 0);
}

TEST(Dictionary, InternAndLookup) {
  StringDictionary dict;
  int32_t a = dict.GetOrInsert("BUILDING");
  int32_t b = dict.GetOrInsert("MACHINERY");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.GetOrInsert("BUILDING"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.GetString(a), "BUILDING");
  ASSERT_TRUE(dict.Lookup("MACHINERY").ok());
  EXPECT_EQ(*dict.Lookup("MACHINERY"), b);
  EXPECT_TRUE(dict.Lookup("MISSING").status().IsNotFound());
}

TEST(Dictionary, CodesAreDense) {
  StringDictionary dict;
  for (int i = 0; i < 10; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    EXPECT_EQ(dict.GetOrInsert(name), i);
  }
}

TEST(Table, AddAndGetColumns) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column::FromVector<int32_t>("a", {1, 2})).ok());
  ASSERT_TRUE(table.AddColumn(Column::FromVector<int64_t>("b", {3, 4})).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 2u);
  ASSERT_TRUE(table.GetColumn("b").ok());
  EXPECT_EQ((*table.GetColumn("b"))->type(), ElementType::kInt64);
  EXPECT_TRUE(table.GetColumn("missing").status().IsNotFound());
  EXPECT_EQ(table.TotalBytes(), 2 * 4 + 2 * 8u);
}

TEST(Table, RejectsLengthMismatch) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column::FromVector<int32_t>("a", {1, 2})).ok());
  EXPECT_TRUE(table.AddColumn(Column::FromVector<int32_t>("b", {1}))
                  .IsInvalidArgument());
}

TEST(Table, RejectsDuplicateName) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn(Column::FromVector<int32_t>("a", {1})).ok());
  EXPECT_TRUE(
      table.AddColumn(Column::FromVector<int32_t>("a", {2})).IsAlreadyExists());
}

TEST(Table, RejectsNullColumn) {
  Table table("t");
  EXPECT_TRUE(table.AddColumn(nullptr).IsInvalidArgument());
}

TEST(Table, DictionaryPerColumn) {
  Table table("t");
  StringDictionary* d1 = table.GetDictionary("flag");
  StringDictionary* d2 = table.GetDictionary("status");
  EXPECT_NE(d1, d2);
  EXPECT_EQ(table.GetDictionary("flag"), d1) << "stable across calls";
  EXPECT_EQ(table.FindDictionary("flag"), d1);
  EXPECT_EQ(table.FindDictionary("nope"), nullptr);
}

TEST(Catalog, AddGetList) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(std::make_shared<Table>("a")).ok());
  ASSERT_TRUE(catalog.AddTable(std::make_shared<Table>("b")).ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_TRUE(catalog.GetTable("a").ok());
  EXPECT_TRUE(catalog.GetTable("c").status().IsNotFound());
  EXPECT_TRUE(
      catalog.AddTable(std::make_shared<Table>("a")).IsAlreadyExists());
  EXPECT_EQ(catalog.TableNames().size(), 2u);
}

}  // namespace
}  // namespace adamant
