// Paper-shape regression tests: the qualitative findings of the paper's
// evaluation (Figs. 3, 9, 10, 11) must hold in the reproduction. These are
// the properties EXPERIMENTS.md reports; a calibration change that breaks a
// shape fails here first.

#include <gtest/gtest.h>

#include "adamant/adamant.h"

namespace adamant {
namespace {

struct ShapeFixture {
  std::shared_ptr<Catalog> catalog;

  static const ShapeFixture& Get() {
    static const ShapeFixture* const kFixture = [] {
      auto* fixture = new ShapeFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.02;
      config.include_dimension_tables = false;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok());
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

/// Runs query `q` (3, 4 or 6) under `model` on a fresh manager and returns
/// the elapsed simulated time.
double RunQuery(int q, sim::DriverKind kind, ExecutionModelKind model,
                double nominal_sf = 30.0) {
  const auto& catalog = *ShapeFixture::Get().catalog;
  DeviceManager manager;
  manager.SetDataScale(nominal_sf / 0.02);
  auto gpu = manager.AddDriver(kind);
  EXPECT_TRUE(gpu.ok());
  EXPECT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  plan::PlanBundle bundle = [&] {
    switch (q) {
      case 3:
        return std::move(*plan::BuildQ3(catalog, {}, *gpu));
      case 4:
        return std::move(*plan::BuildQ4(catalog, {}, *gpu));
      default:
        return std::move(*plan::BuildQ6(catalog, {}, *gpu));
    }
  }();
  ExecutionOptions options;
  options.model = model;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle.graph.get(), options);
  EXPECT_TRUE(exec.ok()) << exec.status().ToString();
  return exec.ok() ? exec->stats.elapsed_us : 0.0;
}

// Fig. 11: 4-phase execution beats naive chunked execution (the paper
// reports 1.3x (Q3) to 3x (Q6) for CUDA; OpenCL ~1.5x for Q3/Q6).
TEST(Fig11Shapes, FourPhaseBeatsChunked) {
  for (auto kind : {sim::DriverKind::kCudaGpu, sim::DriverKind::kOpenClGpu}) {
    for (int q : {3, 6}) {
      const double chunked =
          RunQuery(q, kind, ExecutionModelKind::kChunked);
      const double four_phase =
          RunQuery(q, kind, ExecutionModelKind::kFourPhaseChunked);
      const double speedup = chunked / four_phase;
      EXPECT_GT(speedup, 1.2) << "Q" << q << " " << sim::DriverKindName(kind);
      EXPECT_LT(speedup, 3.5) << "Q" << q << " " << sim::DriverKindName(kind);
    }
  }
}

// Fig. 11: Q6's 4-phase gain is larger than Q3's (3x best case vs 1.3x
// worst case on CUDA) — deeper filter pipelines amortize better.
TEST(Fig11Shapes, Q6GainsMoreThanQ3) {
  const double q3 = RunQuery(3, sim::DriverKind::kCudaGpu,
                             ExecutionModelKind::kChunked) /
                    RunQuery(3, sim::DriverKind::kCudaGpu,
                             ExecutionModelKind::kFourPhaseChunked);
  const double q6 = RunQuery(6, sim::DriverKind::kCudaGpu,
                             ExecutionModelKind::kChunked) /
                    RunQuery(6, sim::DriverKind::kCudaGpu,
                             ExecutionModelKind::kFourPhaseChunked);
  EXPECT_GT(q6, q3);
}

// Fig. 11: OpenCL is slower than CUDA overall (lower bandwidth + higher
// handling overheads).
TEST(Fig11Shapes, CudaFasterThanOpenCl) {
  for (int q : {3, 4, 6}) {
    for (auto model : {ExecutionModelKind::kChunked,
                       ExecutionModelKind::kFourPhaseChunked}) {
      EXPECT_LT(RunQuery(q, sim::DriverKind::kCudaGpu, model),
                RunQuery(q, sim::DriverKind::kOpenClGpu, model))
          << "Q" << q << " " << ExecutionModelName(model);
    }
  }
}

// Fig. 11: for transfer-dominated queries (Q6), overlapping transfer with
// execution on top of 4-phase adds only a small benefit ("the execution
// time of a query is so small that hiding it ... provides minimal benefit").
TEST(Fig11Shapes, FourPhasePipelinedSimilarToFourPhaseOnQ6) {
  const double four_phase = RunQuery(6, sim::DriverKind::kCudaGpu,
                                     ExecutionModelKind::kFourPhaseChunked);
  const double pipelined = RunQuery(6, sim::DriverKind::kCudaGpu,
                                    ExecutionModelKind::kFourPhasePipelined);
  EXPECT_LE(pipelined, four_phase);
  EXPECT_LT(four_phase / pipelined, 1.25) << "minimal extra benefit";
}

// Fig. 10: the abstraction-layer overhead (elapsed minus the sum of
// primitive processing time) is largest for OpenCL (explicit per-argument
// data mapping) and small relative to total execution.
TEST(Fig10Shapes, OpenClOverheadLargest) {
  const auto& catalog = *ShapeFixture::Get().catalog;
  auto overhead_of = [&](sim::DriverKind kind) {
    DeviceManager manager;
    auto device = manager.AddDriver(kind);
    EXPECT_TRUE(device.ok());
    EXPECT_TRUE(BindStandardKernels(manager.device(*device)).ok());
    auto bundle = plan::BuildQ6(catalog, {}, *device);
    EXPECT_TRUE(bundle.ok());
    ExecutionOptions options;
    options.model = ExecutionModelKind::kOperatorAtATime;
    QueryExecutor executor(&manager);
    auto exec = executor.Run(bundle->graph.get(), options);
    EXPECT_TRUE(exec.ok());
    // Overhead beyond kernel bodies and wire time: launches, mapping,
    // allocation, framework calls.
    return exec->stats.elapsed_us - exec->stats.kernel_body_us -
           exec->stats.transfer_wire_us;
  };
  const double opencl_gpu = overhead_of(sim::DriverKind::kOpenClGpu);
  const double cuda = overhead_of(sim::DriverKind::kCudaGpu);
  const double openmp = overhead_of(sim::DriverKind::kOpenMpCpu);
  EXPECT_GT(opencl_gpu, cuda);
  EXPECT_GT(opencl_gpu, openmp);
}

// Fig. 9 at the query level: hash aggregation with many groups degrades far
// more on OpenCL than CUDA.
TEST(Fig9Shapes, HashAggContentionOpenClSteeper) {
  auto degradation = [&](sim::DriverKind kind) {
    auto model = sim::MakePerfModel(kind, sim::HardwareSetup::kSetup1);
    const double few = model.KernelDuration("hash_agg", 1 << 22, 16);
    const double many = model.KernelDuration("hash_agg", 1 << 22, 1 << 22);
    return many / few;
  };
  EXPECT_GT(degradation(sim::DriverKind::kOpenClGpu),
            2.0 * degradation(sim::DriverKind::kCudaGpu));
}

// Fig. 9d text: comparing build with probe exposes the serialization
// overhead of atomic insertion — build is slower.
TEST(Fig9Shapes, BuildSlowerThanProbe) {
  for (auto kind : {sim::DriverKind::kCudaGpu, sim::DriverKind::kOpenClGpu}) {
    auto model = sim::MakePerfModel(kind, sim::HardwareSetup::kSetup1);
    EXPECT_GT(model.KernelDuration("hash_build", 1 << 24, 1 << 20),
              model.KernelDuration("hash_probe", 1 << 24, 1 << 20))
        << sim::DriverKindName(kind);
  }
}

// Section V-C: larger-than-memory inputs fail under OAAT but run chunked
// (checked at query level against the same device).
TEST(Fig7Shapes, OaatMemoryWall) {
  const auto& catalog = *ShapeFixture::Get().catalog;
  DeviceManager manager;  // 2080 Ti: 11 GiB
  manager.SetDataScale(100.0 / 0.02);
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  auto bundle = plan::BuildQ6(catalog, {}, *gpu);
  ASSERT_TRUE(bundle.ok());
  QueryExecutor executor(&manager);
  ExecutionOptions oaat;
  oaat.model = ExecutionModelKind::kOperatorAtATime;
  EXPECT_TRUE(executor.Run(bundle->graph.get(), oaat).status().IsOutOfMemory())
      << "Q6 at SF 100 needs ~12 GiB of columns alone";
  ExecutionOptions chunked;
  chunked.model = ExecutionModelKind::kChunked;
  EXPECT_TRUE(executor.Run(bundle->graph.get(), chunked).ok());
}

// Setup 2 (A100 + PCIe 4) runs the same query faster than Setup 1.
TEST(TableIIShapes, Setup2Faster) {
  const auto& catalog = *ShapeFixture::Get().catalog;
  auto elapsed = [&](sim::HardwareSetup setup) {
    DeviceManager manager(setup);
    manager.SetDataScale(30.0 / 0.02);
    auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
    EXPECT_TRUE(gpu.ok());
    EXPECT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
    auto bundle = plan::BuildQ6(catalog, {}, *gpu);
    EXPECT_TRUE(bundle.ok());
    ExecutionOptions options;
    options.model = ExecutionModelKind::kFourPhaseChunked;
    QueryExecutor executor(&manager);
    auto exec = executor.Run(bundle->graph.get(), options);
    EXPECT_TRUE(exec.ok());
    return exec->stats.elapsed_us;
  };
  EXPECT_LT(elapsed(sim::HardwareSetup::kSetup2),
            elapsed(sim::HardwareSetup::kSetup1));
}

}  // namespace
}  // namespace adamant
