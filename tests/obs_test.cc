// Observability subsystem tests: metrics registry exactness and exposition,
// histogram quantiles against exact percentiles, the trace recorder under
// concurrency, trace validation (positive on real executor output, negative
// on hand-broken documents), and per-query phase profiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "adamant/adamant.h"

namespace adamant {
namespace {

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterIsExactUnderConcurrency) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsTest, RegistryReturnsStablePointersPerSeries) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("requests_total");
  obs::Counter* b = registry.GetCounter("requests_total");
  obs::Counter* labeled =
      registry.GetCounter("requests_total", "device", "gpu0");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, labeled);
  a->Add(3);
  labeled->Add(2);
  EXPECT_EQ(registry.GetCounter("requests_total")->Value(), 3.0);
  EXPECT_EQ(registry.GetCounter("requests_total", "device", "gpu0")->Value(),
            2.0);
}

TEST(MetricsTest, PrometheusTextExposition) {
  obs::MetricsRegistry registry;
  registry.GetCounter("adamant_widgets_total")->Add(5);
  registry.GetCounter("adamant_widgets_total", "device", "gpu0")->Add(2);
  registry.GetGauge("adamant_depth")->Set(3.5);
  obs::Histogram* hist = registry.GetHistogram("adamant_lat_ms", {1, 10, 100});
  hist->Observe(0.5);
  hist->Observe(50);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE adamant_widgets_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("adamant_widgets_total 5"), std::string::npos);
  EXPECT_NE(text.find("adamant_widgets_total{device=\"gpu0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE adamant_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("adamant_depth 3.5"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, _sum and _count series.
  EXPECT_NE(text.find("# TYPE adamant_lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("adamant_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("adamant_lat_ms_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("adamant_lat_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("adamant_lat_ms_sum 50.5"), std::string::npos);
  EXPECT_NE(text.find("adamant_lat_ms_count 2"), std::string::npos);
}

TEST(MetricsTest, JsonExposition) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a_total")->Add(7);
  registry.GetCounter("a_total", "device", "gpu0")->Add(1);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a_total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"a_total{device=\\\"gpu0\\\"}\":1"),
            std::string::npos);
}

// --- Histogram quantiles vs exact percentiles -------------------------------

double ExactPercentile(std::vector<double> values, double p) {
  // The estimator ServiceStats used before histograms: sort, take rank
  // p*(n-1), interpolate between neighbours.
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

TEST(HistogramTest, QuantileTracksExactPercentileWithinBucketWidth) {
  // Uniform buckets of width 1 over [0,100]: the histogram estimate may be
  // off by at most one bucket width from the exact sample percentile.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(i);
  obs::Histogram hist(bounds);

  // A deterministic skewed sample set (quadratic ramp: many small values,
  // few large — the shape queue-wait distributions actually have).
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    const double v = (i * i) % 9973 % 100 + 0.5;
    samples.push_back(v);
    hist.Observe(v);
  }

  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = ExactPercentile(samples, q);
    const double estimate = hist.Quantile(q);
    EXPECT_NEAR(estimate, exact, 1.0)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(HistogramTest, QuantileEdgeCases) {
  obs::Histogram empty({1, 10});
  EXPECT_EQ(empty.Quantile(0.5), 0.0);

  obs::Histogram one({1, 10, 100});
  one.Observe(42);
  // A single observation: every quantile is that observation (clamped to
  // the observed min == max).
  EXPECT_EQ(one.Quantile(0.0), 42.0);
  EXPECT_EQ(one.Quantile(0.5), 42.0);
  EXPECT_EQ(one.Quantile(1.0), 42.0);

  obs::Histogram over({1});
  over.Observe(1000);  // overflow bucket
  EXPECT_EQ(over.Quantile(0.5), 1000.0);  // clamped to observed max
  EXPECT_EQ(over.Min(), 1000.0);
  EXPECT_EQ(over.Max(), 1000.0);
}

TEST(HistogramTest, ServiceStatsPercentilesComeFromHistograms) {
  // End-to-end: run a few queries through a service and check the reported
  // p50/p95 are consistent with the per-ticket latencies the tickets carry,
  // to within the latency-bucket resolution (~2.5x steps ⇒ the estimate
  // must land between min and max of the sample, and near the exact
  // percentile's bucket).
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  ServiceConfig service_config;
  service_config.workers = 2;
  QueryService service(&manager, service_config);

  const Catalog* cat = catalog->get();
  std::vector<double> run_ms;
  for (int i = 0; i < 8; ++i) {
    QuerySpec spec;
    spec.name = "Q6";
    spec.make_graph =
        [cat](DeviceId dev) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::BuildQ6(*cat, {}, dev));
      return std::move(bundle.graph);
    };
    auto ticket = service.Submit(std::move(spec));
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE((*ticket)->Wait().ok());
    run_ms.push_back((*ticket)->run_ms());
  }
  service.Drain();

  const ServiceStats stats = service.GetStats();
  const double lo = *std::min_element(run_ms.begin(), run_ms.end());
  const double hi = *std::max_element(run_ms.begin(), run_ms.end());
  EXPECT_GE(stats.run_p50_ms, lo);
  EXPECT_LE(stats.run_p50_ms, hi);
  EXPECT_GE(stats.run_p95_ms, stats.run_p50_ms);
  EXPECT_LE(stats.run_p95_ms, hi);

  // Single source of truth: the Prometheus view of the same registry must
  // report the same completion count ServiceStats does.
  const std::string prom = service.metrics().ToPrometheusText();
  EXPECT_NE(prom.find("adamant_service_completed_total " +
                      std::to_string(stats.completed)),
            std::string::npos);
  EXPECT_NE(prom.find("adamant_service_run_ms_count 8"), std::string::npos);
}

// --- Trace recorder ---------------------------------------------------------

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Disable();
  recorder.Clear();
  {
    obs::TraceSpan span;
    if (obs::TracingEnabled()) span.Start(0, "never");
  }
  obs::TraceInstant(0, "never");
  EXPECT_EQ(recorder.TotalEvents(), 0u);
}

TEST(TraceRecorderTest, ConcurrentSpansAllExport) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::TraceSpan span;
        span.Start(t, "op" + std::to_string(i));
        span.End();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.TotalEvents(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  const std::string json = recorder.ExportChromeJson();
  recorder.Disable();

  obs::TraceCheckResult check = obs::ValidateChromeTrace(json);
  EXPECT_TRUE(check.ok) << check.Summary();
  EXPECT_EQ(check.event_count,
            static_cast<size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(check.track_count, static_cast<size_t>(kThreads));
}

TEST(TraceRecorderTest, EnableClearsAndRestartsEpoch) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  obs::TraceInstant(0, "first");
  EXPECT_EQ(recorder.TotalEvents(), 1u);
  recorder.Enable();  // re-enable: prior events must be gone
  EXPECT_EQ(recorder.TotalEvents(), 0u);
  recorder.Disable();
}

// --- Trace validation on real executor output -------------------------------

TEST(TraceValidationTest, DeviceParallelTracedRunIsValid) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  for (int i = 0; i < 2; ++i) {
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu,
                                    "gpu." + std::to_string(i));
    ASSERT_TRUE(device.ok());
    ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  }

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  recorder.SetTrackName(0, "gpu.0");
  recorder.SetTrackName(1, "gpu.1");

  auto bundle = plan::BuildQ6(**catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kDeviceParallel;
  options.device_set = {0, 1};
  options.chunk_elems = 4096;  // several chunks per device
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  const std::string json = recorder.ExportChromeJson();
  recorder.Disable();

  // The validator enforces: per-track monotonic timestamps, balanced and
  // complete events only, chunk spans nested in pipeline spans.
  obs::TraceCheckResult check = obs::ValidateChromeTrace(json);
  EXPECT_TRUE(check.ok) << check.Summary();
  EXPECT_GE(check.track_count, 3u);  // two devices + host

  // Both device tracks carried chunk work, and the standard span families
  // are all present.
  EXPECT_NE(json.find("\"tid\":0,"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1,"), std::string::npos);
  for (const char* want : {"pipeline:", "chunk:", "kernel:", "h2d",
                           "query:device-parallel"}) {
    EXPECT_NE(json.find(want), std::string::npos) << want;
  }
}

// --- Trace validation: negatives --------------------------------------------

TEST(TraceValidationTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ValidateChromeTrace("not json").ok);
  EXPECT_FALSE(obs::ValidateChromeTrace("{}").ok);
  EXPECT_FALSE(obs::ValidateChromeTrace("{\"traceEvents\":3}").ok);
  // Trailing garbage after a valid document.
  EXPECT_FALSE(
      obs::ValidateChromeTrace("{\"traceEvents\":[]} extra").ok);
  // Valid but empty is fine.
  EXPECT_TRUE(obs::ValidateChromeTrace("{\"traceEvents\":[]}").ok);
}

TEST(TraceValidationTest, RejectsBackwardsTimestamps) {
  const std::string json =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":100,\"dur\":5,\"name\":\"a\"},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":50,\"dur\":5,\"name\":\"b\"}"
      "]}";
  obs::TraceCheckResult check = obs::ValidateChromeTrace(json);
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors[0].find("backwards"), std::string::npos);
  // Same timestamps on different tracks are fine.
  const std::string two_tracks =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":100,\"dur\":5,\"name\":\"a\"},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":50,\"dur\":5,\"name\":\"b\"}"
      "]}";
  EXPECT_TRUE(obs::ValidateChromeTrace(two_tracks).ok);
}

TEST(TraceValidationTest, RejectsUnbalancedBeginEnd) {
  const std::string unbalanced =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"open\"}"
      "]}";
  EXPECT_FALSE(obs::ValidateChromeTrace(unbalanced).ok);
  const std::string mismatched =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1,\"name\":\"a\"},"
      "{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2,\"name\":\"b\"}"
      "]}";
  EXPECT_FALSE(obs::ValidateChromeTrace(mismatched).ok);
}

TEST(TraceValidationTest, RejectsChunkOutsidePipeline) {
  const std::string orphan_chunk =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":10,"
      "\"name\":\"pipeline:0\"},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":20,\"dur\":10,"
      "\"name\":\"chunk:0\"}"
      "]}";
  obs::TraceCheckResult check = obs::ValidateChromeTrace(orphan_chunk);
  EXPECT_FALSE(check.ok);
  const std::string nested =
      "{\"traceEvents\":["
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":100,"
      "\"name\":\"pipeline:0\"},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":20,\"dur\":10,"
      "\"name\":\"chunk:0\"}"
      "]}";
  EXPECT_TRUE(obs::ValidateChromeTrace(nested).ok);
}

// --- Per-query phase profiles -----------------------------------------------

TEST(ProfileTest, DirectRunCollectsPhaseBreakdown) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  auto bundle = plan::BuildQ3(**catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.collect_profile = true;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  const obs::QueryProfile& profile = exec->stats.profile;
  EXPECT_TRUE(profile.collected);
  EXPECT_GT(profile.run_ms, 0.0);
  ASSERT_FALSE(profile.pipelines.empty());  // Q3 is multi-pipeline
  EXPECT_GT(profile.pipelines.size(), 1u);
  size_t chunks = 0;
  for (const auto& pipeline : profile.pipelines) chunks += pipeline.chunks;
  EXPECT_EQ(chunks, exec->stats.chunks);
  ASSERT_EQ(profile.devices.size(), 1u);
  EXPECT_GT(profile.devices[0].compute_ms, 0.0);
  EXPECT_GT(profile.devices[0].transfer_ms, 0.0);
  EXPECT_GT(profile.devices[0].kernel_launches, 0u);

  const std::string json = profile.ToJson();
  for (const char* want :
       {"\"queue_wait_ms\"", "\"run_ms\"", "\"merge_host_ms\"",
        "\"pipelines\"", "\"devices\"", "\"transfer_ms\"", "\"compute_ms\""}) {
    EXPECT_NE(json.find(want), std::string::npos) << want;
  }
}

TEST(ProfileTest, ProfileOffByDefaultAndServiceTicketCarriesIt) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  // Direct run without opting in: no profile.
  {
    auto bundle = plan::BuildQ6(**catalog, {}, 0);
    ASSERT_TRUE(bundle.ok());
    QueryExecutor executor(&manager);
    auto exec = executor.Run(bundle->graph.get(), {});
    ASSERT_TRUE(exec.ok());
    EXPECT_FALSE(exec->stats.profile.collected);
  }

  // Through the service: always profiled, and queue wait is stamped in.
  ServiceConfig service_config;
  service_config.workers = 1;
  QueryService service(&manager, service_config);
  const Catalog* cat = catalog->get();
  QuerySpec spec;
  spec.name = "Q6";
  spec.make_graph =
      [cat](DeviceId dev) -> Result<std::unique_ptr<PrimitiveGraph>> {
    ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                             plan::BuildQ6(*cat, {}, dev));
    return std::move(bundle.graph);
  };
  auto ticket = service.Submit(std::move(spec));
  ASSERT_TRUE(ticket.ok());
  const Result<QueryExecution>& result = (*ticket)->Wait();
  ASSERT_TRUE(result.ok());
  const obs::QueryProfile& profile = result->stats.profile;
  EXPECT_TRUE(profile.collected);
  EXPECT_EQ(profile.queue_wait_ms, (*ticket)->queue_wait_ms());
  EXPECT_FALSE(profile.pipelines.empty());
  service.Drain();
}

// --- EXPLAIN ANALYZE operator stats ----------------------------------------

TEST(OperatorStatsTest, CollectedTreeAlignsWithGraphAndResultsBitIdentical) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  QueryExecutor executor(&manager);

  // Baseline: plain run.
  auto plain_bundle = plan::BuildQ3(**catalog, {}, 0);
  ASSERT_TRUE(plain_bundle.ok());
  auto plain = executor.Run(plain_bundle->graph.get(), {});
  ASSERT_TRUE(plain.ok());
  auto plain_rows = plan::ExtractQ3(*plain_bundle, *plain, **catalog, {});
  ASSERT_TRUE(plain_rows.ok());
  EXPECT_TRUE(plain->stats.profile.operators.empty());

  // Analyze run: same plan, operator stats on.
  auto bundle = plan::BuildQ3(**catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.collect_operator_stats = true;
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  // Bit-identical results despite the instrumentation.
  auto rows = plan::ExtractQ3(*bundle, *exec, **catalog, {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, *plain_rows);

  // The tree covers every graph node, in node-id order, with consistent
  // measurements: rows flowed, kernels launched, filters filtered.
  const std::vector<obs::OperatorStats>& ops = exec->stats.profile.operators;
  ASSERT_EQ(ops.size(), bundle->graph->nodes().size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const obs::OperatorStats& op = ops[i];
    const GraphNode& node = bundle->graph->nodes()[i];
    EXPECT_EQ(op.node_id, node.id);
    EXPECT_EQ(op.label, node.label);
    EXPECT_GT(op.launches, 0u);
    EXPECT_GT(op.rows_in, 0u);
    EXPECT_GE(op.kernel_ms, 0.0);
    if (op.selective) {
      EXPECT_LE(op.rows_out, op.rows_in);
      EXPECT_FALSE(op.feedback_key.empty()) << op.label;
      EXPECT_GT(op.predicted_selectivity, 0.0);
      EXPECT_GT(op.max_chunk_selectivity, 0.0);
    }
    EXPECT_GT(op.predicted_cost_us, 0.0);
    ASSERT_EQ(op.devices.size(), 1u);
    EXPECT_EQ(op.devices[0].rows_in, op.rows_in);
    EXPECT_EQ(op.devices[0].rows_out, op.rows_out);
  }
  // Q3's probes are far more selective than the data flowing in.
  bool saw_selective_probe = false;
  for (const obs::OperatorStats& op : ops) {
    if (op.kind == "hash_probe" && op.rows_out < op.rows_in) {
      saw_selective_probe = true;
    }
  }
  EXPECT_TRUE(saw_selective_probe);

  // The serialized profile carries the tree.
  const std::string json = exec->stats.profile.ToJson();
  for (const char* want : {"\"operators\"", "\"feedback_key\"",
                           "\"selectivity_qerror\"", "\"predicted_cost_us\""}) {
    EXPECT_NE(json.find(want), std::string::npos) << want;
  }
}

TEST(OperatorStatsTest, FusedRunAttributesFusedLaunchesInDeviceProfile) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  auto bundle = plan::BuildQ6(**catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.fusion = FusionMode::kOn;
  options.collect_profile = true;
  options.collect_operator_stats = true;
  auto fusion = plan::ApplyFusion(&*bundle, options, &manager);
  ASSERT_TRUE(fusion.ok());
  ASSERT_GT(fusion->groups, 0);

  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  // Satellite: the fused launch count and body-time share surface in the
  // DeviceProfile and its JSON, and the operator tree attributes the wall
  // time to the fused variant bucket.
  ASSERT_EQ(exec->stats.profile.devices.size(), 1u);
  const obs::DeviceProfile& dev = exec->stats.profile.devices[0];
  EXPECT_GT(dev.fused_launches, 0u);
  EXPECT_GT(dev.kernel_launches, 0u);
  EXPECT_LE(dev.fused_launches, dev.kernel_launches);
  EXPECT_GE(dev.fused_body_ms, 0.0);
  EXPECT_LE(dev.fused_body_ms, dev.kernel_body_ms + 1e-9);
  const std::string json = exec->stats.profile.ToJson();
  EXPECT_NE(json.find("\"fused_launches\""), std::string::npos);
  EXPECT_NE(json.find("\"fused_body_ms\""), std::string::npos);

  bool saw_fused_op = false;
  for (const obs::OperatorStats& op : exec->stats.profile.operators) {
    if (op.kind == "fused" || op.kind == "fused_agg") {
      saw_fused_op = true;
      EXPECT_GT(op.fused_ms, 0.0);
      EXPECT_NEAR(op.fused_ms, op.kernel_ms, 1e-9);
    }
  }
  EXPECT_TRUE(saw_fused_op);
}

TEST(QErrorTest, SymmetricWithFloors) {
  EXPECT_DOUBLE_EQ(obs::QError(2.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(obs::QError(1.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(obs::QError(0.5, 0.5), 1.0);
  // Zero-sided estimates clamp to a floor: large finite, never inf/nan.
  EXPECT_DOUBLE_EQ(obs::QError(0.0, 0.0), 1.0);
  const double zero_vs_one = obs::QError(0.0, 1.0);
  EXPECT_GT(zero_vs_one, 1e6);
  EXPECT_TRUE(std::isfinite(zero_vs_one));
  // Bucket layout starts at the perfect estimate and is sorted.
  const std::vector<double> buckets = obs::QErrorBuckets();
  ASSERT_FALSE(buckets.empty());
  EXPECT_DOUBLE_EQ(buckets.front(), 1.0);
  EXPECT_TRUE(std::is_sorted(buckets.begin(), buckets.end()));
}

TEST(QErrorTest, RecordPlanQErrorsFillsHistograms) {
  obs::MetricsRegistry registry;
  obs::OperatorStats filter;
  filter.selective = true;
  filter.predicted_selectivity = 0.5;
  filter.rows_in = 100;
  filter.rows_out = 25;  // actual 0.25 → q-error 2
  filter.predicted_cost_us = 10;
  filter.kernel_ms = 1;
  filter.launches = 1;
  obs::OperatorStats scan;
  scan.predicted_cost_us = 10;
  scan.kernel_ms = 1;
  scan.launches = 1;
  obs::RecordPlanQErrors(&registry, "Q3", {filter, scan});

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("adamant_plan_qerror_selectivity_count{query=\"Q3\"} 1"),
            std::string::npos)
      << text;
  // Equal cost shares on both sides → both cost q-errors are exactly 1.
  EXPECT_NE(text.find("adamant_plan_qerror_cost_bucket{query=\"Q3\",le=\"1\"}"
                      " 2"),
            std::string::npos)
      << text;
}

// --- Heterogeneous split metrics ---------------------------------------------

// A device-parallel run with a deliberately mis-set split must expose the
// per-device planned split ratio gauge and bump the process-wide steal
// counter through the standard Prometheus exposition.
TEST(MetricsTest, SplitRatioGaugeAndStealCounterExposed) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  for (int i = 0; i < 2; ++i) {
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu,
                                    "split_gpu." + std::to_string(i));
    ASSERT_TRUE(device.ok());
    ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  }

  const double stolen_before = obs::GlobalMetrics()
                                   .GetCounter("adamant_chunks_stolen_total")
                                   ->Value();
  auto bundle = plan::BuildQ6(**catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kDeviceParallel;
  options.device_set = {0, 1};
  options.device_split = {0.1, 0.9};  // mis-set: device 0 must steal
  options.chunk_elems = 1024;         // many chunks → guaranteed stealing
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  const std::string text = obs::GlobalMetrics().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE adamant_split_ratio gauge"), std::string::npos)
      << text;
  EXPECT_NE(text.find("adamant_split_ratio{device=\"split_gpu.0\"} 0.1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("adamant_split_ratio{device=\"split_gpu.1\"} 0.9"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE adamant_chunks_stolen_total counter"),
            std::string::npos)
      << text;
  const double stolen_after = obs::GlobalMetrics()
                                  .GetCounter("adamant_chunks_stolen_total")
                                  ->Value();
  EXPECT_GT(stolen_after, stolen_before);
  size_t stolen_stats = 0;
  for (const auto& [device, stolen] : exec->stats.chunks_stolen_by_device) {
    stolen_stats += stolen;
  }
  EXPECT_DOUBLE_EQ(stolen_after - stolen_before,
                   static_cast<double>(stolen_stats));
}

// --- Counter ('C') trace events ---------------------------------------------

TEST(TraceValidationTest, CounterSeriesMustBeMonotonic) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  obs::TraceCounter(obs::kServiceTrack, "service.queries",
                    "{\"finished\":1,\"slow\":0}");
  obs::TraceCounter(obs::kServiceTrack, "service.queries",
                    "{\"finished\":2,\"slow\":1}");
  const std::string good = recorder.ExportChromeJson();
  recorder.Disable();
  EXPECT_TRUE(obs::ValidateChromeTrace(good).ok);

  // A decreasing sample of the same series is flagged.
  recorder.Enable();
  obs::TraceCounter(obs::kServiceTrack, "service.queries",
                    "{\"finished\":5}");
  obs::TraceCounter(obs::kServiceTrack, "service.queries",
                    "{\"finished\":4}");
  const std::string bad = recorder.ExportChromeJson();
  recorder.Disable();
  const obs::TraceCheckResult result = obs::ValidateChromeTrace(bad);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.errors.empty());
  EXPECT_NE(result.errors[0].find("decreases"), std::string::npos);
}

}  // namespace
}  // namespace adamant
