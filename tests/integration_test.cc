// Integration: every evaluated TPC-H query, on every driver, under every
// execution model, bit-compared against the scalar host reference.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adamant/adamant.h"

namespace adamant {
namespace {

struct TpchFixture {
  std::shared_ptr<Catalog> catalog;

  static const TpchFixture& Get() {
    static const TpchFixture* const kFixture = [] {
      auto* fixture = new TpchFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      config.include_dimension_tables = true;  // Q14 joins against part
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

class QueryMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<sim::DriverKind, ExecutionModelKind>> {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<DeviceManager>();
    auto device = manager_->AddDriver(std::get<0>(GetParam()));
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    device_ = *device;
    ASSERT_TRUE(BindStandardKernels(manager_->device(device_)).ok());
    options_.model = std::get<1>(GetParam());
    options_.chunk_elems = 512;  // many chunks even on the tiny test scale
  }

  Result<QueryExecution> Execute(PrimitiveGraph* graph) {
    QueryExecutor executor(manager_.get());
    return executor.Run(graph, options_);
  }

  std::unique_ptr<DeviceManager> manager_;
  DeviceId device_ = 0;
  ExecutionOptions options_;
};

TEST_P(QueryMatrixTest, Q6MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q6Params params;
  auto bundle = plan::BuildQ6(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ6(*bundle, *exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q6Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(QueryMatrixTest, Q4MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q4Params params;
  auto bundle = plan::BuildQ4(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ4(*bundle, *exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q4Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(QueryMatrixTest, Q3MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q3Params params;
  auto bundle = plan::BuildQ3(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ3(*bundle, *exec, catalog, params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q3Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(QueryMatrixTest, Q1MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q1Params params;
  auto bundle = plan::BuildQ1(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ1(*bundle, *exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q1Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(QueryMatrixTest, Q5MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q5Params params;
  auto bundle = plan::BuildQ5(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ5(*bundle, *exec, catalog);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q5Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(QueryMatrixTest, Q10MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q10Params params;
  auto bundle = plan::BuildQ10(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ10(*bundle, *exec, params);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q10Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(QueryMatrixTest, Q12MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q12Params params;
  auto bundle = plan::BuildQ12(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ12(*bundle, *exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q12Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(QueryMatrixTest, Q14MatchesReference) {
  const auto& catalog = *TpchFixture::Get().catalog;
  tpch::Q14Params params;
  auto bundle = plan::BuildQ14(catalog, params, device_);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto exec = Execute(bundle->graph.get());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ14(*bundle, *exec);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = tpch::Q14Reference(catalog, params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

INSTANTIATE_TEST_SUITE_P(
    AllDriversAllModels, QueryMatrixTest,
    ::testing::Combine(
        ::testing::Values(sim::DriverKind::kOpenClGpu,
                          sim::DriverKind::kCudaGpu,
                          sim::DriverKind::kOpenClCpu,
                          sim::DriverKind::kOpenMpCpu),
        ::testing::Values(ExecutionModelKind::kOperatorAtATime,
                          ExecutionModelKind::kChunked,
                          ExecutionModelKind::kPipelined,
                          ExecutionModelKind::kFourPhaseChunked,
                          ExecutionModelKind::kFourPhasePipelined)),
    [](const auto& info) {
      return std::string(sim::DriverKindName(std::get<0>(info.param))) + "_" +
             [](ExecutionModelKind m) {
               switch (m) {
                 case ExecutionModelKind::kOperatorAtATime:
                   return "oaat";
                 case ExecutionModelKind::kChunked:
                   return "chunked";
                 case ExecutionModelKind::kPipelined:
                   return "pipelined";
                 case ExecutionModelKind::kFourPhaseChunked:
                   return "fourphase";
                 case ExecutionModelKind::kFourPhasePipelined:
                   return "fourphasepipe";
                 case ExecutionModelKind::kDeviceParallel:
                   return "deviceparallel";
               }
               return "unknown";
             }(std::get<1>(info.param));
    });

}  // namespace
}  // namespace adamant
