// Unit tests for the Table-I primitive kernels, run through a device so the
// full argument-resolution path (buffers, counts, scalars) is exercised.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/bit_util.h"
#include "device/sim_device.h"
#include "sim/presets.h"
#include "task/hash_table.h"
#include "task/kernel_registry.h"
#include "task/kernels.h"

namespace adamant {
namespace {

/// Test harness: one CUDA-like device plus typed push/pull helpers.
class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ctx = std::make_shared<SimContext>();
    device_ = std::make_unique<SimulatedDevice>(
        "k", sim::MakePerfModel(sim::DriverKind::kCudaGpu,
                                sim::HardwareSetup::kSetup1),
        SdkFormat::kCudaDevPtr, false, ctx);
    ASSERT_TRUE(BindStandardKernels(device_.get()).ok());
    ASSERT_TRUE(device_->Initialize().ok());
  }

  template <typename T>
  BufferId Push(const std::vector<T>& data) {
    auto buf = device_->PrepareMemory(data.size() * sizeof(T));
    EXPECT_TRUE(buf.ok());
    EXPECT_TRUE(
        device_->PlaceData(*buf, data.data(), data.size() * sizeof(T), 0).ok());
    return *buf;
  }

  BufferId Alloc(size_t bytes) {
    auto buf = device_->PrepareMemory(bytes);
    EXPECT_TRUE(buf.ok());
    return *buf;
  }

  template <typename T>
  std::vector<T> Pull(BufferId id, size_t n) {
    std::vector<T> out(n);
    EXPECT_TRUE(device_->RetrieveData(id, out.data(), n * sizeof(T), 0).ok());
    return out;
  }

  int64_t PullCount(BufferId id) { return Pull<int64_t>(id, 1)[0]; }

  std::unique_ptr<SimulatedDevice> device_;
};

// --- MAP ---

TEST_F(KernelTest, MapScalarOps) {
  BufferId in = Push<int32_t>({1, 2, 3});
  BufferId out = Alloc(12);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kAddScalar,
                                             ElementType::kInt32,
                                             ElementType::kInt32, 10, 3))
                  .ok());
  EXPECT_EQ(Pull<int32_t>(out, 3), (std::vector<int32_t>{11, 12, 13}));
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kMulScalar,
                                             ElementType::kInt32,
                                             ElementType::kInt32, -2, 3))
                  .ok());
  EXPECT_EQ(Pull<int32_t>(out, 3), (std::vector<int32_t>{-2, -4, -6}));
}

TEST_F(KernelTest, MapColumnOps) {
  BufferId a = Push<int32_t>({10, 20, 30});
  BufferId b = Push<int32_t>({1, 2, 3});
  BufferId out = Alloc(12);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(a, b, out, MapOp::kSubCol,
                                             ElementType::kInt32,
                                             ElementType::kInt32, 0, 3))
                  .ok());
  EXPECT_EQ(Pull<int32_t>(out, 3), (std::vector<int32_t>{9, 18, 27}));
}

TEST_F(KernelTest, MapWideningCast) {
  BufferId in = Push<int32_t>({1 << 30, 5});
  BufferId out = Alloc(16);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kMulScalar,
                                             ElementType::kInt32,
                                             ElementType::kInt64, 4, 2))
                  .ok());
  EXPECT_EQ(Pull<int64_t>(out, 2),
            (std::vector<int64_t>{int64_t{1} << 32, 20}));
}

TEST_F(KernelTest, MapFixedPointPercentOps) {
  // price * (1 - discount): 1000 cents at 7% discount -> 930.
  BufferId price = Push<int64_t>({1000, 999});
  BufferId pct = Push<int32_t>({7, 3});
  BufferId out = Alloc(16);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(price, pct, out,
                                             MapOp::kMulPctComplement,
                                             ElementType::kInt64,
                                             ElementType::kInt64, 0, 2))
                  .ok());
  EXPECT_EQ(Pull<int64_t>(out, 2), (std::vector<int64_t>{930, 969}));
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(price, pct, out, MapOp::kMulPct,
                                             ElementType::kInt64,
                                             ElementType::kInt64, 0, 2))
                  .ok());
  EXPECT_EQ(Pull<int64_t>(out, 2), (std::vector<int64_t>{70, 29}));
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(price, pct, out,
                                             MapOp::kMulPctPlus,
                                             ElementType::kInt64,
                                             ElementType::kInt64, 0, 2))
                  .ok());
  EXPECT_EQ(Pull<int64_t>(out, 2), (std::vector<int64_t>{1070, 1028}));
}

TEST_F(KernelTest, MapRejectsOperandMismatch) {
  BufferId in = Push<int32_t>({1});
  BufferId out = Alloc(4);
  // Column op without second input.
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kAddCol,
                                             ElementType::kInt32,
                                             ElementType::kInt32, 0, 1))
                  .IsInvalidArgument());
  // Scalar op with a second input.
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, in, out, MapOp::kAddScalar,
                                             ElementType::kInt32,
                                             ElementType::kInt32, 0, 1))
                  .IsInvalidArgument());
}

TEST_F(KernelTest, MapRejectsFloat) {
  BufferId in = Push<double>({1.0});
  BufferId out = Alloc(8);
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kIdentity,
                                             ElementType::kFloat64,
                                             ElementType::kFloat64, 0, 1))
                  .IsNotSupported());
}

TEST_F(KernelTest, MapOutputTooSmall) {
  BufferId in = Push<int32_t>({1, 2, 3, 4});
  BufferId out = Alloc(8);  // room for 2 only
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kIdentity,
                                             ElementType::kInt32,
                                             ElementType::kInt32, 0, 4))
                  .IsExecutionError());
}

// --- FILTER_BITMAP (parameterized over comparison ops) ---

struct FilterCase {
  CmpOp op;
  int64_t lo, hi;
  std::vector<bool> expected;  // over {1, 5, 7, 9, 12}
};

class FilterBitmapTest : public KernelTest,
                         public ::testing::WithParamInterface<FilterCase> {};

TEST_P(FilterBitmapTest, ComparisonSemantics) {
  const FilterCase& c = GetParam();
  BufferId in = Push<int32_t>({1, 5, 7, 9, 12});
  BufferId bitmap = Alloc(bit_util::BytesForBits(5));
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeFilterBitmap(
                      in, bitmap, c.op, ElementType::kInt32, c.lo, c.hi,
                      false, 5))
                  .ok());
  auto words = Pull<uint64_t>(bitmap, 1);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(bit_util::GetBit(words.data(), i), c.expected[i])
        << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, FilterBitmapTest,
    ::testing::Values(
        FilterCase{CmpOp::kLt, 7, 0, {true, true, false, false, false}},
        FilterCase{CmpOp::kLe, 7, 0, {true, true, true, false, false}},
        FilterCase{CmpOp::kGt, 7, 0, {false, false, false, true, true}},
        FilterCase{CmpOp::kGe, 7, 0, {false, false, true, true, true}},
        FilterCase{CmpOp::kEq, 9, 0, {false, false, false, true, false}},
        FilterCase{CmpOp::kNe, 9, 0, {true, true, true, false, true}},
        FilterCase{CmpOp::kBetween, 5, 9, {false, true, true, true, false}}));

TEST_F(KernelTest, FilterBitmapCombineAnd) {
  BufferId in = Push<int32_t>({1, 5, 7, 9});
  BufferId bitmap = Alloc(bit_util::BytesForBits(4));
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeFilterBitmap(in, bitmap, CmpOp::kGt,
                                                      ElementType::kInt32, 2,
                                                      0, false, 4))
                  .ok());
  // AND with v < 8: expect {_, 5, 7, _}.
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeFilterBitmap(in, bitmap, CmpOp::kLt,
                                                      ElementType::kInt32, 8,
                                                      0, true, 4))
                  .ok());
  auto words = Pull<uint64_t>(bitmap, 1);
  EXPECT_FALSE(bit_util::GetBit(words.data(), 0));
  EXPECT_TRUE(bit_util::GetBit(words.data(), 1));
  EXPECT_TRUE(bit_util::GetBit(words.data(), 2));
  EXPECT_FALSE(bit_util::GetBit(words.data(), 3));
}

TEST_F(KernelTest, FilterBitmapInt64Column) {
  BufferId in = Push<int64_t>({100, int64_t{1} << 40, 50});
  BufferId bitmap = Alloc(bit_util::BytesForBits(3));
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeFilterBitmap(
                      in, bitmap, CmpOp::kGt, ElementType::kInt64, 99, 0,
                      false, 3))
                  .ok());
  auto words = Pull<uint64_t>(bitmap, 1);
  EXPECT_TRUE(bit_util::GetBit(words.data(), 0));
  EXPECT_TRUE(bit_util::GetBit(words.data(), 1));
  EXPECT_FALSE(bit_util::GetBit(words.data(), 2));
}

// --- FILTER_POSITION ---

TEST_F(KernelTest, FilterPositionEmitsIndices) {
  BufferId in = Push<int32_t>({4, 8, 2, 8, 1});
  BufferId positions = Alloc(5 * 4);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeFilterPosition(
                      in, positions, count, CmpOp::kEq, ElementType::kInt32,
                      8, 0, 5))
                  .ok());
  EXPECT_EQ(PullCount(count), 2);
  auto pos = Pull<int32_t>(positions, 2);
  EXPECT_EQ(pos, (std::vector<int32_t>{1, 3}));
}

TEST_F(KernelTest, FilterPositionOverflowIsError) {
  BufferId in = Push<int32_t>({1, 1, 1});
  BufferId positions = Alloc(1 * 4);  // room for one hit
  BufferId count = Alloc(8);
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeFilterPosition(
                      in, positions, count, CmpOp::kEq, ElementType::kInt32,
                      1, 0, 3))
                  .IsExecutionError());
}

// --- MATERIALIZE / MATERIALIZE_POSITION ---

TEST_F(KernelTest, MaterializeCompactsByBitmap) {
  BufferId in = Push<int32_t>({10, 20, 30, 40, 50});
  std::vector<uint64_t> bits = {0b10101};
  BufferId bitmap = Push<uint64_t>(bits);
  BufferId out = Alloc(5 * 4);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMaterialize(
                      in, bitmap, out, count, ElementType::kInt32, 5))
                  .ok());
  EXPECT_EQ(PullCount(count), 3);
  EXPECT_EQ(Pull<int32_t>(out, 3), (std::vector<int32_t>{10, 30, 50}));
}

TEST_F(KernelTest, MaterializeInt64) {
  BufferId in = Push<int64_t>({100, 200, 300});
  BufferId bitmap = Push<uint64_t>({0b110});
  BufferId out = Alloc(3 * 8);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMaterialize(
                      in, bitmap, out, count, ElementType::kInt64, 3))
                  .ok());
  EXPECT_EQ(PullCount(count), 2);
  EXPECT_EQ(Pull<int64_t>(out, 2), (std::vector<int64_t>{200, 300}));
}

TEST_F(KernelTest, MaterializeOverflowIsError) {
  BufferId in = Push<int32_t>({1, 2, 3});
  BufferId bitmap = Push<uint64_t>({0b111});
  BufferId out = Alloc(2 * 4);
  BufferId count = Alloc(8);
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeMaterialize(
                      in, bitmap, out, count, ElementType::kInt32, 3))
                  .IsExecutionError());
}

TEST_F(KernelTest, MaterializePositionGathers) {
  BufferId in = Push<int32_t>({10, 20, 30, 40});
  BufferId positions = Push<int32_t>({3, 0, 3});
  BufferId out = Alloc(3 * 4);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMaterializePosition(
                      in, positions, out, ElementType::kInt32, 3))
                  .ok());
  EXPECT_EQ(Pull<int32_t>(out, 3), (std::vector<int32_t>{40, 10, 40}));
}

TEST_F(KernelTest, MaterializePositionOutOfRangeIsError) {
  BufferId in = Push<int32_t>({10, 20});
  BufferId positions = Push<int32_t>({5});
  BufferId out = Alloc(4);
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeMaterializePosition(
                      in, positions, out, ElementType::kInt32, 1))
                  .IsExecutionError());
}

// --- PREFIX_SUM ---

TEST_F(KernelTest, PrefixSumInclusiveExclusive) {
  BufferId in = Push<int32_t>({1, 0, 1, 1, 0});
  BufferId out = Alloc(5 * 4);
  ASSERT_TRUE(device_->Execute(kernels::MakePrefixSum(in, out, false, 5)).ok());
  EXPECT_EQ(Pull<int32_t>(out, 5), (std::vector<int32_t>{1, 1, 2, 3, 3}));
  ASSERT_TRUE(device_->Execute(kernels::MakePrefixSum(in, out, true, 5)).ok());
  EXPECT_EQ(Pull<int32_t>(out, 5), (std::vector<int32_t>{0, 1, 1, 2, 3}));
}

// --- AGG_BLOCK ---

TEST_F(KernelTest, AggBlockOps) {
  BufferId in = Push<int32_t>({4, -2, 9, 1});
  BufferId acc = Alloc(8);
  auto run = [&](AggOp op) {
    EXPECT_TRUE(device_
                    ->Execute(kernels::MakeAggBlock(in, acc, op,
                                                    ElementType::kInt32,
                                                    /*init=*/true, 4))
                    .ok());
    return PullCount(acc);
  };
  EXPECT_EQ(run(AggOp::kSum), 12);
  EXPECT_EQ(run(AggOp::kCount), 4);
  EXPECT_EQ(run(AggOp::kMin), -2);
  EXPECT_EQ(run(AggOp::kMax), 9);
}

TEST_F(KernelTest, AggBlockAccumulatesAcrossChunks) {
  BufferId a = Push<int32_t>({1, 2});
  BufferId b = Push<int32_t>({10});
  BufferId acc = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeAggBlock(a, acc, AggOp::kSum,
                                                  ElementType::kInt32, true, 2))
                  .ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeAggBlock(b, acc, AggOp::kSum,
                                                  ElementType::kInt32, false,
                                                  1))
                  .ok());
  EXPECT_EQ(PullCount(acc), 13);
}

TEST_F(KernelTest, AggBlockMinAcrossChunksUsesIdentity) {
  BufferId a = Push<int32_t>({5, 9});
  BufferId b = Push<int32_t>({7});
  BufferId acc = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeAggBlock(a, acc, AggOp::kMin,
                                                  ElementType::kInt32, true, 2))
                  .ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeAggBlock(b, acc, AggOp::kMin,
                                                  ElementType::kInt32, false,
                                                  1))
                  .ok());
  EXPECT_EQ(PullCount(acc), 5);
}

// --- HASH_BUILD / HASH_PROBE ---

TEST_F(KernelTest, HashBuildProbeInner) {
  BufferId keys = Push<int32_t>({10, 20, 30});
  BufferId payload = Push<int32_t>({100, 200, 300});
  const size_t slots = 16;
  BufferId table = Alloc(HashTableLayout::BuildTableBytes(slots));
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(
                                   table, HashTableLayout::kEmptyKey,
                                   HashTableLayout::BuildTableBytes(slots) / 4))
                  .ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashBuild(keys, payload, table,
                                                   slots, 0, 3))
                  .ok());
  BufferId probe_keys = Push<int32_t>({20, 99, 10});
  BufferId left = Alloc(4 * 4);
  BufferId right = Alloc(4 * 4);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashProbe(
                      probe_keys, table, left, right, count, slots,
                      ProbeMode::kAll, 0, 3))
                  .ok());
  EXPECT_EQ(PullCount(count), 2);
  EXPECT_EQ(Pull<int32_t>(left, 2), (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(Pull<int32_t>(right, 2), (std::vector<int32_t>{200, 100}));
}

TEST_F(KernelTest, HashProbeDuplicateBuildKeysEmitAllMatches) {
  BufferId keys = Push<int32_t>({7, 7, 8});
  const size_t slots = 16;
  BufferId table = Alloc(HashTableLayout::BuildTableBytes(slots));
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(
                                   table, HashTableLayout::kEmptyKey,
                                   HashTableLayout::BuildTableBytes(slots) / 4))
                  .ok());
  // No payload: defaults to pos_base + i.
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashBuild(keys, kInvalidBuffer,
                                                   table, slots, 100, 3))
                  .ok());
  BufferId probe_keys = Push<int32_t>({7});
  BufferId left = Alloc(4 * 4);
  BufferId right = Alloc(4 * 4);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashProbe(
                      probe_keys, table, left, right, count, slots,
                      ProbeMode::kAll, 0, 1))
                  .ok());
  EXPECT_EQ(PullCount(count), 2);
  auto payloads = Pull<int32_t>(right, 2);
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(payloads, (std::vector<int32_t>{100, 101}));
}

TEST_F(KernelTest, HashProbeSemiEmitsOnce) {
  BufferId keys = Push<int32_t>({7, 7});
  const size_t slots = 16;
  BufferId table = Alloc(HashTableLayout::BuildTableBytes(slots));
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(
                                   table, HashTableLayout::kEmptyKey,
                                   HashTableLayout::BuildTableBytes(slots) / 4))
                  .ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashBuild(keys, kInvalidBuffer,
                                                   table, slots, 0, 2))
                  .ok());
  BufferId probe_keys = Push<int32_t>({7, 9});
  BufferId left = Alloc(4 * 4);
  BufferId right = Alloc(4 * 4);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashProbe(
                      probe_keys, table, left, right, count, slots,
                      ProbeMode::kSemi, 0, 2))
                  .ok());
  EXPECT_EQ(PullCount(count), 1);
  EXPECT_EQ(Pull<int32_t>(left, 1)[0], 0);
}

TEST_F(KernelTest, HashBuildTableFullIsError) {
  BufferId keys = Push<int32_t>({1, 2, 3, 4, 5});
  const size_t slots = 4;
  BufferId table = Alloc(HashTableLayout::BuildTableBytes(slots));
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(
                                   table, HashTableLayout::kEmptyKey,
                                   HashTableLayout::BuildTableBytes(slots) / 4))
                  .ok());
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeHashBuild(keys, kInvalidBuffer,
                                                   table, slots, 0, 5))
                  .IsExecutionError());
}

TEST_F(KernelTest, HashBuildRejectsNonPowerOfTwoSlots) {
  BufferId keys = Push<int32_t>({1});
  BufferId table = Alloc(HashTableLayout::BuildTableBytes(16));
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeHashBuild(keys, kInvalidBuffer,
                                                   table, 10, 0, 1))
                  .IsInvalidArgument());
}

TEST_F(KernelTest, HashBuildRejectsSentinelKey) {
  BufferId keys = Push<int32_t>({HashTableLayout::kEmptyKey});
  const size_t slots = 16;
  BufferId table = Alloc(HashTableLayout::BuildTableBytes(slots));
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeHashBuild(keys, kInvalidBuffer,
                                                   table, slots, 0, 1))
                  .IsInvalidArgument());
}

TEST_F(KernelTest, HashProbeCollisionClusters) {
  // Many keys in a small table force linear-probing clusters; probing must
  // still find exactly the right entries.
  std::vector<int32_t> keys(32);
  std::iota(keys.begin(), keys.end(), 1);
  const size_t slots = 64;
  BufferId keys_buf = Push(keys);
  BufferId table = Alloc(HashTableLayout::BuildTableBytes(slots));
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(
                                   table, HashTableLayout::kEmptyKey,
                                   HashTableLayout::BuildTableBytes(slots) / 4))
                  .ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashBuild(keys_buf, kInvalidBuffer,
                                                   table, slots, 0, 32))
                  .ok());
  BufferId left = Alloc(32 * 4);
  BufferId right = Alloc(32 * 4);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashProbe(
                      keys_buf, table, left, right, count, slots,
                      ProbeMode::kAll, 0, 32))
                  .ok());
  EXPECT_EQ(PullCount(count), 32);
  auto payloads = Pull<int32_t>(right, 32);
  std::sort(payloads.begin(), payloads.end());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(payloads[static_cast<size_t>(i)], i);
}

// --- HASH_AGG ---

TEST_F(KernelTest, HashAggSumByGroup) {
  BufferId keys = Push<int32_t>({1, 2, 1, 3, 2, 1});
  BufferId values = Push<int64_t>({10, 20, 30, 40, 50, 60});
  const size_t slots = 16;
  BufferId table = Alloc(HashTableLayout::AggTableBytes(slots));
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(
                                   table, HashTableLayout::kEmptyKey,
                                   HashTableLayout::AggTableBytes(slots) / 4))
                  .ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashAgg(keys, values, table, slots,
                                                 AggOp::kSum,
                                                 ElementType::kInt64, 6, 3,
                                                 false))
                  .ok());
  auto bytes = Pull<uint8_t>(table, HashTableLayout::AggTableBytes(slots));
  const auto* agg_slots =
      reinterpret_cast<const HashTableLayout::AggSlot*>(bytes.data());
  std::map<int32_t, int64_t> groups;
  for (size_t i = 0; i < slots; ++i) {
    if (agg_slots[i].key != HashTableLayout::kEmptyKey) {
      groups[agg_slots[i].key] = agg_slots[i].value;
    }
  }
  EXPECT_EQ(groups, (std::map<int32_t, int64_t>{{1, 100}, {2, 70}, {3, 40}}));
}

TEST_F(KernelTest, HashAggCountNeedsNoValues) {
  BufferId keys = Push<int32_t>({5, 5, 6});
  const size_t slots = 16;
  BufferId table = Alloc(HashTableLayout::AggTableBytes(slots));
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(
                                   table, HashTableLayout::kEmptyKey,
                                   HashTableLayout::AggTableBytes(slots) / 4))
                  .ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeHashAgg(keys, kInvalidBuffer, table,
                                                 slots, AggOp::kCount,
                                                 ElementType::kInt64, 3, 2,
                                                 false))
                  .ok());
  auto bytes = Pull<uint8_t>(table, HashTableLayout::AggTableBytes(slots));
  const auto* agg_slots =
      reinterpret_cast<const HashTableLayout::AggSlot*>(bytes.data());
  int64_t count5 = 0, count6 = 0;
  for (size_t i = 0; i < slots; ++i) {
    if (agg_slots[i].key == 5) count5 = agg_slots[i].value;
    if (agg_slots[i].key == 6) count6 = agg_slots[i].value;
  }
  EXPECT_EQ(count5, 2);
  EXPECT_EQ(count6, 1);
}

TEST_F(KernelTest, HashAggRejectsValueMismatch) {
  BufferId keys = Push<int32_t>({1});
  BufferId values = Push<int64_t>({1});
  const size_t slots = 16;
  BufferId table = Alloc(HashTableLayout::AggTableBytes(slots));
  // COUNT with values.
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeHashAgg(keys, values, table, slots,
                                                 AggOp::kCount,
                                                 ElementType::kInt64, 1, 1,
                                                 false))
                  .IsInvalidArgument());
  // SUM without values.
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeHashAgg(keys, kInvalidBuffer, table,
                                                 slots, AggOp::kSum,
                                                 ElementType::kInt64, 1, 1,
                                                 false))
                  .IsInvalidArgument());
}

TEST_F(KernelTest, HashAggMinMax) {
  BufferId keys = Push<int32_t>({1, 1, 1});
  BufferId values = Push<int64_t>({5, -3, 9});
  const size_t slots = 16;
  for (auto [op, want] : std::vector<std::pair<AggOp, int64_t>>{
           {AggOp::kMin, -3}, {AggOp::kMax, 9}}) {
    BufferId table = Alloc(HashTableLayout::AggTableBytes(slots));
    ASSERT_TRUE(
        device_->Execute(kernels::MakeFill(
                             table, HashTableLayout::kEmptyKey,
                             HashTableLayout::AggTableBytes(slots) / 4))
            .ok());
    ASSERT_TRUE(device_
                    ->Execute(kernels::MakeHashAgg(keys, values, table, slots,
                                                   op, ElementType::kInt64, 3,
                                                   1, false))
                    .ok());
    auto bytes = Pull<uint8_t>(table, HashTableLayout::AggTableBytes(slots));
    const auto* agg_slots =
        reinterpret_cast<const HashTableLayout::AggSlot*>(bytes.data());
    int64_t got = 0;
    for (size_t i = 0; i < slots; ++i) {
      if (agg_slots[i].key == 1) got = agg_slots[i].value;
    }
    EXPECT_EQ(got, want);
  }
}

// --- SORT_AGG ---

TEST_F(KernelTest, SortAggSumsByGroupIndex) {
  BufferId values = Push<int64_t>({10, 20, 30, 40});
  BufferId pxsum = Push<int32_t>({0, 0, 1, 2});
  BufferId agg = Alloc(3 * 8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeSortAgg(values, pxsum, agg,
                                                 AggOp::kSum,
                                                 ElementType::kInt64, 3, true,
                                                 4))
                  .ok());
  EXPECT_EQ(Pull<int64_t>(agg, 3), (std::vector<int64_t>{30, 30, 40}));
}

TEST_F(KernelTest, SortAggRejectsMinMax) {
  BufferId values = Push<int64_t>({1});
  BufferId pxsum = Push<int32_t>({0});
  BufferId agg = Alloc(8);
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeSortAgg(values, pxsum, agg,
                                                 AggOp::kMin,
                                                 ElementType::kInt64, 1, true,
                                                 1))
                  .IsNotSupported());
}

TEST_F(KernelTest, SortAggGroupOutOfRangeIsError) {
  BufferId values = Push<int64_t>({1});
  BufferId pxsum = Push<int32_t>({5});
  BufferId agg = Alloc(2 * 8);
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeSortAgg(values, pxsum, agg,
                                                 AggOp::kSum,
                                                 ElementType::kInt64, 2, true,
                                                 1))
                  .IsExecutionError());
}

// --- Device-resident counts (the count_in convention) ---

TEST_F(KernelTest, CountInLimitsProcessing) {
  BufferId in = Push<int32_t>({1, 2, 3, 4, 5});
  BufferId count_in = Push<int64_t>({3});
  BufferId out = Alloc(5 * 4);
  // Pre-fill output so untouched slots are observable.
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(out, -1, 5)).ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kAddScalar,
                                             ElementType::kInt32,
                                             ElementType::kInt32, 10,
                                             /*worst case=*/5, count_in))
                  .ok());
  auto got = Pull<int32_t>(out, 5);
  EXPECT_EQ(got, (std::vector<int32_t>{11, 12, 13, -1, -1}));
}

TEST_F(KernelTest, CountInChainsThroughPipelineStages) {
  // filter_position -> materialize_position driven purely by device counts.
  BufferId in = Push<int32_t>({9, 1, 9, 2, 9});
  BufferId positions = Alloc(5 * 4);
  BufferId count = Alloc(8);
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeFilterPosition(
                      in, positions, count, CmpOp::kEq, ElementType::kInt32,
                      9, 0, 5))
                  .ok());
  BufferId values = Push<int32_t>({100, 101, 102, 103, 104});
  BufferId out = Alloc(5 * 4);
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(out, -1, 5)).ok());
  ASSERT_TRUE(device_
                  ->Execute(kernels::MakeMaterializePosition(
                      values, positions, out, ElementType::kInt32,
                      /*worst case=*/5, count))
                  .ok());
  auto got = Pull<int32_t>(out, 5);
  EXPECT_EQ(got, (std::vector<int32_t>{100, 102, 104, -1, -1}));
}

TEST_F(KernelTest, NegativeDeviceCountIsError) {
  BufferId in = Push<int32_t>({1});
  BufferId count_in = Push<int64_t>({-1});
  BufferId out = Alloc(4);
  EXPECT_TRUE(device_
                  ->Execute(kernels::MakeMap(in, kInvalidBuffer, out,
                                             MapOp::kIdentity,
                                             ElementType::kInt32,
                                             ElementType::kInt32, 0, 1,
                                             count_in))
                  .IsExecutionError());
}

// --- fill ---

TEST_F(KernelTest, FillWritesPattern) {
  BufferId out = Alloc(4 * 4);
  ASSERT_TRUE(device_->Execute(kernels::MakeFill(out, 0x5A5A5A5A, 4)).ok());
  EXPECT_EQ(Pull<int32_t>(out, 4), std::vector<int32_t>(4, 0x5A5A5A5A));
}

// --- Registry metadata ---

TEST(KernelRegistry, AllKernelNamesHaveFnAndSource) {
  for (const std::string& name : kernels::AllKernelNames()) {
    EXPECT_TRUE(kernels::HasKernel(name));
    EXPECT_NE(kernels::KernelSourceText(name).find("__kernel"),
              std::string::npos);
  }
  EXPECT_FALSE(kernels::HasKernel("bogus"));
  EXPECT_EQ(kernels::AllKernelNames().size(), 13u)
      << "11 Table-I + fill + fused";
}

}  // namespace
}  // namespace adamant
