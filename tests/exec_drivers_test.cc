// Unit tests for the execution-model driver framework (src/runtime/exec/):
// the ChunkSource arithmetic every driver shares, the driver factory, the
// host-side breaker merge helpers, and device-parallel edge cases (single
// device, fewer chunks than devices, unsupported breakers, bad device ids).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "adamant/adamant.h"
#include "runtime/exec/drivers.h"
#include "runtime/exec/model_driver.h"
#include "runtime/exec/run_context.h"
#include "task/hash_table.h"
#include "task/merge.h"

namespace adamant {
namespace {

// --- ChunkSource -----------------------------------------------------------

TEST(ChunkSourceTest, SplitsWithRemainderInLastChunk) {
  exec::ChunkSource source(1000, 300);
  EXPECT_EQ(source.total(), 4u);
  EXPECT_EQ(source.rows(0), 300u);
  EXPECT_EQ(source.rows(3), 100u);
  EXPECT_EQ(source.base(3), 900u);
}

TEST(ChunkSourceTest, ExactMultipleHasNoRemainderChunk) {
  exec::ChunkSource source(1024, 256);
  EXPECT_EQ(source.total(), 4u);
  EXPECT_EQ(source.rows(3), 256u);
}

TEST(ChunkSourceTest, EmptyInputStillHasOneChunk) {
  // PipelineChunkCapacity clamps cap to input_rows, so an empty pipeline
  // arrives as (0, 0): one zero-row chunk, in which breakers still run and
  // write their identity.
  exec::ChunkSource source(0, 0);
  EXPECT_EQ(source.total(), 1u);
  EXPECT_EQ(source.rows(0), 0u);
}

// --- Driver factory --------------------------------------------------------

TEST(ModelDriverTest, FactoryCoversEveryModel) {
  const std::pair<ExecutionModelKind, const char*> kExpected[] = {
      {ExecutionModelKind::kOperatorAtATime, "operator-at-a-time"},
      {ExecutionModelKind::kChunked, "chunked"},
      {ExecutionModelKind::kPipelined, "pipelined"},
      {ExecutionModelKind::kFourPhaseChunked, "4-phase"},
      {ExecutionModelKind::kFourPhasePipelined, "4-phase-pipelined"},
      {ExecutionModelKind::kDeviceParallel, "device-parallel"},
  };
  for (const auto& [kind, name] : kExpected) {
    auto driver = exec::MakeModelDriver(kind);
    ASSERT_TRUE(driver.ok()) << name;
    EXPECT_STREQ((*driver)->name(), name);
    EXPECT_STREQ(ExecutionModelName(kind), name);
  }
}

// --- Host-side breaker merges ---------------------------------------------

TEST(MergeTest, AggPartialsFollowOpSemantics) {
  EXPECT_EQ(MergeAggPartials(AggOp::kSum, 3, 4), 7);
  // Partial counts add (unlike the per-row combine, where COUNT increments).
  EXPECT_EQ(MergeAggPartials(AggOp::kCount, 3, 4), 7);
  EXPECT_EQ(MergeAggPartials(AggOp::kMin, 3, 4), 3);
  EXPECT_EQ(MergeAggPartials(AggOp::kMax, 3, 4), 4);
}

TEST(MergeTest, AggTablesMergeByKey) {
  using Slot = HashTableLayout::AggSlot;
  const size_t slots = 8;
  std::vector<Slot> dst(slots), partial(slots);
  for (auto* table : {&dst, &partial}) {
    for (Slot& slot : *table) slot.key = HashTableLayout::kEmptyKey;
  }
  auto insert = [&](std::vector<Slot>& table, int32_t key, int64_t value) {
    size_t i = HashTableLayout::Hash(key) & (slots - 1);
    while (table[i].key != HashTableLayout::kEmptyKey) i = (i + 1) % slots;
    table[i].key = key;
    table[i].value = value;
  };
  insert(dst, 1, 10);
  insert(dst, 2, 20);
  insert(partial, 2, 5);   // merges into dst's key 2
  insert(partial, 3, 30);  // new key
  auto st = MergeAggTables(AggOp::kSum,
                           reinterpret_cast<const uint8_t*>(partial.data()),
                           slots, reinterpret_cast<uint8_t*>(dst.data()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<std::pair<int32_t, int64_t>> got;
  for (const Slot& slot : dst) {
    if (slot.key != HashTableLayout::kEmptyKey) {
      got.emplace_back(slot.key, slot.value);
    }
  }
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<int32_t, int64_t>> want = {
      {1, 10}, {2, 25}, {3, 30}};
  EXPECT_EQ(got, want);
}

TEST(MergeTest, BuildTablesUnionPreservesDuplicates) {
  using Slot = HashTableLayout::BuildSlot;
  const size_t slots = 8;
  std::vector<Slot> dst(slots), partial(slots);
  for (auto* table : {&dst, &partial}) {
    for (Slot& slot : *table) slot.key = HashTableLayout::kEmptyKey;
  }
  auto insert = [&](std::vector<Slot>& table, int32_t key, int32_t payload) {
    size_t i = HashTableLayout::Hash(key) & (slots - 1);
    while (table[i].key != HashTableLayout::kEmptyKey) i = (i + 1) % slots;
    table[i].key = key;
    table[i].payload = payload;
  };
  insert(dst, 1, 100);
  insert(partial, 1, 200);  // same key: both entries must survive
  insert(partial, 2, 300);
  auto st = MergeBuildTables(reinterpret_cast<const uint8_t*>(partial.data()),
                             slots, reinterpret_cast<uint8_t*>(dst.data()));
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<std::pair<int32_t, int32_t>> got;
  for (const Slot& slot : dst) {
    if (slot.key != HashTableLayout::kEmptyKey) {
      got.emplace_back(slot.key, slot.payload);
    }
  }
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<int32_t, int32_t>> want = {
      {1, 100}, {1, 200}, {2, 300}};
  EXPECT_EQ(got, want);
}

TEST(MergeTest, AggTableOverflowReported) {
  using Slot = HashTableLayout::AggSlot;
  // A full destination with all-distinct keys cannot absorb a new one.
  const size_t slots = 2;
  std::vector<Slot> dst(slots), partial(slots);
  dst[0] = {1, 0, 10};
  dst[1] = {2, 0, 20};
  partial[0] = {3, 0, 30};
  partial[1].key = HashTableLayout::kEmptyKey;
  auto st = MergeAggTables(AggOp::kSum,
                           reinterpret_cast<const uint8_t*>(partial.data()),
                           slots, reinterpret_cast<uint8_t*>(dst.data()));
  EXPECT_FALSE(st.ok());
}

// --- Device-parallel edge cases -------------------------------------------

struct DeviceParallelFixture {
  std::shared_ptr<Catalog> catalog;

  static const DeviceParallelFixture& Get() {
    static const DeviceParallelFixture* const kFixture = [] {
      auto* fixture = new DeviceParallelFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      config.include_dimension_tables = false;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

std::unique_ptr<DeviceManager> GpuManager(int count) {
  auto manager = std::make_unique<DeviceManager>();
  for (int i = 0; i < count; ++i) {
    auto device = manager->AddDriver(sim::DriverKind::kCudaGpu,
                                     "cuda_gpu." + std::to_string(i));
    ADAMANT_CHECK(device.ok()) << device.status().ToString();
    ADAMANT_CHECK(BindStandardKernels(manager->device(*device)).ok());
  }
  return manager;
}

TEST(DeviceParallelTest, SingleDeviceSetDegeneratesToChunked) {
  const auto& fixture = DeviceParallelFixture::Get();
  auto manager = GpuManager(1);
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kDeviceParallel;
  options.device_set = {0};
  options.chunk_elems = 1024;
  QueryExecutor executor(manager.get());
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto revenue = plan::ExtractQ6(*bundle, *exec);
  ASSERT_TRUE(revenue.ok());
  auto want = tpch::Q6Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*revenue, *want);
}

TEST(DeviceParallelTest, MoreDevicesThanChunksLeavesIdleDevices) {
  const auto& fixture = DeviceParallelFixture::Get();
  auto manager = GpuManager(4);
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kDeviceParallel;
  options.device_set = {0, 1, 2, 3};
  // Chunk cap large enough that there is exactly one chunk: three devices
  // run zero chunks and must not corrupt the merged result.
  options.chunk_elems = 1u << 25;
  QueryExecutor executor(manager.get());
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto revenue = plan::ExtractQ6(*bundle, *exec);
  ASSERT_TRUE(revenue.ok());
  auto want = tpch::Q6Reference(*fixture.catalog, {});
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*revenue, *want);
  EXPECT_EQ(exec->stats.chunks, 1u);
}

TEST(DeviceParallelTest, EmptyDeviceSetUsesAllPluggedDevices) {
  const auto& fixture = DeviceParallelFixture::Get();
  auto manager = GpuManager(2);
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kDeviceParallel;
  options.chunk_elems = 1024;
  QueryExecutor executor(manager.get());
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->stats.chunks_by_device.size(), 2u);
}

TEST(DeviceParallelTest, UnpluggedDeviceIdRejected) {
  const auto& fixture = DeviceParallelFixture::Get();
  auto manager = GpuManager(1);
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kDeviceParallel;
  options.device_set = {0, 7};
  QueryExecutor executor(manager.get());
  auto exec = executor.Run(bundle->graph.get(), options);
  EXPECT_FALSE(exec.ok());
}

TEST(DeviceParallelTest, GlobalBreakersRejected) {
  const auto& fixture = DeviceParallelFixture::Get();
  auto manager = GpuManager(2);
  // PREFIX_SUM / SORT_AGG are global breakers: a chunk split would change
  // their results, so the driver must refuse rather than silently corrupt.
  auto bundle = plan::BuildRevenueByOrderSorted(*fixture.catalog, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.model = ExecutionModelKind::kDeviceParallel;
  options.device_set = {0, 1};
  QueryExecutor executor(manager.get());
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsNotSupported()) << exec.status().ToString();
}

// Device-parallel accumulates hub byte counters from every partition.
TEST(DeviceParallelTest, StatsAccumulateAcrossPartitions) {
  const auto& fixture = DeviceParallelFixture::Get();
  auto manager = GpuManager(2);
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());

  ExecutionOptions chunked;
  chunked.model = ExecutionModelKind::kChunked;
  chunked.chunk_elems = 1024;
  QueryExecutor executor(manager.get());
  auto base = executor.Run(bundle->graph.get(), chunked);
  ASSERT_TRUE(base.ok());

  ExecutionOptions parallel = chunked;
  parallel.model = ExecutionModelKind::kDeviceParallel;
  parallel.device_set = {0, 1};
  auto split = executor.Run(bundle->graph.get(), parallel);
  ASSERT_TRUE(split.ok()) << split.status().ToString();

  // Same scan volume moves host-to-device regardless of which device runs
  // each chunk, and the chunk count matches.
  EXPECT_EQ(split->stats.bytes_h2d, base->stats.bytes_h2d);
  EXPECT_EQ(split->stats.chunks, base->stats.chunks);
}

}  // namespace
}  // namespace adamant
