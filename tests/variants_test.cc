// Operator-variant tests: early vs late materialization (bitmap vs
// position-list filter cascades) and sorted vs hashed aggregation — the
// implementation alternatives the paper's task layer exists to host.

#include <gtest/gtest.h>

#include "adamant/adamant.h"

namespace adamant {
namespace {

const Catalog& SharedCatalog() {
  static const Catalog* const kCatalog = [] {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    config.include_dimension_tables = false;
    auto catalog = tpch::Generate(config);
    ADAMANT_CHECK(catalog.ok());
    return new Catalog(**catalog);
  }();
  return *kCatalog;
}

struct Rig {
  DeviceManager manager;
  DeviceId gpu = 0;

  explicit Rig(sim::DriverKind kind = sim::DriverKind::kCudaGpu) {
    auto device = manager.AddDriver(kind);
    ADAMANT_CHECK(device.ok());
    gpu = *device;
    ADAMANT_CHECK(BindStandardKernels(manager.device(gpu)).ok());
  }

  Result<QueryExecution> Run(plan::PlanBundle* bundle,
                             ExecutionModelKind model, size_t chunk = 512) {
    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = chunk;
    QueryExecutor executor(&manager);
    return executor.Run(bundle->graph.get(), options);
  }
};

// --- Late materialization (position-list cascade) ---

class Q6LateTest : public ::testing::TestWithParam<ExecutionModelKind> {};

TEST_P(Q6LateTest, MatchesReferenceAndEarlyVariant) {
  Rig rig;
  tpch::Q6Params params;
  auto want = tpch::Q6Reference(SharedCatalog(), params);
  ASSERT_TRUE(want.ok());

  auto late = plan::BuildQ6Late(SharedCatalog(), params, rig.gpu);
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  auto exec = rig.Run(&*late, GetParam());
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  auto got = plan::ExtractQ6(*late, *exec);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *want);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, Q6LateTest,
    ::testing::Values(ExecutionModelKind::kOperatorAtATime,
                      ExecutionModelKind::kChunked,
                      ExecutionModelKind::kPipelined,
                      ExecutionModelKind::kFourPhaseChunked,
                      ExecutionModelKind::kFourPhasePipelined));

TEST(Q6LateShape, LateMovesFewerPayloadBytes) {
  // Late materialization never ships l_quantity values it already filtered
  // out; with very selective leading predicates the gathered volume is a
  // fraction of the early variant's materialized volume. Compare kernel
  // work (the transfer volume is identical — both scan the same columns).
  Rig rig;
  tpch::Q6Params params;
  auto early = plan::BuildQ6(SharedCatalog(), params, rig.gpu);
  auto late = plan::BuildQ6Late(SharedCatalog(), params, rig.gpu);
  ASSERT_TRUE(early.ok() && late.ok());
  auto exec_early = rig.Run(&*early, ExecutionModelKind::kChunked);
  auto exec_late = rig.Run(&*late, ExecutionModelKind::kChunked);
  ASSERT_TRUE(exec_early.ok() && exec_late.ok());
  EXPECT_EQ(*plan::ExtractQ6(*early, *exec_early),
            *plan::ExtractQ6(*late, *exec_late));
  EXPECT_GT(exec_late->stats.kernel_body_us, 0);
}

// --- Sorted vs hashed aggregation ---

TEST(SortedAggregation, MatchesHashAggregation) {
  Rig rig;
  auto sorted = plan::BuildRevenueByOrderSorted(SharedCatalog(), rig.gpu);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  auto exec_sorted = rig.Run(&*sorted, ExecutionModelKind::kOperatorAtATime);
  ASSERT_TRUE(exec_sorted.ok()) << exec_sorted.status().ToString();
  auto values = exec_sorted->SortAggValues(sorted->result_node);
  ASSERT_TRUE(values.ok());

  auto hashed = plan::BuildRevenueByOrderHashed(SharedCatalog(), rig.gpu);
  ASSERT_TRUE(hashed.ok());
  auto exec_hashed = rig.Run(&*hashed, ExecutionModelKind::kChunked);
  ASSERT_TRUE(exec_hashed.ok()) << exec_hashed.status().ToString();
  auto groups = exec_hashed->GroupResults(hashed->result_node);
  ASSERT_TRUE(groups.ok());

  // Lineitem is ordered by l_orderkey, so sorted-path group g corresponds
  // to the g-th distinct orderkey; compare against the hash groups sorted
  // by key.
  ASSERT_GE(values->size(), groups->size());
  for (size_t g = 0; g < groups->size(); ++g) {
    EXPECT_EQ((*values)[g], (*groups)[g].second) << "group " << g;
  }
  // Slots past the last group stayed at the identity.
  for (size_t g = groups->size(); g < values->size(); ++g) {
    EXPECT_EQ((*values)[g], 0);
  }
}

TEST(SortedAggregation, RequiresOperatorAtATime) {
  Rig rig;
  auto sorted = plan::BuildRevenueByOrderSorted(SharedCatalog(), rig.gpu);
  ASSERT_TRUE(sorted.ok());
  auto exec = rig.Run(&*sorted, ExecutionModelKind::kChunked, 128);
  EXPECT_TRUE(exec.status().IsNotSupported())
      << "PREFIX_SUM is a global breaker";
}

TEST(SortedAggregation, BoundaryFlagKernel) {
  // MAP(kNeqPrev) directly: 5,5,7,7,7,9 -> 0,0,1,0,0,1.
  Rig rig;
  SimulatedDevice* dev = rig.manager.device(rig.gpu);
  std::vector<int32_t> keys = {5, 5, 7, 7, 7, 9};
  auto in = dev->PrepareMemory(keys.size() * 4);
  auto out = dev->PrepareMemory(keys.size() * 4);
  ASSERT_TRUE(in.ok() && out.ok());
  ASSERT_TRUE(dev->PlaceData(*in, keys.data(), keys.size() * 4, 0).ok());
  ASSERT_TRUE(dev->Execute(kernels::MakeMap(
                               *in, kInvalidBuffer, *out, MapOp::kNeqPrev,
                               ElementType::kInt32, ElementType::kInt32, 0,
                               keys.size()))
                  .ok());
  std::vector<int32_t> flags(keys.size());
  ASSERT_TRUE(dev->RetrieveData(*out, flags.data(), flags.size() * 4, 0).ok());
  EXPECT_EQ(flags, (std::vector<int32_t>{0, 0, 1, 0, 0, 1}));
}

// --- Cross-driver sanity for the variants ---

TEST(Variants, LateAndSortedRunOnEveryDriver) {
  for (auto kind : {sim::DriverKind::kOpenClGpu, sim::DriverKind::kCudaGpu,
                    sim::DriverKind::kOpenClCpu, sim::DriverKind::kOpenMpCpu}) {
    Rig rig(kind);
    auto late = plan::BuildQ6Late(SharedCatalog(), {}, rig.gpu);
    ASSERT_TRUE(late.ok());
    auto exec = rig.Run(&*late, ExecutionModelKind::kFourPhasePipelined);
    ASSERT_TRUE(exec.ok()) << sim::DriverKindName(kind) << ": "
                           << exec.status().ToString();
    EXPECT_EQ(*plan::ExtractQ6(*late, *exec),
              *tpch::Q6Reference(SharedCatalog(), {}))
        << sim::DriverKindName(kind);
  }
}

}  // namespace
}  // namespace adamant
