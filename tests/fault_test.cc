// Fault-tolerance tests: the fault-injecting device decorator, typed error
// unwinding in the executor (ledger drains to zero), scan-cache lease
// invalidation on half-filled buffers, retry with re-placement, device
// quarantine with probe-based re-admission, and the seeded soak whose
// results must match a fault-free run.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "adamant/adamant.h"

namespace adamant {
namespace {

struct FaultFixture {
  std::shared_ptr<Catalog> catalog;

  static const FaultFixture& Get() {
    static const FaultFixture* const kFixture = [] {
      auto* fixture = new FaultFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

QuerySpec SpecFor(const Catalog* catalog, int kind) {
  QuerySpec spec;
  if (kind == 0) {
    spec.name = "Q3";
    spec.make_graph =
        [catalog](DeviceId device) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::BuildQ3(*catalog, {}, device));
      return std::move(bundle.graph);
    };
  } else if (kind == 1) {
    spec.name = "Q4";
    spec.make_graph =
        [catalog](DeviceId device) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::BuildQ4(*catalog, {}, device));
      return std::move(bundle.graph);
    };
  } else {
    spec.name = "Q6";
    spec.make_graph =
        [catalog](DeviceId device) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::BuildQ6(*catalog, {}, device));
      return std::move(bundle.graph);
    };
  }
  return spec;
}

// --- Status classification -------------------------------------------------

TEST(StatusFaultTest, TransienceAndDeviceTagging) {
  Status transient = Status::DeviceUnavailable("dma engine hung");
  EXPECT_TRUE(transient.IsTransient());
  EXPECT_TRUE(transient.IsDeviceUnavailable());
  EXPECT_FALSE(Status::ExecutionError("bad plan").IsTransient());
  EXPECT_TRUE(Status::Unavailable("stopping").IsTransient());

  EXPECT_EQ(transient.device_id(), -1);
  Status tagged = transient.WithDevice(2);
  EXPECT_EQ(tagged.device_id(), 2);
  EXPECT_NE(tagged.ToString().find("[device 2]"), std::string::npos);
  // First tagger wins: the closest frame to the failing call knows best.
  EXPECT_EQ(tagged.WithDevice(5).device_id(), 2);
  // Context wrapping preserves the tag.
  EXPECT_EQ(tagged.WithContext("loading chunk").device_id(), 2);
  // OK stays untagged.
  EXPECT_EQ(Status::OK().WithDevice(3).device_id(), -1);
}

// --- FaultInjector decision engine -----------------------------------------

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  const FaultPlan plan = FaultPlan::TransientRate(0.3, 99);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    const auto call = static_cast<InterfaceCall>(i % 10);
    const auto da = a.OnCall(call, "dev");
    const auto db = b.OnCall(call, "dev");
    EXPECT_EQ(da.status.ok(), db.status.ok()) << "call " << i;
  }
  EXPECT_EQ(a.injected_faults(), b.injected_faults());
  EXPECT_GT(a.injected_faults(), 0u);  // p = 0.3 over 80 faultable calls
}

TEST(FaultInjectorTest, FailNthFiresExactlyOnce) {
  FaultInjector injector(FaultPlan::FailNth(InterfaceCall::kExecute, 3));
  for (int i = 1; i <= 6; ++i) {
    const auto decision = injector.OnCall(InterfaceCall::kExecute, "dev");
    if (i == 3) {
      EXPECT_TRUE(decision.status.IsDeviceUnavailable()) << "call " << i;
    } else {
      EXPECT_TRUE(decision.status.ok()) << "call " << i;
    }
  }
  EXPECT_EQ(injector.injected_faults(), 1u);
  EXPECT_EQ(injector.calls_seen(InterfaceCall::kExecute), 6u);
}

TEST(FaultInjectorTest, StickyPersistsUntilCleared) {
  FaultInjector injector(FaultPlan::Sticky(InterfaceCall::kPlaceData, 2));
  EXPECT_TRUE(injector.OnCall(InterfaceCall::kPlaceData, "dev").status.ok());
  EXPECT_FALSE(injector.OnCall(InterfaceCall::kPlaceData, "dev").status.ok());
  EXPECT_FALSE(injector.OnCall(InterfaceCall::kPlaceData, "dev").status.ok());
  injector.ClearSticky();  // the driver reset a probe models
  EXPECT_TRUE(injector.OnCall(InterfaceCall::kPlaceData, "dev").status.ok());
}

TEST(FaultInjectorTest, LatencySpikeWithoutFailure) {
  FaultPlan plan;
  FaultSpec spec;
  spec.call = InterfaceCall::kExecute;
  spec.nth_call = 1;
  spec.latency_spike_us = 500;
  spec.code = StatusCode::kOk;  // slow, not broken
  plan.specs.push_back(spec);
  FaultInjector injector(plan);
  const auto decision = injector.OnCall(InterfaceCall::kExecute, "dev");
  EXPECT_TRUE(decision.status.ok());
  EXPECT_EQ(decision.latency_us, 500u);
  EXPECT_EQ(injector.injected_faults(), 0u);
}

// --- DeviceHealth circuit breaker ------------------------------------------

TEST(DeviceHealthTest, QuarantineAndProbeCycle) {
  DeviceHealthConfig config;
  config.quarantine_threshold = 2;
  config.probe_cooldown_ms = 10.0;
  config.cooldown_multiplier = 2.0;
  config.cooldown_max_ms = 100.0;
  DeviceHealth health(2, config);
  const auto t0 = std::chrono::steady_clock::now();

  EXPECT_TRUE(health.Placeable(0, t0));
  EXPECT_FALSE(health.OnFailure(0, t0));  // 1 of 2
  EXPECT_TRUE(health.Placeable(0, t0));
  EXPECT_TRUE(health.OnFailure(0, t0));  // threshold: quarantined
  EXPECT_TRUE(health.quarantined(0));
  EXPECT_FALSE(health.Placeable(0, t0));  // cooling down
  EXPECT_TRUE(health.Placeable(1, t0));   // the sibling is untouched

  const auto after_cooldown = t0 + std::chrono::milliseconds(11);
  EXPECT_TRUE(health.Placeable(0, after_cooldown));  // probe is due
  EXPECT_TRUE(health.OnPlaced(0));                   // probe claimed
  EXPECT_FALSE(health.Placeable(0, after_cooldown)); // one probe at a time

  // Failed probe: still quarantined, cooldown doubled.
  EXPECT_TRUE(health.OnFailure(0, after_cooldown));
  EXPECT_FALSE(health.Placeable(0, after_cooldown +
                                       std::chrono::milliseconds(11)));
  const auto after_backoff = after_cooldown + std::chrono::milliseconds(21);
  EXPECT_TRUE(health.Placeable(0, after_backoff));
  EXPECT_TRUE(health.OnPlaced(0));
  EXPECT_TRUE(health.OnSuccess(0));  // probe passed: re-admitted
  EXPECT_FALSE(health.quarantined(0));
  EXPECT_EQ(health.consecutive_failures(0), 0u);
  EXPECT_TRUE(health.Placeable(0, after_backoff));
}

// --- Executor unwind: the ledger drains to zero ----------------------------

TEST(ExecutorFaultTest, UnwindDrainsLedgerToZero) {
  const auto& fixture = FaultFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                                  FaultPlan::FailNth(InterfaceCall::kExecute, 2));
  ASSERT_TRUE(device.ok()) << device.status().ToString();
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  MemoryLedger ledger(&manager, 0);
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.memory_listener = &ledger;
  QueryExecutor executor(&manager);
  auto result = executor.Run(bundle->graph.get(), options);

  // The injected failure surfaced typed and device-tagged...
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTransient()) << result.status().ToString();
  EXPECT_EQ(result.status().device_id(), 0) << result.status().ToString();
  // ...and the unwind gave every charged byte back: no phantom charge
  // survives onto the next query's budget.
  EXPECT_EQ(ledger.budget(0).live_bytes(), 0u);
  EXPECT_GT(ledger.budget(0).live_high_water(), 0u);  // it did allocate
}

TEST(ExecutorFaultTest, PlaceDataFailureAlsoDrainsLedger) {
  const auto& fixture = FaultFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(
      sim::DriverKind::kCudaGpu, "gpu.0",
      FaultPlan::FailNth(InterfaceCall::kPlaceData, 2));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  MemoryLedger ledger(&manager, 0);
  auto bundle = plan::BuildQ3(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  ExecutionOptions options;
  options.memory_listener = &ledger;
  QueryExecutor executor(&manager);
  auto result = executor.Run(bundle->graph.get(), options);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().device_id(), 0);
  EXPECT_EQ(ledger.budget(0).live_bytes(), 0u);
}

// --- Scan cache: a half-filled lease must not be served --------------------

TEST(CacheFaultTest, FailedPlaceInvalidatesLease) {
  DeviceManager manager;
  auto device = manager.AddDriver(
      sim::DriverKind::kCudaGpu, "gpu.0",
      FaultPlan::FailNth(InterfaceCall::kPlaceData, 1));
  ASSERT_TRUE(device.ok());

  auto column = std::make_shared<Column>("c", ElementType::kInt32);
  column->Resize(64);
  for (int i = 0; i < 64; ++i) column->mutable_data<int32_t>()[i] = i * 7;
  const size_t bytes = column->byte_size();

  DeviceColumnCache cache(&manager, bytes * 4);
  DataTransferHub hub(&manager, DataContainer::WithDefaultTransforms());
  hub.set_scan_cache(&cache);

  // First load: the cache allocates, the fill's PlaceData fails. The lease
  // must be dropped — the half-filled buffer must never be served.
  auto first = hub.LoadColumnChunk(0, column, 0, 64, sizeof(int32_t));
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().device_id(), 0);
  EXPECT_EQ(cache.GetStats().invalidations, 1u);
  EXPECT_EQ(cache.GetStats().entries, 0u);

  // Second load (the transient fault has passed): a fresh miss, filled
  // correctly end to end.
  auto second = hub.LoadColumnChunk(0, column, 0, 64, sizeof(int32_t));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second->hit);
  std::vector<int32_t> readback(64);
  ASSERT_TRUE(manager.device(0)
                  ->RetrieveData(second->buffer, readback.data(), bytes, 0)
                  .ok());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(readback[i], i * 7) << i;
}

// --- Service: typed rejection after Stop -----------------------------------

TEST(ServiceFaultTest, SubmitAfterStopIsUnavailable) {
  const auto& fixture = FaultFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  QueryService service(&manager, {});
  service.Stop();
  auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsUnavailable()) << ticket.status().ToString();
  EXPECT_TRUE(ticket.status().IsTransient());
  EXPECT_EQ(service.GetStats().rejected, 1u);
}

// --- Service: retry with re-placement --------------------------------------

TEST(ServiceFaultTest, TransientFaultRetriesOnSameOnlyDevice) {
  const auto& fixture = FaultFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(
      sim::DriverKind::kCudaGpu, "gpu.0",
      FaultPlan::FailNth(InterfaceCall::kExecute, 1));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  QueryService service(&manager, config);

  auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  const Result<QueryExecution>& result = (*ticket)->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Attempt 1 failed; the exclusion of the only device was dropped and the
  // retry ran on it again.
  EXPECT_EQ((*ticket)->attempts(), 2u);
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.requeues, 1u);
  EXPECT_EQ(stats.fault_unwinds, 1u);
  EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
}

TEST(ServiceFaultTest, PermanentErrorFailsWithoutRetry) {
  const auto& fixture = FaultFixture::Get();
  DeviceManager manager;
  FaultPlan plan = FaultPlan::FailNth(InterfaceCall::kExecute, 1);
  plan.specs[0].code = StatusCode::kExecutionError;  // not transient
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                                  std::move(plan));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  QueryService service(&manager, config);
  auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_TRUE(ticket.ok());
  const Result<QueryExecution>& result = (*ticket)->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(result.status().IsTransient());
  EXPECT_EQ((*ticket)->attempts(), 1u);
  service.Drain();
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 0u);
  // The unwind still ran and the device still takes the health hit.
  EXPECT_EQ(stats.fault_unwinds, 1u);
  EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
}

// --- Service: quarantine and survivors -------------------------------------

TEST(ServiceFaultTest, StickyDeviceQuarantinedSurvivorsComplete) {
  const auto& fixture = FaultFixture::Get();
  DeviceManager manager;
  // gpu.0 dies on its first Execute and stays dead; gpu.1 is healthy.
  auto sick = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                                FaultPlan::Sticky(InterfaceCall::kExecute));
  auto healthy = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.1");
  ASSERT_TRUE(sick.ok() && healthy.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*sick)).ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*healthy)).ok());

  ServiceConfig config;
  config.workers = 2;
  config.retry.max_attempts = 5;
  config.health.quarantine_threshold = 2;
  // No probe during the test: the dead device must stay out of rotation.
  config.health.probe_cooldown_ms = 60000.0;
  QueryService service(&manager, config);

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = service.Submit(SpecFor(fixture.catalog.get(), i % 3));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(*ticket);
  }
  for (const auto& ticket : tickets) {
    EXPECT_TRUE(ticket->Wait().ok()) << ticket->Wait().status().ToString();
  }
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_TRUE(stats.devices[0].quarantined);
  EXPECT_FALSE(stats.devices[1].quarantined);
  // Every completion ran on the healthy sibling.
  EXPECT_EQ(stats.devices[0].completed, 0u);
  EXPECT_EQ(stats.devices[1].completed, 8u);
  EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
  EXPECT_EQ(service.ledger().budget(1).live_bytes(), 0u);
}

TEST(ServiceFaultTest, ProbeReadmitsRecoveredDevice) {
  const auto& fixture = FaultFixture::Get();
  DeviceManager manager;
  auto device = MakeFaultInjectingDriver(
      sim::DriverKind::kCudaGpu, manager.setup(), manager.sim_context(),
      FaultPlan::Sticky(InterfaceCall::kExecute));
  FaultInjectingDevice* handle = device.get();
  handle->set_name("gpu.0");
  auto id = manager.AddDevice(std::move(device));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*id)).ok());

  ServiceConfig config;
  config.workers = 1;
  config.retry.max_attempts = 8;
  config.health.quarantine_threshold = 1;
  config.health.probe_cooldown_ms = 5.0;
  QueryService service(&manager, config);

  auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_TRUE(ticket.ok());
  // Wait for the quarantine, then "reset the driver": the next probe finds
  // a healthy device and re-admits it.
  for (int i = 0; i < 2000 && service.GetStats().quarantines == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(service.GetStats().quarantines, 1u);
  handle->injector().ClearSticky();

  const Result<QueryExecution>& result = (*ticket)->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.probes, 1u);
  EXPECT_FALSE(stats.devices[0].quarantined);
  EXPECT_EQ(stats.devices[0].consecutive_failures, 0u);
}

// --- The headline soak: faulty run matches the fault-free baseline ---------

TEST(ServiceFaultTest, SeededSoakMatchesFaultFreeBaseline) {
  const auto& fixture = FaultFixture::Get();

  // Fault-free baseline on a separate, clean manager.
  DeviceManager clean;
  auto baseline_dev = clean.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(baseline_dev.ok());
  ASSERT_TRUE(BindStandardKernels(clean.device(*baseline_dev)).ok());
  QueryExecutor executor(&clean);
  auto q3_bundle = plan::BuildQ3(*fixture.catalog, {}, 0);
  auto q4_bundle = plan::BuildQ4(*fixture.catalog, {}, 0);
  auto q6_bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(q3_bundle.ok() && q4_bundle.ok() && q6_bundle.ok());
  auto q3_exec = executor.Run(q3_bundle->graph.get(), {});
  auto q4_exec = executor.Run(q4_bundle->graph.get(), {});
  auto q6_exec = executor.Run(q6_bundle->graph.get(), {});
  ASSERT_TRUE(q3_exec.ok() && q4_exec.ok() && q6_exec.ok());
  auto q3_ref = plan::ExtractQ3(*q3_bundle, *q3_exec, *fixture.catalog, {});
  auto q4_ref = plan::ExtractQ4(*q4_bundle, *q4_exec);
  auto q6_ref = plan::ExtractQ6(*q6_bundle, *q6_exec);
  ASSERT_TRUE(q3_ref.ok() && q4_ref.ok() && q6_ref.ok());

  // Two devices, each with ~10% per-attempt transient fault rate spread
  // over the ~15 fault-prone interface calls a query makes.
  DeviceManager manager;
  for (int i = 0; i < 2; ++i) {
    auto device = manager.AddDriver(
        sim::DriverKind::kCudaGpu, "gpu." + std::to_string(i),
        FaultPlan::TransientRate(0.007, 13 + static_cast<uint64_t>(i)));
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  }

  ServiceConfig config;
  config.workers = 4;
  config.retry.max_attempts = 8;
  QueryService service(&manager, config);

  std::mt19937 rng(7);
  std::uniform_int_distribution<int> pick(0, 2);
  std::vector<int> kinds;
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 200; ++i) {
    const int kind = pick(rng);
    auto ticket = service.Submit(SpecFor(fixture.catalog.get(), kind));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    kinds.push_back(kind);
    tickets.push_back(*ticket);
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    const Result<QueryExecution>& result = tickets[i]->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (kinds[i] == 0) {
      auto rows = plan::ExtractQ3(*q3_bundle, *result, *fixture.catalog, {});
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ(*rows, *q3_ref) << "query " << i;
    } else if (kinds[i] == 1) {
      auto rows = plan::ExtractQ4(*q4_bundle, *result);
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ(*rows, *q4_ref) << "query " << i;
    } else {
      auto revenue = plan::ExtractQ6(*q6_bundle, *result);
      ASSERT_TRUE(revenue.ok());
      EXPECT_EQ(*revenue, *q6_ref) << "query " << i;
    }
  }
  service.Drain();  // must terminate: no retry loop may hang the queue

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 200u);
  EXPECT_EQ(stats.failed, 0u);
  // The soak is meaningless if nothing actually went wrong.
  EXPECT_GT(stats.fault_unwinds, 0u);
  EXPECT_EQ(stats.retries, stats.requeues);
  // Every unwind drained its charges: the ledger is at zero on both devices.
  EXPECT_EQ(service.ledger().budget(0).live_bytes(), 0u);
  EXPECT_EQ(service.ledger().budget(1).live_bytes(), 0u);
}

// --- Determinism: same seed, same failure counters -------------------------

TEST(ServiceFaultTest, SameSeedSameCountersSequential) {
  const auto& fixture = FaultFixture::Get();
  auto run_once = [&fixture]() {
    DeviceManager manager;
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0",
                                    FaultPlan::TransientRate(0.02, 21));
    ADAMANT_CHECK(device.ok());
    ADAMANT_CHECK(BindStandardKernels(manager.device(*device)).ok());
    ServiceConfig config;
    config.workers = 1;  // one worker + sequential submits = one call order
    config.retry.max_attempts = 8;
    QueryService service(&manager, config);
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> pick(0, 2);
    for (int i = 0; i < 40; ++i) {
      auto ticket = service.Submit(SpecFor(fixture.catalog.get(), pick(rng)));
      ADAMANT_CHECK(ticket.ok());
      (*ticket)->Wait();
    }
    service.Drain();
    return service.GetStats();
  };

  const ServiceStats a = run_once();
  const ServiceStats b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.requeues, b.requeues);
  EXPECT_EQ(a.quarantines, b.quarantines);
  EXPECT_EQ(a.fault_unwinds, b.fault_unwinds);
  EXPECT_GT(a.fault_unwinds, 0u);  // the comparison must compare something
}

// --- Observability of injected faults --------------------------------------

TEST(FaultObservabilityTest, InjectedFailureEmitsTraceEventAndMetric) {
  const auto& fixture = FaultFixture::Get();
  obs::Counter* injected =
      obs::GlobalMetrics().GetCounter("adamant_faults_injected_total");
  const double injected_before = injected->Value();

  DeviceManager manager;
  auto device = manager.AddDriver(
      sim::DriverKind::kCudaGpu, "gpu.flaky",
      FaultPlan::FailNth(InterfaceCall::kExecute, 1));
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  {
    ServiceConfig config;
    config.workers = 1;
    QueryService service(&manager, config);
    auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE((*ticket)->Wait().ok());  // retried past the injected fault
    service.Drain();
  }
  const std::string json = recorder.ExportChromeJson();
  recorder.Disable();

  // The global counter moved by exactly the injected failure, and both the
  // unlabeled and the per-device series see it.
  EXPECT_EQ(injected->Value(), injected_before + 1);
  EXPECT_GE(obs::GlobalMetrics()
                .GetCounter("adamant_faults_injected_total", "device",
                            "gpu.flaky")
                ->Value(),
            1.0);

  // The trace names the injected fault distinctly — "fault:execute", with
  // the device in args — so it cannot be mistaken for an organic failure,
  // and the service's reaction (requeue) is on the same timeline.
  EXPECT_NE(json.find("\"name\":\"fault:execute\""), std::string::npos);
  EXPECT_NE(json.find("gpu.flaky"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"requeue\""), std::string::npos);
  // No latency spike was configured, so none may be reported.
  EXPECT_EQ(json.find("fault_latency:"), std::string::npos);

  obs::TraceCheckResult check = obs::ValidateChromeTrace(json);
  EXPECT_TRUE(check.ok) << check.Summary();
}

TEST(FaultObservabilityTest, LatencySpikeDistinguishableFromFailure) {
  obs::Counter* spikes =
      obs::GlobalMetrics().GetCounter("adamant_fault_latency_spikes_total");
  obs::Counter* injected =
      obs::GlobalMetrics().GetCounter("adamant_faults_injected_total");
  const double spikes_before = spikes->Value();
  const double injected_before = injected->Value();

  DeviceManager manager;
  FaultPlan plan;
  FaultSpec spec;
  spec.call = InterfaceCall::kPlaceData;
  spec.nth_call = 1;
  spec.latency_spike_us = 200;
  spec.code = StatusCode::kOk;  // a pure slowdown, not a failure
  plan.specs.push_back(spec);
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.slow",
                                  std::move(plan));
  ASSERT_TRUE(device.ok());
  SimulatedDevice* dev = manager.device(*device);  // AddDriver initialized it

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Enable();
  auto buf = dev->PrepareMemory(64);
  ASSERT_TRUE(buf.ok());
  std::vector<uint8_t> data(64, 0);
  ASSERT_TRUE(dev->PlaceData(*buf, data.data(), data.size(), 0).ok());
  const std::string json = recorder.ExportChromeJson();
  recorder.Disable();

  // A spike is a span (it has duration), named "fault_latency:..." — never
  // "fault:..." — and bumps only the spike counter.
  EXPECT_EQ(spikes->Value(), spikes_before + 1);
  EXPECT_EQ(injected->Value(), injected_before);
  EXPECT_NE(json.find("\"name\":\"fault_latency:place_data\""),
            std::string::npos);
  EXPECT_NE(json.find("\"latency_us\":200"), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"fault:place_data\""), std::string::npos);
}

}  // namespace
}  // namespace adamant
