// The paper's headline claim: a new co-processor/SDK can be plugged into the
// executor without reworking any other component. This test integrates a
// fictional "NPU" driver purely through the public device interface and runs
// the unchanged TPC-H plans on it.

#include <gtest/gtest.h>

#include <numeric>

#include "adamant/adamant.h"

namespace adamant {
namespace {

/// Performance model for a made-up inference accelerator repurposed for
/// query processing: huge compute rate, modest interconnect.
sim::DevicePerfModel NpuModel() {
  sim::DevicePerfModel m;
  m.name = "npu";
  m.transfer = sim::TransferParams{4.0, 8.0, 4.0, 8.0, 20.0};
  m.kernel_launch_us = 2.0;
  m.per_arg_map_us = 0.0;
  m.host_call_us = 0.2;
  m.device_memory_bytes = size_t{16} << 30;
  m.pinned_memory_bytes = size_t{8} << 30;
  m.default_kernel = sim::KernelCostProfile{60000.0, 0, 0, 0};
  return m;
}

std::unique_ptr<SimulatedDevice> MakeNpu(std::shared_ptr<SimContext> ctx) {
  return std::make_unique<SimulatedDevice>("npu", NpuModel(),
                                           SdkFormat::kRaw,
                                           /*requires_compilation=*/false,
                                           std::move(ctx));
}

TEST(CustomDevice, PlugsInWithoutEngineChanges) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  config.include_dimension_tables = false;
  auto catalog = tpch::Generate(config);
  ASSERT_TRUE(catalog.ok());

  DeviceManager manager;
  auto npu = manager.AddDevice(MakeNpu(manager.sim_context()));
  ASSERT_TRUE(npu.ok());
  // The standard Table-I kernel library binds through the same interface
  // every built-in driver uses.
  ASSERT_TRUE(BindStandardKernels(manager.device(*npu)).ok());

  // Unchanged plans, unchanged executor, new device: all queries, all
  // execution models.
  for (auto model :
       {ExecutionModelKind::kChunked, ExecutionModelKind::kFourPhasePipelined}) {
    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = 512;
    QueryExecutor executor(&manager);

    auto q6 = plan::BuildQ6(**catalog, {}, *npu);
    ASSERT_TRUE(q6.ok());
    auto exec6 = executor.Run(q6->graph.get(), options);
    ASSERT_TRUE(exec6.ok()) << exec6.status().ToString();
    EXPECT_EQ(*plan::ExtractQ6(*q6, *exec6),
              *tpch::Q6Reference(**catalog, {}));

    auto q3 = plan::BuildQ3(**catalog, {}, *npu);
    ASSERT_TRUE(q3.ok());
    auto exec3 = executor.Run(q3->graph.get(), options);
    ASSERT_TRUE(exec3.ok());
    auto got = plan::ExtractQ3(*q3, *exec3, **catalog, {});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *tpch::Q3Reference(**catalog, {}));
  }
}

TEST(CustomDevice, CustomKernelVariantPluggable) {
  // Plug a specialized implementation of one primitive (the task layer's
  // "multiple implementation alternatives"): a map variant that also counts
  // how often it ran, registered only on this device.
  DeviceManager manager;
  auto npu = manager.AddDevice(MakeNpu(manager.sim_context()));
  ASSERT_TRUE(npu.ok());
  SimulatedDevice* device = manager.device(*npu);

  int invocations = 0;
  KernelContainer variant("map",
                          [&invocations](KernelExecContext* ctx) {
                            ++invocations;
                            return kernels::GetKernelFn("map")(ctx);
                          });
  device->RegisterPrecompiledKernel(variant.name(), variant.fn());
  // The rest of the library still comes from the standard binding; the
  // custom "map" shadows the precompiled default because prepared/explicit
  // registrations are looked up by name.
  for (const std::string& name : kernels::AllKernelNames()) {
    if (name != "map") {
      device->RegisterPrecompiledKernel(name, kernels::GetKernelFn(name));
    }
  }

  std::vector<int32_t> values(100);
  std::iota(values.begin(), values.end(), 0);
  PrimitiveGraph graph;
  NodeConfig mcfg;
  mcfg.map_op = MapOp::kMulScalar;
  mcfg.imm = 2;
  int m = graph.AddNode(PrimitiveKind::kMap, *npu, mcfg);
  NodeConfig acfg;
  acfg.agg_op = AggOp::kSum;
  int agg = graph.AddNode(PrimitiveKind::kAggBlock, *npu, acfg);
  ASSERT_TRUE(graph.ConnectScan(Column::FromVector("v", values), m, 0).ok());
  ASSERT_TRUE(graph.Connect(m, 0, agg, 0).ok());

  QueryExecutor executor(&manager);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 25;
  auto exec = executor.Run(&graph, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*exec->AggValue(agg), 2 * int64_t{99} * 100 / 2);
  EXPECT_EQ(invocations, 4) << "custom variant ran once per chunk";
}

TEST(CustomDevice, HeterogeneousManagerMixesDrivers) {
  // One manager holding a stock GPU and the custom NPU; a cross-device plan
  // (filter on GPU, aggregate on NPU) routes through the hub.
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  auto npu = manager.AddDevice(MakeNpu(manager.sim_context()));
  ASSERT_TRUE(gpu.ok() && npu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*npu)).ok());

  std::vector<int32_t> values(1000);
  std::iota(values.begin(), values.end(), 0);
  auto col = Column::FromVector("v", values);
  PrimitiveGraph graph;
  NodeConfig fcfg;
  fcfg.cmp_op = CmpOp::kLt;
  fcfg.lo = 100;
  int f = graph.AddNode(PrimitiveKind::kFilterBitmap, *gpu, fcfg);
  int m = graph.AddNode(PrimitiveKind::kMaterialize, *gpu, {});
  NodeConfig acfg;
  acfg.agg_op = AggOp::kSum;
  int agg = graph.AddNode(PrimitiveKind::kAggBlock, *npu, acfg);
  ASSERT_TRUE(graph.ConnectScan(col, f, 0).ok());
  ASSERT_TRUE(graph.ConnectScan(col, m, 0).ok());
  ASSERT_TRUE(graph.Connect(f, 0, m, 1).ok());
  ASSERT_TRUE(graph.Connect(m, 0, agg, 0).ok());

  QueryExecutor executor(&manager);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 250;
  auto exec = executor.Run(&graph, options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*exec->AggValue(agg), int64_t{99} * 100 / 2);
}

}  // namespace
}  // namespace adamant
