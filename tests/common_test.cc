// Unit tests for the common substrate: Status/Result, bit utilities,
// aligned buffers, dates, RNG, money.

#include <gtest/gtest.h>

#include <vector>

#include "common/aligned_buffer.h"
#include "common/bit_util.h"
#include "common/date.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"

namespace adamant {
namespace {

// --- Status ---

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("device full");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(st.message(), "device full");
  EXPECT_EQ(st.ToString(), "Out of memory: device full");
}

TEST(Status, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ExecutionError("x").IsExecutionError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(Status, CopyPreservesState) {
  Status a = Status::NotFound("thing");
  Status b = a;
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_EQ(b.message(), "thing");
  EXPECT_EQ(a, b);
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(a.IsNotFound());  // copy was deep
}

TEST(Status, WithContextPrefixesMessage) {
  Status st = Status::IOError("read failed").WithContext("chunk 3");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "chunk 3: read failed");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    ADAMANT_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsInternal());
  auto succeeds = []() -> Status {
    ADAMANT_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("reached");
  };
  EXPECT_TRUE(succeeds().IsNotFound());
}

// --- Result ---

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 7);
}

TEST(Result, RvalueDereferenceMoves) {
  auto make = []() -> Result<std::vector<int>> {
    return std::vector<int>{1, 2, 3};
  };
  std::vector<int> v = *make();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("inner");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    ADAMANT_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsInvalidArgument());
}

// --- bit_util ---

TEST(BitUtil, WordAndByteCounts) {
  EXPECT_EQ(bit_util::WordsForBits(0), 0u);
  EXPECT_EQ(bit_util::WordsForBits(1), 1u);
  EXPECT_EQ(bit_util::WordsForBits(64), 1u);
  EXPECT_EQ(bit_util::WordsForBits(65), 2u);
  EXPECT_EQ(bit_util::BytesForBits(65), 16u);
}

TEST(BitUtil, CeilDivAndRoundUp) {
  EXPECT_EQ(bit_util::CeilDiv(10, 3), 4u);
  EXPECT_EQ(bit_util::CeilDiv(9, 3), 3u);
  EXPECT_EQ(bit_util::RoundUp(10, 8), 16u);
  EXPECT_EQ(bit_util::RoundUp(16, 8), 16u);
}

TEST(BitUtil, PowersOfTwo) {
  EXPECT_TRUE(bit_util::IsPowerOfTwo(1));
  EXPECT_TRUE(bit_util::IsPowerOfTwo(1024));
  EXPECT_FALSE(bit_util::IsPowerOfTwo(0));
  EXPECT_FALSE(bit_util::IsPowerOfTwo(1023));
  EXPECT_EQ(bit_util::NextPowerOfTwo(1), 1u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(2), 2u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(3), 4u);
  EXPECT_EQ(bit_util::NextPowerOfTwo(1025), 2048u);
}

TEST(BitUtil, SetGetClearBits) {
  uint64_t bitmap[2] = {0, 0};
  bit_util::SetBit(bitmap, 0);
  bit_util::SetBit(bitmap, 63);
  bit_util::SetBit(bitmap, 64);
  EXPECT_TRUE(bit_util::GetBit(bitmap, 0));
  EXPECT_TRUE(bit_util::GetBit(bitmap, 63));
  EXPECT_TRUE(bit_util::GetBit(bitmap, 64));
  EXPECT_FALSE(bit_util::GetBit(bitmap, 1));
  bit_util::ClearBit(bitmap, 63);
  EXPECT_FALSE(bit_util::GetBit(bitmap, 63));
  bit_util::SetBitTo(bitmap, 5, true);
  EXPECT_TRUE(bit_util::GetBit(bitmap, 5));
  bit_util::SetBitTo(bitmap, 5, false);
  EXPECT_FALSE(bit_util::GetBit(bitmap, 5));
}

TEST(BitUtil, CountSetBitsHonorsTail) {
  uint64_t bitmap[2] = {~uint64_t{0}, ~uint64_t{0}};
  EXPECT_EQ(bit_util::CountSetBits(bitmap, 128), 128u);
  EXPECT_EQ(bit_util::CountSetBits(bitmap, 70), 70u);
  EXPECT_EQ(bit_util::CountSetBits(bitmap, 64), 64u);
  EXPECT_EQ(bit_util::CountSetBits(bitmap, 1), 1u);
  EXPECT_EQ(bit_util::CountSetBits(bitmap, 0), 0u);
}

// --- AlignedBuffer ---

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  AlignedBuffer buffer(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer.data()) % 64, 0u);
  EXPECT_EQ(buffer.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(buffer.data()[i], 0);
}

TEST(AlignedBuffer, ResizePreservesPrefix) {
  AlignedBuffer buffer(8);
  buffer.data()[0] = 42;
  buffer.data()[7] = 7;
  buffer.Resize(1024);
  EXPECT_EQ(buffer.data()[0], 42);
  EXPECT_EQ(buffer.data()[7], 7);
  EXPECT_EQ(buffer.data()[100], 0);  // new bytes zeroed
}

TEST(AlignedBuffer, ShrinkThenGrowRezeroes) {
  AlignedBuffer buffer(64);
  buffer.data()[32] = 9;
  buffer.Resize(16);
  buffer.Resize(64);
  EXPECT_EQ(buffer.data()[32], 0) << "bytes exposed by regrowth are zeroed";
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(32);
  a.data()[0] = 1;
  uint8_t* ptr = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

// --- Date ---

TEST(Date, EpochAnchors) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 1).days(), 0);
  EXPECT_EQ(Date::FromYmd(1970, 1, 2).days(), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31).days(), -1);
}

TEST(Date, ParseRoundTrip) {
  auto d = Date::Parse("1995-03-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->year(), 1995);
  EXPECT_EQ(d->month(), 3);
  EXPECT_EQ(d->day(), 15);
  EXPECT_EQ(d->ToString(), "1995-03-15");
}

TEST(Date, ParseRejectsMalformed) {
  EXPECT_TRUE(Date::Parse("not a date").status().IsInvalidArgument());
  EXPECT_TRUE(Date::Parse("1995-13-01").status().IsInvalidArgument());
  EXPECT_TRUE(Date::Parse("1995-02-30").status().IsInvalidArgument());
  EXPECT_TRUE(Date::Parse("1995-03-15x").status().IsInvalidArgument());
}

TEST(Date, LeapYearHandling) {
  EXPECT_TRUE(Date::Parse("2000-02-29").ok());   // divisible by 400
  EXPECT_FALSE(Date::Parse("1900-02-29").ok());  // divisible by 100 only
  EXPECT_TRUE(Date::Parse("1996-02-29").ok());
  EXPECT_FALSE(Date::Parse("1995-02-29").ok());
}

TEST(Date, AddMonthsClampsDay) {
  EXPECT_EQ(Date::FromYmd(1993, 1, 31).AddMonths(1).ToString(), "1993-02-28");
  EXPECT_EQ(Date::FromYmd(1993, 7, 1).AddMonths(3).ToString(), "1993-10-01");
  EXPECT_EQ(Date::FromYmd(1994, 1, 1).AddMonths(12).ToString(), "1995-01-01");
  EXPECT_EQ(Date::FromYmd(1994, 3, 15).AddMonths(-3).ToString(), "1993-12-15");
}

TEST(Date, ComparisonOperators) {
  Date a = Date::FromYmd(1995, 1, 1);
  Date b = Date::FromYmd(1995, 6, 1);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Date::FromYmd(1995, 1, 1));
}

TEST(Date, RoundTripPropertySweep) {
  // Every day of the TPC-H window converts to civil and back losslessly.
  const int32_t start = Date::FromYmd(1992, 1, 1).days();
  const int32_t end = Date::FromYmd(1998, 12, 31).days();
  for (int32_t d = start; d <= end; d += 17) {
    Date date(d);
    EXPECT_EQ(Date::FromYmd(date.year(), date.month(), date.day()).days(), d);
  }
}

// --- Rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 10);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 10);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// --- Money ---

TEST(Money, FixedPointConversions) {
  EXPECT_EQ(MoneyFromDouble(12.34), 1234);
  EXPECT_EQ(MoneyFromDouble(-12.34), -1234);
  EXPECT_DOUBLE_EQ(MoneyToDouble(1234), 12.34);
  EXPECT_EQ(MoneyFromDouble(0.005), 1) << "rounds half up";
}

}  // namespace
}  // namespace adamant
