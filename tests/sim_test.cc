// Unit tests for the event-timeline simulator and performance models.

#include <gtest/gtest.h>

#include "sim/memory_arena.h"
#include "sim/perf_model.h"
#include "sim/presets.h"
#include "sim/sim_time.h"
#include "sim/timeline.h"

namespace adamant::sim {
namespace {

// --- SimTime helpers ---

TEST(SimTime, UnitConversions) {
  EXPECT_DOUBLE_EQ(UsFromMs(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(UsFromSec(2.0), 2e6);
  EXPECT_DOUBLE_EQ(MsFromUs(2500.0), 2.5);
  EXPECT_DOUBLE_EQ(SecFromUs(1e6), 1.0);
}

TEST(SimTime, TransferUsMatchesBandwidth) {
  // 1 GiB at 1 GiB/s = 1 second.
  EXPECT_NEAR(TransferUs(1024.0 * 1024 * 1024, 1.0), 1e6, 1e-6);
  // 12 GiB/s halves vs 6 GiB/s.
  EXPECT_NEAR(TransferUs(1 << 20, 6.0) / TransferUs(1 << 20, 12.0), 2.0, 1e-9);
}

// --- ResourceTimeline ---

TEST(Timeline, FifoBackToBack) {
  ResourceTimeline tl("t");
  auto a = tl.Schedule(0, 10);
  auto b = tl.Schedule(0, 5);
  EXPECT_DOUBLE_EQ(a.start, 0);
  EXPECT_DOUBLE_EQ(a.end, 10);
  EXPECT_DOUBLE_EQ(b.start, 10) << "resource busy until first op ends";
  EXPECT_DOUBLE_EQ(b.end, 15);
  EXPECT_DOUBLE_EQ(tl.available_at(), 15);
  EXPECT_DOUBLE_EQ(tl.busy_time(), 15);
  EXPECT_EQ(tl.op_count(), 2u);
}

TEST(Timeline, EarliestStartDelays) {
  ResourceTimeline tl("t");
  auto a = tl.Schedule(100, 10);
  EXPECT_DOUBLE_EQ(a.start, 100);
  EXPECT_DOUBLE_EQ(a.end, 110);
  // Idle gap is not busy time.
  EXPECT_DOUBLE_EQ(tl.busy_time(), 10);
}

TEST(Timeline, DependencyBeforeResourceFree) {
  ResourceTimeline tl("t");
  tl.Schedule(0, 50);
  auto b = tl.Schedule(10, 5);
  EXPECT_DOUBLE_EQ(b.start, 50) << "resource availability dominates";
}

TEST(Timeline, ResetClears) {
  ResourceTimeline tl("t");
  tl.Schedule(0, 10);
  tl.Reset();
  EXPECT_DOUBLE_EQ(tl.available_at(), 0);
  EXPECT_DOUBLE_EQ(tl.busy_time(), 0);
  EXPECT_EQ(tl.op_count(), 0u);
}

TEST(Timeline, TracingRecordsLabels) {
  ResourceTimeline tl("t");
  tl.set_tracing(true);
  tl.Schedule(0, 10, "h2d");
  tl.Schedule(0, 5, "kernel");
  ASSERT_EQ(tl.trace().size(), 2u);
  EXPECT_EQ(tl.trace()[0].label, "h2d");
  EXPECT_EQ(tl.trace()[1].label, "kernel");
}

TEST(Timeline, TracingOffByDefault) {
  ResourceTimeline tl("t");
  tl.Schedule(0, 10, "x");
  EXPECT_TRUE(tl.trace().empty());
}

// --- KernelCostProfile ---

TEST(PerfModel, BaseRateLinear) {
  KernelCostProfile p{1000.0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(p.Duration(1e6, 1), 1000.0);
  EXPECT_DOUBLE_EQ(p.Duration(2e6, 1), 2000.0);
}

TEST(PerfModel, FixedCostAdds) {
  KernelCostProfile p{1000.0, 50.0, 0, 0};
  EXPECT_DOUBLE_EQ(p.Duration(0, 1), 50.0);
}

TEST(PerfModel, ContentionMonotonicInGroups) {
  KernelCostProfile p{1000.0, 0, 0.5, 0};
  double prev = p.Duration(1e6, 1);
  for (double groups = 16; groups <= 1 << 24; groups *= 16) {
    double cur = p.Duration(1e6, groups);
    EXPECT_GT(cur, prev) << "more groups, more atomic contention";
    prev = cur;
  }
}

TEST(PerfModel, SizeDegradationKicksInAboveMegatuple) {
  KernelCostProfile p{1000.0, 0, 0, 0.3};
  const double below = p.Duration(1 << 20, 1) / (1 << 20);
  const double above = p.Duration(1 << 26, 1) / (1 << 26);
  EXPECT_GT(above, below) << "per-tuple cost grows with data size";
}

TEST(PerfModel, TransferDirectionAndPinning) {
  DevicePerfModel m;
  m.transfer = TransferParams{6.0, 12.0, 5.0, 10.0, 10.0};
  double pageable =
      m.TransferDuration(1 << 30, TransferDirection::kHostToDevice, false);
  double pinned =
      m.TransferDuration(1 << 30, TransferDirection::kHostToDevice, true);
  EXPECT_NEAR(pageable / pinned, 2.0, 1e-9);
  double d2h =
      m.TransferDuration(1 << 30, TransferDirection::kDeviceToHost, false);
  EXPECT_GT(d2h, pageable) << "5 GiB/s slower than 6 GiB/s";
}

TEST(PerfModel, UnknownKernelFallsBackToDefault) {
  DevicePerfModel m;
  m.default_kernel = KernelCostProfile{123.0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(m.Profile("no_such_kernel").tuples_per_us, 123.0);
}

// --- MemoryArena ---

TEST(Arena, AllocateFreeAccounting) {
  MemoryArena arena("a", 1000);
  ASSERT_TRUE(arena.Allocate(400).ok());
  EXPECT_EQ(arena.used(), 400u);
  EXPECT_EQ(arena.available(), 600u);
  ASSERT_TRUE(arena.Allocate(600).ok());
  EXPECT_EQ(arena.available(), 0u);
  arena.Free(400);
  EXPECT_EQ(arena.used(), 600u);
  EXPECT_EQ(arena.high_water(), 1000u);
}

TEST(Arena, OutOfMemoryLeavesStateUnchanged) {
  MemoryArena arena("a", 100);
  ASSERT_TRUE(arena.Allocate(60).ok());
  Status st = arena.Allocate(41);
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(arena.used(), 60u) << "failed allocation reserves nothing";
}

TEST(Arena, HighWaterResets) {
  MemoryArena arena("a", 100);
  ASSERT_TRUE(arena.Allocate(80).ok());
  arena.Free(80);
  EXPECT_EQ(arena.high_water(), 80u);
  arena.ResetHighWater();
  EXPECT_EQ(arena.high_water(), 0u);
}

// --- Presets (Table II) ---

TEST(Presets, NamesAndClassification) {
  EXPECT_STREQ(DriverKindName(DriverKind::kCudaGpu), "cuda_gpu");
  EXPECT_TRUE(IsGpuDriver(DriverKind::kOpenClGpu));
  EXPECT_TRUE(IsGpuDriver(DriverKind::kCudaGpu));
  EXPECT_FALSE(IsGpuDriver(DriverKind::kOpenClCpu));
  EXPECT_FALSE(IsGpuDriver(DriverKind::kOpenMpCpu));
}

TEST(Presets, Fig3CudaBandwidthAboveOpenCl) {
  for (auto setup : {HardwareSetup::kSetup1, HardwareSetup::kSetup2}) {
    auto cuda = MakePerfModel(DriverKind::kCudaGpu, setup);
    auto opencl = MakePerfModel(DriverKind::kOpenClGpu, setup);
    EXPECT_GT(cuda.transfer.h2d_pageable_gibps,
              opencl.transfer.h2d_pageable_gibps);
    EXPECT_GT(cuda.transfer.h2d_pinned_gibps,
              opencl.transfer.h2d_pinned_gibps);
    EXPECT_GT(cuda.transfer.d2h_pinned_gibps, cuda.transfer.d2h_pageable_gibps)
        << "pinned beats pageable";
  }
}

TEST(Presets, Setup2FasterThanSetup1) {
  auto s1 = MakePerfModel(DriverKind::kCudaGpu, HardwareSetup::kSetup1);
  auto s2 = MakePerfModel(DriverKind::kCudaGpu, HardwareSetup::kSetup2);
  EXPECT_GT(s2.transfer.h2d_pinned_gibps, s1.transfer.h2d_pinned_gibps)
      << "PCIe 4.0 vs 3.0";
  EXPECT_GT(s2.Profile("map").tuples_per_us, s1.Profile("map").tuples_per_us)
      << "A100 vs 2080 Ti";
  EXPECT_GT(s2.device_memory_bytes, s1.device_memory_bytes);
}

TEST(Presets, Fig10OpenClMappingOverheadLargest) {
  auto opencl = MakePerfModel(DriverKind::kOpenClGpu, HardwareSetup::kSetup1);
  auto cuda = MakePerfModel(DriverKind::kCudaGpu, HardwareSetup::kSetup1);
  auto openmp = MakePerfModel(DriverKind::kOpenMpCpu, HardwareSetup::kSetup1);
  EXPECT_GT(opencl.per_arg_map_us, cuda.per_arg_map_us);
  EXPECT_GT(opencl.per_arg_map_us, openmp.per_arg_map_us);
  EXPECT_GT(opencl.kernel_launch_us, cuda.kernel_launch_us);
}

TEST(Presets, OnlyOpenClCompilesAtRuntime) {
  EXPECT_GT(MakePerfModel(DriverKind::kOpenClGpu, HardwareSetup::kSetup1)
                .kernel_compile_us,
            0);
  EXPECT_GT(MakePerfModel(DriverKind::kOpenClCpu, HardwareSetup::kSetup1)
                .kernel_compile_us,
            0);
  EXPECT_EQ(MakePerfModel(DriverKind::kCudaGpu, HardwareSetup::kSetup1)
                .kernel_compile_us,
            0);
  EXPECT_EQ(MakePerfModel(DriverKind::kOpenMpCpu, HardwareSetup::kSetup1)
                .kernel_compile_us,
            0);
}

TEST(Presets, Fig9aCpuOpenClBeatsOpenMpOnStreaming) {
  auto opencl = MakePerfModel(DriverKind::kOpenClCpu, HardwareSetup::kSetup1);
  auto openmp = MakePerfModel(DriverKind::kOpenMpCpu, HardwareSetup::kSetup1);
  EXPECT_GT(opencl.Profile("filter_bitmap").tuples_per_us,
            openmp.Profile("filter_bitmap").tuples_per_us);
}

TEST(Presets, Fig9bMaterializePenaltyGpuLarge) {
  auto gpu = MakePerfModel(DriverKind::kCudaGpu, HardwareSetup::kSetup1);
  auto cpu = MakePerfModel(DriverKind::kOpenMpCpu, HardwareSetup::kSetup1);
  const double gpu_ratio = gpu.Profile("materialize").tuples_per_us /
                           gpu.Profile("filter_bitmap").tuples_per_us;
  const double cpu_ratio = cpu.Profile("materialize").tuples_per_us /
                           cpu.Profile("filter_bitmap").tuples_per_us;
  EXPECT_LT(gpu_ratio, 0.55) << "cooperative bitmap extraction hurts GPUs";
  EXPECT_GT(cpu_ratio, 0.6) << "CPUs barely affected";
}

TEST(Presets, Fig9cOpenClHashAggContentionSteeper) {
  auto opencl = MakePerfModel(DriverKind::kOpenClGpu, HardwareSetup::kSetup1);
  auto cuda = MakePerfModel(DriverKind::kCudaGpu, HardwareSetup::kSetup1);
  EXPECT_GT(opencl.Profile("hash_agg").contention_alpha,
            cuda.Profile("hash_agg").contention_alpha * 4);
}

TEST(Presets, Fig9eCudaProbeBelowOpenClProbe) {
  auto opencl = MakePerfModel(DriverKind::kOpenClGpu, HardwareSetup::kSetup1);
  auto cuda = MakePerfModel(DriverKind::kCudaGpu, HardwareSetup::kSetup1);
  EXPECT_LT(cuda.Profile("hash_probe").tuples_per_us,
            opencl.Profile("hash_probe").tuples_per_us);
}

TEST(Presets, CpuDevicesHaveNoPinnedAdvantage) {
  auto cpu = MakePerfModel(DriverKind::kOpenMpCpu, HardwareSetup::kSetup1);
  EXPECT_DOUBLE_EQ(cpu.transfer.h2d_pageable_gibps,
                   cpu.transfer.h2d_pinned_gibps);
}

}  // namespace
}  // namespace adamant::sim
