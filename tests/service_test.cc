// Service-layer tests: scheduler determinism against serial runs, memory
// budgets (queue instead of OOM), the cross-query device column cache, and
// the scheduler building blocks.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "adamant/adamant.h"

namespace adamant {
namespace {

struct ServiceFixture {
  std::shared_ptr<Catalog> catalog;

  static const ServiceFixture& Get() {
    static const ServiceFixture* const kFixture = [] {
      auto* fixture = new ServiceFixture();
      tpch::TpchConfig config;
      config.scale_factor = 0.002;
      auto catalog = tpch::Generate(config);
      ADAMANT_CHECK(catalog.ok()) << catalog.status().ToString();
      fixture->catalog = *catalog;
      return fixture;
    }();
    return *kFixture;
  }
};

QuerySpec SpecFor(const Catalog* catalog, int kind) {
  QuerySpec spec;
  if (kind == 0) {
    spec.name = "Q3";
    spec.make_graph =
        [catalog](DeviceId device) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::BuildQ3(*catalog, {}, device));
      return std::move(bundle.graph);
    };
  } else if (kind == 1) {
    spec.name = "Q4";
    spec.make_graph =
        [catalog](DeviceId device) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::BuildQ4(*catalog, {}, device));
      return std::move(bundle.graph);
    };
  } else {
    spec.name = "Q6";
    spec.make_graph =
        [catalog](DeviceId device) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::BuildQ6(*catalog, {}, device));
      return std::move(bundle.graph);
    };
  }
  return spec;
}

// --- Scheduler building blocks -------------------------------------------

TEST(MemoryBudgetTest, ReserveWithinCapacity) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryReserve(60));
  EXPECT_FALSE(budget.TryReserve(50));  // 60 + 50 > 100, untouched
  EXPECT_EQ(budget.reserved(), 60u);
  EXPECT_TRUE(budget.TryReserve(40));
  budget.Release(60);
  EXPECT_EQ(budget.reserved(), 40u);
  EXPECT_TRUE(budget.TryReserve(60));
}

TEST(MemoryBudgetTest, LiveChargeTracksHighWater) {
  MemoryBudget budget(100);
  budget.Charge(30);
  budget.Charge(50);
  budget.Credit(40);
  EXPECT_EQ(budget.live_bytes(), 40u);
  EXPECT_EQ(budget.live_high_water(), 80u);
}

TEST(AdmissionQueueTest, PriorityThenFifo) {
  AdmissionQueue queue(8);
  auto make = [](const std::string& name, QueryPriority priority) {
    auto query = std::make_shared<QueuedQuery>();
    query->spec.name = name;
    query->spec.priority = priority;
    return query;
  };
  queue.Push(make("n1", QueryPriority::kNormal));
  queue.Push(make("n2", QueryPriority::kNormal));
  queue.Push(make("h1", QueryPriority::kHigh));

  auto any = [](const QueuedQuery&) { return true; };
  EXPECT_EQ(queue.PopFirst(any)->spec.name, "h1");
  EXPECT_EQ(queue.PopFirst(any)->spec.name, "n1");
  EXPECT_EQ(queue.PopFirst(any)->spec.name, "n2");
  EXPECT_EQ(queue.PopFirst(any), nullptr);
}

TEST(AdmissionQueueTest, PopFirstSkipsInadmissible) {
  AdmissionQueue queue(8);
  for (const char* name : {"a", "b", "c"}) {
    auto query = std::make_shared<QueuedQuery>();
    query->spec.name = name;
    queue.Push(std::move(query));
  }
  auto picked = queue.PopFirst(
      [](const QueuedQuery& query) { return query.spec.name == "b"; });
  ASSERT_NE(picked, nullptr);
  EXPECT_EQ(picked->spec.name, "b");
  EXPECT_EQ(queue.size(), 2u);  // a and c keep their places
}

TEST(DeviceSlotTableTest, LeastLoadedPlacement) {
  DeviceSlotTable slots(3, 2);
  EXPECT_EQ(slots.PickLeastLoaded({}), 0);
  slots.Acquire(0);
  EXPECT_EQ(slots.PickLeastLoaded({}), 1);
  slots.Acquire(1);
  slots.Acquire(1);  // device 1 full
  EXPECT_EQ(slots.PickLeastLoaded({1}), -1);
  EXPECT_EQ(slots.PickLeastLoaded({1, 2}), 2);
  slots.Release(1);
  EXPECT_EQ(slots.PickLeastLoaded({1}), 1);
}

TEST(DeviceSlotTableTest, PredicateFallsThroughToNextLeastLoaded) {
  DeviceSlotTable slots(3, 1);
  // Device 0 is least loaded, but the predicate (no budget headroom, say)
  // rejects it: placement must fall through to the next candidate instead
  // of giving up.
  bool had_free_slot = false;
  EXPECT_EQ(slots.PickLeastLoaded(
                {}, [](DeviceId device) { return device != 0; },
                &had_free_slot),
            1);
  EXPECT_TRUE(had_free_slot);
  // Every candidate rejected: -1, but free slots were seen (deferral).
  EXPECT_EQ(slots.PickLeastLoaded({}, [](DeviceId) { return false; },
                                  &had_free_slot),
            -1);
  EXPECT_TRUE(had_free_slot);
  // Every device full: -1 with no free slot (not a budget deferral).
  slots.Acquire(0);
  slots.Acquire(1);
  slots.Acquire(2);
  EXPECT_EQ(slots.PickLeastLoaded({}, [](DeviceId) { return true; },
                                  &had_free_slot),
            -1);
  EXPECT_FALSE(had_free_slot);
}

// --- The seeded mixed workload matches serial execution -------------------

TEST(QueryServiceTest, SeededMixedWorkloadMatchesSerial) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  for (int i = 0; i < 2; ++i) {
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu,
                                    "gpu." + std::to_string(i));
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  }

  // Serial references (and template bundles for extraction: node ids are
  // deterministic per builder).
  QueryExecutor executor(&manager);
  auto q3_bundle = plan::BuildQ3(*fixture.catalog, {}, 0);
  auto q4_bundle = plan::BuildQ4(*fixture.catalog, {}, 0);
  auto q6_bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(q3_bundle.ok() && q4_bundle.ok() && q6_bundle.ok());
  auto q3_exec = executor.Run(q3_bundle->graph.get(), {});
  auto q4_exec = executor.Run(q4_bundle->graph.get(), {});
  auto q6_exec = executor.Run(q6_bundle->graph.get(), {});
  ASSERT_TRUE(q3_exec.ok() && q4_exec.ok() && q6_exec.ok());
  auto q3_ref = plan::ExtractQ3(*q3_bundle, *q3_exec, *fixture.catalog, {});
  auto q4_ref = plan::ExtractQ4(*q4_bundle, *q4_exec);
  auto q6_ref = plan::ExtractQ6(*q6_bundle, *q6_exec);
  ASSERT_TRUE(q3_ref.ok() && q4_ref.ok() && q6_ref.ok());

  ServiceConfig config;
  config.workers = 4;
  QueryService service(&manager, config);

  std::mt19937 rng(7);
  std::uniform_int_distribution<int> pick(0, 2);
  std::vector<int> kinds;
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 50; ++i) {
    const int kind = pick(rng);
    auto ticket = service.Submit(SpecFor(fixture.catalog.get(), kind));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    kinds.push_back(kind);
    tickets.push_back(*ticket);
  }

  for (size_t i = 0; i < tickets.size(); ++i) {
    const Result<QueryExecution>& result = tickets[i]->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (kinds[i] == 0) {
      auto rows = plan::ExtractQ3(*q3_bundle, *result, *fixture.catalog, {});
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ(*rows, *q3_ref) << "query " << i;
    } else if (kinds[i] == 1) {
      auto rows = plan::ExtractQ4(*q4_bundle, *result);
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ(*rows, *q4_ref) << "query " << i;
    } else {
      auto revenue = plan::ExtractQ6(*q6_bundle, *result);
      ASSERT_TRUE(revenue.ok());
      EXPECT_EQ(*revenue, *q6_ref) << "query " << i;
    }
  }
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.admitted, 50u);
  EXPECT_EQ(stats.completed, 50u);
  EXPECT_EQ(stats.failed, 0u);
  size_t by_device = 0;
  for (const auto& device : stats.devices) by_device += device.completed;
  EXPECT_EQ(by_device, 50u);
  EXPECT_FALSE(stats.ToJson().empty());
}

// --- Selectivity feedback: repeated served runs tighten predictions -------

// Mean selectivity q-error over the selective operators of one run's
// EXPLAIN ANALYZE tree.
double MeanSelectivityQError(const std::vector<obs::OperatorStats>& ops) {
  double sum = 0;
  size_t n = 0;
  for (const obs::OperatorStats& op : ops) {
    if (!op.selective || op.rows_in == 0) continue;
    sum += obs::QError(op.predicted_selectivity, op.ActualSelectivity());
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 1.0;
}

TEST(QueryServiceTest, RepeatedServedRunsTightenPredictions) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0");
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;  // sequential: run N's feedback applies to run N+1
  QueryService service(&manager, config);

  // Four identical served Q3 runs. The ticket result carries the operator
  // tree, so each run's predicted-vs-actual gap is directly measurable.
  std::vector<double> run_qerror;
  std::vector<std::vector<int32_t>> run_orderkeys;
  auto q3_bundle = plan::BuildQ3(*fixture.catalog, {}, 0);
  ASSERT_TRUE(q3_bundle.ok());
  for (int run = 0; run < 4; ++run) {
    auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 0));
    ASSERT_TRUE(ticket.ok());
    const Result<QueryExecution>& result = (*ticket)->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const std::vector<obs::OperatorStats>& ops =
        result->stats.profile.operators;
    ASSERT_FALSE(ops.empty()) << "run " << run;
    run_qerror.push_back(MeanSelectivityQError(ops));
    auto rows = plan::ExtractQ3(*q3_bundle, *result, *fixture.catalog, {});
    ASSERT_TRUE(rows.ok());
    std::vector<int32_t> keys;
    for (const auto& row : *rows) keys.push_back(row.orderkey);
    run_orderkeys.push_back(std::move(keys));
  }
  service.Drain();

  // Feedback observed every clean completion...
  EXPECT_EQ(service.feedback().RunsObserved("Q3"), 4u);
  // ...and the later runs' predictions are measurably tighter than the
  // first (cold) run's. Q3's cold probe estimate is off by >10x, so the
  // tightening is far beyond noise.
  EXPECT_LT(run_qerror.back(), run_qerror.front() * 0.5)
      << "cold " << run_qerror.front() << " warm " << run_qerror.back();
  EXPECT_LT(run_qerror.back(), 2.0);
  // The feedback override must never change the answer.
  for (size_t i = 1; i < run_orderkeys.size(); ++i) {
    EXPECT_EQ(run_orderkeys[i], run_orderkeys[0]) << "run " << i;
  }

  // The cache's view is directly queryable, and applying it to a freshly
  // lowered graph moves the stamped selectivities.
  auto fresh = plan::BuildQ3(*fixture.catalog, {}, 0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(service.feedback().ApplyToGraph("Q3", fresh->graph.get()), 0);
  // An unknown query name leaves graphs untouched.
  auto other = plan::BuildQ3(*fixture.catalog, {}, 0);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(service.feedback().ApplyToGraph("nope", other->graph.get()), 0);
}

// --- Query history ring + slow-query retention ----------------------------

TEST(QueryServiceTest, HistoryRingIsBoundedAndNonSlowEntriesDropOperators) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0");
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  config.history_capacity = 4;
  // run_ms can never exceed 2x a generous deadline: nothing is slow.
  config.slow_query_fraction = 2.0;
  QueryService service(&manager, config);
  for (int i = 0; i < 10; ++i) {
    QuerySpec spec = SpecFor(fixture.catalog.get(), 2);
    spec.deadline_ms = 60000;
    auto ticket = service.Submit(std::move(spec));
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE((*ticket)->Wait().ok());
  }
  service.Drain();

  const std::string json = service.HistoryJson();
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"finished\":10"), std::string::npos) << json;
  // Ring trimmed to capacity: oldest ids gone, newest (id 10) first.
  EXPECT_EQ(json.find("\"id\":1,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":10,"), std::string::npos) << json;
  size_t entries = 0;
  for (size_t pos = json.find("\"id\":"); pos != std::string::npos;
       pos = json.find("\"id\":", pos + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, 4u);
  // Non-slow entries drop the operator tree (bounded memory).
  EXPECT_EQ(json.find("\"operators\""), std::string::npos);
  EXPECT_EQ(service.GetStats().slow_queries, 0u);
}

TEST(QueryServiceTest, SlowQueryRetainsOperatorTreeInHistory) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu, "gpu.0");
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  // Any nonzero run time exceeds 0 x deadline: every query is "slow".
  config.slow_query_fraction = 0.0;
  QueryService service(&manager, config);
  QuerySpec spec = SpecFor(fixture.catalog.get(), 0);
  spec.deadline_ms = 60000;
  auto ticket = service.Submit(std::move(spec));
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE((*ticket)->Wait().ok());
  service.Drain();

  const std::string json = service.HistoryJson();
  EXPECT_NE(json.find("\"slow\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"operators\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"feedback\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"predicted_ms\""), std::string::npos) << json;
  EXPECT_EQ(service.GetStats().slow_queries, 1u);
}

// --- Memory budgets: queue, don't fail ------------------------------------

TEST(QueryServiceTest, BudgetExceedingQueryQueuesInsteadOfFailing) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  auto probe = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(probe.ok());
  auto estimate =
      EstimateDeviceMemoryBytes(*probe->graph, {}, manager.data_scale());
  ASSERT_TRUE(estimate.ok());
  ASSERT_GT(*estimate, 0u);

  // Budget fits one Q6 at a time but the device offers four slots: queries
  // beyond the budget must wait for a completion, not OOM.
  ServiceConfig config;
  config.workers = 4;
  config.slots_per_device = 4;
  config.query_budget_bytes = *estimate + *estimate / 2;
  QueryService service(&manager, config);

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 6; ++i) {
    auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(*ticket);
  }
  for (const auto& ticket : tickets) {
    EXPECT_TRUE(ticket->Wait().ok()) << ticket->Wait().status().ToString();
  }
  service.Drain();

  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  // The reservation ceiling held: live allocations never exceeded the
  // budget even though four slots were open.
  EXPECT_LE(service.ledger().budget(0).live_high_water(),
            config.query_budget_bytes);
  // Deferrals count distinct blocked-query/epoch events, not queue scans:
  // with 6 queries dispatching one at a time, at most sum(1..5) + the
  // initial epoch's blocked queries can be counted.
  EXPECT_LE(stats.budget_deferrals, 21u);
}

TEST(QueryServiceTest, PlacesQueryOnDeviceWithBudgetHeadroom) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);    // 11 GiB arena
  auto cpu = manager.AddDriver(sim::DriverKind::kOpenMpCpu);  // 64 GiB arena
  ASSERT_TRUE(gpu.ok() && cpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*cpu)).ok());

  auto probe = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(probe.ok());
  auto estimate =
      EstimateDeviceMemoryBytes(*probe->graph, {}, manager.data_scale());
  ASSERT_TRUE(estimate.ok());
  ASSERT_GT(*estimate, 1u);

  // Default budgets are arena capacity minus the cache budget. Size the
  // cache so device 0 — the tie-break winner when everything is idle —
  // ends up with less headroom than the query needs while device 1 keeps
  // plenty: the scheduler must fall through to device 1 rather than park
  // the query on device 0 forever (it would never dispatch).
  const size_t gpu_arena = manager.device(0)->device_arena().capacity();
  ASSERT_GT(gpu_arena, *estimate);
  ServiceConfig config;
  config.workers = 2;
  config.cache_budget_bytes = gpu_arena - *estimate / 2;
  QueryService service(&manager, config);

  auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  ASSERT_TRUE((*ticket)->Wait().ok())
      << (*ticket)->Wait().status().ToString();
  EXPECT_EQ((*ticket)->placed_device(), 1);
  service.Drain();
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(QueryServiceTest, RejectsQueryLargerThanEveryBudget) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.query_budget_bytes = 1;  // nothing fits
  QueryService service(&manager, config);
  auto ticket = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kOutOfMemory);
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.rejected, 1u);
}

// --- Cross-query column cache ---------------------------------------------

TEST(QueryServiceTest, SecondRunHitsColumnCache) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());

  ServiceConfig config;
  config.workers = 1;
  QueryService service(&manager, config);

  auto first = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_TRUE(first.ok());
  const Result<QueryExecution>& first_result = (*first)->Wait();
  ASSERT_TRUE(first_result.ok());
  const size_t hits_after_first = service.GetStats().cache.hits;

  auto second = service.Submit(SpecFor(fixture.catalog.get(), 2));
  ASSERT_TRUE(second.ok());
  const Result<QueryExecution>& second_result = (*second)->Wait();
  ASSERT_TRUE(second_result.ok());

  ServiceStats stats = service.GetStats();
  EXPECT_GT(stats.cache.hits, hits_after_first);
  EXPECT_GT(stats.cache.bytes_saved, 0u);
  // The cached run produced the same answer.
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  auto a = plan::ExtractQ6(*bundle, *first_result);
  auto b = plan::ExtractQ6(*bundle, *second_result);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  // The executor surfaced the hits in its own stats too.
  EXPECT_GT(second_result->stats.scan_cache_hits, 0u);
  EXPECT_GT(second_result->stats.bytes_h2d_saved, 0u);
}

// --- Multi-device leases (device-parallel model) ---------------------------

TEST(QueryServiceTest, MultiDeviceLeaseRunsDeviceParallel) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  for (int i = 0; i < 2; ++i) {
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu,
                                    "gpu." + std::to_string(i));
    ASSERT_TRUE(device.ok());
    ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  }

  // Serial reference.
  QueryExecutor executor(&manager);
  auto bundle = plan::BuildQ6(*fixture.catalog, {}, 0);
  ASSERT_TRUE(bundle.ok());
  auto ref_exec = executor.Run(bundle->graph.get(), {});
  ASSERT_TRUE(ref_exec.ok());
  auto ref = plan::ExtractQ6(*bundle, *ref_exec);
  ASSERT_TRUE(ref.ok());

  ServiceConfig config;
  config.workers = 2;
  QueryService service(&manager, config);

  QuerySpec spec = SpecFor(fixture.catalog.get(), 2);
  spec.options.model = ExecutionModelKind::kDeviceParallel;
  spec.options.chunk_elems = 2048;  // several chunks so both devices split
  spec.parallel_devices = 2;
  auto ticket = service.Submit(spec);
  ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  const Result<QueryExecution>& result = (*ticket)->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Same answer as the serial run, and the lease covered both devices.
  auto got = plan::ExtractQ6(*bundle, *result);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *ref);
  EXPECT_EQ((*ticket)->placed_devices().size(), 2u);
  size_t split_chunks = 0;
  for (const auto& [device, chunks] : result->stats.chunks_by_device) {
    split_chunks += chunks;
  }
  EXPECT_EQ(split_chunks, result->stats.chunks);
  EXPECT_EQ(result->stats.chunks_by_device.size(), 2u);

  service.Drain();
  ServiceStats stats = service.GetStats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  // Both leases released their budget reservations.
  for (const auto& entry : stats.devices) {
    EXPECT_EQ(entry.budget_reserved, 0u);
  }
}

TEST(QueryServiceTest, MultiDeviceLeaseValidatesSpec) {
  const auto& fixture = ServiceFixture::Get();
  DeviceManager manager;
  for (int i = 0; i < 2; ++i) {
    auto device = manager.AddDriver(sim::DriverKind::kCudaGpu,
                                    "gpu." + std::to_string(i));
    ASSERT_TRUE(device.ok());
    ASSERT_TRUE(BindStandardKernels(manager.device(*device)).ok());
  }
  QueryService service(&manager, {});

  // parallel_devices > 1 without the device-parallel model is a spec error.
  QuerySpec wrong_model = SpecFor(fixture.catalog.get(), 2);
  wrong_model.parallel_devices = 2;
  EXPECT_TRUE(service.Submit(wrong_model).status().IsInvalidArgument());

  // More devices than the eligible pool can never dispatch.
  QuerySpec too_many = SpecFor(fixture.catalog.get(), 2);
  too_many.options.model = ExecutionModelKind::kDeviceParallel;
  too_many.parallel_devices = 3;
  EXPECT_TRUE(service.Submit(too_many).status().IsInvalidArgument());
}

TEST(ColumnCacheTest, EvictionSkipsPinnedEntries) {
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());

  auto column_a = std::make_shared<Column>("a", ElementType::kInt32);
  auto column_b = std::make_shared<Column>("b", ElementType::kInt32);
  column_a->Resize(256);
  column_b->Resize(256);
  const size_t bytes = column_a->byte_size();

  // Budget holds exactly one chunk.
  DeviceColumnCache cache(&manager, bytes);

  auto lease_a = cache.Acquire(0, column_a, 0, 256, bytes);
  ASSERT_TRUE(lease_a.ok());
  ASSERT_TRUE(lease_a->cached);
  EXPECT_FALSE(lease_a->hit);

  // While A is pinned the budget is exhausted and nothing is evictable:
  // B must be declined, not evict A.
  auto lease_b = cache.Acquire(0, column_b, 0, 256, bytes);
  ASSERT_TRUE(lease_b.ok());
  EXPECT_FALSE(lease_b->cached);
  EXPECT_EQ(cache.GetStats().bypasses, 1u);
  EXPECT_EQ(cache.GetStats().evictions, 0u);

  // Unpinned (and filled), A becomes the LRU victim.
  cache.Release(lease_a->token);
  auto lease_b2 = cache.Acquire(0, column_b, 0, 256, bytes);
  ASSERT_TRUE(lease_b2.ok());
  EXPECT_TRUE(lease_b2->cached);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  cache.Release(lease_b2->token);

  // A re-acquire of A is a miss again (it was evicted), and a re-acquire of
  // B hits.
  auto lease_b3 = cache.Acquire(0, column_b, 0, 256, bytes);
  ASSERT_TRUE(lease_b3.ok());
  EXPECT_TRUE(lease_b3->hit);
  cache.Release(lease_b3->token);
}

TEST(ColumnCacheTest, HubEvictsUnpinnedEntriesBeforeOom) {
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());

  // Scale so one 4 KiB chunk charges ~60% of the device arena: the cached
  // chunk and a second allocation cannot both be resident.
  const size_t capacity = manager.device(0)->device_arena().capacity();
  const size_t chunk = 4096;
  manager.SetDataScale(static_cast<double>(capacity) * 0.6 /
                       static_cast<double>(chunk));

  auto column = std::make_shared<Column>("c", ElementType::kInt32);
  column->Resize(chunk / sizeof(int32_t));
  DeviceColumnCache cache(&manager, capacity);  // arena, not cache, binds
  DataTransferHub hub(&manager, DataContainer::WithDefaultTransforms());
  hub.set_scan_cache(&cache);

  auto lease = cache.Acquire(0, column, 0, chunk / sizeof(int32_t), chunk);
  ASSERT_TRUE(lease.ok());
  ASSERT_TRUE(lease->cached);
  cache.Release(lease->token);  // unpinned but still resident

  // A query allocation that no longer fits next to the cached chunk must
  // evict it and succeed instead of surfacing the arena's OutOfMemory.
  std::vector<uint8_t> src(chunk, 0);
  auto buf = hub.LoadData(0, src.data(), chunk);
  ASSERT_TRUE(buf.ok()) << buf.status().ToString();
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ColumnCacheTest, InvalidateDropsEntry) {
  DeviceManager manager;
  auto device = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(device.ok());

  auto column = std::make_shared<Column>("c", ElementType::kInt32);
  column->Resize(64);
  const size_t bytes = column->byte_size();
  DeviceColumnCache cache(&manager, bytes * 4);

  auto lease = cache.Acquire(0, column, 0, 64, bytes);
  ASSERT_TRUE(lease.ok());
  ASSERT_TRUE(lease->cached);
  cache.Invalidate(lease->token);

  auto again = cache.Acquire(0, column, 0, 64, bytes);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->hit);  // the poisoned entry did not survive
  cache.Release(again->token);
  EXPECT_EQ(cache.GetStats().invalidations, 1u);
}

}  // namespace
}  // namespace adamant
