// Unit tests for the device layer: the ten pluggable interface functions and
// the simulated timing semantics (sync vs async, copy/compute overlap,
// WAR hazards, memory accounting, data scaling).

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "device/device_manager.h"
#include "device/drivers.h"
#include "device/sim_device.h"
#include "task/kernel_registry.h"

namespace adamant {
namespace {

/// A clean-numbers performance model for timing assertions.
sim::DevicePerfModel TestModel() {
  sim::DevicePerfModel m;
  m.name = "test";
  m.transfer = sim::TransferParams{1.0, 2.0, 1.0, 2.0, /*latency=*/0.0};
  m.kernel_launch_us = 0.0;
  m.per_arg_map_us = 0.0;
  m.host_call_us = 0.0;
  m.alloc_us = 0.0;
  m.free_us = 0.0;
  m.pinned_alloc_us = 0.0;
  m.transform_us = 0.0;
  m.kernel_compile_us = 0.0;
  m.device_memory_bytes = 10 << 20;
  m.pinned_memory_bytes = 10 << 20;
  m.kernels["work"] = sim::KernelCostProfile{1.0, 0, 0, 0};  // 1 tuple/us
  m.default_kernel = sim::KernelCostProfile{1.0, 0, 0, 0};
  return m;
}

HostKernelFn NopKernel() {
  return [](KernelExecContext*) { return Status::OK(); };
}

/// Adds 1 to every int32 in arg 0 (in/out).
HostKernelFn IncrementKernel() {
  return [](KernelExecContext* ctx) {
    auto* data = ctx->ptr_as<int32_t>(0);
    for (size_t i = 0; i < ctx->work_items(); ++i) data[i] += 1;
    return Status::OK();
  };
}

std::unique_ptr<SimulatedDevice> MakeTestDevice(
    std::shared_ptr<SimContext> ctx = std::make_shared<SimContext>(),
    bool requires_compilation = false) {
  auto device = std::make_unique<SimulatedDevice>(
      "test", TestModel(), SdkFormat::kRaw, requires_compilation, ctx);
  device->RegisterPrecompiledKernel("work", NopKernel());
  EXPECT_TRUE(device->Initialize().ok());
  return device;
}

// --- Lifecycle ---

TEST(Device, DoubleInitializeRejected) {
  auto device = MakeTestDevice();
  EXPECT_TRUE(device->Initialize().IsAlreadyExists());
}

TEST(Device, ExecuteBeforeInitializeFails) {
  auto ctx = std::make_shared<SimContext>();
  SimulatedDevice device("d", TestModel(), SdkFormat::kRaw, false, ctx);
  KernelLaunch launch;
  launch.kernel_name = "work";
  launch.fn = NopKernel();
  EXPECT_TRUE(device.Execute(launch).IsExecutionError());
}

// --- place_data / retrieve_data ---

TEST(Device, PlaceRetrieveRoundTrip) {
  auto device = MakeTestDevice();
  std::vector<int32_t> data(256);
  std::iota(data.begin(), data.end(), 0);
  auto buf = device->PrepareMemory(data.size() * 4);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(device->PlaceData(*buf, data.data(), data.size() * 4, 0).ok());
  std::vector<int32_t> out(256, -1);
  ASSERT_TRUE(device->RetrieveData(*buf, out.data(), out.size() * 4, 0).ok());
  EXPECT_EQ(out, data);
}

TEST(Device, PlaceRetrieveWithOffsets) {
  auto device = MakeTestDevice();
  auto buf = device->PrepareMemory(64);
  ASSERT_TRUE(buf.ok());
  int32_t v = 0xABCD;
  ASSERT_TRUE(device->PlaceData(*buf, &v, 4, 32).ok());
  int32_t got = 0;
  ASSERT_TRUE(device->RetrieveData(*buf, &got, 4, 32).ok());
  EXPECT_EQ(got, 0xABCD);
  // Untouched region is zero-initialized.
  ASSERT_TRUE(device->RetrieveData(*buf, &got, 4, 0).ok());
  EXPECT_EQ(got, 0);
}

TEST(Device, PlaceOverflowRejected) {
  auto device = MakeTestDevice();
  auto buf = device->PrepareMemory(16);
  ASSERT_TRUE(buf.ok());
  char data[32] = {};
  EXPECT_TRUE(device->PlaceData(*buf, data, 32, 0).IsInvalidArgument());
  EXPECT_TRUE(device->PlaceData(*buf, data, 8, 12).IsInvalidArgument());
  EXPECT_TRUE(device->RetrieveData(*buf, data, 17, 0).IsInvalidArgument());
}

TEST(Device, NullPointersRejected) {
  auto device = MakeTestDevice();
  auto buf = device->PrepareMemory(16);
  ASSERT_TRUE(buf.ok());
  EXPECT_TRUE(device->PlaceData(*buf, nullptr, 4, 0).IsInvalidArgument());
  EXPECT_TRUE(device->RetrieveData(*buf, nullptr, 4, 0).IsInvalidArgument());
}

TEST(Device, UnknownBufferNotFound) {
  auto device = MakeTestDevice();
  char data[4];
  EXPECT_TRUE(device->PlaceData(99, data, 4, 0).IsNotFound());
  EXPECT_TRUE(device->RetrieveData(99, data, 4, 0).IsNotFound());
  EXPECT_TRUE(device->DeleteMemory(99).IsNotFound());
  EXPECT_TRUE(
      device->TransformMemory(99, SdkFormat::kCudaDevPtr).IsNotFound());
}

// --- prepare_memory / delete_memory / arenas ---

TEST(Device, ArenaAccountsAllocations) {
  auto device = MakeTestDevice();
  auto a = device->PrepareMemory(1 << 20);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(device->device_arena().used(), size_t{1} << 20);
  auto b = device->AddPinnedMemory(1 << 19);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(device->pinned_arena().used(), size_t{1} << 19);
  EXPECT_EQ(device->device_arena().used(), size_t{1} << 20)
      << "pinned memory is a separate pool";
  ASSERT_TRUE(device->DeleteMemory(*a).ok());
  EXPECT_EQ(device->device_arena().used(), 0u);
  ASSERT_TRUE(device->DeleteMemory(*b).ok());
  EXPECT_EQ(device->pinned_arena().used(), 0u);
}

TEST(Device, DeviceOutOfMemory) {
  auto device = MakeTestDevice();
  auto big = device->PrepareMemory(11 << 20);  // capacity is 10 MiB
  EXPECT_TRUE(big.status().IsOutOfMemory());
  // Failed allocation reserves nothing.
  EXPECT_EQ(device->device_arena().used(), 0u);
  EXPECT_TRUE(device->PrepareMemory(5 << 20).ok());
}

TEST(Device, DataScaleInflatesArenaCharges) {
  auto ctx = std::make_shared<SimContext>();
  ctx->data_scale = 1000.0;
  auto device = MakeTestDevice(ctx);
  // 1 KiB actual = 1000 KiB nominal.
  auto buf = device->PrepareMemory(1 << 10);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(device->device_arena().used(), size_t{1024} * 1000);
  // 100 KiB actual = 100 MiB nominal > 10 MiB capacity.
  EXPECT_TRUE(device->PrepareMemory(100 << 10).status().IsOutOfMemory());
}

// --- transform_memory ---

TEST(Device, TransformChangesFormatWithoutMovingBytes) {
  auto device = MakeTestDevice();
  auto buf = device->PrepareMemory(16);
  ASSERT_TRUE(buf.ok());
  int32_t v = 77;
  ASSERT_TRUE(device->PlaceData(*buf, &v, 4, 0).ok());
  const size_t transfers_before = device->stats().place_data +
                                  device->stats().retrieve_data;
  ASSERT_TRUE(device->TransformMemory(*buf, SdkFormat::kThrustVector).ok());
  ASSERT_TRUE(device->BufferFormat(*buf).ok());
  EXPECT_EQ(*device->BufferFormat(*buf), SdkFormat::kThrustVector);
  EXPECT_EQ(device->stats().place_data + device->stats().retrieve_data,
            transfers_before)
      << "transform must not move data through the host";
  int32_t got = 0;
  ASSERT_TRUE(device->RetrieveData(*buf, &got, 4, 0).ok());
  EXPECT_EQ(got, 77);
}

// --- create_chunk ---

TEST(Device, ChunkAliasesParentRegion) {
  auto device = MakeTestDevice();
  std::vector<int32_t> data = {10, 20, 30, 40};
  auto parent = device->PrepareMemory(16);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(device->PlaceData(*parent, data.data(), 16, 0).ok());
  auto chunk = device->CreateChunk(*parent, 8, 8);  // elements {30, 40}
  ASSERT_TRUE(chunk.ok());
  int32_t got[2];
  ASSERT_TRUE(device->RetrieveData(*chunk, got, 8, 0).ok());
  EXPECT_EQ(got[0], 30);
  EXPECT_EQ(got[1], 40);
  // Writes through the chunk are visible through the parent.
  int32_t v = 99;
  ASSERT_TRUE(device->PlaceData(*chunk, &v, 4, 0).ok());
  ASSERT_TRUE(device->RetrieveData(*parent, got, 8, 8).ok());
  EXPECT_EQ(got[0], 99);
}

TEST(Device, ChunkBoundsChecked) {
  auto device = MakeTestDevice();
  auto parent = device->PrepareMemory(16);
  ASSERT_TRUE(parent.ok());
  EXPECT_TRUE(device->CreateChunk(*parent, 8, 12).status().IsInvalidArgument());
  EXPECT_TRUE(device->CreateChunk(*parent, 17, 0).status().IsInvalidArgument());
}

TEST(Device, DeletingChunkKeepsParentBytes) {
  auto device = MakeTestDevice();
  auto parent = device->PrepareMemory(1 << 10);
  ASSERT_TRUE(parent.ok());
  const size_t used = device->device_arena().used();
  auto chunk = device->CreateChunk(*parent, 256, 0);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(device->device_arena().used(), used) << "aliases charge nothing";
  ASSERT_TRUE(device->DeleteMemory(*chunk).ok());
  EXPECT_EQ(device->device_arena().used(), used);
}

TEST(Device, NestedChunks) {
  auto device = MakeTestDevice();
  std::vector<int32_t> data = {1, 2, 3, 4, 5, 6, 7, 8};
  auto parent = device->PrepareMemory(32);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(device->PlaceData(*parent, data.data(), 32, 0).ok());
  auto mid = device->CreateChunk(*parent, 16, 8);    // {3,4,5,6}
  ASSERT_TRUE(mid.ok());
  auto leaf = device->CreateChunk(*mid, 8, 4);       // {4,5}
  ASSERT_TRUE(leaf.ok());
  int32_t got[2];
  ASSERT_TRUE(device->RetrieveData(*leaf, got, 8, 0).ok());
  EXPECT_EQ(got[0], 4);
  EXPECT_EQ(got[1], 5);
}

// --- prepare_kernel / execute ---

TEST(Device, RuntimeCompilationRequired) {
  auto ctx = std::make_shared<SimContext>();
  auto device = MakeTestDevice(ctx, /*requires_compilation=*/true);
  auto buf = device->PrepareMemory(16);
  ASSERT_TRUE(buf.ok());
  KernelLaunch launch;
  launch.kernel_name = "inc";
  launch.work_items = 4;
  launch.args.push_back(KernelArg::InOut(*buf));
  launch.fn = IncrementKernel();
  // Even with an inline fn, the OpenCL-like driver insists the kernel was
  // prepared (compiled) first.
  EXPECT_TRUE(device->Execute(launch).IsExecutionError());
  ASSERT_TRUE(
      device->PrepareKernel("inc", {"__kernel inc", IncrementKernel()}).ok());
  EXPECT_TRUE(device->Execute(launch).ok());
}

TEST(Device, PrecompiledKernelLookup) {
  auto device = MakeTestDevice();
  device->RegisterPrecompiledKernel("inc", IncrementKernel());
  std::vector<int32_t> data = {5, 6};
  auto buf = device->PrepareMemory(8);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(device->PlaceData(*buf, data.data(), 8, 0).ok());
  KernelLaunch launch;
  launch.kernel_name = "inc";
  launch.work_items = 2;
  launch.args.push_back(KernelArg::InOut(*buf));
  ASSERT_TRUE(device->Execute(launch).ok());
  int32_t got[2];
  ASSERT_TRUE(device->RetrieveData(*buf, got, 8, 0).ok());
  EXPECT_EQ(got[0], 6);
  EXPECT_EQ(got[1], 7);
}

TEST(Device, MissingKernelErrors) {
  auto device = MakeTestDevice();
  KernelLaunch launch;
  launch.kernel_name = "no_such";
  EXPECT_TRUE(device->Execute(launch).IsExecutionError());
}

TEST(Device, PrepareKernelWithoutFnRejected) {
  auto device = MakeTestDevice();
  EXPECT_TRUE(device->PrepareKernel("k", {"src", nullptr}).IsInvalidArgument());
}

TEST(Device, HasKernelReflectsBothPaths) {
  auto device = MakeTestDevice();
  EXPECT_TRUE(device->HasKernel("work"));
  EXPECT_FALSE(device->HasKernel("late"));
  ASSERT_TRUE(device->PrepareKernel("late", {"src", NopKernel()}).ok());
  EXPECT_TRUE(device->HasKernel("late"));
}

// --- Simulated timing semantics ---

TEST(DeviceTiming, SyncSerializesEverything) {
  auto device = MakeTestDevice();
  const size_t bytes = 1 << 20;
  const double t_xfer = device->perf_model().TransferDuration(
      bytes, sim::TransferDirection::kHostToDevice, false);
  auto buf = device->PrepareMemory(bytes);
  ASSERT_TRUE(buf.ok());
  std::vector<uint8_t> host(bytes);
  ASSERT_TRUE(device->PlaceData(*buf, host.data(), bytes, 0).ok());
  KernelLaunch launch;
  launch.kernel_name = "work";
  launch.work_items = 100;  // 100 us at 1 tuple/us
  launch.args.push_back(KernelArg::In(*buf));
  ASSERT_TRUE(device->Execute(launch).ok());
  EXPECT_NEAR(device->MaxCompletion(), t_xfer + 100.0, 1e-6);
  EXPECT_NEAR(device->host_time(), t_xfer + 100.0, 1e-6)
      << "sync calls block the host";
}

TEST(DeviceTiming, AsyncOverlapsTransferAndCompute) {
  // Ping-pong between two buffers: transfers of chunk i+1 overlap the
  // kernel on chunk i. Async makespan = sync makespan - hidden kernel time.
  auto run = [](bool async) {
    auto device = MakeTestDevice();
    device->SetAsyncMode(async);
    const size_t bytes = 1 << 20;
    std::vector<uint8_t> host(bytes);
    auto a = device->PrepareMemory(bytes);
    auto b = device->PrepareMemory(bytes);
    EXPECT_TRUE(a.ok() && b.ok());
    const BufferId bufs[2] = {*a, *b};
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(
          device->PlaceData(bufs[i % 2], host.data(), bytes, 0).ok());
      KernelLaunch launch;
      launch.kernel_name = "work";
      launch.work_items = 100;
      launch.args.push_back(KernelArg::In(bufs[i % 2]));
      EXPECT_TRUE(device->Execute(launch).ok());
    }
    return device->MaxCompletion();
  };
  const double sync_time = run(false);
  const double async_time = run(true);
  // 3 transfers of ~976.6us dominate; the first two kernels (100us each)
  // hide behind transfers, the last one does not.
  EXPECT_NEAR(sync_time - async_time, 200.0, 1e-6);
}

TEST(DeviceTiming, WriteAfterReadHazardDelaysTransfer) {
  auto device = MakeTestDevice();
  device->SetAsyncMode(true);
  device->transfer_timeline().set_tracing(true);
  device->compute_timeline().set_tracing(true);
  const size_t bytes = 1 << 20;
  std::vector<uint8_t> host(bytes);
  auto buf = device->PrepareMemory(bytes);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(device->PlaceData(*buf, host.data(), bytes, 0).ok());
  KernelLaunch launch;
  launch.kernel_name = "work";
  launch.work_items = 5000;  // long kernel: 5000 us
  launch.args.push_back(KernelArg::In(*buf));
  ASSERT_TRUE(device->Execute(launch).ok());
  // Re-placing into the same buffer must wait for the kernel reading it.
  ASSERT_TRUE(device->PlaceData(*buf, host.data(), bytes, 0).ok());
  const auto& xfers = device->transfer_timeline().trace();
  const auto& kernels = device->compute_timeline().trace();
  ASSERT_EQ(xfers.size(), 2u);
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_DOUBLE_EQ(xfers[1].start, kernels[0].end)
      << "WAR: overwrite waits for the reader";
}

TEST(DeviceTiming, ExecuteWaitsForInputTransfer) {
  auto device = MakeTestDevice();
  device->SetAsyncMode(true);
  device->compute_timeline().set_tracing(true);
  const size_t bytes = 1 << 20;
  const double t_xfer = device->perf_model().TransferDuration(
      bytes, sim::TransferDirection::kHostToDevice, false);
  std::vector<uint8_t> host(bytes);
  auto buf = device->PrepareMemory(bytes);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(device->PlaceData(*buf, host.data(), bytes, 0).ok());
  KernelLaunch launch;
  launch.kernel_name = "work";
  launch.work_items = 10;
  launch.args.push_back(KernelArg::In(*buf));
  ASSERT_TRUE(device->Execute(launch).ok());
  ASSERT_EQ(device->compute_timeline().trace().size(), 1u);
  EXPECT_NEAR(device->compute_timeline().trace()[0].start, t_xfer, 1e-6)
      << "RAW: kernel waits for its input chunk";
}

TEST(DeviceTiming, PinnedTransfersFaster) {
  auto device = MakeTestDevice();
  const size_t bytes = 1 << 20;
  std::vector<uint8_t> host(bytes);
  auto pageable = device->PrepareMemory(bytes);
  auto pinned = device->AddPinnedMemory(bytes);
  ASSERT_TRUE(pageable.ok() && pinned.ok());
  ASSERT_TRUE(device->PlaceData(*pageable, host.data(), bytes, 0).ok());
  const double t_pageable = device->MaxCompletion();
  device->ResetTimelines();
  ASSERT_TRUE(device->PlaceData(*pinned, host.data(), bytes, 0).ok());
  const double t_pinned = device->MaxCompletion();
  EXPECT_NEAR(t_pageable / t_pinned, 2.0, 1e-6)
      << "test model: pinned bandwidth 2 GiB/s vs pageable 1 GiB/s";
}

TEST(DeviceTiming, DataScaleInflatesDurations) {
  auto scaled_ctx = std::make_shared<SimContext>();
  scaled_ctx->data_scale = 8.0;
  auto scaled = MakeTestDevice(scaled_ctx);
  auto plain = MakeTestDevice();
  const size_t bytes = 1 << 16;
  std::vector<uint8_t> host(bytes);
  auto a = scaled->PrepareMemory(bytes);
  auto b = plain->PrepareMemory(bytes);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(scaled->PlaceData(*a, host.data(), bytes, 0).ok());
  ASSERT_TRUE(plain->PlaceData(*b, host.data(), bytes, 0).ok());
  EXPECT_NEAR(scaled->MaxCompletion() / plain->MaxCompletion(), 8.0, 1e-6);
}

TEST(DeviceTiming, KernelBodyTimeExcludesOverheads) {
  auto model = TestModel();
  model.kernel_launch_us = 50.0;
  model.per_arg_map_us = 5.0;
  auto ctx = std::make_shared<SimContext>();
  SimulatedDevice device("d", model, SdkFormat::kRaw, false, ctx);
  device.RegisterPrecompiledKernel("work", NopKernel());
  ASSERT_TRUE(device.Initialize().ok());
  auto buf = device.PrepareMemory(64);
  ASSERT_TRUE(buf.ok());
  KernelLaunch launch;
  launch.kernel_name = "work";
  launch.work_items = 100;
  launch.args.push_back(KernelArg::In(*buf));
  ASSERT_TRUE(device.Execute(launch).ok());
  EXPECT_NEAR(device.kernel_body_time(), 100.0, 1e-9);
  EXPECT_GT(device.compute_timeline().busy_time(), 100.0)
      << "launch overhead occupies the engine but is not body time";
}

TEST(DeviceTiming, ResetTimelinesClearsBufferTimestamps) {
  auto device = MakeTestDevice();
  const size_t bytes = 1 << 20;
  std::vector<uint8_t> host(bytes);
  auto buf = device->PrepareMemory(bytes);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(device->PlaceData(*buf, host.data(), bytes, 0).ok());
  device->ResetTimelines();
  EXPECT_DOUBLE_EQ(device->MaxCompletion(), 0.0);
  // A kernel right after reset starts at t=0 (no stale readiness).
  device->compute_timeline().set_tracing(true);
  KernelLaunch launch;
  launch.kernel_name = "work";
  launch.work_items = 1;
  launch.args.push_back(KernelArg::In(*buf));
  ASSERT_TRUE(device->Execute(launch).ok());
  EXPECT_DOUBLE_EQ(device->compute_timeline().trace()[0].start, 0.0);
}

// --- Call stats ---

TEST(Device, CallStatsCount) {
  auto device = MakeTestDevice();
  auto buf = device->PrepareMemory(64);
  ASSERT_TRUE(buf.ok());
  char data[8] = {};
  ASSERT_TRUE(device->PlaceData(*buf, data, 8, 0).ok());
  ASSERT_TRUE(device->RetrieveData(*buf, data, 8, 0).ok());
  ASSERT_TRUE(device->TransformMemory(*buf, SdkFormat::kOpenClBuffer).ok());
  auto chunk = device->CreateChunk(*buf, 8, 0);
  ASSERT_TRUE(chunk.ok());
  ASSERT_TRUE(device->DeleteMemory(*chunk).ok());
  const DeviceCallStats& stats = device->stats();
  EXPECT_EQ(stats.prepare_memory, 1u);
  EXPECT_EQ(stats.place_data, 1u);
  EXPECT_EQ(stats.retrieve_data, 1u);
  EXPECT_EQ(stats.transform_memory, 1u);
  EXPECT_EQ(stats.create_chunk, 1u);
  EXPECT_EQ(stats.delete_memory, 1u);
  device->ResetStats();
  EXPECT_EQ(device->stats().place_data, 0u);
}

// --- Built-in drivers ---

TEST(Drivers, NativeFormatsAndCompilation) {
  auto ctx = std::make_shared<SimContext>();
  auto opencl =
      MakeDriver(sim::DriverKind::kOpenClGpu, sim::HardwareSetup::kSetup1, ctx);
  EXPECT_EQ(opencl->native_format(), SdkFormat::kOpenClBuffer);
  EXPECT_TRUE(opencl->requires_compilation());
  auto cuda =
      MakeDriver(sim::DriverKind::kCudaGpu, sim::HardwareSetup::kSetup1, ctx);
  EXPECT_EQ(cuda->native_format(), SdkFormat::kCudaDevPtr);
  EXPECT_FALSE(cuda->requires_compilation());
  auto openmp =
      MakeDriver(sim::DriverKind::kOpenMpCpu, sim::HardwareSetup::kSetup1, ctx);
  EXPECT_EQ(openmp->native_format(), SdkFormat::kRaw);
  EXPECT_FALSE(openmp->requires_compilation());
}

TEST(Drivers, BindStandardKernelsCoversTableOne) {
  auto ctx = std::make_shared<SimContext>();
  for (auto kind : {sim::DriverKind::kOpenClGpu, sim::DriverKind::kCudaGpu,
                    sim::DriverKind::kOpenClCpu, sim::DriverKind::kOpenMpCpu}) {
    auto device = MakeDriver(kind, sim::HardwareSetup::kSetup1, ctx);
    ASSERT_TRUE(device->Initialize().ok());
    ASSERT_TRUE(BindStandardKernels(device.get()).ok());
    for (const char* kernel :
         {"map", "filter_bitmap", "filter_position", "materialize",
          "materialize_position", "prefix_sum", "agg_block", "hash_build",
          "hash_probe", "hash_agg", "sort_agg", "fill"}) {
      EXPECT_TRUE(device->HasKernel(kernel))
          << kernel << " on " << sim::DriverKindName(kind);
    }
  }
}

// --- DeviceManager ---

TEST(Manager, AddAndFindDevices) {
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  auto cpu = manager.AddDriver(sim::DriverKind::kOpenMpCpu);
  ASSERT_TRUE(gpu.ok() && cpu.ok());
  EXPECT_EQ(manager.num_devices(), 2u);
  EXPECT_TRUE(manager.GetDevice(*gpu).ok());
  EXPECT_TRUE(manager.GetDevice(99).status().IsNotFound());
  ASSERT_TRUE(manager.FindByName("cuda_gpu").ok());
  EXPECT_EQ(*manager.FindByName("cuda_gpu"), *gpu);
  EXPECT_TRUE(manager.FindByName("fpga").status().IsNotFound());
}

TEST(Manager, RejectsDuplicateNames) {
  DeviceManager manager;
  ASSERT_TRUE(manager.AddDriver(sim::DriverKind::kCudaGpu).ok());
  EXPECT_TRUE(
      manager.AddDriver(sim::DriverKind::kCudaGpu).status().IsAlreadyExists());
}

TEST(Manager, MaxCompletionAcrossDevices) {
  DeviceManager manager;
  auto a = manager.AddDriver(sim::DriverKind::kCudaGpu);
  auto b = manager.AddDriver(sim::DriverKind::kOpenMpCpu);
  ASSERT_TRUE(a.ok() && b.ok());
  manager.ResetAllTimelines();
  std::vector<uint8_t> host(1 << 20);
  auto buf = manager.device(*a)->PrepareMemory(1 << 20);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager.device(*a)->PlaceData(*buf, host.data(), 1 << 20, 0).ok());
  EXPECT_GT(manager.MaxCompletion(), 0.0);
  EXPECT_DOUBLE_EQ(manager.MaxCompletion(),
                   manager.device(*a)->MaxCompletion());
}

}  // namespace
}  // namespace adamant
