// Tests for the sampling-based selectivity annotator and the library
// reference interpreter it is built on.

#include <gtest/gtest.h>

#include <numeric>

#include "adamant/adamant.h"
#include "plan/interpreter.h"
#include "plan/selectivity.h"
#include "plan/tpch_logical.h"

namespace adamant::plan {
namespace {

const Catalog& SharedCatalog() {
  static const Catalog* const kCatalog = [] {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    config.include_dimension_tables = false;
    auto catalog = tpch::Generate(config);
    ADAMANT_CHECK(catalog.ok());
    return new Catalog(**catalog);
  }();
  return *kCatalog;
}

std::shared_ptr<Catalog> UniformCatalog() {
  // k in 0..9 uniform, value = 1.
  auto catalog = std::make_shared<Catalog>();
  auto table = std::make_shared<Table>("u");
  std::vector<int32_t> k(1000);
  std::vector<int64_t> v(1000, 1);
  for (int i = 0; i < 1000; ++i) k[static_cast<size_t>(i)] = i % 10;
  ADAMANT_CHECK(table->AddColumn(Column::FromVector("k", k)).ok());
  ADAMANT_CHECK(table->AddColumn(Column::FromVector("v", v)).ok());
  ADAMANT_CHECK(catalog->AddTable(table).ok());
  return catalog;
}

// --- Interpreter sanity (the fuzzer covers the deep cases) ---

TEST(Interpreter, MatchesHandComputedAggregate) {
  auto catalog = UniformCatalog();
  auto root = GroupBy(Filter(Scan("u"), {Predicate::Lt("k", 5, 0.0)}), "k",
                      {{AggOp::kCount, "", "n"}}, 16, false);
  auto results = InterpretPlan(*root, *catalog);
  ASSERT_TRUE(results.ok());
  const auto& groups = results->at("n");
  ASSERT_EQ(groups.size(), 5u);
  for (const auto& [key, count] : groups) EXPECT_EQ(count, 100);
}

TEST(Interpreter, RejectsSinkInStreamPosition) {
  auto catalog = UniformCatalog();
  auto root = GroupBy(Scan("u"), "k", {{AggOp::kCount, "", "n"}}, 16, false);
  EXPECT_TRUE(InterpretStream(*root, *catalog).status().IsInvalidArgument());
  EXPECT_TRUE(InterpretPlan(*Scan("u"), *catalog).status().IsInvalidArgument());
}

// --- Annotator ---

TEST(Selectivity, MeasuresUniformPredicate) {
  auto catalog = UniformCatalog();
  // Deliberately wrong user estimate (0.9); k < 3 really selects 30%.
  auto root = Reduce(Filter(Scan("u"), {Predicate::Lt("k", 3, 0.9)}),
                     {{AggOp::kSum, "v", "total"}});
  auto annotated = AnnotateSelectivities(*root, *catalog, /*sample_every=*/1);
  ASSERT_TRUE(annotated.ok());
  const LogicalNode& filter = *(*annotated)->child;
  ASSERT_EQ(filter.predicates.size(), 1u);
  EXPECT_NEAR(filter.predicates[0].selectivity, 0.3, 0.01);
  // The original tree is untouched.
  EXPECT_DOUBLE_EQ(root->child->predicates[0].selectivity, 0.9);
}

TEST(Selectivity, ConditionalTermsMultiplyOut) {
  auto catalog = UniformCatalog();
  // k < 8 (0.8) then k >= 4 given k < 8 (4..7 of 0..7 = 0.5).
  auto root = Reduce(Filter(Scan("u"), {Predicate::Lt("k", 8, 0.0),
                                        Predicate::Ge("k", 4, 0.0)}),
                     {{AggOp::kSum, "v", "total"}});
  auto annotated = AnnotateSelectivities(*root, *catalog, 1);
  ASSERT_TRUE(annotated.ok());
  const auto& preds = (*annotated)->child->predicates;
  EXPECT_NEAR(preds[0].selectivity, 0.8, 0.01);
  EXPECT_NEAR(preds[1].selectivity, 0.5, 0.01);
}

TEST(Selectivity, SamplingApproximatesFullScan) {
  auto root = Reduce(
      Filter(Scan("lineitem"),
             {Predicate::Between("l_shipdate", tpch::Q6Params{}.date,
                                 tpch::Q6Params{}.date_end() - 1, 0.0)}),
      {{AggOp::kSum, "l_extendedprice", "total"}});
  auto exact = AnnotateSelectivities(*root, SharedCatalog(), 1);
  auto sampled = AnnotateSelectivities(*root, SharedCatalog(), 13);
  ASSERT_TRUE(exact.ok() && sampled.ok());
  const double exact_sel = (*exact)->child->predicates[0].selectivity;
  const double sampled_sel = (*sampled)->child->predicates[0].selectivity;
  EXPECT_NEAR(exact_sel, 1.0 / 7.0, 0.02) << "one year of ~7";
  EXPECT_NEAR(sampled_sel, exact_sel, 0.05);
}

TEST(Selectivity, JoinFractionAndGroupCountFilled) {
  auto catalog = UniformCatalog();
  // Semi self-join where the build side keeps k < 3: 30% of probes match.
  auto root = GroupBy(
      HashJoin(Scan("u"), Filter(Scan("u"), {Predicate::Lt("k", 3, 0.0)}),
               "k", "k", ProbeMode::kSemi, /*join_selectivity=*/0.9),
      "k", {{AggOp::kSum, "v", "total"}}, /*expected_groups=*/0, true);
  auto annotated = AnnotateSelectivities(*root, *catalog, 1);
  ASSERT_TRUE(annotated.ok());
  EXPECT_NEAR((*annotated)->child->join_selectivity, 0.3, 0.01);
  EXPECT_GE((*annotated)->expected_groups, 3.0);
}

TEST(Selectivity, AnnotatedTpchPlansRunCorrectly) {
  // End to end: strip Q6's hand estimates, re-derive them by sampling, and
  // the lowered plan must still produce the exact answer (the margins keep
  // sampling error from causing overflows).
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());

  auto logical = Q6Logical(SharedCatalog(), {});
  ASSERT_TRUE(logical.ok());
  auto annotated = AnnotateSelectivities(**logical, SharedCatalog(), 11);
  ASSERT_TRUE(annotated.ok());
  auto bundle = LowerPlan(**annotated, SharedCatalog(), *gpu);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 512;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(*exec->AggValue(bundle->nodes.at("revenue")),
            *tpch::Q6Reference(SharedCatalog(), {}));
}

TEST(Selectivity, TighterEstimatesShrinkBuffers) {
  // With measured selectivities the materialize buffers are sized to the
  // real fraction instead of the user's guess: the Q6 plan annotated by
  // sampling allocates less device memory than one annotated with sel=1.
  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(BindStandardKernels(manager.device(*gpu)).ok());
  QueryExecutor executor(&manager);
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 1024;

  auto pessimistic_tree = Reduce(
      Project(Filter(Scan("lineitem"),
                     {Predicate::Between("l_shipdate", tpch::Q6Params{}.date,
                                         tpch::Q6Params{}.date_end() - 1,
                                         1.0)}),
              {{"revenue",
                ScalarExpr::MulPct("l_extendedprice", "l_discount")}}),
      {{AggOp::kSum, "revenue", "revenue"}});
  auto pessimistic = LowerPlan(*pessimistic_tree, SharedCatalog(), *gpu);
  ASSERT_TRUE(pessimistic.ok());
  auto exec_p = executor.Run(pessimistic->graph.get(), options);
  ASSERT_TRUE(exec_p.ok());

  auto annotated_tree =
      AnnotateSelectivities(*pessimistic_tree, SharedCatalog(), 7);
  ASSERT_TRUE(annotated_tree.ok());
  auto annotated = LowerPlan(**annotated_tree, SharedCatalog(), *gpu);
  ASSERT_TRUE(annotated.ok());
  auto exec_a = executor.Run(annotated->graph.get(), options);
  ASSERT_TRUE(exec_a.ok());

  const auto& mem_p =
      exec_p->stats.devices[static_cast<size_t>(*gpu)].device_mem_high_water;
  const auto& mem_a =
      exec_a->stats.devices[static_cast<size_t>(*gpu)].device_mem_high_water;
  EXPECT_LT(mem_a, mem_p) << "measured estimates size buffers tighter";
  // Same answer either way.
  EXPECT_EQ(*exec_a->AggValue(annotated->nodes.at("revenue")),
            *exec_p->AggValue(pessimistic->nodes.at("revenue")));
}

TEST(Selectivity, InvalidSampleRateRejected) {
  auto catalog = UniformCatalog();
  auto root = Reduce(Scan("u"), {{AggOp::kSum, "v", "x"}});
  EXPECT_TRUE(AnnotateSelectivities(*root, *catalog, 0)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace adamant::plan
