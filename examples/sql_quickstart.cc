// SQL quickstart: generate TPC-H, plug a simulated GPU, compile a SQL
// query through the frontend (lexer → parser → binder → planner), lower it
// to a primitive graph, run it, and print the result table. See docs/sql.md
// for the supported grammar.

#include <cstdio>

#include "adamant/adamant.h"

using namespace adamant;  // NOLINT — example brevity

int main() {
  auto catalog = tpch::Generate({.scale_factor = 0.01});
  if (!catalog.ok()) return 1;

  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  if (!gpu.ok() || !BindStandardKernels(manager.device(*gpu)).ok()) return 1;

  const std::string query =
      "SELECT l_returnflag, COUNT(*) AS lines, AVG(l_quantity) AS avg_qty "
      "FROM lineitem "
      "WHERE l_shipdate >= DATE '1995-01-01' "
      "GROUP BY l_returnflag "
      "ORDER BY lines DESC";

  sql::PlannerOptions planner_options;
  planner_options.manager = &manager;  // cost model prices join orders
  auto compiled = sql::Compile(query, **catalog, planner_options);
  if (!compiled.ok()) {  // errors carry line:col positions
    std::fprintf(stderr, "%s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", sql::ExplainCompiled(*compiled).c_str());

  auto bundle = plan::LowerPlan(*compiled->plan, **catalog, *gpu);
  if (!bundle.ok()) return 1;

  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), {});
  if (!exec.ok()) return 1;

  auto results = sql::ExtractResults(*compiled, *bundle, *exec);
  if (!results.ok()) return 1;
  std::printf("%s", sql::FormatResultSet(*results, *compiled,
                                         **catalog).c_str());
  return 0;
}
