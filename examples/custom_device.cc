// Plugging a brand-new co-processor into ADAMANT (the paper's Section
// III-A2): implement the ten device-interface functions — here by
// configuring a SimulatedDevice with a custom performance model — bind the
// kernel library, and every existing plan and execution model works
// unchanged.
//
// The device modeled here is a fictional streaming FPGA card: modest clock,
// deep pipelines (high streaming rates, expensive "reconfiguration" =
// kernel preparation), narrow interconnect.

#include <cstdio>

#include "adamant/adamant.h"

using namespace adamant;  // NOLINT — example brevity

namespace {

sim::DevicePerfModel FpgaModel() {
  sim::DevicePerfModel m;
  m.name = "fpga_stream";
  // PCIe x8 card: slower link than the GPUs.
  m.transfer = sim::TransferParams{3.0, 6.0, 3.0, 6.0, /*latency=*/25.0};
  m.kernel_launch_us = 1.0;   // streaming starts almost instantly...
  m.kernel_compile_us = 2e6;  // ...but "compiling" = partial reconfiguration
  m.per_arg_map_us = 0.0;
  m.host_call_us = 0.4;
  m.device_memory_bytes = size_t{8} << 30;
  m.pinned_memory_bytes = size_t{4} << 30;
  // Deep pipelines stream simple primitives fast but hash badly.
  m.kernels["map"] = sim::KernelCostProfile{30000.0, 0, 0, 0};
  m.kernels["filter_bitmap"] = sim::KernelCostProfile{30000.0, 0, 0, 0};
  m.kernels["materialize"] = sim::KernelCostProfile{18000.0, 0, 0, 0};
  m.kernels["agg_block"] = sim::KernelCostProfile{28000.0, 0, 0, 0};
  m.kernels["hash_build"] = sim::KernelCostProfile{400.0, 0, 0.05, 0.05};
  m.kernels["hash_probe"] = sim::KernelCostProfile{600.0, 0, 0.05, 0.05};
  m.kernels["hash_agg"] = sim::KernelCostProfile{350.0, 0, 0.05, 0.05};
  m.default_kernel = sim::KernelCostProfile{5000.0, 0, 0, 0};
  return m;
}

}  // namespace

int main() {
  auto catalog = tpch::Generate({.scale_factor = 0.01});
  if (!catalog.ok()) return 1;

  DeviceManager manager;
  // The FPGA driver "runtime-compiles" its kernels: prepare_kernel models
  // the bitstream/overlay configuration, paid once at initialization — just
  // like ADAMANT compiles OpenCL kernels up front.
  auto fpga = manager.AddDevice(std::make_unique<SimulatedDevice>(
      "fpga_stream", FpgaModel(), SdkFormat::kRaw,
      /*requires_compilation=*/true, manager.sim_context()));
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  if (!fpga.ok() || !gpu.ok()) return 1;
  if (!BindStandardKernels(manager.device(*fpga)).ok()) return 1;
  if (!BindStandardKernels(manager.device(*gpu)).ok()) return 1;

  std::printf("Plugged devices:\n");
  for (size_t i = 0; i < manager.num_devices(); ++i) {
    const auto* dev = manager.device(static_cast<DeviceId>(i));
    std::printf("  [%zu] %-12s (runtime compilation: %s)\n", i,
                dev->name().c_str(),
                dev->requires_compilation() ? "yes" : "no");
  }

  // Same plans, same executor — only the device annotation changes.
  tpch::Q6Params params;
  auto reference = tpch::Q6Reference(**catalog, params);
  if (!reference.ok()) return 1;

  for (DeviceId device : {*fpga, *gpu}) {
    auto bundle = plan::BuildQ6(**catalog, params, device);
    if (!bundle.ok()) return 1;
    ExecutionOptions options;
    options.model = ExecutionModelKind::kFourPhaseChunked;
    QueryExecutor executor(&manager);
    auto exec = executor.Run(bundle->graph.get(), options);
    if (!exec.ok()) {
      std::fprintf(stderr, "run failed: %s\n", exec.status().ToString().c_str());
      return 1;
    }
    auto revenue = plan::ExtractQ6(*bundle, *exec);
    std::printf(
        "Q6 on %-12s: %10.3f ms simulated, revenue %s (4-phase, %zu chunks)\n",
        manager.device(device)->name().c_str(),
        sim::MsFromUs(exec->stats.elapsed_us),
        *revenue == *reference ? "correct" : "WRONG",
        exec->stats.chunks);
  }

  std::printf(
      "\nNo engine component changed: the FPGA was integrated purely by\n"
      "implementing the device layer's ten interface functions.\n");
  return 0;
}
