// Cross-device and cross-SDK execution: ADAMANT's runtime routes data
// between plugged devices through the transfer hub, so one primitive graph
// can mix devices — and the task layer's transformation table converts a
// buffer between SDK representations in place (Fig. 4) instead of bouncing
// it through the host.

#include <cstdio>
#include <numeric>
#include <vector>

#include "adamant/adamant.h"

using namespace adamant;  // NOLINT — example brevity

int main() {
  DeviceManager manager;
  auto cpu = manager.AddDriver(sim::DriverKind::kOpenMpCpu);
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  if (!cpu.ok() || !gpu.ok()) return 1;
  if (!BindStandardKernels(manager.device(*cpu)).ok()) return 1;
  if (!BindStandardKernels(manager.device(*gpu)).ok()) return 1;

  // --- Part 1: a plan whose filter half runs on the CPU and whose
  //     aggregation half runs on the GPU. ---
  std::vector<int32_t> values(1 << 20);
  std::iota(values.begin(), values.end(), 0);
  auto col = Column::FromVector("v", values);

  PrimitiveGraph graph;
  NodeConfig fcfg;
  fcfg.cmp_op = CmpOp::kLt;
  fcfg.lo = 1 << 19;
  int filter = graph.AddNode(PrimitiveKind::kFilterBitmap, *cpu, fcfg,
                             "cpu.filter");
  NodeConfig mcfg;
  mcfg.selectivity = 0.55;
  int mat = graph.AddNode(PrimitiveKind::kMaterialize, *cpu, mcfg, "cpu.mat");
  NodeConfig acfg;
  acfg.agg_op = AggOp::kSum;
  int agg = graph.AddNode(PrimitiveKind::kAggBlock, *gpu, acfg, "gpu.agg");
  if (!graph.ConnectScan(col, filter, 0).ok()) return 1;
  if (!graph.ConnectScan(col, mat, 0).ok()) return 1;
  if (!graph.Connect(filter, 0, mat, 1).ok()) return 1;
  if (!graph.Connect(mat, 0, agg, 0).ok()) return 1;

  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = 1 << 18;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(&graph, options);
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }
  const int64_t expected =
      (int64_t{1} << 19) * ((int64_t{1} << 19) - 1) / 2;
  std::printf("CPU-filter -> GPU-aggregate plan:\n");
  std::printf("  sum = %lld (%s), %.3f ms simulated\n",
              static_cast<long long>(*exec->AggValue(agg)),
              *exec->AggValue(agg) == expected ? "correct" : "WRONG",
              sim::MsFromUs(exec->stats.elapsed_us));
  std::printf("  bytes routed device->host->device: %zu\n\n",
              exec->stats.bytes_d2h);

  // --- Part 2: SDK-format conversion on one device — transform_memory vs
  //     the naive host round-trip. ---
  const size_t bytes = 64 << 20;
  std::vector<uint8_t> host(bytes);
  std::printf("Converting a %zu MiB cl-style buffer to a Thrust view:\n",
              bytes >> 20);
  for (bool allow_transform : {true, false}) {
    DataTransferHub hub(&manager,
                        allow_transform
                            ? DataContainer::WithDefaultTransforms()
                            : DataContainer::WithoutTransforms());
    manager.device(*gpu)->ResetTimelines();
    auto buf = hub.LoadData(*gpu, host.data(), bytes);
    if (!buf.ok()) return 1;
    const double t0 = manager.device(*gpu)->MaxCompletion();
    auto converted =
        hub.EnsureFormat(*gpu, *buf, SdkFormat::kThrustVector, bytes);
    if (!converted.ok()) return 1;
    const double us = manager.device(*gpu)->MaxCompletion() - t0;
    std::printf("  %-26s: %10.1f us\n",
                allow_transform ? "transform_memory (in place)"
                                : "naive host round-trip",
                us);
    (void)manager.device(*gpu)->DeleteMemory(*converted);
  }
  std::printf(
      "\nThe transformation table makes the conversion metadata-only —\n"
      "exactly the unwanted transfers Fig. 4's transform interface avoids.\n");
  return 0;
}
