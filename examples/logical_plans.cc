// Working with ADAMANT at the optimizer level: build logical plans, EXPLAIN
// them, lower them to primitive graphs with a device-placement policy, and
// execute — no hand-wired primitives anywhere.

#include <cstdio>

#include "adamant/adamant.h"
#include "plan/placement_optimizer.h"

using namespace adamant;  // NOLINT — example brevity

int main() {
  auto catalog = tpch::Generate({.scale_factor = 0.01});
  if (!catalog.ok()) return 1;

  DeviceManager manager;
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  auto cpu = manager.AddDriver(sim::DriverKind::kOpenMpCpu);
  if (!gpu.ok() || !cpu.ok()) return 1;
  if (!BindStandardKernels(manager.device(*gpu)).ok()) return 1;
  if (!BindStandardKernels(manager.device(*cpu)).ok()) return 1;

  // 1) A logical plan, as an optimizer would emit it.
  tpch::Q3Params params;
  auto logical = plan::Q3Logical(**catalog, params);
  if (!logical.ok()) return 1;
  std::printf("=== Logical plan (TPC-H Q3) ===\n%s\n",
              plan::ExplainPlan(**logical).c_str());

  // 2) Lower it with a heterogeneous placement policy: streaming primitives
  //    on the CPU driver, hash primitives on the GPU. The router moves data
  //    between the devices at pipeline boundaries.
  plan::PlacementPolicy policy;
  policy.default_device = *gpu;
  policy.by_kind[PrimitiveKind::kFilterBitmap] = *cpu;
  policy.by_kind[PrimitiveKind::kMap] = *cpu;
  auto bundle = plan::LowerPlan(**logical, **catalog, policy);
  if (!bundle.ok()) {
    std::fprintf(stderr, "lowering: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Lowered primitive graph ===\n");
  for (const GraphNode& node : bundle->graph->nodes()) {
    std::printf("  [%2d] %-22s %-34s on %s\n", node.id,
                PrimitiveKindName(node.kind), node.label.c_str(),
                manager.device(node.device)->name().c_str());
  }

  // 3) Execute and verify against the scalar reference.
  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = size_t{1} << 20;
  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  if (!exec.ok()) {
    std::fprintf(stderr, "run: %s\n", exec.status().ToString().c_str());
    return 1;
  }
  auto got = plan::ExtractQ3(*bundle, *exec, **catalog, params);
  auto want = tpch::Q3Reference(**catalog, params);
  if (!got.ok() || !want.ok()) return 1;

  std::printf("\n=== Q3 top results (%s) ===\n",
              *got == *want ? "match the scalar reference" : "MISMATCH");
  std::printf("%-10s %14s %-12s\n", "orderkey", "revenue", "orderdate");
  for (size_t i = 0; i < got->size() && i < 5; ++i) {
    std::printf("%-10d %14.2f %-12s\n", (*got)[i].orderkey,
                MoneyToDouble((*got)[i].revenue),
                Date((*got)[i].orderdate).ToString().c_str());
  }
  std::printf("\nsimulated elapsed: %.2f ms; %zu bytes crossed the host "
              "between devices\n",
              sim::MsFromUs(exec->stats.elapsed_us), exec->stats.bytes_d2h);

  // 4) What-if placement search: simulate every (streaming, hash, sink) ->
  //    device assignment and report the ranking.
  manager.SetDataScale(30.0 / 0.01);  // placement matters at larger scales
  auto q6 = plan::Q6Logical(**catalog, {});
  if (!q6.ok()) return 1;
  ExecutionOptions search_options;
  search_options.model = ExecutionModelKind::kChunked;
  auto search =
      plan::SearchPlacements(**q6, **catalog, &manager, search_options);
  if (!search.ok()) return 1;
  std::printf("\n=== What-if placement search (Q6, nominal SF 30) ===\n");
  for (const auto& [name, elapsed] : search->evaluated) {
    if (elapsed < 0) {
      std::printf("  %-60s failed\n", name.c_str());
    } else {
      std::printf("  %-60s %9.1f ms%s\n", name.c_str(),
                  sim::MsFromUs(elapsed),
                  name == search->best_name ? "  <- best" : "");
    }
  }
  return *got == *want ? 0 : 2;
}
