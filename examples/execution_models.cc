// Compares the four co-processor execution models of Section IV on the
// evaluated TPC-H queries — a miniature of the paper's Fig. 11, with a
// per-resource breakdown showing *why* the models differ:
//   * chunked: every transfer waits for the previous chunk's execution;
//   * pipelined: a transfer "thread" runs ahead (copy/compute overlap);
//   * 4-phase: pinned staging buffers double the effective PCIe bandwidth
//     and allocations are hoisted into the stage phase;
//   * 4-phase pipelined: both.

#include <cstdio>

#include "adamant/adamant.h"

using namespace adamant;  // NOLINT — example brevity

int main() {
  auto catalog = tpch::Generate(
      {.scale_factor = 0.02, .include_dimension_tables = false});
  if (!catalog.ok()) return 1;

  // Emulate SF 30 (about 3 GiB of query input, larger than what the
  // operator-at-a-time model could hold next to its intermediates).
  const double nominal_sf = 30.0;

  for (auto kind : {sim::DriverKind::kOpenClGpu, sim::DriverKind::kCudaGpu}) {
    DeviceManager manager(sim::HardwareSetup::kSetup1);
    manager.SetDataScale(nominal_sf / 0.02);
    auto gpu = manager.AddDriver(kind);
    if (!gpu.ok() || !BindStandardKernels(manager.device(*gpu)).ok()) return 1;

    std::printf("=== %s (RTX 2080 Ti, nominal SF %.0f) ===\n",
                sim::DriverKindName(kind), nominal_sf);
    std::printf("%-4s %-18s %12s %12s %12s %12s\n", "Q", "model",
                "elapsed_ms", "h2d_busy_ms", "compute_ms", "vs chunked");
    for (int query : {3, 4, 6}) {
      double chunked_ms = 0;
      for (auto model :
           {ExecutionModelKind::kChunked, ExecutionModelKind::kPipelined,
            ExecutionModelKind::kFourPhaseChunked,
            ExecutionModelKind::kFourPhasePipelined}) {
        plan::PlanBundle bundle = [&] {
          switch (query) {
            case 3:
              return std::move(*plan::BuildQ3(**catalog, {}, *gpu));
            case 4:
              return std::move(*plan::BuildQ4(**catalog, {}, *gpu));
            default:
              return std::move(*plan::BuildQ6(**catalog, {}, *gpu));
          }
        }();
        ExecutionOptions options;
        options.model = model;
        options.chunk_elems = size_t{1} << 25;
        QueryExecutor executor(&manager);
        auto exec = executor.Run(bundle.graph.get(), options);
        if (!exec.ok()) {
          std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
          return 1;
        }
        const double ms = sim::MsFromUs(exec->stats.elapsed_us);
        if (model == ExecutionModelKind::kChunked) chunked_ms = ms;
        const auto& dev =
            exec->stats.devices[static_cast<size_t>(*gpu)];
        std::printf("Q%-3d %-18s %12.1f %12.1f %12.1f %11.2fx\n", query,
                    ExecutionModelName(model), ms,
                    sim::MsFromUs(dev.h2d_busy_us),
                    sim::MsFromUs(dev.compute_busy_us), chunked_ms / ms);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Reading the breakdown: H2D busy time is identical for chunked and\n"
      "pipelined (same pageable transfers) — pipelining only removes idle\n"
      "gaps; the 4-phase models shrink H2D busy time itself via pinned\n"
      "staging (Fig. 3's bandwidth gap).\n");
  return 0;
}
