// Quickstart: plug a simulated GPU into ADAMANT, run TPC-H Q6 chunked, and
// print the revenue plus an execution-time breakdown.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <cstdio>

#include "adamant/adamant.h"

using namespace adamant;  // NOLINT — example brevity

int main() {
  // 1) Generate a small TPC-H instance (dates as day numbers, money as
  //    int64 cents, strings dictionary-encoded).
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  auto catalog = tpch::Generate(config);
  if (!catalog.ok()) {
    std::fprintf(stderr, "generate: %s\n", catalog.status().ToString().c_str());
    return 1;
  }

  // 2) Plug a co-processor. A driver is just an implementation of the ten
  //    device-interface functions; here we use the built-in CUDA-like GPU
  //    driver on the paper's Setup 1 (RTX 2080 Ti).
  DeviceManager manager(sim::HardwareSetup::kSetup1);
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  if (!gpu.ok()) return 1;
  // Install the Table-I kernel library on the device (OpenCL drivers would
  // runtime-compile these through prepare_kernel).
  if (auto st = BindStandardKernels(manager.device(*gpu)); !st.ok()) return 1;

  // 3) Build a query plan as a primitive graph (normally produced by an
  //    optimizer) and execute it with the chunked execution model.
  tpch::Q6Params params;
  auto bundle = plan::BuildQ6(**catalog, params, *gpu);
  if (!bundle.ok()) return 1;

  ExecutionOptions options;
  options.model = ExecutionModelKind::kChunked;
  options.chunk_elems = size_t{1} << 25;  // the paper's chunk size

  QueryExecutor executor(&manager);
  auto exec = executor.Run(bundle->graph.get(), options);
  if (!exec.ok()) {
    std::fprintf(stderr, "run: %s\n", exec.status().ToString().c_str());
    return 1;
  }

  auto revenue = plan::ExtractQ6(*bundle, *exec);
  auto reference = tpch::Q6Reference(**catalog, params);
  if (!revenue.ok() || !reference.ok()) return 1;

  std::printf("TPC-H Q6 @ SF %.2f on %s (%s)\n", config.scale_factor,
              manager.device(*gpu)->name().c_str(),
              ExecutionModelName(options.model));
  std::printf("  revenue            : %.2f (reference %.2f)  %s\n",
              MoneyToDouble(*revenue), MoneyToDouble(*reference),
              *revenue == *reference ? "MATCH" : "MISMATCH");
  std::printf("  simulated elapsed  : %.3f ms\n",
              sim::MsFromUs(exec->stats.elapsed_us));
  std::printf("  kernel bodies      : %.3f ms\n",
              sim::MsFromUs(exec->stats.kernel_body_us));
  std::printf("  transfer wire time : %.3f ms\n",
              sim::MsFromUs(exec->stats.transfer_wire_us));
  std::printf("  chunks             : %zu\n", exec->stats.chunks);
  std::printf("  bytes H2D          : %zu\n", exec->stats.bytes_h2d);
  return *revenue == *reference ? 0 : 2;
}
