// Larger-than-memory query processing (Section IV-A/B): the same TPC-H Q6
// at a scale whose working set exceeds device memory fails under
// operator-at-a-time but streams through under the chunked models, using
// only a chunk-sized slice of device memory.

#include <cstdio>

#include "adamant/adamant.h"

using namespace adamant;  // NOLINT — example brevity

int main() {
  auto catalog = tpch::Generate(
      {.scale_factor = 0.02, .include_dimension_tables = false});
  if (!catalog.ok()) return 1;

  // SF 100: Q6 reads ~11.1 GiB of lineitem columns — more than the
  // RTX 2080 Ti's 11 GiB of device memory.
  DeviceManager manager(sim::HardwareSetup::kSetup1);
  manager.SetDataScale(100.0 / 0.02);
  auto gpu = manager.AddDriver(sim::DriverKind::kCudaGpu);
  if (!gpu.ok() || !BindStandardKernels(manager.device(*gpu)).ok()) return 1;

  auto bundle = plan::BuildQ6(**catalog, {}, *gpu);
  if (!bundle.ok()) return 1;
  const double input_gib = static_cast<double>(
                               plan::QueryInputBytes(*bundle)) *
                           manager.data_scale() / (1024.0 * 1024 * 1024);
  std::printf("TPC-H Q6 at nominal SF 100: %.1f GiB of input columns\n",
              input_gib);
  std::printf("Device: %s with %.1f GiB global memory\n\n",
              manager.device(*gpu)->name().c_str(),
              static_cast<double>(
                  manager.device(*gpu)->perf_model().device_memory_bytes) /
                  (1024.0 * 1024 * 1024));

  QueryExecutor executor(&manager);

  // Operator-at-a-time: whole columns resident -> out of memory.
  {
    ExecutionOptions options;
    options.model = ExecutionModelKind::kOperatorAtATime;
    auto exec = executor.Run(bundle->graph.get(), options);
    std::printf("operator-at-a-time : %s\n",
                exec.ok() ? "unexpectedly succeeded"
                          : exec.status().ToString().c_str());
  }

  // Chunked models: bounded device-memory footprint.
  auto reference = tpch::Q6Reference(**catalog, {});
  for (auto model :
       {ExecutionModelKind::kChunked, ExecutionModelKind::kFourPhaseChunked}) {
    plan::PlanBundle fresh = std::move(*plan::BuildQ6(**catalog, {}, *gpu));
    ExecutionOptions options;
    options.model = model;
    options.chunk_elems = size_t{1} << 25;  // the paper's chunk size
    auto exec = executor.Run(fresh.graph.get(), options);
    if (!exec.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", ExecutionModelName(model),
                   exec.status().ToString().c_str());
      return 1;
    }
    auto revenue = plan::ExtractQ6(fresh, *exec);
    const auto& dev = exec->stats.devices[static_cast<size_t>(*gpu)];
    std::printf(
        "%-18s : %8.1f ms simulated, %zu chunks, peak device memory "
        "%.2f GiB, result %s\n",
        ExecutionModelName(model), sim::MsFromUs(exec->stats.elapsed_us),
        exec->stats.chunks,
        static_cast<double>(dev.device_mem_high_water) /
            (1024.0 * 1024 * 1024),
        revenue.ok() && *revenue == *reference ? "correct" : "WRONG");
  }

  std::printf(
      "\nThe chunked models hold only chunk-sized staging plus per-chunk\n"
      "intermediates on the device — the input size no longer limits what\n"
      "the co-processor can process (Section IV-B).\n");
  return 0;
}
