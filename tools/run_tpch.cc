// run_tpch — command-line front end for the whole stack: generate or load
// TPC-H data, pick a driver/setup/execution model, run queries, verify
// against the scalar references, and optionally dump a chrome trace.
//
//   run_tpch --query=6 --sf=0.02 --nominal-sf=30 --driver=cuda_gpu
//            --model=4phase --chunk=auto --verify --trace=/tmp/q6.json
//
// Flags:
//   --query=N         1, 3, 4, 5, 6, 10, 12, 14 or "all" (default: all)
//   --sf=F            generated scale factor (default 0.01)
//   --nominal-sf=F    emulated scale factor for the cost model (default: sf)
//   --tbl-dir=PATH    load dbgen .tbl files instead of generating
//   --driver=NAME     cuda_gpu | opencl_gpu | opencl_cpu | openmp_cpu
//   --setup=1|2       hardware setup (Table II)
//   --model=NAME      oaat | chunked | pipelined | 4phase | 4phase-pipelined
//                     | device-parallel
//   --chunk=N|auto    chunk size in nominal elements (default 2^25)
//   --kernel-variant=auto|scalar|parallel
//                     Task-layer kernel variant: auto = per-device policy
//                     (CPU drivers run the worker-pool parallel variants
//                     natively, GPU drivers scalar); scalar/parallel force
//                     one variant. The chosen variant + thread count per
//                     device is reported as a JSON line.
//   --kernel-threads=N
//                     thread budget for parallel variants (default: the
//                     device policy count, 4 on CPU drivers)
//   --fusion=off|on|auto
//                     plan-level kernel fusion (src/plan/fusion.h): rewrite
//                     fusable MAP/FILTER/MATERIALIZE/AGG chains into single
//                     FUSED composites before execution. off = never, on =
//                     every eligible group, auto (default) = only when the
//                     device cost model predicts a win. Fused group count
//                     and per-device fused launches appear on the JSON
//                     report line; --explain shows the fused plan.
//   --verify          compare results against the scalar reference
//   --trace=PATH      write a chrome://tracing JSON of the real run: the
//                     query is routed through a one-off QueryService so the
//                     trace carries service admission/placement events plus
//                     per-device pipeline/chunk/kernel/transfer spans
//                     (docs/observability.md; validate with check_trace)
//   --sim-trace=PATH  write the simulated-hardware timeline trace instead
//                     (device clock, not wall clock)
//   --profile         print the per-query phase profile as a JSON line
//                     (time in transfer/compute/merge per device/pipeline)
//   --metrics=PATH    after the run, dump the metrics registries to PATH as
//                     Prometheus text (or JSON when PATH ends in .json)
//   --explain         print the logical plan (where available) and exit
//   --explain-analyze run the query with per-operator stats collection and
//                     print the measured OperatorStats tree next to the
//                     planner's predictions: rows / selectivity / cost share
//                     per primitive with q-error columns (Leis et al.), plus
//                     kernel wall ms split by variant. Results stay
//                     bit-identical to a plain run (--verify still checks).
//                     Observed q-errors are recorded into the
//                     adamant_plan_qerror_{selectivity,cost} histograms
//                     (visible via --metrics). docs/observability.md.
//
// SQL frontend (src/sql/, docs/sql.md):
//
//   run_tpch --sql=q6 --verify          # run a built-in by name
//   run_tpch --sql="SELECT ..." --explain
//   run_tpch --sql-file=query.sql
//
//   --sql=TEXT        run a SQL query: TEXT is a built-in name from
//                     --list-queries, or literal SQL. With --explain,
//                     prints the bound/annotated plan, pushed-down
//                     predicates, costed join orders and the chosen device
//                     placement instead of running. With --verify, the
//                     result is cross-checked against the host interpreter.
//   --sql-file=PATH   like --sql, reading the query text from PATH
//   --list-queries    print every built-in query name + SQL text and exit
//   --devices=LIST    (single-query mode) comma-separated device ids, e.g.
//                     --devices=0,1: plugs that many instances of --driver
//                     and runs the query device-parallel across them,
//                     reporting the per-device chunk split and host merge
//                     time as a JSON line. A bare count N means 0..N-1.
//                     Driver names build a mixed-class set instead:
//                     --devices=cuda_gpu,openmp_cpu plugs one device per
//                     named class and splits the chunk range across the
//                     heterogeneous pair by cost ratio.
//   --split=LIST      (single-query mode, device-parallel) explicit split
//                     shares, one per --devices entry (any positive scale,
//                     e.g. --split=3,1); overrides the cost-model ratios.
//   --no-rebalance    disable runtime chunk stealing between partitions
//                     (the static split ratio is final)
//
// Serve mode (the service layer of src/service/): replays a seeded mixed
// Q3/Q4/Q6 workload through the QueryService scheduler, verifies every
// result against a serial run, and prints aggregate ServiceStats as JSON:
//
//   run_tpch --serve --clients=4 --queries=50 --seed=7 --devices=2
//
//   --serve           enable serve mode
//   --serve-sql       serve mode, but every query is submitted as SQL text
//                     (QuerySpec::sql) — the q3/q4/q6 built-ins — and each
//                     result is checked against a serial SQL run
//   --clients=N       concurrent worker threads (default 4)
//   --queries=N       workload size (default 50)
//   --seed=N          workload RNG seed (default 7)
//   --devices=N       instances of --driver to plug (default 2)
//   --no-cache        disable the cross-query device column cache
//   --history=PATH    after the workload drains, dump the service's bounded
//                     query-history ring (slow queries keep their full
//                     EXPLAIN ANALYZE operator tree) plus the selectivity
//                     feedback cache as JSON to PATH (docs/serving.md)
//
// Fault injection (serve mode; see docs/serving.md "Fault handling"):
//
//   run_tpch --serve --queries=200 --fault-rate=0.007 --fault-seed=13
//
//   --fault-rate=P    per-call transient fault probability on each serving
//                     device's data-path interface calls (default 0 = off)
//   --fault-seed=N    fault RNG seed; device i uses N + i (default 13)
//   --sticky-device=I device I dies on its first Execute and stays dead
//   --stall-ms=F      with --sticky-device: the device stalls every Execute
//                     for F wall-clock ms instead of failing (a chronic
//                     straggler — pair with --watchdog-factor)
//
// Deadlines and load shedding (serve mode; see docs/serving.md):
//
//   run_tpch --serve --queries=100 --deadline-ms=200 --watchdog-factor=3
//
//   --deadline-ms=F       per-query deadline; unmeetable queries are shed at
//                         admission, lapsed ones evicted or cancelled
//   --priority=normal|high  admission priority class of the workload
//   --watchdog-factor=F   cancel runs exceeding F x predicted cost and
//                         quarantine the device (0 = off)
//
// Exit codes: 0 success; 1 hard failure; 2 bad arguments; 3 = some served
// queries were shed / cancelled / failed — details on the machine-readable
// "serve_errors:" JSON line.
//                     until quarantined (default -1 = none)
//   --sequential      submit one query at a time (wait for each before the
//                     next): fixes the device call order so two same-seed
//                     runs report identical failure counters

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "adamant/adamant.h"
#include "tpch/tbl_schemas.h"

namespace adamant {
namespace {

struct Options {
  std::string query = "all";
  double sf = 0.01;
  double nominal_sf = -1;
  std::string tbl_dir;
  std::string driver = "cuda_gpu";
  int setup = 1;
  std::string model = "chunked";
  std::string chunk = "33554432";  // 2^25
  /// Task-layer kernel variant: auto (per-device policy) | scalar | parallel.
  std::string kernel_variant = "auto";
  /// Thread budget for parallel variants; 0 = per-device policy count.
  int kernel_threads = 0;
  /// Plan-level kernel fusion: off | on | auto (cost-gated).
  std::string fusion = "auto";
  bool verify = false;
  std::string trace_path;
  std::string sim_trace_path;
  bool profile = false;
  std::string metrics_path;
  bool explain = false;
  /// EXPLAIN ANALYZE: collect per-operator stats and print the predicted
  /// vs measured tree with q-error columns after the run.
  bool explain_analyze = false;
  /// Serve mode: dump the service query-history ring + feedback cache here.
  std::string history_path;
  /// SQL frontend: --sql (builtin name or literal text), --sql-file.
  std::string sql;
  std::string sql_file;
  bool list_queries = false;
  bool serve = false;
  /// Serve mode submits QuerySpec::sql text instead of make_graph.
  bool serve_sql = false;
  size_t clients = 4;
  size_t serve_queries = 50;
  unsigned seed = 7;
  size_t devices = 2;
  /// Single-query mode: parsed --devices list (kDeviceParallel partition
  /// set). Empty = the flag was absent or serve mode owns it.
  std::vector<DeviceId> device_set;
  /// Single-query mode: driver-class names from a non-numeric --devices
  /// list (mixed heterogeneous set); parallel to device_set when non-empty.
  std::vector<std::string> device_classes;
  /// --split: explicit per-device shares, parallel to device_set.
  std::vector<double> device_split;
  /// --no-rebalance: freeze the static split (no chunk stealing).
  bool no_rebalance = false;
  bool no_cache = false;
  double fault_rate = 0;
  uint64_t fault_seed = 13;
  int sticky_device = -1;
  bool sequential = false;
  /// Serve-mode SLO knobs (docs/serving.md "Deadlines, cancellation, and
  /// load shedding"): per-query deadline (0 = none), priority class, and
  /// watchdog factor (0 = watchdog off).
  double deadline_ms = 0;
  QueryPriority priority = QueryPriority::kNormal;
  double watchdog_factor = 0;
  /// With --sticky-device: the device *stalls* each Execute for this many
  /// wall-clock ms instead of failing — a chronic straggler for the
  /// watchdog, rather than a crasher for the retry path.
  double stall_ms = 0;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Result<Options> ParseArgs(int argc, char** argv) {
  Options options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseFlag(arg, "query", &value)) {
      options.query = value;
    } else if (ParseFlag(arg, "sf", &value)) {
      options.sf = std::stod(value);
    } else if (ParseFlag(arg, "nominal-sf", &value)) {
      options.nominal_sf = std::stod(value);
    } else if (ParseFlag(arg, "tbl-dir", &value)) {
      options.tbl_dir = value;
    } else if (ParseFlag(arg, "driver", &value)) {
      options.driver = value;
    } else if (ParseFlag(arg, "setup", &value)) {
      options.setup = std::stoi(value);
    } else if (ParseFlag(arg, "model", &value)) {
      // Knob strings are validated here, through the same parsers the
      // runtime's ValidateExecutionOptions uses, so a typo exits 2 with the
      // parser's message instead of failing mid-run.
      ADAMANT_RETURN_NOT_OK(ParseExecutionModel(value).status());
      options.model = value;
    } else if (ParseFlag(arg, "chunk", &value)) {
      options.chunk = value;
    } else if (ParseFlag(arg, "kernel-variant", &value)) {
      ADAMANT_RETURN_NOT_OK(ParseKernelVariant(value).status());
      options.kernel_variant = value;
    } else if (ParseFlag(arg, "kernel-threads", &value)) {
      options.kernel_threads = std::stoi(value);
    } else if (ParseFlag(arg, "fusion", &value)) {
      ADAMANT_RETURN_NOT_OK(ParseFusionMode(value).status());
      options.fusion = value;
    } else if (ParseFlag(arg, "trace", &value)) {
      options.trace_path = value;
    } else if (ParseFlag(arg, "sim-trace", &value)) {
      options.sim_trace_path = value;
    } else if (ParseFlag(arg, "metrics", &value)) {
      options.metrics_path = value;
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (ParseFlag(arg, "clients", &value)) {
      options.clients = std::stoul(value);
    } else if (ParseFlag(arg, "queries", &value)) {
      options.serve_queries = std::stoul(value);
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = static_cast<unsigned>(std::stoul(value));
    } else if (ParseFlag(arg, "devices", &value)) {
      // Comma-separated ids select a device-parallel partition set; a bare
      // count keeps the serve-mode meaning (N instances) and, in
      // single-query mode, expands to ids 0..N-1. Driver-class names
      // (--devices=cuda_gpu,openmp_cpu) plug a mixed heterogeneous set.
      if (value.find(',') != std::string::npos ||
          (!value.empty() && !std::isdigit(static_cast<unsigned char>(
                                 value.front())))) {
        std::vector<std::string> tokens;
        size_t pos = 0;
        while (pos <= value.size()) {
          const size_t comma = value.find(',', pos);
          const std::string tok =
              value.substr(pos, comma == std::string::npos ? std::string::npos
                                                           : comma - pos);
          if (!tok.empty()) tokens.push_back(tok);
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
        const bool named =
            !tokens.empty() &&
            !std::isdigit(static_cast<unsigned char>(tokens.front().front()));
        for (size_t t = 0; t < tokens.size(); ++t) {
          if (named) {
            options.device_classes.push_back(tokens[t]);
            options.device_set.push_back(static_cast<DeviceId>(t));
          } else {
            options.device_set.push_back(
                static_cast<DeviceId>(std::stoi(tokens[t])));
          }
        }
        options.devices = options.device_set.size();
      } else {
        options.devices = std::stoul(value);
        for (size_t d = 0; d < options.devices; ++d) {
          options.device_set.push_back(static_cast<DeviceId>(d));
        }
      }
    } else if (ParseFlag(arg, "split", &value)) {
      size_t pos = 0;
      while (pos <= value.size()) {
        const size_t comma = value.find(',', pos);
        const std::string tok =
            value.substr(pos, comma == std::string::npos ? std::string::npos
                                                         : comma - pos);
        if (!tok.empty()) options.device_split.push_back(std::stod(tok));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--no-rebalance") {
      options.no_rebalance = true;
    } else if (ParseFlag(arg, "fault-rate", &value)) {
      options.fault_rate = std::stod(value);
    } else if (ParseFlag(arg, "fault-seed", &value)) {
      options.fault_seed = std::stoull(value);
    } else if (ParseFlag(arg, "sticky-device", &value)) {
      options.sticky_device = std::stoi(value);
    } else if (ParseFlag(arg, "deadline-ms", &value)) {
      options.deadline_ms = std::stod(value);
    } else if (ParseFlag(arg, "priority", &value)) {
      if (value == "high") {
        options.priority = QueryPriority::kHigh;
      } else if (value == "normal") {
        options.priority = QueryPriority::kNormal;
      } else {
        return Status::InvalidArgument("--priority must be normal|high");
      }
    } else if (ParseFlag(arg, "watchdog-factor", &value)) {
      options.watchdog_factor = std::stod(value);
    } else if (ParseFlag(arg, "stall-ms", &value)) {
      options.stall_ms = std::stod(value);
    } else if (arg == "--sequential") {
      options.sequential = true;
    } else if (ParseFlag(arg, "sql", &value)) {
      options.sql = value;
    } else if (ParseFlag(arg, "sql-file", &value)) {
      options.sql_file = value;
    } else if (arg == "--list-queries") {
      options.list_queries = true;
    } else if (arg == "--serve") {
      options.serve = true;
    } else if (arg == "--serve-sql") {
      options.serve = true;
      options.serve_sql = true;
    } else if (arg == "--no-cache") {
      options.no_cache = true;
    } else if (arg == "--verify") {
      options.verify = true;
    } else if (arg == "--explain") {
      options.explain = true;
    } else if (arg == "--explain-analyze") {
      options.explain_analyze = true;
    } else if (ParseFlag(arg, "history", &value)) {
      options.history_path = value;
    } else if (arg == "--help") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (options.nominal_sf <= 0) options.nominal_sf = options.sf;
  return options;
}

Result<sim::DriverKind> DriverFromName(const std::string& name) {
  const std::map<std::string, sim::DriverKind> kDrivers = {
      {"cuda_gpu", sim::DriverKind::kCudaGpu},
      {"opencl_gpu", sim::DriverKind::kOpenClGpu},
      {"opencl_cpu", sim::DriverKind::kOpenClCpu},
      {"openmp_cpu", sim::DriverKind::kOpenMpCpu},
  };
  auto it = kDrivers.find(name);
  if (it == kDrivers.end()) {
    return Status::InvalidArgument("unknown driver '" + name + "'");
  }
  return it->second;
}

// Options → ExecutionOptions for the execution knobs that run_tpch forwards
// verbatim. The strings were validated at ParseArgs time (exit 2 on typos),
// so the Parse* calls here cannot fail.
ExecutionOptions MakeExecOptions(const Options& options,
                                 ExecutionModelKind model) {
  ExecutionOptions exec_options;
  exec_options.model = model;
  if (!options.device_set.empty()) {
    exec_options.model = ExecutionModelKind::kDeviceParallel;
    exec_options.device_set = options.device_set;
    exec_options.device_split = options.device_split;
  }
  exec_options.split_rebalance = !options.no_rebalance;
  exec_options.collect_profile = options.profile;
  exec_options.collect_operator_stats = options.explain_analyze;
  exec_options.kernel_variant = *ParseKernelVariant(options.kernel_variant);
  exec_options.kernel_threads = options.kernel_threads;
  exec_options.fusion = *ParseFusionMode(options.fusion);
  return exec_options;
}

// --explain: one line per primitive with the Task-layer kernel variant the
// run would resolve (a forced --kernel-variant wins, kAuto means the owning
// device's native policy — mirrors RunContext::FinalizeStats) and its thread
// budget. Fused composites carry their recipe in the label.
void PrintExplain(const std::string& title, const plan::PlanBundle& bundle,
                  DeviceManager* manager, const ExecutionOptions& exec_options,
                  const plan::FusionReport& fusion) {
  std::printf("%s primitive graph (fusion %s: %d group(s), %d primitive(s) "
              "fused):\n",
              title.c_str(), FusionModeName(exec_options.fusion),
              fusion.groups, fusion.nodes_fused);
  for (const GraphNode& node : bundle.graph->nodes()) {
    const SimulatedDevice* dev = manager->device(node.device);
    const KernelVariant effective =
        exec_options.kernel_variant == KernelVariantRequest::kScalar
            ? KernelVariant::kScalar
        : exec_options.kernel_variant == KernelVariantRequest::kParallel
            ? KernelVariant::kParallel
            : dev->default_kernel_variant();
    const int threads = effective == KernelVariant::kParallel
                            ? (exec_options.kernel_threads > 0
                                   ? exec_options.kernel_threads
                                   : dev->kernel_threads())
                            : 1;
    const bool fused_node = node.kind == PrimitiveKind::kFused ||
                            node.kind == PrimitiveKind::kFusedAgg;
    const std::string variant =
        fused_node ? std::string("fused/") + KernelVariantName(effective)
                   : std::string(KernelVariantName(effective));
    std::printf("  [%2d] %-22s %-36s variant=%s threads=%d\n", node.id,
                PrimitiveKindName(node.kind), node.label.c_str(),
                variant.c_str(), threads);
  }
}

// --explain-analyze: the measured OperatorStats tree next to the planner's
// predictions, one row per lowered primitive in node-id order. Selectivity
// columns apply only to the buffer-sizing kinds (FILTER_POSITION /
// MATERIALIZE / HASH_PROBE / FUSED); cost q-errors compare share-of-total
// (predicted sim-us vs measured kernel wall ms), so no unit calibration is
// needed. The summary line is what tests and the docs walkthrough grep.
void PrintExplainAnalyze(const std::string& title,
                         const std::vector<obs::OperatorStats>& operators) {
  if (operators.empty()) {
    std::printf("%s explain analyze: no operator stats collected\n",
                title.c_str());
    return;
  }
  double pred_total = 0;
  double actual_total = 0;
  for (const obs::OperatorStats& op : operators) {
    pred_total += op.predicted_cost_us;
    actual_total += op.kernel_ms;
  }
  std::printf("%s explain analyze (rows/selectivity predicted->actual, "
              "cost%% = share of total, q = max(p/a, a/p)):\n",
              title.c_str());
  std::printf("  %4s %3s %-20s %-30s %22s %15s %7s %13s %7s %6s %9s\n",
              "pipe", "id", "kind", "label", "rows p->a", "sel p->a",
              "q_sel", "cost% p->a", "q_cost", "launch", "kernel_ms");
  double sel_q_sum = 0, sel_q_max = 0;
  size_t sel_n = 0;
  double cost_q_sum = 0, cost_q_max = 0;
  size_t cost_n = 0;
  for (const obs::OperatorStats& op : operators) {
    char rows[64];
    std::snprintf(rows, sizeof(rows), "%.0f->%llu", op.predicted_rows_out,
                  static_cast<unsigned long long>(op.rows_out));
    char sel[48] = "-";
    char q_sel[32] = "-";
    if (op.selective && op.rows_in > 0) {
      const double q = obs::QError(op.predicted_selectivity,
                                   op.ActualSelectivity());
      std::snprintf(sel, sizeof(sel), "%.4f->%.4f", op.predicted_selectivity,
                    op.ActualSelectivity());
      std::snprintf(q_sel, sizeof(q_sel), "%.2f", q);
      sel_q_sum += q;
      sel_q_max = std::max(sel_q_max, q);
      ++sel_n;
    }
    char cost[48] = "-";
    char q_cost[32] = "-";
    if (pred_total > 0 && actual_total > 0 && op.launches > 0) {
      const double pred_share = op.predicted_cost_us / pred_total;
      const double actual_share = op.kernel_ms / actual_total;
      const double q = obs::QError(pred_share, actual_share);
      std::snprintf(cost, sizeof(cost), "%4.1f->%4.1f", pred_share * 100,
                    actual_share * 100);
      std::snprintf(q_cost, sizeof(q_cost), "%.2f", q);
      cost_q_sum += q;
      cost_q_max = std::max(cost_q_max, q);
      ++cost_n;
    }
    std::printf("  %4d %3d %-20s %-30s %22s %15s %7s %13s %7s %6zu %9.3f\n",
                op.pipeline, op.node_id, op.kind.c_str(), op.label.c_str(),
                rows, sel, q_sel, cost, q_cost, op.launches, op.kernel_ms);
  }
  std::printf("  qerror: selectivity mean %.2f max %.2f (%zu ops), "
              "cost-share mean %.2f max %.2f (%zu ops)\n",
              sel_n > 0 ? sel_q_sum / static_cast<double>(sel_n) : 1.0,
              sel_q_max, sel_n,
              cost_n > 0 ? cost_q_sum / static_cast<double>(cost_n) : 1.0,
              cost_q_max, cost_n);
}

// --explain (device-parallel): the chosen device set with per-device split
// ratios and the predicted per-partition cost (share x the graph priced on
// that device), next to the primitive-graph / placement output.
void PrintSplitExplain(DeviceManager* manager, const PrimitiveGraph& graph,
                       const ExecutionOptions& exec_options) {
  if (exec_options.model != ExecutionModelKind::kDeviceParallel ||
      exec_options.device_set.size() < 2) {
    return;
  }
  auto estimates = exec::EstimateDeviceCosts(
      graph, manager, exec_options.device_set, exec_options);
  if (!estimates.ok()) return;
  const std::vector<double> weights =
      exec_options.device_split.empty()
          ? exec::ThroughputWeights(*estimates)
          : exec::NormalizeSplit(exec_options.device_split,
                                 exec_options.device_set.size());
  std::printf("split:");
  for (size_t i = 0; i < exec_options.device_set.size(); ++i) {
    std::printf(" %s=%.3f (predicted %.3f ms/partition)",
                manager->device(exec_options.device_set[i])->name().c_str(),
                weights[i],
                sim::MsFromUs((*estimates)[i].total_cost_us * weights[i]));
  }
  std::printf(" rebalance=%s\n", exec_options.split_rebalance ? "on" : "off");
}

void PrintStats(const QueryExecution& exec, DeviceId device) {
  const QueryStats& stats = exec.stats;
  std::printf("    elapsed %.3f ms | kernels %.3f ms | wire %.3f ms | "
              "%zu chunks | H2D %zu B | D2H %zu B\n",
              sim::MsFromUs(stats.elapsed_us),
              sim::MsFromUs(stats.kernel_body_us),
              sim::MsFromUs(stats.transfer_wire_us), stats.chunks,
              stats.bytes_h2d, stats.bytes_d2h);
  const DeviceRunStats& dev = stats.devices[static_cast<size_t>(device)];
  std::printf("    per kernel:");
  for (const auto& [name, us] : dev.kernel_body_by_name) {
    std::printf(" %s=%.2fms", name.c_str(), sim::MsFromUs(us));
  }
  std::printf("\n");
}

// Dumps the process-wide registry (transfer/cache/kernel/fault counters)
// plus, when a service ran, its per-service registry. Prometheus text
// exposition by default; a .json suffix selects JSON.
Status DumpMetrics(const std::string& path, const QueryService* service) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::string text;
  if (json) {
    text = "{\"global\":" + obs::GlobalMetrics().ToJson();
    if (service != nullptr) {
      text += ",\"service\":" + service->metrics().ToJson();
    }
    text += "}";
  } else {
    text = obs::GlobalMetrics().ToPrometheusText();
    if (service != nullptr) text += service->metrics().ToPrometheusText();
  }
  std::ofstream out(path);
  out << text;
  if (!out.good()) {
    return Status::IOError("cannot write metrics to " + path);
  }
  std::printf("metrics written to %s (%s)\n", path.c_str(),
              json ? "JSON" : "Prometheus text");
  return Status::OK();
}

Result<plan::PlanBundle> BuildBundle(const std::string& query,
                                     const Catalog& catalog, DeviceId device) {
  if (query == "1") return plan::BuildQ1(catalog, {}, device);
  if (query == "3") return plan::BuildQ3(catalog, {}, device);
  if (query == "4") return plan::BuildQ4(catalog, {}, device);
  if (query == "5") return plan::BuildQ5(catalog, {}, device);
  if (query == "6") return plan::BuildQ6(catalog, {}, device);
  if (query == "10") return plan::BuildQ10(catalog, {}, device);
  if (query == "12") return plan::BuildQ12(catalog, {}, device);
  if (query == "14") return plan::BuildQ14(catalog, {}, device);
  return Status::InvalidArgument("unknown query '" + query + "'");
}

Status RunQuery(const std::string& query, const Catalog& catalog,
                DeviceManager* manager, DeviceId device,
                const Options& options, QueryService* service) {
  ADAMANT_ASSIGN_OR_RETURN(ExecutionModelKind model,
                           ParseExecutionModel(options.model));

  ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                           BuildBundle(query, catalog, device));

  ExecutionOptions exec_options = MakeExecOptions(options, model);

  // Fusion is a plan-level rewrite: it runs here, between lowering and
  // execution, so --explain, the chunk tuner, and the run itself all see
  // the same (fused) graph.
  ADAMANT_ASSIGN_OR_RETURN(plan::FusionReport fusion,
                           plan::ApplyFusion(&bundle, exec_options, manager));

  if (options.chunk == "auto") {
    ADAMANT_ASSIGN_OR_RETURN(
        exec_options.chunk_elems,
        SuggestChunkElems(*manager->device(device), *bundle.graph));
  } else {
    exec_options.chunk_elems = std::stoull(options.chunk);
  }

  if (options.explain) {
    PrintExplain("Q" + query, bundle, manager, exec_options, fusion);
    PrintSplitExplain(manager, *bundle.graph, exec_options);
    return Status::OK();
  }

  // With a service attached (--trace), the query goes through Submit so the
  // trace carries the admission/placement instants alongside the runtime
  // spans; node ids are deterministic per builder — make_graph applies the
  // same fusion pass — so the local bundle still extracts the serviced
  // execution's results.
  Result<QueryExecution> direct = Status::Internal("query did not run");
  std::shared_ptr<QueryTicket> ticket;
  if (service != nullptr) {
    QuerySpec spec;
    spec.name = "Q" + query;
    spec.options = exec_options;
    if (exec_options.model == ExecutionModelKind::kDeviceParallel) {
      spec.parallel_devices = exec_options.device_set.size();
    }
    const Catalog* cat = &catalog;
    const std::string q = query;
    const ExecutionOptions opts = exec_options;
    spec.make_graph = [cat, q, opts, manager](
                          DeviceId dev) -> Result<std::unique_ptr<PrimitiveGraph>> {
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle b, BuildBundle(q, *cat, dev));
      ADAMANT_RETURN_NOT_OK(plan::ApplyFusion(&b, opts, manager).status());
      return std::move(b.graph);
    };
    ADAMANT_ASSIGN_OR_RETURN(ticket, service->Submit(std::move(spec)));
    ADAMANT_RETURN_NOT_OK(ticket->Wait().status());
  } else {
    QueryExecutor executor(manager);
    direct = executor.Run(bundle.graph.get(), exec_options);
    ADAMANT_RETURN_NOT_OK(direct.status());
  }
  const QueryExecution& exec = service != nullptr ? *ticket->Wait() : *direct;
  const DeviceId report_device =
      service != nullptr ? ticket->placed_device() : device;

  std::printf("Q%-3s on %s (%s, chunk %zu):\n", query.c_str(),
              manager->device(report_device)->name().c_str(),
              ExecutionModelName(exec_options.model), exec_options.chunk_elems);
  PrintStats(exec, report_device);
  {
    // Self-describing benchmark output: which Task-layer kernel variant each
    // used device resolved, its thread budget, and how many launches
    // actually dispatched a parallel or fused fn. Empty when the run went
    // through a shared-device service lease (per-device snapshots are
    // skipped there).
    std::string variants_json;
    for (const DeviceRunStats& ds : exec.stats.devices) {
      if (ds.execute_calls == 0 || ds.kernel_variant.empty()) continue;
      if (!variants_json.empty()) variants_json += ",";
      variants_json += "\"" + ds.name + "\":{\"variant\":\"" +
                       ds.kernel_variant +
                       "\",\"threads\":" + std::to_string(ds.kernel_threads) +
                       ",\"parallel_launches\":" +
                       std::to_string(ds.parallel_launches) +
                       ",\"fused_launches\":" +
                       std::to_string(ds.fused_launches) + "}";
    }
    if (!variants_json.empty()) {
      std::printf("    {\"query\":\"%s\",\"fused_groups\":%d,"
                  "\"kernel_variants\":{%s}}\n",
                  query.c_str(), fusion.groups, variants_json.c_str());
    }
  }
  if (options.profile) {
    std::printf("    profile: %s\n", exec.stats.profile.ToJson().c_str());
  }
  if (options.explain_analyze) {
    PrintExplainAnalyze("Q" + query, exec.stats.profile.operators);
    obs::RecordPlanQErrors(&obs::GlobalMetrics(), "Q" + query,
                           exec.stats.profile.operators);
  }
  if (exec_options.model == ExecutionModelKind::kDeviceParallel) {
    // Machine-readable split report: which device ran how many chunks, the
    // planned split ratio per device, how many chunks each partition stole
    // at runtime, and the host time spent merging breaker containers.
    std::string chunks_json;
    for (const auto& [dev_id, count] : exec.stats.chunks_by_device) {
      if (!chunks_json.empty()) chunks_json += ",";
      chunks_json += "\"" + std::to_string(dev_id) +
                     "\":" + std::to_string(count);
    }
    std::string split_json;
    for (const auto& [dev_id, ratio] : exec.stats.split_ratio_by_device) {
      if (!split_json.empty()) split_json += ",";
      char buf[48];
      std::snprintf(buf, sizeof(buf), "\"%d\":%.4f", dev_id, ratio);
      split_json += buf;
    }
    std::string stolen_json;
    for (const auto& [dev_id, count] : exec.stats.chunks_stolen_by_device) {
      if (!stolen_json.empty()) stolen_json += ",";
      stolen_json += "\"" + std::to_string(dev_id) +
                     "\":" + std::to_string(count);
    }
    std::printf("    {\"query\":\"%s\",\"model\":\"device-parallel\","
                "\"devices\":%zu,\"chunks_by_device\":{%s},"
                "\"split_ratio\":{%s},\"chunks_stolen\":{%s},"
                "\"rebalance\":%s,"
                "\"merge_host_ms\":%.4f,\"elapsed_ms\":%.3f}\n",
                query.c_str(), options.device_set.size(),
                chunks_json.c_str(), split_json.c_str(), stolen_json.c_str(),
                exec_options.split_rebalance ? "true" : "false",
                exec.stats.merge_host_ms,
                sim::MsFromUs(exec.stats.elapsed_us));
  }

  // Results + optional verification.
  auto verdict = [&](bool match) {
    std::printf("    verification: %s\n", match ? "MATCH" : "MISMATCH");
    return match ? Status::OK()
                 : Status::ExecutionError("Q" + query + " mismatch");
  };
  if (query == "6") {
    ADAMANT_ASSIGN_OR_RETURN(int64_t revenue, plan::ExtractQ6(bundle, exec));
    std::printf("    revenue = %.2f\n", MoneyToDouble(revenue));
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(int64_t want, tpch::Q6Reference(catalog, {}));
      return verdict(revenue == want);
    }
  } else if (query == "3") {
    ADAMANT_ASSIGN_OR_RETURN(auto rows,
                             plan::ExtractQ3(bundle, exec, catalog, {}));
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      std::printf("    order %d: revenue %.2f\n", rows[i].orderkey,
                  MoneyToDouble(rows[i].revenue));
    }
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(auto want, tpch::Q3Reference(catalog, {}));
      return verdict(rows == want);
    }
  } else if (query == "4") {
    ADAMANT_ASSIGN_OR_RETURN(auto rows, plan::ExtractQ4(bundle, exec));
    for (const auto& row : rows) {
      std::printf("    priority %d: %lld orders\n", row.priority,
                  static_cast<long long>(row.order_count));
    }
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(auto want, tpch::Q4Reference(catalog, {}));
      return verdict(rows == want);
    }
  } else if (query == "5") {
    ADAMANT_ASSIGN_OR_RETURN(auto rows, plan::ExtractQ5(bundle, exec, catalog));
    for (const auto& row : rows) {
      std::printf("    %-16s revenue %.2f\n", row.nation.c_str(),
                  MoneyToDouble(row.revenue));
    }
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(auto want, tpch::Q5Reference(catalog, {}));
      return verdict(rows == want);
    }
  } else if (query == "1") {
    ADAMANT_ASSIGN_OR_RETURN(auto rows, plan::ExtractQ1(bundle, exec));
    std::printf("    %zu (returnflag, linestatus) groups\n", rows.size());
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(auto want, tpch::Q1Reference(catalog, {}));
      return verdict(rows == want);
    }
  } else if (query == "10") {
    ADAMANT_ASSIGN_OR_RETURN(auto rows, plan::ExtractQ10(bundle, exec, {}));
    for (size_t i = 0; i < rows.size() && i < 3; ++i) {
      std::printf("    customer %d: lost revenue %.2f\n", rows[i].custkey,
                  MoneyToDouble(rows[i].revenue));
    }
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(auto want, tpch::Q10Reference(catalog, {}));
      return verdict(rows == want);
    }
  } else if (query == "12") {
    ADAMANT_ASSIGN_OR_RETURN(auto rows, plan::ExtractQ12(bundle, exec));
    for (const auto& row : rows) {
      std::printf("    shipmode %d: high %lld, low %lld\n", row.shipmode,
                  static_cast<long long>(row.high_line_count),
                  static_cast<long long>(row.low_line_count));
    }
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(auto want, tpch::Q12Reference(catalog, {}));
      return verdict(rows == want);
    }
  } else if (query == "14") {
    ADAMANT_ASSIGN_OR_RETURN(auto result, plan::ExtractQ14(bundle, exec));
    std::printf("    promo revenue = %.2f%%\n", result.promo_pct());
    if (options.verify) {
      ADAMANT_ASSIGN_OR_RETURN(auto want, tpch::Q14Reference(catalog, {}));
      return verdict(result == want);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SQL mode: compile --sql / --sql-file text through the SQL frontend and run
// the resulting logical plan through the same lowering/executor path the
// hand-built plans use.
// ---------------------------------------------------------------------------

// Resolves --sql / --sql-file into query text + a display label. A --sql
// value naming a built-in (see --list-queries) expands to its SQL.
Result<std::pair<std::string, std::string>> ResolveSqlText(
    const Options& options) {
  if (!options.sql_file.empty()) {
    std::ifstream in(options.sql_file);
    if (!in.good()) {
      return Status::IOError("cannot read --sql-file=" + options.sql_file);
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return std::make_pair(std::move(text), options.sql_file);
  }
  if (const sql::BuiltinQuery* builtin = sql::FindBuiltinQuery(options.sql)) {
    return std::make_pair(builtin->sql, builtin->name);
  }
  return std::make_pair(options.sql, std::string("sql"));
}

Status RunSql(const Catalog& catalog, DeviceManager* manager, DeviceId device,
              const Options& options, QueryService* service) {
  ADAMANT_ASSIGN_OR_RETURN(ExecutionModelKind model,
                           ParseExecutionModel(options.model));
  ADAMANT_ASSIGN_OR_RETURN(auto resolved, ResolveSqlText(options));
  const std::string& sql_text = resolved.first;
  const std::string& label = resolved.second;

  sql::PlannerOptions planner_options;
  planner_options.manager = manager;
  planner_options.cost_device = device;
  ADAMANT_ASSIGN_OR_RETURN(sql::CompiledQuery compiled,
                           sql::Compile(sql_text, catalog, planner_options));
  ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                           plan::LowerPlan(*compiled.plan, catalog, device));

  ExecutionOptions exec_options = MakeExecOptions(options, model);

  // A service run (--trace) lowers the SQL text itself, without the fusion
  // pass — fusing the local bundle would desync its node ids from the
  // serviced execution it extracts results from. Direct runs (and
  // --explain, which never executes the local bundle) fuse here.
  plan::FusionReport fusion;
  if (service == nullptr || options.explain) {
    ADAMANT_ASSIGN_OR_RETURN(
        fusion, plan::ApplyFusion(&bundle, exec_options, manager));
  }

  if (options.chunk == "auto") {
    ADAMANT_ASSIGN_OR_RETURN(
        exec_options.chunk_elems,
        SuggestChunkElems(*manager->device(device), *bundle.graph));
  } else {
    exec_options.chunk_elems = std::stoull(options.chunk);
  }

  if (options.explain) {
    std::printf("%s: %s\n%s", label.c_str(), sql_text.c_str(),
                sql::ExplainCompiled(compiled).c_str());
    PrintExplain(label, bundle, manager, exec_options, fusion);
    ADAMANT_ASSIGN_OR_RETURN(
        plan::PlacementSearchResult placement,
        plan::SearchPlacements(*compiled.plan, catalog, manager,
                               exec_options));
    std::printf("placement: %s (simulated %.3f ms, %zu candidates)\n",
                placement.best_name.c_str(),
                sim::MsFromUs(placement.best_elapsed_us),
                placement.evaluated.size());
    if (!placement.best_device_set.empty()) {
      // The winner is a device-parallel split: the chosen set with each
      // device's split ratio and predicted per-partition cost.
      std::printf("split:");
      for (size_t i = 0; i < placement.best_device_set.size(); ++i) {
        std::printf(" %s=%.3f",
                    manager->device(placement.best_device_set[i])
                        ->name()
                        .c_str(),
                    placement.best_split[i]);
        if (i < placement.best_partition_cost_us.size()) {
          std::printf(" (predicted %.3f ms/partition)",
                      sim::MsFromUs(placement.best_partition_cost_us[i]));
        }
      }
      std::printf("\n");
    }
    PrintSplitExplain(manager, *bundle.graph, exec_options);
    return Status::OK();
  }

  // With a service attached (--trace), the query goes through Submit as SQL
  // text; lowering is deterministic, so the local bundle's named sinks still
  // extract the serviced execution's results.
  Result<QueryExecution> direct = Status::Internal("query did not run");
  std::shared_ptr<QueryTicket> ticket;
  if (service != nullptr) {
    QuerySpec spec;
    spec.name = label;
    spec.options = exec_options;
    spec.sql = sql_text;
    spec.sql_catalog = &catalog;
    ADAMANT_ASSIGN_OR_RETURN(ticket, service->Submit(std::move(spec)));
    ADAMANT_RETURN_NOT_OK(ticket->Wait().status());
  } else {
    QueryExecutor executor(manager);
    direct = executor.Run(bundle.graph.get(), exec_options);
    ADAMANT_RETURN_NOT_OK(direct.status());
  }
  const QueryExecution& exec = service != nullptr ? *ticket->Wait() : *direct;
  const DeviceId report_device =
      service != nullptr ? ticket->placed_device() : device;

  std::printf("%s on %s (%s, chunk %zu):\n", label.c_str(),
              manager->device(report_device)->name().c_str(),
              ExecutionModelName(exec_options.model),
              exec_options.chunk_elems);
  PrintStats(exec, report_device);
  if (options.profile) {
    std::printf("    profile: %s\n", exec.stats.profile.ToJson().c_str());
  }
  if (options.explain_analyze) {
    PrintExplainAnalyze(label, exec.stats.profile.operators);
    obs::RecordPlanQErrors(&obs::GlobalMetrics(), label,
                           exec.stats.profile.operators);
  }

  ADAMANT_ASSIGN_OR_RETURN(sql::SqlResultSet results,
                           sql::ExtractResults(compiled, bundle, exec));
  std::printf("%s", sql::FormatResultSet(results, compiled, catalog).c_str());
  if (options.verify) {
    ADAMANT_RETURN_NOT_OK(
        sql::VerifyAgainstInterpreter(compiled, bundle, exec, catalog));
    std::printf("    verification: MATCH (host interpreter)\n");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Serve mode: a seeded Q3/Q4/Q6 mix through the QueryService, each result
// checked bit-for-bit against a serial single-query run.
// ---------------------------------------------------------------------------

struct ServeReference {
  std::vector<tpch::Q3Row> q3;
  std::vector<tpch::Q4Row> q4;
  int64_t q6 = 0;
  // Template bundles: node ids are deterministic per builder, so one bundle
  // per query kind serves result extraction for every served execution.
  plan::PlanBundle q3_bundle;
  plan::PlanBundle q4_bundle;
  plan::PlanBundle q6_bundle;
};

Result<ServeReference> BuildServeReference(const Catalog& catalog,
                                           DeviceManager* manager,
                                           const ExecutionOptions& exec_options) {
  ServeReference ref;
  QueryExecutor executor(manager);
  ADAMANT_ASSIGN_OR_RETURN(ref.q3_bundle, plan::BuildQ3(catalog, {}, 0));
  ADAMANT_ASSIGN_OR_RETURN(ref.q4_bundle, plan::BuildQ4(catalog, {}, 0));
  ADAMANT_ASSIGN_OR_RETURN(ref.q6_bundle, plan::BuildQ6(catalog, {}, 0));
  {
    ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                             plan::BuildQ3(catalog, {}, 0));
    ADAMANT_ASSIGN_OR_RETURN(QueryExecution exec,
                             executor.Run(bundle.graph.get(), exec_options));
    ADAMANT_ASSIGN_OR_RETURN(ref.q3,
                             plan::ExtractQ3(bundle, exec, catalog, {}));
  }
  {
    ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                             plan::BuildQ4(catalog, {}, 0));
    ADAMANT_ASSIGN_OR_RETURN(QueryExecution exec,
                             executor.Run(bundle.graph.get(), exec_options));
    ADAMANT_ASSIGN_OR_RETURN(ref.q4, plan::ExtractQ4(bundle, exec));
  }
  {
    ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                             plan::BuildQ6(catalog, {}, 0));
    ADAMANT_ASSIGN_OR_RETURN(QueryExecution exec,
                             executor.Run(bundle.graph.get(), exec_options));
    ADAMANT_ASSIGN_OR_RETURN(ref.q6, plan::ExtractQ6(bundle, exec));
  }
  return ref;
}

/// One served query that did not produce a usable result, for the
/// machine-readable `serve_errors:` record (exit code 3).
struct ServeErrorRecord {
  size_t index;
  std::string query;
  const char* outcome;  // "shed" | "rejected" | "cancelled" | "failed"
  Status status;
};

std::string ServeErrorsJson(const std::vector<ServeErrorRecord>& errors) {
  std::string json =
      "{\"count\":" + std::to_string(errors.size()) + ",\"errors\":[";
  for (size_t i = 0; i < errors.size(); ++i) {
    const ServeErrorRecord& e = errors[i];
    if (i > 0) json += ",";
    json += "{\"index\":" + std::to_string(e.index) + ",\"query\":\"" +
            obs::JsonEscape(e.query) + "\",\"outcome\":\"" + e.outcome +
            "\",\"status\":\"" + obs::JsonEscape(e.status.ToString()) + "\"}";
  }
  return json + "]}";
}

Status Serve(const Options& options, const std::shared_ptr<Catalog>& catalog,
             int* exit_code) {
  ADAMANT_ASSIGN_OR_RETURN(sim::DriverKind kind,
                           DriverFromName(options.driver));
  ADAMANT_ASSIGN_OR_RETURN(ExecutionModelKind model,
                           ParseExecutionModel(options.model));
  const sim::HardwareSetup setup = options.setup == 2
                                       ? sim::HardwareSetup::kSetup2
                                       : sim::HardwareSetup::kSetup1;
  const bool faults = options.fault_rate > 0 || options.sticky_device >= 0;
  DeviceManager manager(setup);
  manager.SetDataScale(options.nominal_sf / options.sf);
  const size_t num_devices = std::max<size_t>(options.devices, 1);
  for (size_t i = 0; i < num_devices; ++i) {
    const std::string name = options.driver + "." + std::to_string(i);
    DeviceId device;
    if (faults) {
      FaultPlan plan = FaultPlan::TransientRate(
          options.fault_rate, options.fault_seed + i);
      if (static_cast<int>(i) == options.sticky_device) {
        // --stall-ms turns the sticky device into a chronic straggler
        // (every Execute sleeps but succeeds) instead of a crasher; only a
        // deadline or the watchdog ends runs placed on it.
        FaultPlan sticky =
            options.stall_ms > 0
                ? FaultPlan::StickyStall(InterfaceCall::kExecute,
                                         options.stall_ms)
                : FaultPlan::Sticky(InterfaceCall::kExecute);
        plan.specs.insert(plan.specs.end(), sticky.specs.begin(),
                          sticky.specs.end());
      }
      ADAMANT_ASSIGN_OR_RETURN(device,
                               manager.AddDriver(kind, name, std::move(plan)));
    } else {
      ADAMANT_ASSIGN_OR_RETURN(device, manager.AddDriver(kind, name));
    }
    ADAMANT_RETURN_NOT_OK(BindStandardKernels(manager.device(device)));
  }

  ExecutionOptions exec_options;
  exec_options.model = model;
  exec_options.chunk_elems = std::stoull(options.chunk);

  std::printf("serve: %zu devices (%s), %zu clients, %zu queries, seed %u, "
              "cache %s\n",
              num_devices, options.driver.c_str(), options.clients,
              options.serve_queries, options.seed,
              options.no_cache ? "off" : "on");
  if (faults) {
    std::printf("serve: fault rate %g (seed %llu), sticky device %d, %s "
                "submission\n",
                options.fault_rate,
                static_cast<unsigned long long>(options.fault_seed),
                options.sticky_device,
                options.sequential ? "sequential" : "concurrent");
  }

  // Serial references first: the service's results must match these
  // bit-for-bit. With faults enabled the references come from a separate
  // clean manager — the baseline must be what a fault-free run produces.
  std::unique_ptr<DeviceManager> clean;
  DeviceManager* ref_manager = &manager;
  if (faults) {
    clean = std::make_unique<DeviceManager>(setup);
    clean->SetDataScale(options.nominal_sf / options.sf);
    ADAMANT_ASSIGN_OR_RETURN(DeviceId device, clean->AddDriver(kind));
    ADAMANT_RETURN_NOT_OK(BindStandardKernels(clean->device(device)));
    ref_manager = clean.get();
  }
  ServeReference ref;
  // SQL serve mode references: the q3/q4/q6 built-ins compiled through the
  // SQL frontend and run serially. The service compiles the same text, so
  // the (deterministic) lowering's named sinks line up with these bundles.
  const char* kSqlServeNames[3] = {"q3", "q4", "q6"};
  std::vector<sql::CompiledQuery> sql_compiled;
  std::vector<plan::PlanBundle> sql_bundles;
  std::vector<sql::SqlResultSet> sql_refs;
  if (options.serve_sql) {
    QueryExecutor ref_executor(ref_manager);
    for (const char* name : kSqlServeNames) {
      const sql::BuiltinQuery* builtin = sql::FindBuiltinQuery(name);
      sql::PlannerOptions planner_options;
      planner_options.manager = ref_manager;
      ADAMANT_ASSIGN_OR_RETURN(
          sql::CompiledQuery compiled,
          sql::Compile(builtin->sql, *catalog, planner_options));
      ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                               plan::LowerPlan(*compiled.plan, *catalog, 0));
      ADAMANT_ASSIGN_OR_RETURN(
          QueryExecution exec,
          ref_executor.Run(bundle.graph.get(), exec_options));
      ADAMANT_ASSIGN_OR_RETURN(sql::SqlResultSet rows,
                               sql::ExtractResults(compiled, bundle, exec));
      sql_compiled.push_back(std::move(compiled));
      sql_bundles.push_back(std::move(bundle));
      sql_refs.push_back(std::move(rows));
    }
  } else {
    ADAMANT_ASSIGN_OR_RETURN(ref, BuildServeReference(*catalog, ref_manager,
                                                      exec_options));
  }

  ServiceConfig config;
  config.workers = std::max<size_t>(options.clients, 1);
  config.enable_cache = !options.no_cache;
  config.slo.watchdog_factor = options.watchdog_factor;
  if (options.deadline_ms > 0 || options.watchdog_factor > 0) {
    std::printf("serve: deadline %g ms, priority %s, watchdog factor %g\n",
                options.deadline_ms,
                options.priority == QueryPriority::kHigh ? "high" : "normal",
                options.watchdog_factor);
  }
  if (faults) {
    // ~10% per-attempt fault rate wants more headroom than the default 3
    // attempts before a ticket is allowed to fail.
    config.retry.max_attempts = 8;
  }
  if (!options.trace_path.empty()) {
    // Enabled before the service exists so worker threads never observe a
    // half-initialized recorder; the reference runs above stay untraced.
    obs::TraceRecorder::Global().Enable();
    for (size_t i = 0; i < manager.num_devices(); ++i) {
      obs::TraceRecorder::Global().SetTrackName(
          static_cast<int>(i),
          manager.device(static_cast<DeviceId>(i))->name());
    }
  }
  QueryService service(&manager, config);

  // Seeded workload: an even Q3/Q4/Q6 mix.
  std::mt19937 rng(options.seed);
  std::uniform_int_distribution<int> pick(0, 2);
  const Catalog* cat = catalog.get();
  std::vector<int> kinds;
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  std::vector<ServeErrorRecord> errors;
  kinds.reserve(options.serve_queries);
  tickets.reserve(options.serve_queries);
  for (size_t i = 0; i < options.serve_queries; ++i) {
    const int kind_ix = pick(rng);
    QuerySpec spec;
    spec.options = exec_options;
    spec.deadline_ms = options.deadline_ms;
    spec.priority = options.priority;
    if (options.serve_sql) {
      spec.name = std::string("sql-") + kSqlServeNames[kind_ix];
      spec.sql = sql::FindBuiltinQuery(kSqlServeNames[kind_ix])->sql;
      spec.sql_catalog = cat;
    } else if (kind_ix == 0) {
      spec.name = "Q3";
      spec.make_graph = [cat](DeviceId device)
          -> Result<std::unique_ptr<PrimitiveGraph>> {
        ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                                 plan::BuildQ3(*cat, {}, device));
        return std::move(bundle.graph);
      };
    } else if (kind_ix == 1) {
      spec.name = "Q4";
      spec.make_graph = [cat](DeviceId device)
          -> Result<std::unique_ptr<PrimitiveGraph>> {
        ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                                 plan::BuildQ4(*cat, {}, device));
        return std::move(bundle.graph);
      };
    } else {
      spec.name = "Q6";
      spec.make_graph = [cat](DeviceId device)
          -> Result<std::unique_ptr<PrimitiveGraph>> {
        ADAMANT_ASSIGN_OR_RETURN(plan::PlanBundle bundle,
                                 plan::BuildQ6(*cat, {}, device));
        return std::move(bundle.graph);
      };
    }
    const std::string query_name = spec.name;
    Result<std::shared_ptr<QueryTicket>> submit =
        service.Submit(std::move(spec));
    if (!submit.ok()) {
      // Shed (deadline unmeetable) and capacity rejections are recorded
      // outcomes of the experiment, not reasons to abort it; anything else
      // (a plan bug) still aborts.
      const Status& st = submit.status();
      if (st.IsDeadlineExceeded()) {
        errors.push_back({i, query_name, "shed", st});
      } else if (st.IsOutOfMemory() || st.IsUnavailable()) {
        errors.push_back({i, query_name, "rejected", st});
      } else {
        return st.WithContext("submitting query " + std::to_string(i));
      }
      kinds.push_back(kind_ix);
      tickets.push_back(nullptr);
      continue;
    }
    std::shared_ptr<QueryTicket> ticket = std::move(*submit);
    // Sequential mode serializes the device call order: every attempt of
    // query i happens before any call of query i+1, which makes the fault
    // injectors' seeded decisions — and hence the failure counters —
    // reproducible across runs.
    if (options.sequential) ticket->Wait();
    kinds.push_back(kind_ix);
    tickets.push_back(std::move(ticket));
  }

  size_t mismatches = 0;
  size_t fault_failures = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    if (tickets[i] == nullptr) continue;  // shed / rejected at submit
    const Result<QueryExecution>& result = tickets[i]->Wait();
    if (!result.ok()) {
      const Status& st = result.status();
      if (st.IsCancelled() || st.IsDeadlineExceeded()) {
        // SLO outcomes (deadline lapse, user cancel, unretried watchdog
        // trip) are recorded even under fault injection — they are what a
        // deadline experiment measures.
        errors.push_back(
            {i, tickets[i]->name(), "cancelled", st});
        continue;
      }
      // With fault injection on, a ticket that exhausted its retries is an
      // expected outcome to report, not a reason to abort the workload.
      if (faults) {
        ++fault_failures;
        continue;
      }
      errors.push_back({i, tickets[i]->name(), "failed", st});
      continue;
    }
    bool match = false;
    if (options.serve_sql) {
      const size_t k = static_cast<size_t>(kinds[i]);
      ADAMANT_ASSIGN_OR_RETURN(
          sql::SqlResultSet rows,
          sql::ExtractResults(sql_compiled[k], sql_bundles[k], *result));
      match = rows.rows == sql_refs[k].rows;
    } else if (kinds[i] == 0) {
      ADAMANT_ASSIGN_OR_RETURN(
          auto rows, plan::ExtractQ3(ref.q3_bundle, *result, *catalog, {}));
      match = rows == ref.q3;
    } else if (kinds[i] == 1) {
      ADAMANT_ASSIGN_OR_RETURN(auto rows,
                               plan::ExtractQ4(ref.q4_bundle, *result));
      match = rows == ref.q4;
    } else {
      ADAMANT_ASSIGN_OR_RETURN(int64_t revenue,
                               plan::ExtractQ6(ref.q6_bundle, *result));
      match = revenue == ref.q6;
    }
    if (!match) ++mismatches;
  }
  service.Drain();

  ServiceStats stats = service.GetStats();
  std::printf("serve: %zu/%zu results match serial runs\n",
              tickets.size() - mismatches - fault_failures - errors.size(),
              tickets.size());
  if (!errors.empty()) {
    // Machine-readable record of every shed / rejected / cancelled / failed
    // served query, on one greppable line; paired with exit code 3 so
    // harnesses distinguish "the SLO shed work" from "the binary broke".
    std::printf("serve_errors: %s\n", ServeErrorsJson(errors).c_str());
    *exit_code = 3;
  }
  if (faults) {
    std::printf("serve: %zu queries failed after retries; %zu fault unwinds, "
                "%zu retries, %zu quarantines\n",
                fault_failures, stats.fault_unwinds, stats.retries,
                stats.quarantines);
  }
  std::printf("%s\n", stats.ToJson().c_str());
  if (!options.trace_path.empty()) {
    std::ofstream out(options.trace_path);
    out << obs::TraceRecorder::Global().ExportChromeJson();
    if (!out.good()) {
      return Status::IOError("cannot write trace to " + options.trace_path);
    }
    std::printf("trace written to %s (open in chrome://tracing or Perfetto)\n",
                options.trace_path.c_str());
  }
  if (!options.metrics_path.empty()) {
    ADAMANT_RETURN_NOT_OK(DumpMetrics(options.metrics_path, &service));
  }
  if (!options.history_path.empty()) {
    std::ofstream out(options.history_path);
    out << service.HistoryJson();
    if (!out.good()) {
      return Status::IOError("cannot write history to " +
                             options.history_path);
    }
    std::printf("query history written to %s\n", options.history_path.c_str());
  }
  service.Stop();
  if (!options.trace_path.empty()) obs::TraceRecorder::Global().Disable();
  if (mismatches > 0) {
    return Status::ExecutionError(std::to_string(mismatches) +
                                  " served queries diverged from the serial "
                                  "reference");
  }
  return Status::OK();
}

Status Run(const Options& options, int* exit_code) {
  if (options.list_queries) {
    for (const sql::BuiltinQuery& query : sql::BuiltinQueries()) {
      std::printf("%s — %s\n%s\n\n", query.name.c_str(), query.title.c_str(),
                  query.sql.c_str());
    }
    return Status::OK();
  }

  // Data.
  std::shared_ptr<Catalog> catalog;
  if (!options.tbl_dir.empty()) {
    ADAMANT_ASSIGN_OR_RETURN(catalog, tpch::LoadTblDirectory(options.tbl_dir));
    std::printf("loaded .tbl data from %s\n", options.tbl_dir.c_str());
  } else {
    tpch::TpchConfig config;
    config.scale_factor = options.sf;
    ADAMANT_ASSIGN_OR_RETURN(catalog, tpch::Generate(config));
    std::printf("generated TPC-H at SF %g (emulating SF %g)\n", options.sf,
                options.nominal_sf);
  }

  if (options.serve) return Serve(options, catalog, exit_code);

  // Device.
  ADAMANT_ASSIGN_OR_RETURN(sim::DriverKind kind,
                           DriverFromName(options.driver));
  DeviceManager manager(options.setup == 2 ? sim::HardwareSetup::kSetup2
                                           : sim::HardwareSetup::kSetup1);
  manager.SetDataScale(options.nominal_sf / options.sf);
  DeviceId device = 0;
  if (!options.device_classes.empty()) {
    // Heterogeneous device-parallel run: one device per named driver class,
    // in --devices order; the chunk range splits across the mixed set by
    // cost ratio.
    for (size_t i = 0; i < options.device_classes.size(); ++i) {
      ADAMANT_ASSIGN_OR_RETURN(sim::DriverKind class_kind,
                               DriverFromName(options.device_classes[i]));
      ADAMANT_ASSIGN_OR_RETURN(
          DeviceId added,
          manager.AddDriver(class_kind, options.device_classes[i] + "." +
                                            std::to_string(i)));
      ADAMANT_RETURN_NOT_OK(BindStandardKernels(manager.device(added)));
    }
  } else {
    ADAMANT_ASSIGN_OR_RETURN(device, manager.AddDriver(kind));
    ADAMANT_RETURN_NOT_OK(BindStandardKernels(manager.device(device)));
    if (!options.device_set.empty()) {
      // Device-parallel run: plug enough instances of the chosen driver to
      // cover every id in --devices (device 0 is already plugged above).
      const DeviceId max_id = *std::max_element(options.device_set.begin(),
                                                options.device_set.end());
      for (DeviceId id = 1; id <= max_id; ++id) {
        ADAMANT_ASSIGN_OR_RETURN(
            DeviceId added, manager.AddDriver(kind, options.driver + "." +
                                                        std::to_string(id)));
        ADAMANT_RETURN_NOT_OK(BindStandardKernels(manager.device(added)));
      }
    }
  }
  if (!options.sim_trace_path.empty()) {
    manager.device(device)->transfer_timeline().set_tracing(true);
    manager.device(device)->d2h_timeline().set_tracing(true);
    manager.device(device)->compute_timeline().set_tracing(true);
  }

  // Wall-clock tracing routes the queries through a one-off single-worker
  // QueryService: the exported trace then carries the service admission and
  // placement instants in addition to the runtime's spans, which is what a
  // trace of a served query would show.
  std::unique_ptr<QueryService> service;
  if (!options.trace_path.empty()) {
    obs::TraceRecorder::Global().Enable();
    for (size_t i = 0; i < manager.num_devices(); ++i) {
      obs::TraceRecorder::Global().SetTrackName(
          static_cast<int>(i),
          manager.device(static_cast<DeviceId>(i))->name());
    }
    ServiceConfig config;
    config.workers = 1;
    service = std::make_unique<QueryService>(&manager, config);
  }

  // Queries.
  std::vector<std::string> queries;
  if (!options.sql.empty() || !options.sql_file.empty()) {
    queries.clear();  // SQL mode replaces the built-in plan list.
    ADAMANT_RETURN_NOT_OK(
        RunSql(*catalog, &manager, device, options, service.get()));
  } else if (options.query == "all") {
    queries = {"1", "3", "4", "5", "6", "10", "12", "14"};
  } else {
    queries = {options.query};
  }
  for (const std::string& query : queries) {
    if (query == "14" && !catalog->GetTable("part").ok()) {
      std::printf("Q14 skipped (no part table)\n");
      continue;
    }
    if (query == "5" && !catalog->GetTable("region").ok()) {
      std::printf("Q5 skipped (no region table)\n");
      continue;
    }
    ADAMANT_RETURN_NOT_OK(RunQuery(query, *catalog, &manager, device, options,
                                   service.get()));
  }

  if (service != nullptr) {
    service->Drain();
    std::ofstream out(options.trace_path);
    out << obs::TraceRecorder::Global().ExportChromeJson();
    if (!out.good()) {
      return Status::IOError("cannot write trace to " + options.trace_path);
    }
    std::printf("trace written to %s (open in chrome://tracing or Perfetto)\n",
                options.trace_path.c_str());
  }
  if (!options.metrics_path.empty()) {
    ADAMANT_RETURN_NOT_OK(DumpMetrics(options.metrics_path, service.get()));
  }
  if (service != nullptr) {
    service->Stop();
    obs::TraceRecorder::Global().Disable();
  }

  if (!options.sim_trace_path.empty()) {
    SimulatedDevice* dev = manager.device(device);
    std::string json = sim::ToChromeTrace({&dev->transfer_timeline(),
                                           &dev->d2h_timeline(),
                                           &dev->compute_timeline()});
    std::ofstream out(options.sim_trace_path);
    out << json;
    if (!out.good()) {
      return Status::IOError("cannot write trace to " +
                             options.sim_trace_path);
    }
    std::printf("simulated-timeline trace written to %s\n",
                options.sim_trace_path.c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace adamant

int main(int argc, char** argv) {
  auto options = adamant::ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n\nSee the header of tools/run_tpch.cc for "
                         "usage.\n",
                 options.status().ToString().c_str());
    return 2;
  }
  // Exit codes: 0 success, 1 hard failure, 2 bad arguments, 3 served
  // queries were shed/cancelled/failed (see the serve_errors: JSON line).
  int exit_code = 0;
  adamant::Status st = adamant::Run(*options, &exit_code);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return exit_code;
}
