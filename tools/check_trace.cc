// check_trace — lint a Chrome Trace Event JSON file (as written by
// run_tpch --trace or obs::TraceRecorder::ExportChromeJson).
//
//   check_trace trace.json [--require=SUBSTR ...] [--forbid=SUBSTR ...]
//
// Validates the structural invariants every ADAMANT trace must hold (see
// obs/trace_check.h): parseable JSON, a traceEvents array, per-track
// non-decreasing timestamps, balanced B/E pairs, non-negative durations,
// chunk spans nested inside pipeline spans, and non-decreasing counter
// ('C') series. Each --require=SUBSTR additionally asserts that some event
// name contains SUBSTR — CI uses this to prove a trace actually carries
// kernel/transfer/service events rather than being merely well-formed. A
// trailing '*' makes it a prefix match (e.g. --require=tile:* for the
// worker-pool span family). --forbid=SUBSTR is the negation: the check
// fails if any event name matches (e.g. --forbid=fused:* proves a
// --fusion=off run launched no fused composites).
//
// Exit status: 0 valid, 1 invalid / requirement missing / forbidden event
// present, 2 usage error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_check.h"

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  std::vector<std::string> forbidden;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--require=";
    const std::string forbid_prefix = "--forbid=";
    if (arg.rfind(prefix, 0) == 0) {
      required.push_back(arg.substr(prefix.size()));
    } else if (arg.rfind(forbid_prefix, 0) == 0) {
      forbidden.push_back(arg.substr(forbid_prefix.size()));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: check_trace TRACE.json [--require=SUBSTR ...] "
                 "[--forbid=SUBSTR ...]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  const adamant::obs::TraceCheckResult result =
      adamant::obs::ValidateChromeTrace(json);
  for (const std::string& error : result.errors) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
  }

  bool requirements_ok = true;
  for (const std::string& want : required) {
    // A trailing '*' turns the requirement into a prefix match — e.g.
    // --require=tile:* asserts some event of the worker-pool span family
    // exists without naming a specific kernel. Otherwise: substring match.
    const bool is_prefix = !want.empty() && want.back() == '*';
    const std::string needle =
        is_prefix ? want.substr(0, want.size() - 1) : want;
    bool found = false;
    for (const std::string& name : result.event_names) {
      if (is_prefix ? name.rfind(needle, 0) == 0
                    : name.find(needle) != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "error: no event name %s '%s'\n",
                   is_prefix ? "starts with" : "contains", needle.c_str());
      requirements_ok = false;
    }
  }

  // --forbid mirrors --require with the sense inverted: any matching event
  // name (same trailing-'*' prefix semantics) fails the check.
  bool forbidden_ok = true;
  for (const std::string& banned : forbidden) {
    const bool is_prefix = !banned.empty() && banned.back() == '*';
    const std::string needle =
        is_prefix ? banned.substr(0, banned.size() - 1) : banned;
    for (const std::string& name : result.event_names) {
      if (is_prefix ? name.rfind(needle, 0) == 0
                    : name.find(needle) != std::string::npos) {
        std::fprintf(stderr, "error: event name '%s' %s forbidden '%s'\n",
                     name.c_str(), is_prefix ? "starts with" : "contains",
                     needle.c_str());
        forbidden_ok = false;
        break;
      }
    }
  }

  std::printf("%s: %zu events, %zu tracks, %s%s%s\n", path.c_str(),
              result.event_count, result.track_count,
              result.ok ? "valid" : "INVALID",
              requirements_ok ? "" : " (missing required events)",
              forbidden_ok ? "" : " (forbidden events present)");
  return result.ok && requirements_ok && forbidden_ok ? 0 : 1;
}
