#include "runtime/transfer_hub.h"

#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "task/hash_table.h"
#include "task/kernels.h"

namespace adamant {

namespace {

// Process-wide transfer/cache counters (the hub has no service attached to
// own per-instance metrics). Pointers are stable for the process lifetime.
obs::Counter* H2DBytesCounter() {
  static obs::Counter* counter =
      obs::GlobalMetrics().GetCounter("adamant_bytes_h2d_total");
  return counter;
}
obs::Counter* D2HBytesCounter() {
  static obs::Counter* counter =
      obs::GlobalMetrics().GetCounter("adamant_bytes_d2h_total");
  return counter;
}
obs::Counter* CacheHitCounter() {
  static obs::Counter* counter =
      obs::GlobalMetrics().GetCounter("adamant_scan_cache_hits_total");
  return counter;
}
obs::Counter* CacheMissCounter() {
  static obs::Counter* counter =
      obs::GlobalMetrics().GetCounter("adamant_scan_cache_misses_total");
  return counter;
}

std::string BytesArgs(size_t bytes) {
  return "{\"bytes\":" + std::to_string(bytes) + "}";
}

}  // namespace

Result<BufferId> DataTransferHub::PrepareDeviceMemory(SimulatedDevice* dev,
                                                      DeviceId device,
                                                      size_t bytes) {
  Result<BufferId> buf = dev->PrepareMemory(bytes);
  if (!buf.ok() && buf.status().IsOutOfMemory() && scan_cache_ != nullptr &&
      scan_cache_->EvictUnpinned(device, bytes)) {
    buf = dev->PrepareMemory(bytes);
  }
  return TagResult(std::move(buf), device);
}

Result<BufferId> DataTransferHub::LoadData(DeviceId device, const void* src,
                                           size_t bytes) {
  ADAMANT_RETURN_NOT_OK(CheckCancel());
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(device));
  ADAMANT_ASSIGN_OR_RETURN(BufferId id, PrepareDeviceMemory(dev, device, bytes));
  ChargeAllocate(device, bytes);
  obs::TraceSpan span;
  if (obs::TracingEnabled()) {
    span.Start(static_cast<int>(device), "h2d");
    span.set_args(BytesArgs(bytes));
  }
  Status st = dev->PlaceData(id, src, bytes, 0);
  if (!st.ok()) {
    (void)dev->DeleteMemory(id);
    ChargeFree(device, bytes);
    return st.WithDevice(device);
  }
  bytes_h2d_ += bytes;
  H2DBytesCounter()->Add(static_cast<double>(bytes));
  return id;
}

Result<ScanBufferCache::Lease> DataTransferHub::LoadColumnChunk(
    DeviceId device, const ColumnPtr& column, size_t base_row, size_t count,
    size_t elem_size) {
  ADAMANT_RETURN_NOT_OK(CheckCancel());
  const size_t bytes = count * elem_size;
  const uint8_t* src = column->raw_data() + base_row * elem_size;

  if (scan_cache_ != nullptr) {
    ADAMANT_ASSIGN_OR_RETURN(
        ScanBufferCache::Lease lease,
        scan_cache_->Acquire(device, column, base_row, count, bytes));
    if (lease.cached) {
      if (lease.hit) {
        ++scan_cache_hits_;
        bytes_h2d_saved_ += bytes;
        CacheHitCounter()->Increment();
        obs::TraceInstant(static_cast<int>(device), "scan_cache_hit",
                          BytesArgs(bytes));
        return lease;
      }
      ++scan_cache_misses_;
      CacheMissCounter()->Increment();
      Status st = PlaceChunk(device, lease.buffer, src, bytes);
      if (!st.ok()) {
        scan_cache_->Invalidate(lease.token);
        return st;
      }
      return lease;
    }
    // The cache declined (budget pressure); fall through to a transient
    // buffer, still counted as a miss for hit-rate purposes.
    ++scan_cache_misses_;
    CacheMissCounter()->Increment();
  }

  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(device));
  ADAMANT_ASSIGN_OR_RETURN(BufferId buf,
                           PrepareDeviceMemory(dev, device, bytes));
  ChargeAllocate(device, bytes);
  Status st = PlaceChunk(device, buf, src, bytes);
  if (!st.ok()) {
    (void)dev->DeleteMemory(buf);
    ChargeFree(device, bytes);
    return st;
  }
  ScanBufferCache::Lease lease;
  lease.buffer = buf;
  return lease;
}

Status DataTransferHub::PlaceChunk(DeviceId device, BufferId dst,
                                   const void* src, size_t bytes,
                                   size_t dst_offset) {
  ADAMANT_RETURN_NOT_OK(CheckCancel());
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(device));
  obs::TraceSpan span;
  if (obs::TracingEnabled()) {
    span.Start(static_cast<int>(device), "h2d");
    span.set_args(BytesArgs(bytes));
  }
  ADAMANT_RETURN_NOT_OK(
      dev->PlaceData(dst, src, bytes, dst_offset).WithDevice(device));
  bytes_h2d_ += bytes;
  H2DBytesCounter()->Add(static_cast<double>(bytes));
  return Status::OK();
}

Result<BufferId> DataTransferHub::Router(DeviceId src_device, BufferId src,
                                         DeviceId dst_device, size_t bytes) {
  // Same-device routing is a pure no-op: the data is already resident, so
  // neither transfer counter may be charged.
  if (src_device == dst_device) return src;
  ADAMANT_RETURN_NOT_OK(CheckCancel());
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * from,
                           manager_->GetDevice(src_device));
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * to,
                           manager_->GetDevice(dst_device));
  // The host is the only interconnect between plugged devices.
  std::vector<uint8_t> scratch(bytes);
  {
    obs::TraceSpan d2h_span;
    if (obs::TracingEnabled()) {
      d2h_span.Start(static_cast<int>(src_device), "d2h:route");
      d2h_span.set_args(BytesArgs(bytes));
    }
    ADAMANT_RETURN_NOT_OK(from->RetrieveData(src, scratch.data(), bytes, 0)
                              .WithDevice(src_device));
  }
  bytes_d2h_ += bytes;
  D2HBytesCounter()->Add(static_cast<double>(bytes));
  ADAMANT_ASSIGN_OR_RETURN(BufferId dst,
                           PrepareDeviceMemory(to, dst_device, bytes));
  ChargeAllocate(dst_device, bytes);
  obs::TraceSpan h2d_span;
  if (obs::TracingEnabled()) {
    h2d_span.Start(static_cast<int>(dst_device), "h2d:route");
    h2d_span.set_args(BytesArgs(bytes));
  }
  Status st = to->PlaceData(dst, scratch.data(), bytes, 0);
  if (!st.ok()) {
    (void)to->DeleteMemory(dst);
    ChargeFree(dst_device, bytes);
    return st.WithDevice(dst_device);
  }
  bytes_h2d_ += bytes;
  H2DBytesCounter()->Add(static_cast<double>(bytes));
  return dst;
}

Result<BufferId> DataTransferHub::EnsureFormat(DeviceId device, BufferId id,
                                               SdkFormat target,
                                               size_t bytes) {
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(device));
  ADAMANT_ASSIGN_OR_RETURN(SdkFormat current, dev->BufferFormat(id));
  switch (transforms_.PlanRoute(current, target)) {
    case DataContainer::Route::kNone:
      return id;
    case DataContainer::Route::kTransform:
      ADAMANT_RETURN_NOT_OK(dev->TransformMemory(id, target).WithDevice(device));
      return id;
    case DataContainer::Route::kHostRoundTrip: {
      // The naive path of Fig. 4: through the host, transform there, back.
      std::vector<uint8_t> scratch(bytes);
      {
        obs::TraceSpan d2h_span;
        if (obs::TracingEnabled()) {
          d2h_span.Start(static_cast<int>(device), "d2h:transform");
          d2h_span.set_args(BytesArgs(bytes));
        }
        ADAMANT_RETURN_NOT_OK(
            dev->RetrieveData(id, scratch.data(), bytes, 0).WithDevice(device));
      }
      bytes_d2h_ += bytes;
      D2HBytesCounter()->Add(static_cast<double>(bytes));
      ADAMANT_RETURN_NOT_OK(dev->DeleteMemory(id).WithDevice(device));
      ChargeFree(device, bytes);
      ADAMANT_ASSIGN_OR_RETURN(BufferId fresh,
                               PrepareDeviceMemory(dev, device, bytes));
      ChargeAllocate(device, bytes);
      // `fresh` belongs to this call until it is returned: a failed place or
      // transform must give it (and its charge) back, or the buffer — which
      // the caller never learns about — leaks for the rest of the query.
      Status st = dev->PlaceData(fresh, scratch.data(), bytes, 0);
      if (st.ok()) {
        bytes_h2d_ += bytes;
        H2DBytesCounter()->Add(static_cast<double>(bytes));
        st = dev->TransformMemory(fresh, target);
      }
      if (!st.ok()) {
        (void)dev->DeleteMemory(fresh);
        ChargeFree(device, bytes);
        return st.WithDevice(device);
      }
      return fresh;
    }
  }
  return Status::Internal("unreachable transform route");
}

Result<BufferId> DataTransferHub::PrepareOutputBuffer(DeviceId device,
                                                      DataSemantic semantic,
                                                      size_t bytes,
                                                      bool pinned) {
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(device));
  BufferId id;
  if (pinned) {
    ADAMANT_ASSIGN_OR_RETURN(id,
                             TagResult(dev->AddPinnedMemory(bytes), device));
  } else {
    ADAMANT_ASSIGN_OR_RETURN(id, PrepareDeviceMemory(dev, device, bytes));
    ChargeAllocate(device, bytes);
  }
  if (semantic == DataSemantic::kHashTable) {
    KernelLaunch fill = kernels::MakeFill(id, HashTableLayout::kEmptyKey,
                                          bytes / sizeof(int32_t));
    if (!dev->HasKernel("fill")) {
      // The standard library binds "fill"; a custom driver may not have it —
      // fall back to the inline implementation.
      fill.fn = kernels::GetKernelFn("fill");
    }
    Status st = dev->Execute(fill);
    if (!st.ok()) {
      (void)dev->DeleteMemory(id);
      if (!pinned) ChargeFree(device, bytes);
      return st.WithDevice(device);
    }
  }
  return id;
}

Status DataTransferHub::FreeBuffer(DeviceId device, BufferId id) {
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(device));
  ADAMANT_ASSIGN_OR_RETURN(size_t bytes, dev->BufferBytes(id));
  ADAMANT_ASSIGN_OR_RETURN(MemoryKind kind, dev->BufferMemoryKind(id));
  ADAMANT_RETURN_NOT_OK(dev->DeleteMemory(id).WithDevice(device));
  if (kind == MemoryKind::kDevice) ChargeFree(device, bytes);
  return Status::OK();
}

Status DataTransferHub::FreeBufferBestEffort(DeviceId device, BufferId id) {
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(device));
  ADAMANT_ASSIGN_OR_RETURN(size_t bytes, dev->BufferBytes(id));
  ADAMANT_ASSIGN_OR_RETURN(MemoryKind kind, dev->BufferMemoryKind(id));
  Status st = dev->DeleteMemory(id);
  if (!st.ok() && st.IsTransient()) st = dev->DeleteMemory(id);
  if (kind == MemoryKind::kDevice) ChargeFree(device, bytes);
  return st.WithDevice(device);
}

}  // namespace adamant
