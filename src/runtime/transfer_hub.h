#ifndef ADAMANT_RUNTIME_TRANSFER_HUB_H_
#define ADAMANT_RUNTIME_TRANSFER_HUB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "device/device_manager.h"
#include "task/containers.h"
#include "task/primitive.h"

namespace adamant {

/// The runtime layer's data transfer hub (Section III-C): loads input data
/// onto devices, routes data across devices and SDK formats, and prepares
/// semantically-initialized output buffers.
class DataTransferHub {
 public:
  DataTransferHub(DeviceManager* manager, DataContainer transforms)
      : manager_(manager), transforms_(std::move(transforms)) {}

  /// load_data(): allocates a device buffer and places `bytes` of host data.
  Result<BufferId> LoadData(DeviceId device, const void* src, size_t bytes);

  /// Places a chunk of host data into an existing device buffer.
  Status PlaceChunk(DeviceId device, BufferId dst, const void* src,
                    size_t bytes, size_t dst_offset = 0);

  /// router(): makes the content of `src` (on `src_device`) available on
  /// `dst_device`. Cross-device movement goes through the host (retrieve +
  /// place). Returns the buffer id on the destination device.
  Result<BufferId> Router(DeviceId src_device, BufferId src,
                          DeviceId dst_device, size_t bytes);

  /// Converts a buffer's SDK format, using transform_memory() when the
  /// transformation table allows it and the naive host round-trip otherwise
  /// (Fig. 4). Returns the (possibly new) buffer id.
  Result<BufferId> EnsureFormat(DeviceId device, BufferId id, SdkFormat target,
                                size_t bytes);

  /// prepare_output_buffer(): allocates `bytes` for a primitive output and
  /// applies semantic initialization — HASH_TABLE buffers are filled with
  /// the empty-key sentinel via the device's fill kernel.
  Result<BufferId> PrepareOutputBuffer(DeviceId device, DataSemantic semantic,
                                       size_t bytes, bool pinned = false);

  size_t bytes_host_to_device() const { return bytes_h2d_; }
  size_t bytes_device_to_host() const { return bytes_d2h_; }
  const DataContainer& transforms() const { return transforms_; }

 private:
  DeviceManager* manager_;
  DataContainer transforms_;
  size_t bytes_h2d_ = 0;
  size_t bytes_d2h_ = 0;
};

}  // namespace adamant

#endif  // ADAMANT_RUNTIME_TRANSFER_HUB_H_
