#ifndef ADAMANT_RUNTIME_TRANSFER_HUB_H_
#define ADAMANT_RUNTIME_TRANSFER_HUB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "device/device_manager.h"
#include "runtime/runtime_hooks.h"
#include "storage/column.h"
#include "task/containers.h"
#include "task/primitive.h"

namespace adamant {

/// The runtime layer's data transfer hub (Section III-C): loads input data
/// onto devices, routes data across devices and SDK formats, and prepares
/// semantically-initialized output buffers.
///
/// Two optional service-layer hooks plug in here: a MemoryChargeListener is
/// charged/credited for every device-memory allocation the hub makes or
/// frees, and a ScanBufferCache lets LoadColumnChunk reuse device-resident
/// column chunks across queries instead of re-transferring them.
class DataTransferHub {
 public:
  DataTransferHub(DeviceManager* manager, DataContainer transforms)
      : manager_(manager), transforms_(std::move(transforms)) {}

  void set_memory_listener(MemoryChargeListener* listener) {
    memory_listener_ = listener;
  }
  void set_scan_cache(ScanBufferCache* cache) { scan_cache_ = cache; }
  ScanBufferCache* scan_cache() const { return scan_cache_; }
  /// Cooperative cancellation for the owning run (not owned, may be null):
  /// H2D/D2H entry points (LoadData / LoadColumnChunk / PlaceChunk / Router)
  /// bail with the token's status before moving bytes, so a cancelled run
  /// stops transferring at the next chunk instead of streaming to the end.
  /// Teardown paths (FreeBuffer*, EnsureFormat cleanup) never check it —
  /// unwinding must always complete.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }
  CancelToken* cancel_token() const { return cancel_; }

  /// load_data(): allocates a device buffer and places `bytes` of host data.
  Result<BufferId> LoadData(DeviceId device, const void* src, size_t bytes);

  /// load_data() for a scan-column chunk, through the scan cache when one is
  /// attached: `column[base_row, base_row + count)` with `elem_size`-byte
  /// elements ends up device-resident. On a cache hit nothing moves over the
  /// wire; on a miss the cache (or, without one, the hub) allocates and the
  /// chunk is placed. See ScanBufferCache for the lease protocol; when the
  /// returned lease has `cached == false`, the caller owns the buffer.
  Result<ScanBufferCache::Lease> LoadColumnChunk(DeviceId device,
                                                 const ColumnPtr& column,
                                                 size_t base_row, size_t count,
                                                 size_t elem_size);

  /// Places a chunk of host data into an existing device buffer.
  Status PlaceChunk(DeviceId device, BufferId dst, const void* src,
                    size_t bytes, size_t dst_offset = 0);

  /// router(): makes the content of `src` (on `src_device`) available on
  /// `dst_device`. Cross-device movement goes through the host (retrieve +
  /// place); the same-device case is a no-op that charges no transfer
  /// bytes. Returns the buffer id on the destination device.
  Result<BufferId> Router(DeviceId src_device, BufferId src,
                          DeviceId dst_device, size_t bytes);

  /// Converts a buffer's SDK format, using transform_memory() when the
  /// transformation table allows it and the naive host round-trip otherwise
  /// (Fig. 4). Returns the (possibly new) buffer id.
  Result<BufferId> EnsureFormat(DeviceId device, BufferId id, SdkFormat target,
                                size_t bytes);

  /// prepare_output_buffer(): allocates `bytes` for a primitive output and
  /// applies semantic initialization — HASH_TABLE buffers are filled with
  /// the empty-key sentinel via the device's fill kernel.
  Result<BufferId> PrepareOutputBuffer(DeviceId device, DataSemantic semantic,
                                       size_t bytes, bool pinned = false);

  /// delete_memory() with budget credit: frees a buffer previously allocated
  /// through this hub and credits the memory listener.
  Status FreeBuffer(DeviceId device, BufferId id);

  /// FreeBuffer for unwind paths: a failed delete_memory is retried once
  /// (transient faults clear), and the memory listener is credited even
  /// when the delete ultimately fails — the query's accounting must drain
  /// to zero regardless; a buffer the device refuses to release is the
  /// device's leak, reported in the returned status, not a phantom charge
  /// pinned on the next query's budget.
  Status FreeBufferBestEffort(DeviceId device, BufferId id);

  size_t bytes_host_to_device() const { return bytes_h2d_; }
  size_t bytes_device_to_host() const { return bytes_d2h_; }
  /// Transfer bytes avoided by scan-cache hits, and the hit/miss counts.
  size_t bytes_h2d_saved() const { return bytes_h2d_saved_; }
  size_t scan_cache_hits() const { return scan_cache_hits_; }
  size_t scan_cache_misses() const { return scan_cache_misses_; }
  const DataContainer& transforms() const { return transforms_; }

 private:
  /// PrepareMemory with a second chance: when the device arena is full and
  /// a scan cache is attached, unpinned cached chunks are evicted and the
  /// allocation retried once, so cache residency cannot OOM-fail a query.
  Result<BufferId> PrepareDeviceMemory(SimulatedDevice* dev, DeviceId device,
                                       size_t bytes);

  /// Every error leaving the hub is tagged with the device whose interface
  /// call failed (Status::WithDevice), so retry and quarantine upstairs
  /// know whom to blame without parsing messages.
  template <typename T>
  static Result<T> TagResult(Result<T> result, DeviceId device) {
    if (result.ok()) return result;
    return std::move(result).status().WithDevice(device);
  }

  void ChargeAllocate(DeviceId device, size_t bytes) {
    if (memory_listener_ != nullptr) memory_listener_->OnAllocate(device, bytes);
  }
  void ChargeFree(DeviceId device, size_t bytes) {
    if (memory_listener_ != nullptr) memory_listener_->OnFree(device, bytes);
  }

  /// Returns the token's status when tripped, OK otherwise (or when no
  /// token is attached).
  Status CheckCancel() const {
    return cancel_ == nullptr ? Status::OK() : cancel_->Check();
  }

  DeviceManager* manager_;
  DataContainer transforms_;
  MemoryChargeListener* memory_listener_ = nullptr;
  ScanBufferCache* scan_cache_ = nullptr;
  CancelToken* cancel_ = nullptr;
  size_t bytes_h2d_ = 0;
  size_t bytes_d2h_ = 0;
  size_t bytes_h2d_saved_ = 0;
  size_t scan_cache_hits_ = 0;
  size_t scan_cache_misses_ = 0;
};

}  // namespace adamant

#endif  // ADAMANT_RUNTIME_TRANSFER_HUB_H_
