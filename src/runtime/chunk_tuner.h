#ifndef ADAMANT_RUNTIME_CHUNK_TUNER_H_
#define ADAMANT_RUNTIME_CHUNK_TUNER_H_

#include "common/result.h"
#include "device/sim_device.h"
#include "runtime/primitive_graph.h"

namespace adamant {

/// Picks a chunk size (in nominal elements, the unit of
/// ExecutionOptions::chunk_elems) for running `graph` on `device` — the
/// paper's "chunk size found to be optimal for the underlying GPU based on
/// the available space in the device".
///
/// Heuristic: the widest pipeline's per-row scan bytes, double-buffered,
/// plus a matching allowance for intermediates, should fit in a quarter of
/// the device's global memory; the result is rounded down to a power of two
/// and clamped to [2^16, 2^26].
Result<size_t> SuggestChunkElems(const SimulatedDevice& device,
                                 const PrimitiveGraph& graph);

}  // namespace adamant

#endif  // ADAMANT_RUNTIME_CHUNK_TUNER_H_
