#ifndef ADAMANT_RUNTIME_RUNTIME_HOOKS_H_
#define ADAMANT_RUNTIME_RUNTIME_HOOKS_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "device/buffer.h"
#include "device/device_manager.h"
#include "storage/column.h"

namespace adamant {

/// Observer the DataTransferHub charges/credits for every *device-memory*
/// allocation it makes or frees (pinned host buffers are not charged). The
/// service layer plugs a per-device MemoryBudget ledger in here; without a
/// listener the hub behaves exactly as before. Implementations must be
/// thread-safe — one listener serves every concurrently-running query.
class MemoryChargeListener {
 public:
  virtual ~MemoryChargeListener() = default;
  virtual void OnAllocate(DeviceId device, size_t bytes) = 0;
  virtual void OnFree(DeviceId device, size_t bytes) = 0;
};

/// Cross-query cache of device-resident scan-column chunks, consulted by the
/// transfer hub when it loads input data. Entries are keyed by
/// (column, chunk range, device): a hit means the exact bytes are already
/// placed on the device and the H2D transfer can be skipped.
///
/// Protocol: Acquire() pins the entry (it cannot be evicted while a query
/// reads it). When `cached` is true the cache owns the returned buffer and
/// the caller must balance with Release(token) once the chunk is consumed —
/// or Invalidate(token) if filling the buffer failed. When `cached` is false
/// the cache declined (budget pressure, everything pinned) and the caller
/// falls back to a transient per-chunk buffer it owns itself.
/// Implementations must be thread-safe.
class ScanBufferCache {
 public:
  struct Lease {
    BufferId buffer = kInvalidBuffer;
    uint64_t token = 0;   // opaque entry handle for Release/Invalidate
    bool hit = false;     // bytes already resident; transfer can be skipped
    bool cached = false;  // cache owns the buffer; caller must Release
  };

  virtual ~ScanBufferCache() = default;

  /// Looks up (or admits) the chunk `column[base_row, base_row + count)` of
  /// `bytes` bytes on `device`. On a miss with `cached == true` the returned
  /// buffer is freshly allocated and the caller fills it.
  virtual Result<Lease> Acquire(DeviceId device, const ColumnPtr& column,
                                size_t base_row, size_t count,
                                size_t bytes) = 0;

  /// Unpins the entry behind a `cached` lease.
  virtual void Release(uint64_t token) = 0;

  /// Drops the entry behind a `cached` lease (placement failed).
  virtual void Invalidate(uint64_t token) = 0;

  /// Frees unpinned entries on `device` until at least `bytes` of device
  /// memory are released (best effort; LRU-first). The hub calls this when
  /// a device allocation fails, before surfacing OutOfMemory to the query —
  /// cache residency must never turn an admitted query into an OOM failure.
  /// Returns true if anything was evicted (the caller retries once).
  virtual bool EvictUnpinned(DeviceId device, size_t bytes) {
    (void)device;
    (void)bytes;
    return false;
  }
};

}  // namespace adamant

#endif  // ADAMANT_RUNTIME_RUNTIME_HOOKS_H_
