#ifndef ADAMANT_RUNTIME_EXECUTOR_H_
#define ADAMANT_RUNTIME_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "device/device_manager.h"
#include "obs/profile.h"
#include "runtime/primitive_graph.h"
#include "runtime/runtime_hooks.h"
#include "runtime/transfer_hub.h"
#include "sim/sim_time.h"
#include "task/containers.h"

namespace adamant {

/// The execution models of Section IV.
enum class ExecutionModelKind {
  /// Full inputs resident in device memory, one primitive at a time; fails
  /// with OutOfMemory beyond device capacity (Section IV-A).
  kOperatorAtATime,
  /// Algorithm 1: per chunk, run the whole pipeline; the next chunk's
  /// transfer waits for the current chunk's execution (synchronous).
  kChunked,
  /// Algorithm 2: a transfer thread streams chunks ahead of the execution
  /// thread (fetched_until / processed_until synchronization); pageable
  /// memory.
  kPipelined,
  /// Algorithm 3 without overlap: stage (pinned double buffers + staged
  /// allocations) / copy / compute / delete.
  kFourPhaseChunked,
  /// Algorithm 3 with copy-compute overlap.
  kFourPhasePipelined,
  /// Intra-query device parallelism: the chunk range of each pipeline is
  /// partitioned across a *set* of devices (ExecutionOptions::device_set),
  /// each running the chunked model over its partition concurrently;
  /// pipeline-breaker outputs are merged at the task layer (partial-sum /
  /// hash-table union) and streaming terminal parts are ordered by
  /// base_row, so results are bit-identical to a single-device run.
  kDeviceParallel,
};

const char* ExecutionModelName(ExecutionModelKind kind);

/// Whether plan::ApplyFusion rewrites fusable chains into FUSED composite
/// primitives. kAuto fuses a group only when the device's cost model says
/// the single-pass kernel beats the unfused chain.
enum class FusionMode {
  kOff = 0,
  kOn,
  kAuto,
};

const char* FusionModeName(FusionMode mode);

struct QueryStats;

struct ExecutionOptions {
  ExecutionModelKind model = ExecutionModelKind::kChunked;
  /// Chunk size in *nominal* elements (the paper uses 2^25 int values); the
  /// executor divides by the manager's data scale so the chunk *count*
  /// matches the nominal run.
  size_t chunk_elems = size_t{1} << 25;
  /// When false, SDK-format conversions fall back to host round-trips
  /// (ablation of the transform_memory interface).
  bool use_transform = true;
  /// Pipelined model only: number of in-flight chunk staging buffers per
  /// scan column. 0 = allocate per chunk (the transfer thread may run
  /// arbitrarily far ahead, Algorithm 2's unbounded form); N > 0 = a ring
  /// of N buffers, bounding both lookahead and staging memory (N = 1
  /// degenerates to chunked-like serialization, N = 2 is classic double
  /// buffering).
  size_t pipeline_depth = 0;
  /// Device-parallel model only: the devices the chunk range is split
  /// across. Empty = every plugged device. Other models ignore it (their
  /// placement comes from the graph's node annotations).
  std::vector<DeviceId> device_set;
  /// Device-parallel model only: explicit per-device split shares, parallel
  /// to `device_set` (same order; need not sum to 1 — they are normalized).
  /// Empty = the driver derives throughput-proportional shares from each
  /// device's perf model (exec::EstimateDeviceCosts). The planner/service
  /// set this when their ratio search (possibly feedback-calibrated) has a
  /// better answer than the raw model.
  std::vector<double> device_split;
  /// Device-parallel model only: bounded runtime rebalancing. When a
  /// partition exhausts its chunk range ahead of the others on the
  /// *simulated* clock, it steals whole chunks from the slowest partition's
  /// unclaimed tail, keeping every range contiguous. Results stay
  /// bit-identical either way; only the schedule (and the simulated elapsed
  /// time) changes. On by default — a correct static split steals nothing.
  bool split_rebalance = true;
  /// Task-layer kernel variant stamped onto every launch: kAuto defers to
  /// each device's policy (CPU drivers run parallel natively, GPU drivers
  /// scalar); kScalar/kParallel force one variant engine-wide. Kernels
  /// without a parallel implementation always run scalar.
  KernelVariantRequest kernel_variant = KernelVariantRequest::kAuto;
  /// Thread budget per parallel kernel launch; 0 = each device's policy
  /// count (kDefaultKernelThreads for CPU drivers).
  int kernel_threads = 0;
  /// Kernel-fusion mode consumed by plan::ApplyFusion (the executor itself
  /// runs whatever graph it is handed — fusion is a plan-level rewrite
  /// applied before placement/execution by the CLI, the placement search
  /// and tests).
  FusionMode fusion = FusionMode::kAuto;

  // --- Service-layer hooks (see src/service/). All default to off; a bare
  //     QueryExecutor::Run behaves exactly as in the single-query engine. ---

  /// Cross-query device column cache consulted for scan chunks (models
  /// without per-run staging rings, i.e. oaat / chunked / unbounded
  /// pipelined). Must outlive the run.
  ScanBufferCache* scan_cache = nullptr;
  /// Charged/credited for the run's device-memory allocations.
  MemoryChargeListener* memory_listener = nullptr;
  /// When false, the executor does not reset the devices' timelines, call
  /// stats and arena high-water marks at query start, and does not snapshot
  /// them into QueryStats::devices at the end (the accessors are
  /// unsynchronized; reading them while a neighbour runs would race, and
  /// the numbers would be meaningless anyway). Set by the service layer
  /// when several queries share one device (slots_per_device > 1), where a
  /// mid-run reset would clobber a concurrent query's accounting.
  bool reset_device_state = true;
  /// Fill QueryStats::profile with the per-pipeline / per-device phase
  /// breakdown (obs::QueryProfile). Per-pipeline device slices need the
  /// devices' timeline accessors, so they are only collected when
  /// reset_device_state is also true (exclusive device use); wall-clock
  /// pipeline timings and run_ms are collected regardless.
  bool collect_profile = false;
  /// EXPLAIN ANALYZE: collect the per-operator obs::OperatorStats tree
  /// (rows in/out, kernel wall ms by variant, launches, bytes, cache hits,
  /// per-device slices) into QueryStats::profile.operators. Orthogonal to
  /// collect_profile and safe under shared devices — the collection uses
  /// only wall clocks and this run's own counters, never the devices'
  /// unsynchronized accessors. Results stay bit-identical to an
  /// uninstrumented run.
  bool collect_operator_stats = false;
  /// When set, the executor copies the run's QueryStats here on *every*
  /// exit path — including error and cancellation unwinds, where Run()
  /// returns a Status and the QueryExecution (with its stats) is otherwise
  /// lost. Lets the service retain the profile/operator tree of a query
  /// that blew its deadline. Not owned; must outlive the run.
  QueryStats* stats_sink = nullptr;
  /// Cooperative cancellation / deadline token for this run; not owned, may
  /// be null. Checked at pipeline and chunk boundaries in every ModelDriver,
  /// per tile in the WorkerPool claim loop, and around DataTransferHub
  /// H2D/D2H calls. A tripped token unwinds through the same deterministic
  /// teardown as a device fault: MemoryLedger back to zero, cache leases
  /// invalidated, pinned rings freed.
  CancelToken* cancel_token = nullptr;
};

/// Per-device timing/footprint snapshot for one query execution.
struct DeviceRunStats {
  std::string name;
  sim::SimTime h2d_busy_us = 0;
  sim::SimTime d2h_busy_us = 0;
  sim::SimTime compute_busy_us = 0;
  sim::SimTime kernel_body_us = 0;
  /// Per-primitive-kernel body time ("map" -> us, "hash_build" -> us, ...).
  std::map<std::string, sim::SimTime> kernel_body_by_name;
  sim::SimTime transfer_wire_us = 0;
  size_t execute_calls = 0;
  size_t place_calls = 0;
  size_t retrieve_calls = 0;
  size_t prepare_calls = 0;
  size_t device_mem_high_water = 0;  // nominal bytes
  size_t pinned_mem_high_water = 0;  // nominal bytes
  /// Task-layer variant policy the device ran under ("scalar"|"parallel"),
  /// its thread budget, and how many Execute calls dispatched a parallel
  /// variant fn — so benchmark output is self-describing.
  std::string kernel_variant;
  int kernel_threads = 0;
  size_t parallel_launches = 0;
  /// Execute calls that ran a FUSED composite kernel on this device, and
  /// the share of kernel_body_us spent inside them.
  size_t fused_launches = 0;
  sim::SimTime fused_body_us = 0;
};

struct QueryStats {
  sim::SimTime elapsed_us = 0;
  /// Sum of pure kernel-body time across devices — the "total sum of
  /// processing time of the individual primitives" of Fig. 10; elapsed -
  /// kernel_body is the abstraction/transfer overhead.
  sim::SimTime kernel_body_us = 0;
  sim::SimTime transfer_wire_us = 0;
  size_t chunks = 0;
  /// Device-parallel model: chunks executed per device (the split the
  /// driver chose), and host-side wall-clock spent merging partition
  /// breaker outputs. Empty / 0 for single-device models.
  std::map<int, size_t> chunks_by_device;
  double merge_host_ms = 0;
  /// Device-parallel model: the planned split share per device (normalized,
  /// before any runtime rebalancing), chunks each device took from another
  /// partition's tail, and the predicted vs observed per-chunk simulated
  /// cost per device. The observed/predicted pair is what the service feeds
  /// into plan::SplitCalibration so the next compile's ratio search
  /// converges toward measured speed. Empty for single-device models.
  std::map<int, double> split_ratio_by_device;
  std::map<int, size_t> chunks_stolen_by_device;
  std::map<int, double> split_predicted_chunk_us;
  std::map<int, double> split_observed_chunk_us;
  size_t bytes_h2d = 0;
  size_t bytes_d2h = 0;
  /// Scan-cache effect on this run (0 when no cache is attached).
  size_t scan_cache_hits = 0;
  size_t scan_cache_misses = 0;
  size_t bytes_h2d_saved = 0;
  /// One entry per plugged device, indexed by DeviceId. Only the devices
  /// this query's graph actually used carry timing/counter data; the rest
  /// hold just their name (reading another device's live counters would
  /// race with concurrently-running queries). With
  /// ExecutionOptions::reset_device_state == false (shared device leases)
  /// every entry is name-only and `elapsed_us` stays 0.
  std::vector<DeviceRunStats> devices;
  /// Phase breakdown (ExecutionOptions::collect_profile); queue_wait_ms is
  /// stamped by the service layer, everything else by the executor.
  obs::QueryProfile profile;
};

/// Results + statistics of one query run. Terminal pipeline-breaker outputs
/// are retrieved to the host at the end of execution; terminal streaming
/// outputs (e.g. a bare filter) are collected per chunk.
class QueryExecution {
 public:
  struct ChunkPart {
    size_t base_row = 0;   // global row offset of the chunk
    int64_t count = 0;     // valid elements
    std::vector<uint8_t> data;
    std::vector<uint8_t> data2;  // second output (hash_probe right payloads)
  };
  struct NodeOutput {
    PrimitiveKind kind = PrimitiveKind::kMap;
    ElementType elem_type = ElementType::kInt32;
    std::vector<uint8_t> bytes;     // breaker payload (acc / table / array)
    std::vector<ChunkPart> parts;   // streaming terminal outputs
    size_t num_slots = 0;           // hash tables
  };

  QueryStats stats;

  Result<const NodeOutput*> Output(int node_id) const;

  /// AGG_BLOCK result.
  Result<int64_t> AggValue(int node_id) const;

  /// HASH_AGG groups, sorted by key.
  Result<std::vector<std::pair<int32_t, int64_t>>> GroupResults(
      int node_id) const;

  /// HASH_BUILD entries (key, payload), sorted by (key, payload).
  Result<std::vector<std::pair<int32_t, int32_t>>> BuildEntries(
      int node_id) const;

  /// SORT_AGG per-group values.
  Result<std::vector<int64_t>> SortAggValues(int node_id) const;

  std::map<int, NodeOutput>& mutable_outputs() { return outputs_; }

 private:
  std::map<int, NodeOutput> outputs_;
};

// ---------------------------------------------------------------------------
// ExecutionOptions knob validation. One authority for every enum/range
// check so the CLI, the service layer and QueryExecutor::Run reject bad
// values with the same messages instead of scattering per-site checks.
// ---------------------------------------------------------------------------

/// Validates the cross-field knobs of `options` (kernel_variant,
/// kernel_threads, model, fusion, chunk_elems, pipeline_depth). Returns
/// InvalidArgument with a descriptive message on the first violation.
Status ValidateExecutionOptions(const ExecutionOptions& options);

/// String parsers for the CLI-facing knobs. Accepted values:
/// kernel variant "auto"|"scalar"|"parallel"; fusion "off"|"on"|"auto";
/// model "oaat"|"chunked"|"pipelined"|"4phase"|"4phase-pipelined"|
/// "device-parallel".
Result<KernelVariantRequest> ParseKernelVariant(const std::string& value);
Result<FusionMode> ParseFusionMode(const std::string& value);
Result<ExecutionModelKind> ParseExecutionModel(const std::string& value);

/// Conservative estimate, in *nominal* bytes (see SimContext::data_scale),
/// of the peak device-memory footprint of running `graph` under `options`:
/// scan staging, per-chunk intermediate outputs, and pipeline-breaker
/// persists. The service layer's admission control compares this against a
/// device's MemoryBudget before dispatching, so a query that would OOM
/// mid-run queues instead. Under kDeviceParallel the estimate is *per
/// device* of the split: every partition device holds the full breaker
/// persists (its own copy of each table) plus the same per-chunk
/// transients, so the single-device bound applies to each device and the
/// scheduler must reserve it on every leased device.
Result<size_t> EstimateDeviceMemoryBytes(const PrimitiveGraph& graph,
                                         const ExecutionOptions& options,
                                         double data_scale);

/// The ADAMANT query executor: interprets a primitive graph and runs it on
/// the plugged devices under the chosen execution model. All device
/// interaction goes through the ten pluggable interface functions.
///
/// Run() is re-entrant across threads as long as each concurrent run's graph
/// targets its own device(s): all per-run mutable state lives in a private
/// RunContext, and the executor only touches the devices its graph names.
class QueryExecutor {
 public:
  explicit QueryExecutor(DeviceManager* manager) : manager_(manager) {}

  Result<QueryExecution> Run(PrimitiveGraph* graph,
                             const ExecutionOptions& options);

 private:
  DeviceManager* manager_;
};

}  // namespace adamant

#endif  // ADAMANT_RUNTIME_EXECUTOR_H_
