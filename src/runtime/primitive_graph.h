#ifndef ADAMANT_RUNTIME_PRIMITIVE_GRAPH_H_
#define ADAMANT_RUNTIME_PRIMITIVE_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "device/device_manager.h"
#include "storage/column.h"
#include "task/primitive.h"

namespace adamant {

/// Per-node configuration; only the fields relevant to the node's
/// PrimitiveKind are read.
struct NodeConfig {
  // MAP
  MapOp map_op = MapOp::kIdentity;
  ElementType in_type = ElementType::kInt32;
  ElementType out_type = ElementType::kInt32;
  int64_t imm = 0;

  // FILTER_*
  CmpOp cmp_op = CmpOp::kLt;
  int64_t lo = 0;
  int64_t hi = 0;
  /// ANDs the predicate into an incoming BITMAP (input slot 1) instead of
  /// overwriting — single-pass conjunction chains. Engineering extension to
  /// Table I's one-input FILTER_BITMAP.
  bool combine_and = false;

  // AGG_BLOCK / HASH_AGG / SORT_AGG
  AggOp agg_op = AggOp::kSum;

  // HASH_PROBE
  ProbeMode probe_mode = ProbeMode::kAll;

  // HASH_BUILD / HASH_AGG: expected total inserted keys / distinct groups
  // across the whole input (drives table sizing and the contention model).
  double expected_build_rows = 0;
  /// True when expected_build_rows is data-dependent (scales with SF).
  bool build_rows_scale_with_data = true;

  /// Output-size estimate for variable-cardinality outputs (POSITION lists,
  /// materialized values, join pairs), as a fraction of the input capacity.
  /// 1.0 = worst case. Overflowing the estimate is an execution error.
  double selectivity = 1.0;

  // PREFIX_SUM
  bool exclusive = false;

  // SORT_AGG
  size_t num_groups = 0;

  /// FUSED / FUSED_AGG: the recipe (plan::FusionPass output). Input slot i
  /// of the node feeds load steps with operand a == i; a FUSED_AGG node
  /// also mirrors the terminal's op in agg_op so partition merging
  /// (device-parallel model) treats it like AGG_BLOCK.
  std::vector<FusedStep> fused_steps;
};

/// A primitive-graph node: one database primitive annotated with its target
/// device (the annotation the optimizer attaches per the paper's Fig. 2).
struct GraphNode {
  int id = -1;
  PrimitiveKind kind = PrimitiveKind::kMap;
  DeviceId device = 0;
  NodeConfig config;
  std::string label;
};

/// A data edge. Sources are either another node's output slot or a host
/// column (a scan). Edges carry the paper's runtime annotations: unique data
/// ID, the producing device, and the chunking progress pointers
/// processed_until / fetched_until.
struct GraphEdge {
  int id = -1;             // data ID
  int from_node = -1;      // -1 => column scan source
  int from_slot = 0;
  int to_node = -1;
  int to_slot = 0;
  DataSemantic semantic = DataSemantic::kNumeric;
  ElementType elem_type = ElementType::kInt32;
  ColumnPtr column;        // set iff scan source

  // Chunk progress (elements), maintained by the execution models.
  size_t fetched_until = 0;
  size_t processed_until = 0;

  bool is_scan() const { return from_node < 0; }
};

/// A maximal breaker-terminated group of primitives executed together over
/// each chunk (Section III-B2 "Query Pipelines").
struct Pipeline {
  std::vector<int> nodes;       // execution order
  std::vector<int> scan_edges;  // column-source edges feeding the pipeline
  size_t input_rows = 0;        // common length of the scan columns
};

/// A query execution plan over primitives: nodes are primitives, edges are
/// data flow (Section III-C "Primitive Graph").
class PrimitiveGraph {
 public:
  /// Adds a primitive node targeted at `device`; returns its id.
  int AddNode(PrimitiveKind kind, DeviceId device, NodeConfig config = {},
              std::string label = std::string());

  /// Adds a scan edge from a host column into `(to_node, to_slot)`.
  Result<int> ConnectScan(ColumnPtr column, int to_node, int to_slot);

  /// Adds a node-to-node edge; the semantic is derived from the producer's
  /// signature output slot unless `semantic_override` is given (used e.g.
  /// when a gather over a POSITION column yields a POSITION list, or for
  /// GENERIC custom semantics). `elem_type` describes NUMERIC payloads.
  Result<int> Connect(int from_node, int from_slot, int to_node, int to_slot,
                      ElementType elem_type = ElementType::kInt32,
                      std::optional<DataSemantic> semantic_override = {});

  /// Structural validation: known slots, semantic compatibility
  /// (Section III-B3 I/O definitions), acyclicity, complete inputs.
  Status Validate() const;

  /// Topological node order (error on cycles).
  Result<std::vector<int>> TopoOrder() const;

  /// Splits the plan into pipelines at pipeline breakers. Requires a valid
  /// graph. Pipelines are returned in dependency order.
  Result<std::vector<Pipeline>> SplitPipelines() const;

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }
  const GraphNode& node(int id) const { return nodes_.at(static_cast<size_t>(id)); }
  /// Mutable node access for post-lowering placement rewrites (the
  /// device-parallel driver retargets a cloned graph to one device).
  GraphNode& mutable_node(int id) { return nodes_.at(static_cast<size_t>(id)); }
  GraphEdge& edge(int id) { return edges_.at(static_cast<size_t>(id)); }

  /// Edge ids entering `node`, ordered by input slot.
  std::vector<int> InEdges(int node) const;
  /// Edge ids leaving `node`.
  std::vector<int> OutEdges(int node) const;
  /// True if no other node consumes any output of `node`.
  bool IsTerminal(int node) const;

  /// Resets chunk-progress pointers (query start).
  void ResetProgress();

  /// Total bytes of all distinct scan columns (the query's input size,
  /// Fig. 7-left).
  size_t InputBytes() const;

 private:
  Status ValidateNodeInputs(const GraphNode& node,
                            const std::vector<int>& in_edges) const;

  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

}  // namespace adamant

#endif  // ADAMANT_RUNTIME_PRIMITIVE_GRAPH_H_
