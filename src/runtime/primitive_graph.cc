#include "runtime/primitive_graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/logging.h"

namespace adamant {

namespace {

struct SlotSpec {
  DataSemantic semantic;
  bool required;
};

/// Executable input conventions per node kind. These refine Table I with the
/// optional slots the runtime supports (map's second operand, the
/// conjunctive filter's incoming bitmap, build/agg payload columns).
std::vector<SlotSpec> ExpectedInputs(const GraphNode& node) {
  using S = DataSemantic;
  switch (node.kind) {
    case PrimitiveKind::kMap:
      return {{S::kNumeric, true}, {S::kNumeric, false}};
    case PrimitiveKind::kFilterBitmap:
      if (node.config.combine_and) {
        return {{S::kNumeric, true}, {S::kBitmap, true}};
      }
      return {{S::kNumeric, true}};
    case PrimitiveKind::kFilterPosition:
      return {{S::kNumeric, true}};
    case PrimitiveKind::kMaterialize:
      return {{S::kNumeric, true}, {S::kBitmap, true}};
    case PrimitiveKind::kMaterializePosition:
      return {{S::kNumeric, true}, {S::kPosition, true}};
    case PrimitiveKind::kPrefixSum:
      return {{S::kNumeric, true}};
    case PrimitiveKind::kAggBlock:
      return {{S::kNumeric, true}};
    case PrimitiveKind::kHashBuild:
      return {{S::kNumeric, true}, {S::kNumeric, false}};
    case PrimitiveKind::kHashProbe:
      return {{S::kNumeric, true}, {S::kHashTable, true}};
    case PrimitiveKind::kHashAgg:
      // values slot required unless COUNT (Table I).
      return {{S::kNumeric, true},
              {S::kNumeric, node.config.agg_op != AggOp::kCount}};
    case PrimitiveKind::kSortAgg:
      return {{S::kNumeric, true}, {S::kPrefixSum, true}};
    case PrimitiveKind::kFused:
    case PrimitiveKind::kFusedAgg:
      // One required NUMERIC slot per input buffer the recipe loads.
      return std::vector<SlotSpec>(FusedNumInputs(node.config.fused_steps),
                                   {S::kNumeric, true});
  }
  return {};
}

DataSemantic OutputSemantic(const GraphNode& node, int slot) {
  const PrimitiveSignature& sig = GetSignature(node.kind);
  ADAMANT_CHECK(slot >= 0 &&
                static_cast<size_t>(slot) < sig.outputs.size())
      << PrimitiveKindName(node.kind) << " has no output slot " << slot;
  return sig.outputs[static_cast<size_t>(slot)];
}

}  // namespace

int PrimitiveGraph::AddNode(PrimitiveKind kind, DeviceId device,
                            NodeConfig config, std::string label) {
  GraphNode node;
  node.id = static_cast<int>(nodes_.size());
  node.kind = kind;
  node.device = device;
  node.config = config;
  node.label = label.empty() ? std::string(PrimitiveKindName(kind))
                             : std::move(label);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

Result<int> PrimitiveGraph::ConnectScan(ColumnPtr column, int to_node,
                                        int to_slot) {
  if (column == nullptr) return Status::InvalidArgument("null scan column");
  if (to_node < 0 || static_cast<size_t>(to_node) >= nodes_.size()) {
    return Status::NotFound("node " + std::to_string(to_node));
  }
  GraphEdge edge;
  edge.id = static_cast<int>(edges_.size());
  edge.to_node = to_node;
  edge.to_slot = to_slot;
  edge.semantic = DataSemantic::kNumeric;
  edge.elem_type = column->type();
  edge.column = std::move(column);
  edges_.push_back(std::move(edge));
  return edges_.back().id;
}

Result<int> PrimitiveGraph::Connect(
    int from_node, int from_slot, int to_node, int to_slot,
    ElementType elem_type, std::optional<DataSemantic> semantic_override) {
  if (from_node < 0 || static_cast<size_t>(from_node) >= nodes_.size()) {
    return Status::NotFound("producer node " + std::to_string(from_node));
  }
  if (to_node < 0 || static_cast<size_t>(to_node) >= nodes_.size()) {
    return Status::NotFound("consumer node " + std::to_string(to_node));
  }
  const PrimitiveSignature& sig = GetSignature(node(from_node).kind);
  if (from_slot < 0 || static_cast<size_t>(from_slot) >= sig.outputs.size()) {
    return Status::InvalidArgument(
        std::string(PrimitiveKindName(node(from_node).kind)) +
        " has no output slot " + std::to_string(from_slot));
  }
  GraphEdge edge;
  edge.id = static_cast<int>(edges_.size());
  edge.from_node = from_node;
  edge.from_slot = from_slot;
  edge.to_node = to_node;
  edge.to_slot = to_slot;
  edge.semantic = semantic_override.value_or(
      OutputSemantic(node(from_node), from_slot));
  edge.elem_type = elem_type;
  edges_.push_back(std::move(edge));
  return edges_.back().id;
}

std::vector<int> PrimitiveGraph::InEdges(int node) const {
  std::vector<int> result;
  for (const GraphEdge& edge : edges_) {
    if (edge.to_node == node) result.push_back(edge.id);
  }
  std::sort(result.begin(), result.end(), [this](int a, int b) {
    return edges_[static_cast<size_t>(a)].to_slot <
           edges_[static_cast<size_t>(b)].to_slot;
  });
  return result;
}

std::vector<int> PrimitiveGraph::OutEdges(int node) const {
  std::vector<int> result;
  for (const GraphEdge& edge : edges_) {
    if (edge.from_node == node) result.push_back(edge.id);
  }
  return result;
}

bool PrimitiveGraph::IsTerminal(int node) const {
  return OutEdges(node).empty();
}

void PrimitiveGraph::ResetProgress() {
  for (GraphEdge& edge : edges_) {
    edge.fetched_until = 0;
    edge.processed_until = 0;
  }
}

size_t PrimitiveGraph::InputBytes() const {
  std::set<const Column*> seen;
  size_t total = 0;
  for (const GraphEdge& edge : edges_) {
    if (edge.is_scan() && seen.insert(edge.column.get()).second) {
      total += edge.column->byte_size();
    }
  }
  return total;
}

Status PrimitiveGraph::ValidateNodeInputs(
    const GraphNode& node, const std::vector<int>& in_edges) const {
  const std::vector<SlotSpec> expected = ExpectedInputs(node);
  std::vector<const GraphEdge*> by_slot(expected.size(), nullptr);
  for (int edge_id : in_edges) {
    const GraphEdge& edge = edges_[static_cast<size_t>(edge_id)];
    const auto slot = static_cast<size_t>(edge.to_slot);
    if (slot >= expected.size()) {
      return Status::InvalidArgument(
          node.label + ": input slot " + std::to_string(edge.to_slot) +
          " out of range (" + std::to_string(expected.size()) + " slots)");
    }
    if (by_slot[slot] != nullptr) {
      return Status::InvalidArgument(node.label + ": duplicate input slot " +
                                     std::to_string(edge.to_slot));
    }
    const bool numeric_compatible =
        expected[slot].semantic == DataSemantic::kNumeric &&
        (edge.semantic == DataSemantic::kPosition ||
         edge.semantic == DataSemantic::kPrefixSum);
    if (expected[slot].semantic != edge.semantic &&
        edge.semantic != DataSemantic::kGeneric && !numeric_compatible) {
      return Status::InvalidArgument(
          node.label + ": slot " + std::to_string(edge.to_slot) + " expects " +
          DataSemanticName(expected[slot].semantic) + ", got " +
          DataSemanticName(edge.semantic));
    }
    by_slot[slot] = &edge;
  }
  for (size_t slot = 0; slot < expected.size(); ++slot) {
    if (expected[slot].required && by_slot[slot] == nullptr) {
      return Status::InvalidArgument(node.label + ": missing required input " +
                                     std::to_string(slot));
    }
  }
  return Status::OK();
}

Status PrimitiveGraph::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("empty primitive graph");
  for (const GraphNode& node : nodes_) {
    ADAMANT_RETURN_NOT_OK(ValidateNodeInputs(node, InEdges(node.id)));
  }
  return TopoOrder().status();
}

Result<std::vector<int>> PrimitiveGraph::TopoOrder() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (const GraphEdge& edge : edges_) {
    if (!edge.is_scan()) in_degree[static_cast<size_t>(edge.to_node)]++;
  }
  std::vector<int> ready;
  for (const GraphNode& node : nodes_) {
    if (in_degree[static_cast<size_t>(node.id)] == 0) ready.push_back(node.id);
  }
  std::vector<int> order;
  order.reserve(nodes_.size());
  // Pop lowest id first for determinism.
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), std::greater<>());
    int node = ready.back();
    ready.pop_back();
    order.push_back(node);
    for (int edge_id : OutEdges(node)) {
      int consumer = edges_[static_cast<size_t>(edge_id)].to_node;
      if (--in_degree[static_cast<size_t>(consumer)] == 0) {
        ready.push_back(consumer);
      }
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("primitive graph contains a cycle");
  }
  return order;
}

Result<std::vector<Pipeline>> PrimitiveGraph::SplitPipelines() const {
  ADAMANT_ASSIGN_OR_RETURN(std::vector<int> order, TopoOrder());

  // Union-find over provisional pipeline groups: a node joins the group of
  // every non-breaker producer feeding it (scan and breaker-output inputs
  // do not bind — breakers end their pipeline). Two open groups meeting at
  // a node (e.g. two filter branches over the same table) merge into one
  // execution group.
  std::vector<int> group_of(nodes_.size(), -1);
  std::vector<int> parent;  // union-find forest over group ids
  std::function<int(int)> find = [&](int g) {
    while (parent[static_cast<size_t>(g)] != g) {
      g = parent[static_cast<size_t>(g)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(g)])];
    }
    return g;
  };

  for (int node_id : order) {
    int candidate = -1;
    for (int edge_id : InEdges(node_id)) {
      const GraphEdge& edge = edges_[static_cast<size_t>(edge_id)];
      if (edge.is_scan()) continue;
      if (GetSignature(node(edge.from_node).kind).pipeline_breaker) continue;
      int producer_group =
          find(group_of[static_cast<size_t>(edge.from_node)]);
      if (candidate == -1) {
        candidate = producer_group;
      } else if (candidate != producer_group) {
        parent[static_cast<size_t>(producer_group)] = candidate;  // merge
      }
    }
    if (candidate == -1) {
      candidate = static_cast<int>(parent.size());
      parent.push_back(candidate);
    }
    group_of[static_cast<size_t>(node_id)] = candidate;
  }

  // Build pipelines in dependency order (first appearance in topo order).
  std::map<int, int> pipeline_index;  // group root -> pipeline
  std::vector<Pipeline> pipelines;
  std::vector<int> pipeline_of(nodes_.size(), -1);
  for (int node_id : order) {
    const int root = find(group_of[static_cast<size_t>(node_id)]);
    auto [it, inserted] =
        pipeline_index.emplace(root, static_cast<int>(pipelines.size()));
    if (inserted) pipelines.emplace_back();
    pipeline_of[static_cast<size_t>(node_id)] = it->second;
    pipelines[static_cast<size_t>(it->second)].nodes.push_back(node_id);
  }

  for (const GraphEdge& edge : edges_) {
    if (!edge.is_scan()) continue;
    auto& pipeline =
        pipelines[static_cast<size_t>(pipeline_of[static_cast<size_t>(edge.to_node)])];
    pipeline.scan_edges.push_back(edge.id);
  }

  // Pipelines execute in index order; every breaker output must be fully
  // materialized before its consumers' pipeline starts.
  for (const GraphEdge& edge : edges_) {
    if (edge.is_scan()) continue;
    if (!GetSignature(node(edge.from_node).kind).pipeline_breaker) continue;
    if (pipeline_of[static_cast<size_t>(edge.from_node)] >=
        pipeline_of[static_cast<size_t>(edge.to_node)]) {
      return Status::NotSupported(
          node(edge.to_node).label + " consumes breaker output of " +
          node(edge.from_node).label +
          " but their pipelines are not dependency-ordered");
    }
  }

  for (size_t p = 0; p < pipelines.size(); ++p) {
    Pipeline& pipeline = pipelines[p];
    if (pipeline.scan_edges.empty()) {
      return Status::NotSupported("pipeline " + std::to_string(p) +
                                  " has no scan input (not driveable)");
    }
    pipeline.input_rows =
        edges_[static_cast<size_t>(pipeline.scan_edges[0])].column->length();
    for (int edge_id : pipeline.scan_edges) {
      const GraphEdge& edge = edges_[static_cast<size_t>(edge_id)];
      if (edge.column->length() != pipeline.input_rows) {
        return Status::InvalidArgument(
            "pipeline scans columns of different lengths (" +
            edge.column->name() + ")");
      }
    }
  }
  return pipelines;
}

}  // namespace adamant
