#include "runtime/exec/drivers.h"

namespace adamant::exec {

Status ChunkedDriver::RunPipelineRange(RunContext& ctx,
                                       const Pipeline& pipeline,
                                       size_t chunk_begin, size_t chunk_end) {
  const size_t cap = ctx.ChunkCapacity(pipeline);
  const ChunkSource chunks(pipeline.input_rows, cap);
  ADAMANT_RETURN_NOT_OK(ctx.BeginPipeline(pipeline, chunks.total()));
  return ctx.RunChunks(pipeline, chunk_begin,
                       std::min(chunk_end, chunks.total()), cap);
}

Status ChunkedDriver::Execute(RunContext& ctx) {
  ADAMANT_RETURN_NOT_OK(ctx.Prepare());
  for (const Pipeline& pipeline : ctx.pipelines()) {
    ADAMANT_RETURN_NOT_OK(
        RunPipelineRange(ctx, pipeline, 0, static_cast<size_t>(-1)));
  }
  return ctx.CompleteRun();
}

}  // namespace adamant::exec
