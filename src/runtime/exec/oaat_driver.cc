#include "runtime/exec/drivers.h"

namespace adamant::exec {

Status OaatDriver::Execute(RunContext& ctx) {
  ADAMANT_RETURN_NOT_OK(ctx.Prepare());
  for (const Pipeline& pipeline : ctx.pipelines()) {
    // Chunk capacity is the whole pipeline input, so each pipeline is one
    // chunk and every primitive sees its full operand resident on-device.
    const size_t cap = ctx.ChunkCapacity(pipeline);
    const ChunkSource chunks(pipeline.input_rows, cap);
    ADAMANT_RETURN_NOT_OK(ctx.BeginPipeline(pipeline, chunks.total()));
    ADAMANT_RETURN_NOT_OK(ctx.RunChunks(pipeline, 0, chunks.total(), cap));
  }
  return ctx.CompleteRun();
}

}  // namespace adamant::exec
