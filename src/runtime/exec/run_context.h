#ifndef ADAMANT_RUNTIME_EXEC_RUN_CONTEXT_H_
#define ADAMANT_RUNTIME_EXEC_RUN_CONTEXT_H_

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "common/result.h"
#include "device/device_manager.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "runtime/primitive_graph.h"
#include "runtime/transfer_hub.h"

namespace adamant::exec {

/// A value produced on a device, visible to downstream primitives.
struct Binding {
  BufferId data = kInvalidBuffer;
  BufferId count = kInvalidBuffer;  // device-resident int64[1], or invalid
  size_t capacity = 0;              // elements
  ElementType elem_type = ElementType::kInt32;
  DeviceId device = 0;
  size_t num_slots = 0;  // hash tables
};

/// Persisted pipeline-breaker output (hash table / accumulator), resident in
/// device memory across chunks and pipelines.
struct Persist {
  BufferId buffer = kInvalidBuffer;
  size_t bytes = 0;
  DeviceId device = 0;
  size_t num_slots = 0;
  size_t capacity = 0;  // elements, for array-shaped persists
  bool initialized = false;  // accumulator identity written (agg_block)
};

/// The chunk range of one pipeline: global chunk indices map to (base_row,
/// rows) windows over the pipeline's input. An empty input still yields one
/// empty chunk, so breaker kernels run once and write their identity.
/// Drivers iterate a contiguous sub-range of [0, total()); the device-
/// parallel model hands each device a disjoint sub-range.
class ChunkSource {
 public:
  ChunkSource(size_t input_rows, size_t chunk_capacity)
      : rows_(input_rows), cap_(chunk_capacity) {}

  size_t total() const {
    return cap_ == 0 ? 1 : bit_util::CeilDiv(rows_, cap_);
  }
  size_t base(size_t chunk) const { return chunk * cap_; }
  size_t rows(size_t chunk) const {
    const size_t b = base(chunk);
    return b >= rows_ ? 0 : std::min(cap_, rows_ - b);
  }

 private:
  size_t rows_;
  size_t cap_;
};

/// Per-run execution state shared by every ModelDriver: pipelines, edge
/// bindings, breaker persists, staging plans, allocation ledgers, and the
/// data transfer hub. A driver composes the public phase operations
/// (Prepare / BeginPipeline / staging / RunChunks / CompleteRun) into its
/// execution model; QueryExecutor::Run owns cleanup (ReleaseAll) and stats
/// finalization.
class RunContext {
 public:
  RunContext(DeviceManager* manager, PrimitiveGraph* graph,
             const ExecutionOptions& options);

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Validates the graph, splits pipelines, resets chunk progress, and
  /// readies the run's devices (state reset when the options ask for it,
  /// async mode per the model). `device_override` names the devices the run
  /// will touch when they cannot be derived from the graph's node
  /// annotations — the device-parallel driver passes its device set so all
  /// partition devices are reset and snapshotted.
  Status Prepare(const std::vector<DeviceId>& device_override = {});

  // --- Driver-facing phase operations ---

  /// Chunk capacity (elements) for one pipeline under this run's model.
  size_t ChunkCapacity(const Pipeline& pipeline) const;

  /// Per-pipeline setup: model restriction checks (a global breaker cannot
  /// run chunked), breaker persist allocation, staging-state reset.
  Status BeginPipeline(const Pipeline& pipeline, size_t total_chunks);

  /// Stage phase (Algorithm 3): dual pinned input buffers per scan column
  /// plus all intermediate buffers, allocated once for the pipeline.
  Status StageAllocations(const Pipeline& pipeline, size_t cap);

  /// Bounded transfer lookahead (Algorithm 2 with a staging ring): the WAR
  /// hazard on a ring slot keeps the transfer thread at most
  /// `pipeline_depth` chunks ahead of execution.
  Status AllocateRing(const Pipeline& pipeline, size_t cap);

  /// Copy/compute loop over global chunk indices [chunk_begin, chunk_end):
  /// place scan chunks, execute every node, advance progress, release
  /// per-chunk allocations. `chunk_end` is clamped to the pipeline's total.
  Status RunChunks(const Pipeline& pipeline, size_t chunk_begin,
                   size_t chunk_end, size_t cap);

  /// Synchronizes the devices of one pipeline's nodes (the async models'
  /// barrier at each pipeline breaker, Algorithm 2).
  Status SyncPipelineDevices(const Pipeline& pipeline);

  /// Result delivery: terminal breaker outputs back to the host, then a
  /// final synchronize of every used device.
  Status CompleteRun();

  /// The run's cancellation state: OK without a token (or while untripped),
  /// otherwise the token's DeadlineExceeded/Cancelled status. Drivers and
  /// phase operations poll this at pipeline and chunk boundaries; a non-OK
  /// return unwinds through ReleaseAll like any other error.
  Status CheckCancel() const {
    return options_.cancel_token == nullptr ? Status::OK()
                                            : options_.cancel_token->Check();
  }

  // --- Device-parallel support (partition merge at the task layer) ---

  /// The persist backing a breaker node, or nullptr if none was allocated.
  const Persist* FindPersist(int node_id) const;
  /// Reads a breaker's device-resident persist back to the host.
  Result<std::vector<uint8_t>> ReadPersistBytes(int node_id);
  /// Overwrites a breaker's persist with merged host bytes and marks it
  /// initialized, so later pipelines on this context consume merged state.
  Status PlacePersistBytes(int node_id, const void* data, size_t bytes);
  /// Publishes every breaker persist of `pipeline` on its outgoing edges —
  /// what ExecuteNode does implicitly, made explicit for devices that ran
  /// zero chunks of the producing pipeline but consume the merged result.
  Status BindPersistOutputs(const Pipeline& pipeline);

  // --- EXPLAIN ANALYZE (options_.collect_operator_stats) ---

  /// This run's raw per-operator measurements, keyed by node id. Labels,
  /// predictions and breaker output counts are stamped by FinalizeStats,
  /// which exports the finished tree into QueryStats::profile.operators.
  const std::map<int, obs::OperatorStats>& operator_stats() const {
    return op_stats_;
  }
  /// Folds a partition sub-run's operator stats into this context. The
  /// device-parallel driver's sub-graphs are clones with identical node
  /// ids, so entries merge by id (sums; max for per-chunk selectivity).
  void MergeOperatorStats(const std::map<int, obs::OperatorStats>& other);

  // --- Cleanup and accounting (QueryExecutor::Run's business) ---

  /// Delete phase / error cleanup: scan leases, per-chunk and per-run
  /// allocations, async mode off. Safe to call on every path.
  void ReleaseAll();

  /// Folds hub counters and per-device timeline/footprint snapshots into
  /// the execution's QueryStats. Counters are added, not assigned, so a
  /// composite driver may pre-accumulate sub-run statistics.
  void FinalizeStats();

  // --- Accessors ---

  const std::vector<Pipeline>& pipelines() const { return pipelines_; }
  const ExecutionOptions& options() const { return options_; }
  PrimitiveGraph* graph() { return graph_; }
  DeviceManager* manager() { return manager_; }
  const DataTransferHub& hub() const { return hub_; }
  bool async_mode() const { return async_; }
  QueryExecution& exec() { return exec_; }
  Result<QueryExecution> TakeExecution() { return std::move(exec_); }

 private:
  Status PlaceScanChunk(int edge_id, size_t chunk, size_t base_row, size_t n);
  Result<Binding> InputBinding(const GraphEdge& edge, DeviceId device);
  size_t BindingBytes(const GraphEdge& edge, const Binding& binding) const;
  Result<BufferId> OutputBuffer(const GraphNode& node, int slot, size_t bytes,
                                DataSemantic semantic);
  size_t StagedInputCapacity(const GraphNode& node, size_t cap,
                             std::map<std::pair<int, int>, size_t>* caps) const;
  static int PrimaryInputSlot(const GraphNode& node);
  Status ExecuteNode(int node_id, size_t chunk, size_t base_row, size_t n);
  /// FUSED / FUSED_AGG launch path: variable input count, recipe
  /// interpreter kernel, `fused:<recipe>` trace span.
  Status ExecuteFusedNode(const GraphNode& node, SimulatedDevice* dev,
                          size_t base_row, size_t n);
  Status AllocatePersist(const GraphNode& node, size_t input_rows);
  Status RetrieveStreaming(const GraphNode& node, SimulatedDevice* dev,
                           const Binding& out0, const Binding* out1,
                           size_t base_row, size_t n);
  Status RetrieveBreaker(const GraphNode& node);
  void FreeAll(std::vector<std::pair<DeviceId, BufferId>>* allocs);
  void ReleaseScanLeases();

  /// Valid rows behind a binding: its count buffer's value (read once per
  /// chunk via analyze_counts_), or its capacity when no count exists.
  /// Reading a count books simulated D2H time but never touches results.
  Result<int64_t> BindingRows(const Binding& binding);
  /// Accumulates one chunk's execution of `node` into op_stats_.
  /// `counts_rows_out` is false for pipeline breakers, whose output
  /// cardinality is derived from their kind at finalize time.
  void RecordOperatorSample(const GraphNode& node, SimulatedDevice* dev,
                            uint64_t rows_in, uint64_t rows_out,
                            bool counts_rows_out, double wall_ms);
  /// Stamps labels/kinds/pipeline indexes, predicted rows/selectivity/cost
  /// (EstimateSimCostUs's per-node arithmetic) and breaker output counts
  /// onto op_stats_, walking the lowered plan node-for-node.
  void FinalizeOperatorStats();

  /// The track a pipeline's events record on: its first node's device.
  int PipelineTrack(const Pipeline& pipeline) const;
  /// Closes the open pipeline trace span and, when profiling, folds the
  /// pipeline's wall time / chunk count / per-device busy deltas into the
  /// profile. Called from BeginPipeline (previous pipeline), ReleaseAll,
  /// and FinalizeStats; idempotent.
  void ClosePipeline();

  DeviceManager* manager_;
  PrimitiveGraph* graph_;
  ExecutionOptions options_;
  const bool oaat_;
  const bool staged_;
  const bool async_;
  DataTransferHub hub_;

  std::vector<Pipeline> pipelines_;
  std::map<int, Binding> edge_bindings_;
  std::map<int, Persist> persists_;
  std::map<std::pair<int, DeviceId>, BufferId> moved_persists_;
  std::map<int, std::array<BufferId, 2>> staged_scan_bufs_;
  std::map<int, std::vector<BufferId>> ring_bufs_;
  std::map<std::pair<const Column*, DeviceId>, Binding> chunk_scan_cache_;
  std::map<std::pair<int, int>, BufferId> staged_outputs_;
  std::vector<std::pair<DeviceId, BufferId>> per_chunk_allocs_;
  /// Pipeline-scoped transients (ring slots, staged scan buffers, staged
  /// intermediate outputs): freed when the next pipeline begins, so the
  /// per-device peak is persists + the worst single pipeline — the bound
  /// EstimateDeviceMemoryBytes computes.
  std::vector<std::pair<DeviceId, BufferId>> pipeline_allocs_;
  std::vector<std::pair<DeviceId, BufferId>> run_allocs_;
  std::vector<uint64_t> chunk_lease_tokens_;
  std::vector<DeviceId> used_devices_;
  QueryExecution exec_;

  // --- Observability (obs/): pipeline trace span + profile collection ---
  obs::TraceSpan pipeline_span_;
  int cur_pipeline_index_ = -1;
  size_t pipeline_chunk_start_ = 0;
  std::chrono::steady_clock::time_point run_start_;
  std::chrono::steady_clock::time_point pipeline_start_;
  struct BusySnapshot {
    sim::SimTime h2d = 0;
    sim::SimTime d2h = 0;
    sim::SimTime compute = 0;
  };
  std::map<DeviceId, BusySnapshot> pipeline_busy_snapshot_;

  // --- EXPLAIN ANALYZE state (options_.collect_operator_stats) ---
  std::map<int, obs::OperatorStats> op_stats_;
  /// Per-chunk cache of count-buffer reads, keyed per device (BufferIds are
  /// device-local), so each count crosses the bus at most once per chunk.
  std::map<std::pair<DeviceId, BufferId>, int64_t> analyze_counts_;
};

}  // namespace adamant::exec

#endif  // ADAMANT_RUNTIME_EXEC_RUN_CONTEXT_H_
