#ifndef ADAMANT_RUNTIME_EXEC_PLAN_SHAPES_H_
#define ADAMANT_RUNTIME_EXEC_PLAN_SHAPES_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "runtime/executor.h"
#include "runtime/primitive_graph.h"

namespace adamant::exec {

/// Output-size estimate for variable-cardinality outputs, with slack so a
/// mildly-off selectivity does not overflow the buffer.
size_t EstimateElems(size_t input_capacity, double selectivity);

/// Sizes every output of `node` given its primary input element capacity;
/// used by the stage phase, per-chunk allocation, and the admission-control
/// footprint estimator.
struct OutputPlanEntry {
  int slot;
  size_t bytes;
  DataSemantic semantic;
};
std::vector<OutputPlanEntry> PlanNodeOutputs(const GraphNode& node,
                                             size_t in_capacity);

/// Sizing of a pipeline breaker's device-resident persist (shared by
/// RunContext::AllocatePersist and the footprint estimator). Fills bytes/
/// num_slots/capacity; device and buffer are the caller's business.
struct PersistShape {
  size_t bytes = 0;
  size_t num_slots = 0;
  size_t capacity = 0;
};
Result<PersistShape> PlanPersist(const GraphNode& node, size_t input_rows);

/// Chunk capacity (elements) the execution model uses for a pipeline:
/// the whole input for operator-at-a-time, otherwise the configured chunk
/// size scaled down to actual elements.
size_t PipelineChunkCapacity(const Pipeline& pipeline,
                             const ExecutionOptions& options, bool oaat,
                             double scale);

}  // namespace adamant::exec

#endif  // ADAMANT_RUNTIME_EXEC_PLAN_SHAPES_H_
