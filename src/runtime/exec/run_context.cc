#include "runtime/exec/run_context.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "runtime/exec/plan_shapes.h"
#include "task/kernels.h"
#include "task/kernels_fused.h"

namespace adamant::exec {

RunContext::RunContext(DeviceManager* manager, PrimitiveGraph* graph,
                       const ExecutionOptions& options)
    : manager_(manager),
      graph_(graph),
      options_(options),
      oaat_(options.model == ExecutionModelKind::kOperatorAtATime),
      staged_(options.model == ExecutionModelKind::kFourPhaseChunked ||
              options.model == ExecutionModelKind::kFourPhasePipelined),
      async_(options.model == ExecutionModelKind::kPipelined ||
             options.model == ExecutionModelKind::kFourPhasePipelined),
      hub_(manager, options.use_transform
                        ? DataContainer::WithDefaultTransforms()
                        : DataContainer::WithoutTransforms()) {
  hub_.set_scan_cache(options.scan_cache);
  hub_.set_memory_listener(options.memory_listener);
  hub_.set_cancel_token(options.cancel_token);
  run_start_ = std::chrono::steady_clock::now();
}

Status RunContext::Prepare(const std::vector<DeviceId>& device_override) {
  ADAMANT_RETURN_NOT_OK(CheckCancel());
  ADAMANT_RETURN_NOT_OK(graph_->Validate());
  ADAMANT_ASSIGN_OR_RETURN(pipelines_, graph_->SplitPipelines());
  graph_->ResetProgress();

  if (device_override.empty()) {
    for (const GraphNode& node : graph_->nodes()) {
      if (std::find(used_devices_.begin(), used_devices_.end(), node.device) ==
          used_devices_.end()) {
        used_devices_.push_back(node.device);
      }
    }
  } else {
    used_devices_ = device_override;
  }
  std::sort(used_devices_.begin(), used_devices_.end());
  used_devices_.erase(
      std::unique(used_devices_.begin(), used_devices_.end()),
      used_devices_.end());

  for (DeviceId id : used_devices_) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(id));
    if (options_.reset_device_state) {
      dev->ResetTimelines();
      dev->ResetStats();
      dev->device_arena().ResetHighWater();
      dev->pinned_arena().ResetHighWater();
    }
    dev->SetAsyncMode(async_);
  }
  return Status::OK();
}

size_t RunContext::ChunkCapacity(const Pipeline& pipeline) const {
  return PipelineChunkCapacity(pipeline, options_, oaat_,
                               manager_->data_scale());
}

int RunContext::PipelineTrack(const Pipeline& pipeline) const {
  if (pipeline.nodes.empty()) return obs::kHostTrack;
  return static_cast<int>(graph_->node(pipeline.nodes.front()).device);
}

void RunContext::ClosePipeline() {
  pipeline_span_.End();
  if (cur_pipeline_index_ < 0) return;
  const int index = cur_pipeline_index_;
  cur_pipeline_index_ = -1;
  if (!options_.collect_profile) return;
  obs::PipelineProfile profile;
  profile.index = index;
  profile.cancelled =
      options_.cancel_token != nullptr && options_.cancel_token->cancelled();
  profile.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - pipeline_start_)
          .count();
  profile.chunks = exec_.stats.chunks - pipeline_chunk_start_;
  // Per-device busy deltas need the devices' unsynchronized timeline
  // accessors — exclusive-lease runs only (see FinalizeStats).
  if (options_.reset_device_state) {
    for (const auto& [id, snapshot] : pipeline_busy_snapshot_) {
      auto dev = manager_->GetDevice(id);
      if (!dev.ok()) continue;
      obs::PipelineDeviceSlice slice;
      slice.device = static_cast<int>(id);
      slice.transfer_ms =
          static_cast<double>((*dev)->transfer_timeline().busy_time() -
                              snapshot.h2d) /
          1000.0;
      slice.d2h_ms = static_cast<double>((*dev)->d2h_timeline().busy_time() -
                                         snapshot.d2h) /
                     1000.0;
      slice.compute_ms =
          static_cast<double>((*dev)->compute_timeline().busy_time() -
                              snapshot.compute) /
          1000.0;
      profile.devices.push_back(slice);
    }
  }
  pipeline_busy_snapshot_.clear();
  exec_.stats.profile.pipelines.push_back(std::move(profile));
}

Status RunContext::BeginPipeline(const Pipeline& pipeline,
                                 size_t total_chunks) {
  ClosePipeline();
  ADAMANT_RETURN_NOT_OK(CheckCancel());
  for (int node_id : pipeline.nodes) {
    const GraphNode& node = graph_->node(node_id);
    if (node.kind == PrimitiveKind::kPrefixSum && total_chunks > 1) {
      return Status::NotSupported(
          "PREFIX_SUM is a global breaker and cannot run chunked; use "
          "operator-at-a-time");
    }
    if (GetSignature(node.kind).pipeline_breaker) {
      ADAMANT_RETURN_NOT_OK(AllocatePersist(node, pipeline.input_rows));
    }
  }
  // The previous pipeline's devices are synchronized before a new pipeline
  // begins (every driver syncs after its chunk loop), so its scoped
  // transients can go back to the arenas now.
  FreeAll(&pipeline_allocs_);
  staged_scan_bufs_.clear();
  staged_outputs_.clear();
  ring_bufs_.clear();

  // Every driver calls BeginPipeline exactly once per pipeline, so the span
  // opened here covers the pipeline's staging + chunk loop; it closes at the
  // next BeginPipeline / ReleaseAll / FinalizeStats.
  int index = static_cast<int>(exec_.stats.profile.pipelines.size());
  if (!pipelines_.empty() && &pipeline >= pipelines_.data() &&
      &pipeline < pipelines_.data() + pipelines_.size()) {
    index = static_cast<int>(&pipeline - pipelines_.data());
  }
  if (obs::TracingEnabled()) {
    pipeline_span_.Start(PipelineTrack(pipeline),
                         "pipeline:" + std::to_string(index));
    pipeline_span_.set_args("{\"chunks\":" + std::to_string(total_chunks) +
                            "}");
  }
  cur_pipeline_index_ = index;
  if (options_.collect_profile) {
    pipeline_start_ = std::chrono::steady_clock::now();
    pipeline_chunk_start_ = exec_.stats.chunks;
    pipeline_busy_snapshot_.clear();
    if (options_.reset_device_state) {
      for (DeviceId id : used_devices_) {
        auto dev = manager_->GetDevice(id);
        if (!dev.ok()) continue;
        BusySnapshot snapshot;
        snapshot.h2d = (*dev)->transfer_timeline().busy_time();
        snapshot.d2h = (*dev)->d2h_timeline().busy_time();
        snapshot.compute = (*dev)->compute_timeline().busy_time();
        pipeline_busy_snapshot_[id] = snapshot;
      }
    }
  }
  return Status::OK();
}

Status RunContext::RunChunks(const Pipeline& pipeline, size_t chunk_begin,
                             size_t chunk_end, size_t cap) {
  const ChunkSource chunks(pipeline.input_rows, cap);
  chunk_end = std::min(chunk_end, chunks.total());
  const int track = PipelineTrack(pipeline);
  for (size_t c = chunk_begin; c < chunk_end; ++c) {
    ADAMANT_RETURN_NOT_OK(CheckCancel());
    const size_t base_row = chunks.base(c);
    const size_t n = chunks.rows(c);

    obs::TraceSpan chunk_span;
    if (obs::TracingEnabled()) {
      chunk_span.Start(track, "chunk:" + std::to_string(c));
      chunk_span.set_args("{\"rows\":" + std::to_string(n) + "}");
    }
    chunk_scan_cache_.clear();
    analyze_counts_.clear();
    for (int edge_id : pipeline.scan_edges) {
      ADAMANT_RETURN_NOT_OK(PlaceScanChunk(edge_id, c, base_row, n));
    }
    for (int node_id : pipeline.nodes) {
      ADAMANT_RETURN_NOT_OK(ExecuteNode(node_id, c, base_row, n));
    }
    for (int edge_id : pipeline.scan_edges) {
      graph_->edge(edge_id).processed_until += n;
    }
    FreeAll(&per_chunk_allocs_);
    ReleaseScanLeases();
    ++exec_.stats.chunks;
  }
  return Status::OK();
}

Status RunContext::SyncPipelineDevices(const Pipeline& pipeline) {
  for (int node_id : pipeline.nodes) {
    ADAMANT_ASSIGN_OR_RETURN(
        SimulatedDevice * dev,
        manager_->GetDevice(graph_->node(node_id).device));
    dev->Synchronize();
  }
  return Status::OK();
}

Status RunContext::CompleteRun() {
  ADAMANT_RETURN_NOT_OK(CheckCancel());
  // Result delivery: terminal breaker outputs come back to the host.
  for (const GraphNode& node : graph_->nodes()) {
    if (!GetSignature(node.kind).pipeline_breaker) continue;
    if (!graph_->IsTerminal(node.id)) continue;
    ADAMANT_RETURN_NOT_OK(RetrieveBreaker(node));
  }
  for (DeviceId id : used_devices_) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager_->GetDevice(id));
    dev->Synchronize();
  }
  return Status::OK();
}

Status RunContext::PlaceScanChunk(int edge_id, size_t chunk, size_t base_row,
                                  size_t n) {
  GraphEdge& edge = graph_->edge(edge_id);
  const GraphNode& consumer = graph_->node(edge.to_node);
  const size_t elem = ElementSize(edge.elem_type);

  // EXPLAIN ANALYZE: attribute this placement's transfer bytes and cache
  // hits to the consuming operator, measured as hub-counter deltas so every
  // placement path (staged / ring / transient / cached) is covered.
  const bool analyze = options_.collect_operator_stats;
  const size_t h2d_before = analyze ? hub_.bytes_host_to_device() : 0;
  const size_t hits_before = analyze ? hub_.scan_cache_hits() : 0;

  // A column consumed by several primitives of one pipeline is placed on
  // the device once per chunk and the buffer shared.
  auto cached = chunk_scan_cache_.find(
      std::make_pair(edge.column.get(), consumer.device));
  if (cached != chunk_scan_cache_.end()) {
    edge_bindings_[edge_id] = cached->second;
    edge.fetched_until += n;
    return Status::OK();
  }

  BufferId buf;
  if (staged_) {
    buf = staged_scan_bufs_.at(edge_id)[chunk % 2];
    ADAMANT_RETURN_NOT_OK(
        hub_.PlaceChunk(consumer.device, buf,
                        edge.column->raw_data() + base_row * elem, n * elem));
  } else if (auto ring = ring_bufs_.find(edge_id); ring != ring_bufs_.end()) {
    buf = ring->second[chunk % ring->second.size()];
    ADAMANT_RETURN_NOT_OK(
        hub_.PlaceChunk(consumer.device, buf,
                        edge.column->raw_data() + base_row * elem, n * elem));
  } else {
    // Transient per-chunk path: goes through the hub's scan-cache-aware
    // load. A hit reuses a device-resident chunk from an earlier query
    // (no transfer); a cached miss fills a cache-owned buffer we lease
    // until the chunk is consumed; otherwise we own a transient buffer.
    ADAMANT_ASSIGN_OR_RETURN(
        ScanBufferCache::Lease lease,
        hub_.LoadColumnChunk(consumer.device, edge.column, base_row, n,
                             elem));
    buf = lease.buffer;
    if (lease.cached) {
      chunk_lease_tokens_.push_back(lease.token);
    } else {
      per_chunk_allocs_.emplace_back(consumer.device, buf);
    }
  }
  edge.fetched_until += n;

  Binding binding;
  binding.data = buf;
  binding.capacity = n;
  binding.elem_type = edge.elem_type;
  binding.device = consumer.device;
  edge_bindings_[edge_id] = binding;
  chunk_scan_cache_[std::make_pair(edge.column.get(), consumer.device)] =
      binding;
  if (analyze) {
    obs::OperatorStats& op = op_stats_[edge.to_node];
    op.bytes_h2d += hub_.bytes_host_to_device() - h2d_before;
    op.cache_hits += hub_.scan_cache_hits() - hits_before;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Node execution.
// ---------------------------------------------------------------------------

Result<Binding> RunContext::InputBinding(const GraphEdge& edge,
                                         DeviceId device) {
  auto it = edge_bindings_.find(edge.id);
  if (it == edge_bindings_.end()) {
    return Status::Internal("no binding for data edge " +
                            std::to_string(edge.id));
  }
  Binding binding = it->second;
  if (binding.device == device) return binding;

  // Cross-device edge: route through the host. Persisted breaker outputs
  // move once per query; streaming chunks move every chunk.
  const bool from_breaker =
      !edge.is_scan() &&
      GetSignature(graph_->node(edge.from_node).kind).pipeline_breaker;
  const size_t bytes = BindingBytes(edge, binding);
  // EXPLAIN ANALYZE: routed bytes are the consumer's cost.
  const bool analyze = options_.collect_operator_stats;
  const size_t h2d_before = analyze ? hub_.bytes_host_to_device() : 0;
  const size_t d2h_before = analyze ? hub_.bytes_device_to_host() : 0;
  auto attribute_route = [&]() {
    if (!analyze) return;
    obs::OperatorStats& op = op_stats_[edge.to_node];
    op.bytes_h2d += hub_.bytes_host_to_device() - h2d_before;
    op.bytes_d2h += hub_.bytes_device_to_host() - d2h_before;
  };
  if (from_breaker) {
    auto key = std::make_pair(edge.from_node, device);
    auto moved = moved_persists_.find(key);
    if (moved != moved_persists_.end()) {
      binding.data = moved->second;
      binding.device = device;
      return binding;
    }
    ADAMANT_ASSIGN_OR_RETURN(
        BufferId routed, hub_.Router(binding.device, binding.data, device, bytes));
    run_allocs_.emplace_back(device, routed);
    moved_persists_[key] = routed;
    binding.data = routed;
    binding.device = device;
    attribute_route();
    return binding;
  }

  ADAMANT_ASSIGN_OR_RETURN(
      BufferId routed, hub_.Router(binding.device, binding.data, device, bytes));
  per_chunk_allocs_.emplace_back(device, routed);
  if (binding.count != kInvalidBuffer) {
    ADAMANT_ASSIGN_OR_RETURN(BufferId routed_count,
                             hub_.Router(binding.device, binding.count,
                                         device, sizeof(int64_t)));
    per_chunk_allocs_.emplace_back(device, routed_count);
    binding.count = routed_count;
  }
  binding.data = routed;
  binding.device = device;
  attribute_route();
  return binding;
}

size_t RunContext::BindingBytes(const GraphEdge& edge,
                                const Binding& binding) const {
  if (edge.semantic == DataSemantic::kBitmap) {
    return bit_util::BytesForBits(binding.capacity);
  }
  if (edge.semantic == DataSemantic::kHashTable) {
    auto it = persists_.find(edge.from_node);
    return it != persists_.end() ? it->second.bytes : binding.capacity;
  }
  return binding.capacity * ElementSize(binding.elem_type);
}

Result<BufferId> RunContext::OutputBuffer(const GraphNode& node, int slot,
                                          size_t bytes,
                                          DataSemantic semantic) {
  if (staged_) {
    auto it = staged_outputs_.find({node.id, slot});
    if (it == staged_outputs_.end()) {
      return Status::Internal(node.label + ": output slot " +
                              std::to_string(slot) + " was not staged");
    }
    return it->second;
  }
  ADAMANT_ASSIGN_OR_RETURN(
      BufferId buf,
      hub_.PrepareOutputBuffer(node.device, semantic, bytes, false));
  per_chunk_allocs_.emplace_back(node.device, buf);
  return buf;
}

size_t RunContext::StagedInputCapacity(
    const GraphNode& node, size_t cap,
    std::map<std::pair<int, int>, size_t>* caps) const {
  size_t in_cap = cap;
  for (int edge_id : graph_->InEdges(node.id)) {
    const GraphEdge& edge = graph_->edges()[static_cast<size_t>(edge_id)];
    if (edge.to_slot != PrimaryInputSlot(node)) continue;
    if (edge.is_scan()) return cap;
    auto it = caps->find({edge.from_node, edge.from_slot});
    if (it != caps->end()) return it->second;
  }
  return in_cap;
}

int RunContext::PrimaryInputSlot(const GraphNode& node) {
  // The input whose cardinality drives the node's output sizing: slot 1
  // (positions) for gathers, slot 0 otherwise.
  return node.kind == PrimitiveKind::kMaterializePosition ? 1 : 0;
}

Status RunContext::AllocateRing(const Pipeline& pipeline, size_t cap) {
  std::map<std::pair<const Column*, DeviceId>, std::vector<BufferId>>
      ring_by_column;
  for (int edge_id : pipeline.scan_edges) {
    const GraphEdge& edge = graph_->edges()[static_cast<size_t>(edge_id)];
    const GraphNode& consumer = graph_->node(edge.to_node);
    auto key = std::make_pair(edge.column.get(), consumer.device);
    auto it = ring_by_column.find(key);
    if (it == ring_by_column.end()) {
      std::vector<BufferId> slots(options_.pipeline_depth);
      for (BufferId& slot : slots) {
        ADAMANT_ASSIGN_OR_RETURN(
            slot, hub_.PrepareOutputBuffer(
                      consumer.device, DataSemantic::kNumeric,
                      cap * ElementSize(edge.elem_type), /*pinned=*/false));
        pipeline_allocs_.emplace_back(consumer.device, slot);
      }
      it = ring_by_column.emplace(key, std::move(slots)).first;
    }
    ring_bufs_[edge_id] = it->second;
  }
  return Status::OK();
}

Status RunContext::StageAllocations(const Pipeline& pipeline, size_t cap) {
  // Dual pinned buffers per distinct scan column (Fig. 8's two identical
  // spaces); edges sharing a column share the staging pair.
  std::map<std::pair<const Column*, DeviceId>, std::array<BufferId, 2>>
      staged_by_column;
  for (int edge_id : pipeline.scan_edges) {
    const GraphEdge& edge = graph_->edges()[static_cast<size_t>(edge_id)];
    const GraphNode& consumer = graph_->node(edge.to_node);
    auto key = std::make_pair(edge.column.get(), consumer.device);
    auto it = staged_by_column.find(key);
    if (it == staged_by_column.end()) {
      const size_t bytes = cap * ElementSize(edge.elem_type);
      std::array<BufferId, 2> bufs{};
      for (int slot = 0; slot < 2; ++slot) {
        ADAMANT_ASSIGN_OR_RETURN(
            bufs[static_cast<size_t>(slot)],
            hub_.PrepareOutputBuffer(consumer.device, DataSemantic::kNumeric,
                                     bytes, /*pinned=*/true));
        pipeline_allocs_.emplace_back(consumer.device,
                                      bufs[static_cast<size_t>(slot)]);
      }
      it = staged_by_column.emplace(key, bufs).first;
    }
    staged_scan_bufs_[edge_id] = it->second;
  }

  // Intermediate result buffers, staged once and reused across chunks
  // ("utilizing the dedicated device memory to store intermediate
  // results").
  std::map<std::pair<int, int>, size_t> caps;  // (node, slot) -> elements
  for (int node_id : pipeline.nodes) {
    const GraphNode& node = graph_->node(node_id);
    const size_t in_cap = StagedInputCapacity(node, cap, &caps);
    for (const OutputPlanEntry& out : PlanNodeOutputs(node, in_cap)) {
      ADAMANT_ASSIGN_OR_RETURN(
          BufferId buf,
          hub_.PrepareOutputBuffer(node.device, out.semantic, out.bytes,
                                   /*pinned=*/false));
      pipeline_allocs_.emplace_back(node.device, buf);
      staged_outputs_[{node_id, out.slot}] = buf;
    }
    // Record this node's output capacity for downstream sizing.
    const size_t out_cap =
        node.kind == PrimitiveKind::kFilterPosition ||
                node.kind == PrimitiveKind::kMaterialize ||
                node.kind == PrimitiveKind::kHashProbe ||
                node.kind == PrimitiveKind::kFused
            ? EstimateElems(in_cap, node.config.selectivity)
            : in_cap;
    caps[{node_id, 0}] = out_cap;
    caps[{node_id, 1}] = out_cap;
  }
  return Status::OK();
}

Status RunContext::ExecuteNode(int node_id, size_t chunk, size_t base_row,
                               size_t n) {
  const GraphNode& node = graph_->node(node_id);
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                           manager_->GetDevice(node.device));

  // Fused composites take a variable number of inputs and launch the
  // recipe interpreter; they get their own path.
  if (node.kind == PrimitiveKind::kFused ||
      node.kind == PrimitiveKind::kFusedAgg) {
    (void)chunk;
    return ExecuteFusedNode(node, dev, base_row, n);
  }

  // Resolve inputs by slot.
  std::array<Binding, 2> in{};
  std::array<bool, 2> has_in{false, false};
  for (int edge_id : graph_->InEdges(node_id)) {
    const GraphEdge& edge = graph_->edges()[static_cast<size_t>(edge_id)];
    const auto slot = static_cast<size_t>(edge.to_slot);
    ADAMANT_ASSIGN_OR_RETURN(in[slot], InputBinding(edge, node.device));
    has_in[slot] = true;
  }

  KernelLaunch launch;
  Binding out0, out1;
  bool has_out1 = false;

  switch (node.kind) {
    case PrimitiveKind::kMap: {
      const Binding& a = in[0];
      if (a.elem_type != node.config.in_type) {
        return Status::InvalidArgument(node.label + ": input is " +
                                       ElementTypeName(a.elem_type) +
                                       ", config says " +
                                       ElementTypeName(node.config.in_type));
      }
      ADAMANT_ASSIGN_OR_RETURN(
          out0.data, OutputBuffer(node, 0,
                                  a.capacity * ElementSize(node.config.out_type),
                                  DataSemantic::kNumeric));
      out0.count = a.count;
      out0.capacity = a.capacity;
      out0.elem_type = node.config.out_type;
      out0.device = node.device;
      launch = kernels::MakeMap(a.data, has_in[1] ? in[1].data : kInvalidBuffer,
                                out0.data, node.config.map_op,
                                node.config.in_type, node.config.out_type,
                                node.config.imm, a.capacity, a.count);
      break;
    }
    case PrimitiveKind::kFilterBitmap: {
      const Binding& a = in[0];
      BufferId bitmap;
      if (node.config.combine_and) {
        if (!has_in[1]) {
          return Status::InvalidArgument(node.label +
                                         ": combine filter needs a bitmap");
        }
        bitmap = in[1].data;
      } else {
        ADAMANT_ASSIGN_OR_RETURN(
            bitmap, OutputBuffer(node, 0, bit_util::BytesForBits(a.capacity),
                                 DataSemantic::kBitmap));
      }
      out0.data = bitmap;
      out0.count = a.count;
      out0.capacity = a.capacity;
      out0.device = node.device;
      launch = kernels::MakeFilterBitmap(
          a.data, bitmap, node.config.cmp_op, a.elem_type, node.config.lo,
          node.config.hi, node.config.combine_and, a.capacity, a.count);
      break;
    }
    case PrimitiveKind::kFilterPosition: {
      const Binding& a = in[0];
      const size_t est = EstimateElems(a.capacity, node.config.selectivity);
      ADAMANT_ASSIGN_OR_RETURN(
          out0.data, OutputBuffer(node, 0, est * sizeof(int32_t),
                                  DataSemantic::kPosition));
      ADAMANT_ASSIGN_OR_RETURN(
          out0.count,
          OutputBuffer(node, 2, sizeof(int64_t), DataSemantic::kNumeric));
      out0.capacity = est;
      out0.elem_type = ElementType::kInt32;
      out0.device = node.device;
      launch = kernels::MakeFilterPosition(
          a.data, out0.data, out0.count, node.config.cmp_op, a.elem_type,
          node.config.lo, node.config.hi, a.capacity, a.count);
      break;
    }
    case PrimitiveKind::kMaterialize: {
      const Binding& a = in[0];
      const size_t est = EstimateElems(a.capacity, node.config.selectivity);
      ADAMANT_ASSIGN_OR_RETURN(
          out0.data, OutputBuffer(node, 0, est * 8, DataSemantic::kNumeric));
      ADAMANT_ASSIGN_OR_RETURN(
          out0.count,
          OutputBuffer(node, 2, sizeof(int64_t), DataSemantic::kNumeric));
      out0.capacity = est;
      out0.elem_type = a.elem_type;
      out0.device = node.device;
      launch = kernels::MakeMaterialize(a.data, in[1].data, out0.data,
                                        out0.count, a.elem_type, a.capacity,
                                        a.count);
      break;
    }
    case PrimitiveKind::kMaterializePosition: {
      const Binding& values = in[0];
      const Binding& positions = in[1];
      ADAMANT_ASSIGN_OR_RETURN(
          out0.data, OutputBuffer(node, 0, positions.capacity * 8,
                                  DataSemantic::kNumeric));
      out0.count = positions.count;
      out0.capacity = positions.capacity;
      out0.elem_type = values.elem_type;
      out0.device = node.device;
      launch = kernels::MakeMaterializePosition(
          values.data, positions.data, out0.data, values.elem_type,
          positions.capacity, positions.count);
      break;
    }
    case PrimitiveKind::kPrefixSum: {
      const Binding& a = in[0];
      Persist& persist = persists_.at(node_id);
      out0.data = persist.buffer;
      out0.count = a.count;
      out0.capacity = persist.capacity;
      out0.elem_type = ElementType::kInt32;
      out0.device = node.device;
      launch = kernels::MakePrefixSum(a.data, persist.buffer,
                                      node.config.exclusive, a.capacity,
                                      a.count);
      break;
    }
    case PrimitiveKind::kAggBlock: {
      const Binding& a = in[0];
      Persist& persist = persists_.at(node_id);
      const bool init = !persist.initialized;
      persist.initialized = true;
      out0.data = persist.buffer;
      out0.capacity = 1;
      out0.elem_type = ElementType::kInt64;
      out0.device = node.device;
      launch = kernels::MakeAggBlock(a.data, persist.buffer,
                                     node.config.agg_op, a.elem_type, init,
                                     a.capacity, a.count);
      break;
    }
    case PrimitiveKind::kHashBuild: {
      const Binding& keys = in[0];
      Persist& persist = persists_.at(node_id);
      out0.data = persist.buffer;
      out0.num_slots = persist.num_slots;
      out0.device = node.device;
      launch = kernels::MakeHashBuild(
          keys.data, has_in[1] ? in[1].data : kInvalidBuffer, persist.buffer,
          persist.num_slots, static_cast<int64_t>(base_row), keys.capacity,
          keys.count);
      break;
    }
    case PrimitiveKind::kHashProbe: {
      const Binding& keys = in[0];
      const Binding& table = in[1];
      if (table.num_slots == 0) {
        return Status::Internal(node.label + ": probe table has no slots");
      }
      const size_t est = EstimateElems(keys.capacity, node.config.selectivity);
      ADAMANT_ASSIGN_OR_RETURN(
          out0.data, OutputBuffer(node, 0, est * sizeof(int32_t),
                                  DataSemantic::kPosition));
      ADAMANT_ASSIGN_OR_RETURN(
          out1.data, OutputBuffer(node, 1, est * sizeof(int32_t),
                                  DataSemantic::kNumeric));
      ADAMANT_ASSIGN_OR_RETURN(
          out0.count,
          OutputBuffer(node, 2, sizeof(int64_t), DataSemantic::kNumeric));
      out0.capacity = est;
      out0.elem_type = ElementType::kInt32;
      out0.device = node.device;
      out1.count = out0.count;
      out1.capacity = est;
      out1.elem_type = ElementType::kInt32;
      out1.device = node.device;
      has_out1 = true;
      launch = kernels::MakeHashProbe(keys.data, table.data, out0.data,
                                      out1.data, out0.count,
                                      table.num_slots, node.config.probe_mode,
                                      /*pos_base=*/0, keys.capacity,
                                      keys.count);
      break;
    }
    case PrimitiveKind::kHashAgg: {
      const Binding& keys = in[0];
      Persist& persist = persists_.at(node_id);
      out0.data = persist.buffer;
      out0.num_slots = persist.num_slots;
      out0.device = node.device;
      launch = kernels::MakeHashAgg(
          keys.data, has_in[1] ? in[1].data : kInvalidBuffer, persist.buffer,
          persist.num_slots, node.config.agg_op,
          has_in[1] ? in[1].elem_type : ElementType::kInt64, keys.capacity,
          node.config.expected_build_rows,
          node.config.build_rows_scale_with_data, keys.count);
      break;
    }
    case PrimitiveKind::kSortAgg: {
      const Binding& values = in[0];
      const Binding& pxsum = in[1];
      Persist& persist = persists_.at(node_id);
      const bool init = !persist.initialized;
      persist.initialized = true;
      out0.data = persist.buffer;
      out0.capacity = node.config.num_groups;
      out0.elem_type = ElementType::kInt64;
      out0.device = node.device;
      launch = kernels::MakeSortAgg(values.data, pxsum.data, persist.buffer,
                                    node.config.agg_op, values.elem_type,
                                    node.config.num_groups, init,
                                    values.capacity, values.count);
      break;
    }
    case PrimitiveKind::kFused:
    case PrimitiveKind::kFusedAgg:
      return Status::Internal(node.label +
                              ": fused kinds are dispatched above");
  }

  launch.variant = options_.kernel_variant;
  launch.num_threads = options_.kernel_threads;
  launch.cancel = options_.cancel_token;

  // EXPLAIN ANALYZE: the primary input's valid-row count is known before
  // the launch (its producer already ran this chunk).
  int64_t analyze_rows_in = static_cast<int64_t>(n);
  if (options_.collect_operator_stats) {
    const auto pslot = static_cast<size_t>(PrimaryInputSlot(node));
    if (has_in[pslot]) {
      ADAMANT_ASSIGN_OR_RETURN(analyze_rows_in, BindingRows(in[pslot]));
    }
  }

  {
    static obs::Counter* launches =
        obs::GlobalMetrics().GetCounter("adamant_kernel_launches_total");
    launches->Increment();
    obs::TraceSpan kernel_span;
    if (obs::TracingEnabled()) {
      kernel_span.Start(static_cast<int>(node.device), "kernel:" + node.label);
    }
    std::chrono::steady_clock::time_point kernel_start;
    if (options_.collect_operator_stats) {
      kernel_start = std::chrono::steady_clock::now();
    }
    ADAMANT_RETURN_NOT_OK(
        dev->Execute(launch).WithContext(node.label).WithDevice(node.device));
    if (options_.collect_operator_stats) {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - kernel_start)
                                 .count();
      // Kinds that write a fresh count report measured output rows; the
      // rest pass their input cardinality through. Breakers defer to
      // FinalizeOperatorStats.
      const bool fresh_count = node.kind == PrimitiveKind::kFilterPosition ||
                               node.kind == PrimitiveKind::kMaterialize ||
                               node.kind == PrimitiveKind::kHashProbe;
      int64_t rows_out = analyze_rows_in;
      if (fresh_count) {
        ADAMANT_ASSIGN_OR_RETURN(rows_out, BindingRows(out0));
      }
      RecordOperatorSample(node, dev, static_cast<uint64_t>(analyze_rows_in),
                           static_cast<uint64_t>(rows_out),
                           !GetSignature(node.kind).pipeline_breaker, wall_ms);
    }
  }

  // Publish outputs on the outgoing edges.
  for (int edge_id : graph_->OutEdges(node_id)) {
    const GraphEdge& edge = graph_->edges()[static_cast<size_t>(edge_id)];
    edge_bindings_[edge_id] = edge.from_slot == 1 && has_out1 ? out1 : out0;
  }

  // Terminal streaming outputs (non-breaker leaves) come back per chunk.
  if (graph_->IsTerminal(node_id) &&
      !GetSignature(node.kind).pipeline_breaker) {
    ADAMANT_RETURN_NOT_OK(
        RetrieveStreaming(node, dev, out0, has_out1 ? &out1 : nullptr,
                          base_row, n));
  }
  (void)chunk;
  return Status::OK();
}

Status RunContext::ExecuteFusedNode(const GraphNode& node,
                                    SimulatedDevice* dev, size_t base_row,
                                    size_t n) {
  // Resolve inputs by slot — a fused group may read more than two scan
  // columns, so the fixed two-slot array in ExecuteNode does not apply.
  const size_t num_inputs = FusedNumInputs(node.config.fused_steps);
  std::vector<Binding> in(num_inputs);
  std::vector<bool> has_in(num_inputs, false);
  for (int edge_id : graph_->InEdges(node.id)) {
    const GraphEdge& edge = graph_->edges()[static_cast<size_t>(edge_id)];
    const auto slot = static_cast<size_t>(edge.to_slot);
    if (slot >= num_inputs) {
      return Status::Internal(node.label + ": fused input slot " +
                              std::to_string(edge.to_slot) +
                              " has no load step");
    }
    ADAMANT_ASSIGN_OR_RETURN(in[slot], InputBinding(edge, node.device));
    has_in[slot] = true;
  }
  for (size_t i = 0; i < num_inputs; ++i) {
    if (!has_in[i]) {
      return Status::Internal(node.label + ": fused input slot " +
                              std::to_string(i) + " is unbound");
    }
  }
  const Binding& a = in[0];
  std::vector<BufferId> inputs(num_inputs);
  for (size_t i = 0; i < num_inputs; ++i) inputs[i] = in[i].data;

  KernelLaunch launch;
  Binding out0;
  if (node.kind == PrimitiveKind::kFused) {
    const size_t est = EstimateElems(a.capacity, node.config.selectivity);
    ADAMANT_ASSIGN_OR_RETURN(
        out0.data, OutputBuffer(node, 0, est * 8, DataSemantic::kNumeric));
    ADAMANT_ASSIGN_OR_RETURN(
        out0.count,
        OutputBuffer(node, 2, sizeof(int64_t), DataSemantic::kNumeric));
    out0.capacity = est;
    out0.elem_type = node.config.out_type;
    out0.device = node.device;
    launch = kernels::MakeFused(inputs, out0.data, out0.count,
                                node.config.fused_steps, /*init=*/false,
                                a.capacity, a.count);
  } else {  // kFusedAgg: accumulate into the persist, like AGG_BLOCK.
    Persist& persist = persists_.at(node.id);
    const bool init = !persist.initialized;
    persist.initialized = true;
    out0.data = persist.buffer;
    out0.capacity = 1;
    out0.elem_type = ElementType::kInt64;
    out0.device = node.device;
    launch = kernels::MakeFused(inputs, persist.buffer, kInvalidBuffer,
                                node.config.fused_steps, init, a.capacity,
                                a.count);
  }

  launch.variant = options_.kernel_variant;
  launch.num_threads = options_.kernel_threads;
  launch.cancel = options_.cancel_token;

  int64_t analyze_rows_in = static_cast<int64_t>(n);
  if (options_.collect_operator_stats) {
    ADAMANT_ASSIGN_OR_RETURN(analyze_rows_in, BindingRows(a));
  }

  {
    static obs::Counter* launches =
        obs::GlobalMetrics().GetCounter("adamant_kernel_launches_total");
    launches->Increment();
    obs::TraceSpan kernel_span;
    if (obs::TracingEnabled()) {
      // One span per fused group launch, named after the recipe so traces
      // show what the composite replaced (e.g. fused:filter+filter+map+agg).
      kernel_span.Start(static_cast<int>(node.device),
                        "fused:" + FusedRecipeLabel(node.config.fused_steps));
    }
    std::chrono::steady_clock::time_point kernel_start;
    if (options_.collect_operator_stats) {
      kernel_start = std::chrono::steady_clock::now();
    }
    ADAMANT_RETURN_NOT_OK(
        dev->Execute(launch).WithContext(node.label).WithDevice(node.device));
    if (options_.collect_operator_stats) {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - kernel_start)
                                 .count();
      int64_t rows_out = analyze_rows_in;
      if (node.kind == PrimitiveKind::kFused) {
        ADAMANT_ASSIGN_OR_RETURN(rows_out, BindingRows(out0));
      }
      RecordOperatorSample(node, dev, static_cast<uint64_t>(analyze_rows_in),
                           static_cast<uint64_t>(rows_out),
                           node.kind == PrimitiveKind::kFused, wall_ms);
    }
  }

  for (int edge_id : graph_->OutEdges(node.id)) {
    edge_bindings_[edge_id] = out0;
  }

  // A terminal FUSED node streams its compacted output back per chunk;
  // FUSED_AGG is a breaker and is retrieved via its persist.
  if (graph_->IsTerminal(node.id) && node.kind == PrimitiveKind::kFused) {
    ADAMANT_RETURN_NOT_OK(
        RetrieveStreaming(node, dev, out0, nullptr, base_row, n));
  }
  return Status::OK();
}

Status RunContext::AllocatePersist(const GraphNode& node, size_t input_rows) {
  if (persists_.count(node.id) > 0) return Status::OK();
  ADAMANT_ASSIGN_OR_RETURN(PersistShape shape, PlanPersist(node, input_rows));
  Persist persist;
  persist.device = node.device;
  persist.bytes = shape.bytes;
  persist.num_slots = shape.num_slots;
  persist.capacity = shape.capacity;
  const DataSemantic semantic = node.kind == PrimitiveKind::kHashBuild ||
                                        node.kind == PrimitiveKind::kHashAgg
                                    ? DataSemantic::kHashTable
                                    : DataSemantic::kNumeric;
  ADAMANT_ASSIGN_OR_RETURN(
      persist.buffer,
      hub_.PrepareOutputBuffer(node.device, semantic, persist.bytes, false));
  run_allocs_.emplace_back(node.device, persist.buffer);
  persists_[node.id] = persist;
  return Status::OK();
}

Status RunContext::RetrieveStreaming(const GraphNode& node,
                                     SimulatedDevice* dev,
                                     const Binding& out0, const Binding* out1,
                                     size_t base_row, size_t n) {
  QueryExecution::NodeOutput& output = exec_.mutable_outputs()[node.id];
  output.kind = node.kind;
  output.elem_type = out0.elem_type;

  obs::TraceSpan d2h_span;
  if (obs::TracingEnabled()) {
    d2h_span.Start(static_cast<int>(node.device), "d2h:" + node.label);
  }
  QueryExecution::ChunkPart part;
  part.base_row = base_row;
  if (out0.count != kInvalidBuffer) {
    ADAMANT_RETURN_NOT_OK(
        dev->RetrieveData(out0.count, &part.count, sizeof(int64_t), 0)
            .WithDevice(node.device));
  } else {
    part.count = static_cast<int64_t>(n);
  }
  size_t bytes;
  if (node.kind == PrimitiveKind::kFilterBitmap) {
    bytes = bit_util::BytesForBits(n);
  } else {
    bytes = static_cast<size_t>(part.count) * ElementSize(out0.elem_type);
  }
  part.data.resize(bytes);
  if (bytes > 0) {
    ADAMANT_RETURN_NOT_OK(dev->RetrieveData(out0.data, part.data.data(),
                                            bytes, 0)
                              .WithDevice(node.device));
  }
  if (out1 != nullptr) {
    part.data2.resize(static_cast<size_t>(part.count) * sizeof(int32_t));
    if (!part.data2.empty()) {
      ADAMANT_RETURN_NOT_OK(dev->RetrieveData(out1->data, part.data2.data(),
                                              part.data2.size(), 0)
                                .WithDevice(node.device));
    }
  }
  if (options_.collect_operator_stats) {
    obs::OperatorStats& op = op_stats_[node.id];
    if (out0.count != kInvalidBuffer) op.bytes_d2h += sizeof(int64_t);
    op.bytes_d2h += part.data.size() + part.data2.size();
  }
  output.parts.push_back(std::move(part));
  return Status::OK();
}

Status RunContext::RetrieveBreaker(const GraphNode& node) {
  auto it = persists_.find(node.id);
  if (it == persists_.end()) {
    return Status::Internal(node.label + ": breaker has no persist");
  }
  const Persist& persist = it->second;
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                           manager_->GetDevice(persist.device));
  QueryExecution::NodeOutput& output = exec_.mutable_outputs()[node.id];
  output.kind = node.kind;
  output.num_slots = persist.num_slots;
  output.bytes.resize(persist.bytes);
  obs::TraceSpan d2h_span;
  if (obs::TracingEnabled()) {
    d2h_span.Start(static_cast<int>(persist.device), "d2h:" + node.label);
    d2h_span.set_args("{\"bytes\":" + std::to_string(persist.bytes) + "}");
  }
  if (options_.collect_operator_stats) {
    op_stats_[node.id].bytes_d2h += persist.bytes;
  }
  return dev->RetrieveData(persist.buffer, output.bytes.data(),
                           persist.bytes, 0)
      .WithDevice(persist.device);
}

// ---------------------------------------------------------------------------
// Device-parallel partition support.
// ---------------------------------------------------------------------------

const Persist* RunContext::FindPersist(int node_id) const {
  auto it = persists_.find(node_id);
  return it == persists_.end() ? nullptr : &it->second;
}

Result<std::vector<uint8_t>> RunContext::ReadPersistBytes(int node_id) {
  auto it = persists_.find(node_id);
  if (it == persists_.end()) {
    return Status::Internal("node " + std::to_string(node_id) +
                            " has no persist to read");
  }
  const Persist& persist = it->second;
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                           manager_->GetDevice(persist.device));
  std::vector<uint8_t> bytes(persist.bytes);
  ADAMANT_RETURN_NOT_OK(dev->RetrieveData(persist.buffer, bytes.data(),
                                          persist.bytes, 0)
                            .WithDevice(persist.device));
  return bytes;
}

Status RunContext::PlacePersistBytes(int node_id, const void* data,
                                     size_t bytes) {
  auto it = persists_.find(node_id);
  if (it == persists_.end()) {
    return Status::Internal("node " + std::to_string(node_id) +
                            " has no persist to place into");
  }
  Persist& persist = it->second;
  if (bytes != persist.bytes) {
    return Status::Internal("merged persist size mismatch for node " +
                            std::to_string(node_id));
  }
  ADAMANT_RETURN_NOT_OK(
      hub_.PlaceChunk(persist.device, persist.buffer, data, bytes));
  persist.initialized = true;
  return Status::OK();
}

Status RunContext::BindPersistOutputs(const Pipeline& pipeline) {
  for (int node_id : pipeline.nodes) {
    const GraphNode& node = graph_->node(node_id);
    if (!GetSignature(node.kind).pipeline_breaker) continue;
    auto it = persists_.find(node_id);
    if (it == persists_.end()) {
      return Status::Internal(node.label + ": breaker has no persist to bind");
    }
    const Persist& persist = it->second;
    Binding binding;
    binding.data = persist.buffer;
    binding.device = persist.device;
    binding.num_slots = persist.num_slots;
    switch (node.kind) {
      case PrimitiveKind::kAggBlock:
      case PrimitiveKind::kFusedAgg:
        binding.capacity = 1;
        binding.elem_type = ElementType::kInt64;
        break;
      case PrimitiveKind::kSortAgg:
        binding.capacity = persist.capacity;
        binding.elem_type = ElementType::kInt64;
        break;
      case PrimitiveKind::kPrefixSum:
        binding.capacity = persist.capacity;
        binding.elem_type = ElementType::kInt32;
        break;
      default:  // hash tables carry their slot count, not a capacity
        break;
    }
    for (int edge_id : graph_->OutEdges(node_id)) {
      edge_bindings_[edge_id] = binding;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Cleanup and accounting.
// ---------------------------------------------------------------------------

void RunContext::FreeAll(std::vector<std::pair<DeviceId, BufferId>>* allocs) {
  // Unwind contract: every buffer is best-effort deleted and its ledger
  // charge credited even when the device refuses the delete — after Run()
  // returns, the query holds no charges, whatever faults occurred.
  for (auto it = allocs->rbegin(); it != allocs->rend(); ++it) {
    Status st = hub_.FreeBufferBestEffort(it->first, it->second);
    if (!st.ok()) {
      ADAMANT_LOG(Warning) << "delete_memory failed: " << st.ToString();
    }
  }
  allocs->clear();
}

void RunContext::ReleaseScanLeases() {
  ScanBufferCache* cache = hub_.scan_cache();
  if (cache != nullptr) {
    for (uint64_t token : chunk_lease_tokens_) cache->Release(token);
  }
  chunk_lease_tokens_.clear();
}

void RunContext::ReleaseAll() {
  ClosePipeline();
  ReleaseScanLeases();
  FreeAll(&per_chunk_allocs_);
  FreeAll(&pipeline_allocs_);
  FreeAll(&run_allocs_);
  // Re-entrancy: only reset the devices this run touched; another query's
  // devices are none of our business.
  for (DeviceId id : used_devices_) {
    auto dev = manager_->GetDevice(id);
    if (dev.ok()) (*dev)->SetAsyncMode(false);
  }
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE collection (options_.collect_operator_stats).
// ---------------------------------------------------------------------------

Result<int64_t> RunContext::BindingRows(const Binding& binding) {
  if (binding.count == kInvalidBuffer) {
    return static_cast<int64_t>(binding.capacity);
  }
  const auto key = std::make_pair(binding.device, binding.count);
  auto it = analyze_counts_.find(key);
  if (it != analyze_counts_.end()) return it->second;
  ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                           manager_->GetDevice(binding.device));
  int64_t value = 0;
  ADAMANT_RETURN_NOT_OK(
      dev->RetrieveData(binding.count, &value, sizeof(int64_t), 0)
          .WithDevice(binding.device));
  analyze_counts_[key] = value;
  return value;
}

void RunContext::RecordOperatorSample(const GraphNode& node,
                                      SimulatedDevice* dev, uint64_t rows_in,
                                      uint64_t rows_out, bool counts_rows_out,
                                      double wall_ms) {
  obs::OperatorStats& op = op_stats_[node.id];
  op.node_id = node.id;
  op.rows_in += rows_in;
  ++op.launches;
  op.kernel_ms += wall_ms;
  if (counts_rows_out) {
    op.rows_out += rows_out;
    if (rows_in > 0) {
      op.max_chunk_selectivity = std::max(
          op.max_chunk_selectivity,
          static_cast<double>(rows_out) / static_cast<double>(rows_in));
    }
  }
  if (node.kind == PrimitiveKind::kFused ||
      node.kind == PrimitiveKind::kFusedAgg) {
    op.fused_ms += wall_ms;
  } else {
    // Resolve the variant the launch actually ran: forced option wins,
    // kAuto takes the device policy, and kernels without a parallel
    // binding fall back to scalar (mirrors SimulatedDevice::Execute).
    KernelVariant variant =
        options_.kernel_variant == KernelVariantRequest::kScalar
            ? KernelVariant::kScalar
        : options_.kernel_variant == KernelVariantRequest::kParallel
            ? KernelVariant::kParallel
            : dev->default_kernel_variant();
    if (variant == KernelVariant::kParallel &&
        !dev->HasParallelKernel(GetSignature(node.kind).kernel_name)) {
      variant = KernelVariant::kScalar;
    }
    if (variant == KernelVariant::kParallel) {
      op.parallel_ms += wall_ms;
    } else {
      op.scalar_ms += wall_ms;
    }
  }
  const int device = static_cast<int>(node.device);
  obs::OperatorDeviceSlice* slice = nullptr;
  for (obs::OperatorDeviceSlice& existing : op.devices) {
    if (existing.device == device) {
      slice = &existing;
      break;
    }
  }
  if (slice == nullptr) {
    op.devices.emplace_back();
    slice = &op.devices.back();
    slice->device = device;
  }
  slice->rows_in += rows_in;
  if (counts_rows_out) slice->rows_out += rows_out;
  ++slice->launches;
  slice->kernel_ms += wall_ms;
}

void RunContext::MergeOperatorStats(
    const std::map<int, obs::OperatorStats>& other) {
  for (const auto& [node_id, src] : other) {
    obs::OperatorStats& dst = op_stats_[node_id];
    dst.node_id = node_id;
    dst.rows_in += src.rows_in;
    dst.rows_out += src.rows_out;
    dst.max_chunk_selectivity =
        std::max(dst.max_chunk_selectivity, src.max_chunk_selectivity);
    dst.launches += src.launches;
    dst.kernel_ms += src.kernel_ms;
    dst.scalar_ms += src.scalar_ms;
    dst.parallel_ms += src.parallel_ms;
    dst.fused_ms += src.fused_ms;
    dst.bytes_h2d += src.bytes_h2d;
    dst.bytes_d2h += src.bytes_d2h;
    dst.cache_hits += src.cache_hits;
    for (const obs::OperatorDeviceSlice& s : src.devices) {
      obs::OperatorDeviceSlice* slice = nullptr;
      for (obs::OperatorDeviceSlice& existing : dst.devices) {
        if (existing.device == s.device) {
          slice = &existing;
          break;
        }
      }
      if (slice == nullptr) {
        dst.devices.push_back(s);
        continue;
      }
      slice->rows_in += s.rows_in;
      slice->rows_out += s.rows_out;
      slice->launches += s.launches;
      slice->kernel_ms += s.kernel_ms;
    }
  }
}

void RunContext::FinalizeOperatorStats() {
  const double data_scale = manager_->data_scale();
  // Predicted output cardinality per node, filled in pipeline order so a
  // consumer in a later pipeline sees its producer's estimate.
  std::map<int, double> pred_rows_out;
  for (size_t pi = 0; pi < pipelines_.size(); ++pi) {
    const Pipeline& pipeline = pipelines_[pi];
    const size_t cap = ChunkCapacity(pipeline);
    const double rows = static_cast<double>(pipeline.input_rows);
    const double chunks =
        cap == 0 ? 1.0
                 : std::max(1.0, std::ceil(rows / static_cast<double>(cap)));
    const double rows_per_chunk = rows * data_scale / chunks;
    for (int node_id : pipeline.nodes) {
      const GraphNode& node = graph_->node(node_id);
      obs::OperatorStats& op = op_stats_[node_id];
      op.node_id = node_id;
      op.pipeline = static_cast<int>(pi);
      op.label = node.label;
      op.kind = GetSignature(node.kind).kernel_name;
      // Predicted input rows: the primary in-edge producer's estimate, or
      // the pipeline's scan cardinality.
      double pred_in = rows;
      for (int edge_id : graph_->InEdges(node_id)) {
        const GraphEdge& edge = graph_->edges()[static_cast<size_t>(edge_id)];
        if (edge.to_slot != PrimaryInputSlot(node)) continue;
        if (!edge.is_scan()) {
          auto it = pred_rows_out.find(edge.from_node);
          if (it != pred_rows_out.end()) pred_in = it->second;
        }
        break;
      }
      op.predicted_rows_in = pred_in;
      op.selective = node.kind == PrimitiveKind::kFilterPosition ||
                     node.kind == PrimitiveKind::kMaterialize ||
                     node.kind == PrimitiveKind::kHashProbe ||
                     node.kind == PrimitiveKind::kFused;
      double pred_out = pred_in;
      if (op.selective) {
        op.predicted_selectivity = node.config.selectivity;
        pred_out = pred_in * node.config.selectivity;
      } else {
        switch (node.kind) {
          case PrimitiveKind::kAggBlock:
          case PrimitiveKind::kFusedAgg:
            pred_out = std::min(pred_in, 1.0);
            break;
          case PrimitiveKind::kSortAgg:
            pred_out = std::min(
                pred_in, static_cast<double>(node.config.num_groups));
            break;
          default:
            break;
        }
      }
      op.predicted_rows_out = pred_out;
      pred_rows_out[node_id] = pred_out;
      // Per-node share of EstimateSimCostUs's kernel arithmetic: one launch
      // per chunk at full chunk cardinality, cost_param pinned at 1.
      auto dev = manager_->GetDevice(node.device);
      if (dev.ok()) {
        const sim::DevicePerfModel& model = (*dev)->perf_model();
        op.predicted_cost_us =
            chunks * (model.kernel_launch_us +
                      static_cast<double>(model.KernelDuration(
                          GetSignature(node.kind).kernel_name, rows_per_chunk,
                          /*cost_param=*/1.0)));
      }
      // Feedback key: ties the operator back to the logical construct whose
      // selectivity the planner estimated (see plan/feedback.h). MATERIALIZE
      // carries the *cumulative* step selectivity, so its key is the filter
      // chain it compacts — the slot-1 bitmap producer.
      switch (node.kind) {
        case PrimitiveKind::kFilterPosition:
        case PrimitiveKind::kHashProbe:
        case PrimitiveKind::kFused:
          op.feedback_key = "step:" + node.label;
          break;
        case PrimitiveKind::kMaterialize:
          for (int edge_id : graph_->InEdges(node_id)) {
            const GraphEdge& edge =
                graph_->edges()[static_cast<size_t>(edge_id)];
            if (edge.to_slot != 1 || edge.is_scan()) continue;
            op.feedback_key = "step:" + graph_->node(edge.from_node).label;
            break;
          }
          break;
        default:
          break;
      }
      // Breakers write no per-chunk output count; derive their measured
      // output cardinality from the kind.
      if (GetSignature(node.kind).pipeline_breaker) {
        switch (node.kind) {
          case PrimitiveKind::kAggBlock:
          case PrimitiveKind::kFusedAgg:
            op.rows_out = std::min<uint64_t>(op.rows_in, 1);
            break;
          case PrimitiveKind::kSortAgg:
            op.rows_out = std::min<uint64_t>(
                op.rows_in, static_cast<uint64_t>(node.config.num_groups));
            break;
          default:  // hash_build / hash_agg / prefix_sum: bounded by input
            op.rows_out = op.rows_in;
            break;
        }
        for (obs::OperatorDeviceSlice& slice : op.devices) {
          slice.rows_out = std::min<uint64_t>(slice.rows_in, op.rows_out);
        }
      }
    }
  }
}

void RunContext::FinalizeStats() {
  ClosePipeline();
  QueryStats& stats = exec_.stats;
  if (options_.collect_profile) {
    stats.profile.collected = true;
    stats.profile.run_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - run_start_)
                               .count();
    stats.profile.merge_host_ms = stats.merge_host_ms;
    if (options_.cancel_token != nullptr &&
        options_.cancel_token->cancelled()) {
      stats.profile.cancelled_cause =
          CancelCauseToString(options_.cancel_token->cause());
    }
  }
  // EXPLAIN ANALYZE export happens before the shared-device early return
  // below: operator stats use only wall clocks and this run's own counters,
  // so they are safe (and meaningful) under shared device leases.
  if (options_.collect_operator_stats) {
    FinalizeOperatorStats();
    stats.profile.operators.clear();
    stats.profile.operators.reserve(op_stats_.size());
    for (const auto& [node_id, op] : op_stats_) {
      (void)node_id;
      stats.profile.operators.push_back(op);
    }
  }
  stats.bytes_h2d += hub_.bytes_host_to_device();
  stats.bytes_d2h += hub_.bytes_device_to_host();
  stats.scan_cache_hits += hub_.scan_cache_hits();
  stats.scan_cache_misses += hub_.scan_cache_misses();
  stats.bytes_h2d_saved += hub_.bytes_h2d_saved();
  // One slot per plugged device so DeviceId indexes stay valid, but only
  // the devices this query used are read — touching another device's live
  // counters would race with concurrently-running queries.
  stats.devices.resize(manager_->num_devices());
  for (size_t i = 0; i < manager_->num_devices(); ++i) {
    stats.devices[i].name =
        manager_->device(static_cast<DeviceId>(i))->name();
  }
  // The timeline/counter/high-water accessors are unsynchronized and only
  // meaningful under an exclusive device lease; when the service shares a
  // device across queries (reset_device_state == false) a neighbour
  // mutates them under the device's call mutex mid-read, so skip the
  // snapshot entirely — entries keep just their names.
  if (!options_.reset_device_state) return;
  for (DeviceId id : used_devices_) {
    // Guard like ReleaseAll: a failed run may list a device that was never
    // valid (unknown graph annotation), and FinalizeStats runs on every
    // exit path.
    auto dev_or = manager_->GetDevice(id);
    if (!dev_or.ok() || static_cast<size_t>(id) >= stats.devices.size()) {
      continue;
    }
    SimulatedDevice* dev = *dev_or;
    DeviceRunStats& ds = stats.devices[static_cast<size_t>(id)];
    ds.h2d_busy_us = dev->transfer_timeline().busy_time();
    ds.d2h_busy_us = dev->d2h_timeline().busy_time();
    ds.compute_busy_us = dev->compute_timeline().busy_time();
    ds.kernel_body_us = dev->kernel_body_time();
    ds.kernel_body_by_name = dev->kernel_body_by_name();
    ds.transfer_wire_us = dev->transfer_wire_time();
    ds.execute_calls = dev->stats().execute;
    ds.place_calls = dev->stats().place_data;
    ds.retrieve_calls = dev->stats().retrieve_data;
    ds.prepare_calls = dev->stats().prepare_memory;
    ds.device_mem_high_water = dev->device_arena().high_water();
    ds.pinned_mem_high_water = dev->pinned_arena().high_water();
    // Report the variant the run actually resolved: a forced option wins,
    // kAuto means the device's native policy.
    const KernelVariant effective =
        options_.kernel_variant == KernelVariantRequest::kScalar
            ? KernelVariant::kScalar
        : options_.kernel_variant == KernelVariantRequest::kParallel
            ? KernelVariant::kParallel
            : dev->default_kernel_variant();
    ds.kernel_variant = KernelVariantName(effective);
    ds.kernel_threads = effective == KernelVariant::kParallel
                            ? (options_.kernel_threads > 0
                                   ? options_.kernel_threads
                                   : dev->kernel_threads())
                            : 1;
    ds.parallel_launches = dev->parallel_launches();
    ds.fused_launches = dev->fused_launches();
    ds.fused_body_us = dev->fused_body_time();
    stats.kernel_body_us += ds.kernel_body_us;
    stats.transfer_wire_us += ds.transfer_wire_us;
    stats.elapsed_us = std::max(stats.elapsed_us, dev->MaxCompletion());
    if (options_.collect_profile) {
      obs::DeviceProfile dp;
      dp.name = ds.name;
      dp.transfer_ms = static_cast<double>(ds.h2d_busy_us) / 1000.0;
      dp.d2h_ms = static_cast<double>(ds.d2h_busy_us) / 1000.0;
      dp.compute_ms = static_cast<double>(ds.compute_busy_us) / 1000.0;
      dp.kernel_body_ms = static_cast<double>(ds.kernel_body_us) / 1000.0;
      dp.kernel_launches = ds.execute_calls;
      dp.fused_launches = ds.fused_launches;
      dp.fused_body_ms = static_cast<double>(ds.fused_body_us) / 1000.0;
      stats.profile.devices.push_back(std::move(dp));
    }
  }
}

}  // namespace adamant::exec
