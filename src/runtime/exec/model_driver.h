#ifndef ADAMANT_RUNTIME_EXEC_MODEL_DRIVER_H_
#define ADAMANT_RUNTIME_EXEC_MODEL_DRIVER_H_

#include <memory>

#include "common/result.h"
#include "runtime/exec/run_context.h"

namespace adamant::exec {

/// One execution model of Section IV (or an extension), expressed as a
/// strategy over the RunContext phase operations. A driver owns the
/// *control flow* of a query run — how pipelines are staged, how the chunk
/// range is iterated, where synchronization points sit — while the
/// RunContext owns the *mechanics* (placement, kernel launches, bindings,
/// persist allocation, result retrieval).
///
/// Contract: Execute() is called exactly once per RunContext. It must call
/// ctx.Prepare() before any other phase operation and leave all device
/// allocations registered with the context; QueryExecutor::Run calls
/// ctx.ReleaseAll() on every path (success or error) and finalizes stats.
/// Drivers are stateless across runs — a new instance per query is cheap
/// and the factory below returns one.
class ModelDriver {
 public:
  virtual ~ModelDriver() = default;

  /// Stable model name (matches ExecutionModelName for built-in models).
  virtual const char* name() const = 0;

  /// Runs the whole query: every pipeline, chunk iteration, result
  /// delivery. Returns the first error; cleanup is the caller's job.
  virtual Status Execute(RunContext& ctx) = 0;
};

/// Driver factory: the single registry mapping ExecutionModelKind to its
/// driver. Adding an execution model = writing a driver and one case here.
Result<std::unique_ptr<ModelDriver>> MakeModelDriver(ExecutionModelKind kind);

}  // namespace adamant::exec

#endif  // ADAMANT_RUNTIME_EXEC_MODEL_DRIVER_H_
