#ifndef ADAMANT_RUNTIME_EXEC_DRIVERS_H_
#define ADAMANT_RUNTIME_EXEC_DRIVERS_H_

#include <cstddef>

#include "runtime/exec/model_driver.h"

namespace adamant::exec {

/// Section IV-A: full inputs resident in device memory, one primitive at a
/// time (chunk capacity = the whole input; one chunk per pipeline).
class OaatDriver : public ModelDriver {
 public:
  const char* name() const override { return "operator-at-a-time"; }
  Status Execute(RunContext& ctx) override;
};

/// Algorithm 1: per chunk, run the whole pipeline synchronously.
class ChunkedDriver : public ModelDriver {
 public:
  const char* name() const override { return "chunked"; }
  Status Execute(RunContext& ctx) override;

  /// One pipeline over the global chunk sub-range [begin, end) (clamped to
  /// the pipeline's total). Exposed so the device-parallel driver can hand
  /// each partition device a disjoint range of the same pipeline.
  static Status RunPipelineRange(RunContext& ctx, const Pipeline& pipeline,
                                 size_t chunk_begin, size_t chunk_end);
};

/// Algorithm 2: a transfer thread streams chunks ahead of execution; with
/// pipeline_depth > 0 a staging ring bounds the lookahead.
class PipelinedDriver : public ModelDriver {
 public:
  const char* name() const override { return "pipelined"; }
  Status Execute(RunContext& ctx) override;
};

/// Algorithm 3 (both variants): stage pinned double buffers and all
/// intermediate outputs up front, then copy/compute (overlapped when the
/// options name the pipelined variant), then delete.
class FourPhaseDriver : public ModelDriver {
 public:
  explicit FourPhaseDriver(bool overlapped) : overlapped_(overlapped) {}
  const char* name() const override {
    return overlapped_ ? "4-phase-pipelined" : "4-phase";
  }
  Status Execute(RunContext& ctx) override;

 private:
  bool overlapped_;
};

/// Intra-query device parallelism: partitions each pipeline's chunk range
/// across ExecutionOptions::device_set, runs the chunked model per device
/// concurrently (one cloned graph + RunContext per device), and merges
/// pipeline-breaker outputs at the task layer between pipelines.
class DeviceParallelDriver : public ModelDriver {
 public:
  const char* name() const override { return "device-parallel"; }
  Status Execute(RunContext& ctx) override;
};

}  // namespace adamant::exec

#endif  // ADAMANT_RUNTIME_EXEC_DRIVERS_H_
