#include "runtime/exec/drivers.h"

namespace adamant::exec {

Status FourPhaseDriver::Execute(RunContext& ctx) {
  ADAMANT_RETURN_NOT_OK(ctx.Prepare());
  for (const Pipeline& pipeline : ctx.pipelines()) {
    const size_t cap = ctx.ChunkCapacity(pipeline);
    const ChunkSource chunks(pipeline.input_rows, cap);
    ADAMANT_RETURN_NOT_OK(ctx.BeginPipeline(pipeline, chunks.total()));
    // Stage phase (Algorithm 3): dual pinned input buffers per scan column
    // plus all intermediate buffers, allocated once for the pipeline.
    ADAMANT_RETURN_NOT_OK(ctx.StageAllocations(pipeline, cap));
    ADAMANT_RETURN_NOT_OK(ctx.RunChunks(pipeline, 0, chunks.total(), cap));
    if (overlapped_) {
      ADAMANT_RETURN_NOT_OK(ctx.SyncPipelineDevices(pipeline));
    }
  }
  return ctx.CompleteRun();
}

}  // namespace adamant::exec
