#include "runtime/exec/hetero_split.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "runtime/exec/plan_shapes.h"
#include "runtime/exec/run_context.h"
#include "task/primitive.h"

namespace adamant::exec {

namespace {

/// Device-independent work profiles, one per pipeline: what
/// sim::EstimatePipelineCostUs needs to price the graph on any device.
Result<std::vector<sim::PipelineWork>> BuildPipelineWork(
    const PrimitiveGraph& graph, const ExecutionOptions& options,
    double scale) {
  ADAMANT_ASSIGN_OR_RETURN(std::vector<Pipeline> pipelines,
                           graph.SplitPipelines());
  const bool oaat = options.model == ExecutionModelKind::kOperatorAtATime;
  std::vector<sim::PipelineWork> works;
  works.reserve(pipelines.size());
  for (const Pipeline& pipeline : pipelines) {
    const size_t cap = PipelineChunkCapacity(pipeline, options, oaat, scale);
    const ChunkSource chunks(pipeline.input_rows, cap);
    const double rows = static_cast<double>(pipeline.input_rows);
    sim::PipelineWork work;
    work.rows = rows * scale;
    work.chunks = static_cast<double>(chunks.total());
    for (int edge_id : pipeline.scan_edges) {
      const GraphEdge& edge = graph.edges()[static_cast<size_t>(edge_id)];
      work.scan_bytes +=
          rows * static_cast<double>(ElementSize(edge.elem_type)) * scale;
    }
    work.transfer_calls =
        static_cast<double>(pipeline.scan_edges.size()) * work.chunks;
    const double rows_per_chunk = work.rows / work.chunks;
    for (int node_id : pipeline.nodes) {
      const GraphNode& node = graph.node(node_id);
      work.launches.push_back(
          {GetSignature(node.kind).kernel_name, rows_per_chunk});
    }
    works.push_back(std::move(work));
  }
  return works;
}

/// The (native, used) parallel thread counts SimulatedDevice::Execute would
/// charge the variant term with, resolved from the device's policy and the
/// run's kernel-variant request.
std::pair<int, int> VariantThreads(const SimulatedDevice& dev,
                                   const ExecutionOptions& options) {
  const int native = dev.default_kernel_variant() == KernelVariant::kParallel
                         ? dev.kernel_threads()
                         : 1;
  int used = native;
  switch (options.kernel_variant) {
    case KernelVariantRequest::kAuto:
      break;
    case KernelVariantRequest::kScalar:
      used = 1;
      break;
    case KernelVariantRequest::kParallel:
      used = options.kernel_threads > 0 ? options.kernel_threads
                                        : dev.kernel_threads();
      break;
  }
  return {native, used};
}

}  // namespace

Result<std::vector<DeviceCostEstimate>> EstimateDeviceCosts(
    const PrimitiveGraph& graph, DeviceManager* manager,
    const std::vector<DeviceId>& devices, const ExecutionOptions& options) {
  if (manager == nullptr) return Status::InvalidArgument("null manager");
  if (devices.empty()) return Status::InvalidArgument("empty device set");
  ADAMANT_ASSIGN_OR_RETURN(
      std::vector<sim::PipelineWork> works,
      BuildPipelineWork(graph, options, manager->data_scale()));
  double total_rows = 0;
  for (const sim::PipelineWork& work : works) total_rows += work.rows;

  std::vector<DeviceCostEstimate> estimates;
  estimates.reserve(devices.size());
  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager->GetDevice(id));
    const auto [native, used] = VariantThreads(*dev, options);
    DeviceCostEstimate estimate;
    estimate.device = id;
    for (const sim::PipelineWork& work : works) {
      const double cost = static_cast<double>(sim::EstimatePipelineCostUs(
          dev->perf_model(), work, native, used));
      estimate.pipeline_cost_us.push_back(cost);
      estimate.total_cost_us += cost;
    }
    estimate.throughput = estimate.total_cost_us > 0
                              ? total_rows / estimate.total_cost_us
                              : 0.0;
    estimates.push_back(std::move(estimate));
  }
  return estimates;
}

std::vector<double> ThroughputWeights(
    const std::vector<DeviceCostEstimate>& estimates) {
  std::vector<double> weights;
  weights.reserve(estimates.size());
  for (const DeviceCostEstimate& estimate : estimates) {
    weights.push_back(estimate.throughput);
  }
  return NormalizeSplit(std::move(weights), estimates.size());
}

std::vector<double> NormalizeSplit(std::vector<double> weights, size_t n) {
  bool valid = weights.size() == n && n > 0;
  double sum = 0;
  for (double w : weights) {
    if (!std::isfinite(w) || w <= 0) {
      valid = false;
      break;
    }
    sum += w;
  }
  if (!valid || sum <= 0) {
    return std::vector<double>(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  }
  for (double& w : weights) w /= sum;
  return weights;
}

std::vector<std::pair<size_t, size_t>> SplitChunksWeighted(
    size_t total, const std::vector<double>& weights) {
  const size_t n = weights.size();
  const std::vector<double> shares = NormalizeSplit(weights, n);
  // Largest remainder: floor every quota, then hand the leftover chunks to
  // the largest fractional parts (ties to earlier partitions, which keeps
  // the even-weight case identical to the historical even split).
  std::vector<size_t> counts(n, 0);
  std::vector<std::pair<double, size_t>> remainders;  // (-frac, index)
  size_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double quota = static_cast<double>(total) * shares[i];
    counts[i] = static_cast<size_t>(quota);
    assigned += counts[i];
    remainders.emplace_back(-(quota - std::floor(quota)), i);
  }
  std::sort(remainders.begin(), remainders.end());
  for (size_t k = 0; assigned < total; ++k) {
    ++counts[remainders[k % n].second];
    ++assigned;
  }
  std::vector<std::pair<size_t, size_t>> ranges(n);
  size_t begin = 0;
  for (size_t i = 0; i < n; ++i) {
    ranges[i] = {begin, begin + counts[i]};
    begin += counts[i];
  }
  return ranges;
}

Result<size_t> MaxPipelineChunks(const PrimitiveGraph& graph,
                                 const ExecutionOptions& options,
                                 double data_scale) {
  ADAMANT_ASSIGN_OR_RETURN(std::vector<Pipeline> pipelines,
                           graph.SplitPipelines());
  const bool oaat = options.model == ExecutionModelKind::kOperatorAtATime;
  size_t max_chunks = 0;
  for (const Pipeline& pipeline : pipelines) {
    const size_t cap = PipelineChunkCapacity(pipeline, options, oaat,
                                             data_scale);
    max_chunks = std::max(max_chunks,
                          ChunkSource(pipeline.input_rows, cap).total());
  }
  return max_chunks;
}

}  // namespace adamant::exec
