#ifndef ADAMANT_RUNTIME_EXEC_HETERO_SPLIT_H_
#define ADAMANT_RUNTIME_EXEC_HETERO_SPLIT_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/result.h"
#include "device/device_manager.h"
#include "runtime/executor.h"
#include "runtime/primitive_graph.h"
#include "sim/perf_model.h"

namespace adamant::exec {

/// Per-device cost prediction for running one graph's chunk stream,
/// produced by EstimateDeviceCosts. All times are simulated microseconds on
/// the device's own perf model; `throughput` is scaled rows per us over the
/// whole graph — the quantity the asymmetric split is proportional to.
struct DeviceCostEstimate {
  DeviceId device = 0;
  std::vector<double> pipeline_cost_us;  // parallel to graph.SplitPipelines()
  double total_cost_us = 0;
  double throughput = 0;
};

/// Predicts each device's effective cost/throughput for `graph` under
/// `options` (chunk capacity, kernel-variant request): per pipeline, the
/// kernel-body cost of every node x chunk, the variant speedup of the
/// device's policy, and the transfer share of streaming the scan columns.
/// This is the planning input for throughput-proportional chunk splits.
Result<std::vector<DeviceCostEstimate>> EstimateDeviceCosts(
    const PrimitiveGraph& graph, DeviceManager* manager,
    const std::vector<DeviceId>& devices, const ExecutionOptions& options);

/// Normalized split shares (sum 1) proportional to estimated throughput.
std::vector<double> ThroughputWeights(
    const std::vector<DeviceCostEstimate>& estimates);

/// Normalizes `weights` to `n` positive shares summing to 1. Empty, wrongly
/// sized, non-finite or non-positive input collapses to the even split —
/// the caller never has to special-case a degenerate prediction.
std::vector<double> NormalizeSplit(std::vector<double> weights, size_t n);

/// Contiguous weighted split of [0, total) chunks: partition i receives a
/// share of chunks proportional to weights[i], rounded by largest
/// remainder, ranges in partition order. Deterministic; with even weights
/// it reproduces the historical even SplitChunks exactly (earlier
/// partitions take the remainder).
std::vector<std::pair<size_t, size_t>> SplitChunksWeighted(
    size_t total, const std::vector<double>& weights);

/// The largest chunk count any pipeline of `graph` produces under
/// `options` — an upper bound on how many split partitions can ever
/// receive work. Used to collapse an oversized device set up front instead
/// of spawning partitions that would run zero chunks in every pipeline.
Result<size_t> MaxPipelineChunks(const PrimitiveGraph& graph,
                                 const ExecutionOptions& options,
                                 double data_scale);

}  // namespace adamant::exec

#endif  // ADAMANT_RUNTIME_EXEC_HETERO_SPLIT_H_
