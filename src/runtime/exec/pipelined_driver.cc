#include "runtime/exec/drivers.h"

namespace adamant::exec {

Status PipelinedDriver::Execute(RunContext& ctx) {
  ADAMANT_RETURN_NOT_OK(ctx.Prepare());
  for (const Pipeline& pipeline : ctx.pipelines()) {
    const size_t cap = ctx.ChunkCapacity(pipeline);
    const ChunkSource chunks(pipeline.input_rows, cap);
    ADAMANT_RETURN_NOT_OK(ctx.BeginPipeline(pipeline, chunks.total()));
    if (ctx.options().pipeline_depth > 0) {
      ADAMANT_RETURN_NOT_OK(ctx.AllocateRing(pipeline, cap));
    }
    ADAMANT_RETURN_NOT_OK(ctx.RunChunks(pipeline, 0, chunks.total(), cap));
    // Threads synchronize at each pipeline breaker (Algorithm 2).
    ADAMANT_RETURN_NOT_OK(ctx.SyncPipelineDevices(pipeline));
  }
  return ctx.CompleteRun();
}

}  // namespace adamant::exec
