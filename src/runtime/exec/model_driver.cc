#include "runtime/exec/model_driver.h"

#include "runtime/exec/drivers.h"

namespace adamant::exec {

Result<std::unique_ptr<ModelDriver>> MakeModelDriver(ExecutionModelKind kind) {
  switch (kind) {
    case ExecutionModelKind::kOperatorAtATime:
      return std::unique_ptr<ModelDriver>(new OaatDriver());
    case ExecutionModelKind::kChunked:
      return std::unique_ptr<ModelDriver>(new ChunkedDriver());
    case ExecutionModelKind::kPipelined:
      return std::unique_ptr<ModelDriver>(new PipelinedDriver());
    case ExecutionModelKind::kFourPhaseChunked:
      return std::unique_ptr<ModelDriver>(
          new FourPhaseDriver(/*overlapped=*/false));
    case ExecutionModelKind::kFourPhasePipelined:
      return std::unique_ptr<ModelDriver>(
          new FourPhaseDriver(/*overlapped=*/true));
    case ExecutionModelKind::kDeviceParallel:
      return std::unique_ptr<ModelDriver>(new DeviceParallelDriver());
  }
  return Status::NotSupported("unknown execution model");
}

}  // namespace adamant::exec
