#include <algorithm>
#include <map>

#include "runtime/exec/plan_shapes.h"
#include "runtime/executor.h"

namespace adamant {

Result<size_t> EstimateDeviceMemoryBytes(const PrimitiveGraph& graph,
                                         const ExecutionOptions& options,
                                         double data_scale) {
  ADAMANT_RETURN_NOT_OK(graph.Validate());
  ADAMANT_ASSIGN_OR_RETURN(std::vector<Pipeline> pipelines,
                           graph.SplitPipelines());
  const bool oaat = options.model == ExecutionModelKind::kOperatorAtATime;
  const bool staged = options.model == ExecutionModelKind::kFourPhaseChunked ||
                      options.model == ExecutionModelKind::kFourPhasePipelined;
  const bool async = options.model == ExecutionModelKind::kPipelined ||
                     options.model == ExecutionModelKind::kFourPhasePipelined;
  // kDeviceParallel behaves like kChunked here on purpose: each partition
  // device holds every breaker persist (its own full-size copy, merged
  // between pipelines) plus the same per-chunk transients, so the
  // single-device chunked bound is the correct *per-device* bound for the
  // split, and the scheduler reserves it on every leased device.

  // Persists survive until the end of the run; transients peak within one
  // pipeline. Peak per device = all persists + the worst pipeline.
  std::map<DeviceId, size_t> persist_bytes;
  std::map<DeviceId, size_t> worst_pipeline;
  for (const Pipeline& pipeline : pipelines) {
    const size_t cap = exec::PipelineChunkCapacity(pipeline, options, oaat,
                                                   data_scale);
    std::map<DeviceId, size_t> transient;

    // Scan staging. The 4-phase models stage scan chunks in *pinned host*
    // buffers (not charged against device memory); the ring holds
    // pipeline_depth device-resident slots; otherwise one transient device
    // buffer per distinct (column, device) per chunk.
    if (!staged) {
      const size_t copies =
          async && options.pipeline_depth > 0 ? options.pipeline_depth : 1;
      std::map<std::pair<const Column*, DeviceId>, size_t> scans;
      for (int edge_id : pipeline.scan_edges) {
        const GraphEdge& edge = graph.edges()[static_cast<size_t>(edge_id)];
        const GraphNode& consumer = graph.node(edge.to_node);
        scans[{edge.column.get(), consumer.device}] =
            cap * ElementSize(edge.elem_type) * copies;
      }
      for (const auto& [key, bytes] : scans) transient[key.second] += bytes;
    }

    for (int node_id : pipeline.nodes) {
      const GraphNode& node = graph.node(node_id);
      // Conservative: size every node's outputs off the full chunk capacity
      // (downstream capacities only shrink through selectivity).
      for (const exec::OutputPlanEntry& out :
           exec::PlanNodeOutputs(node, cap)) {
        transient[node.device] += out.bytes;
      }
      if (GetSignature(node.kind).pipeline_breaker) {
        ADAMANT_ASSIGN_OR_RETURN(exec::PersistShape shape,
                                 exec::PlanPersist(node, pipeline.input_rows));
        persist_bytes[node.device] += shape.bytes;
      }
    }
    for (const auto& [device, bytes] : transient) {
      worst_pipeline[device] = std::max(worst_pipeline[device], bytes);
    }
  }

  size_t peak_actual = 0;
  for (const auto& [device, bytes] : persist_bytes) {
    peak_actual = std::max(peak_actual, bytes + worst_pipeline[device]);
  }
  for (const auto& [device, bytes] : worst_pipeline) {
    peak_actual = std::max(peak_actual, bytes + persist_bytes[device]);
  }
  // Buffers charge arenas at nominal size (actual bytes × data scale).
  return static_cast<size_t>(static_cast<double>(peak_actual) * data_scale);
}

}  // namespace adamant
