#include "runtime/exec/plan_shapes.h"

#include <algorithm>

#include "common/bit_util.h"
#include "task/hash_table.h"

namespace adamant::exec {

size_t EstimateElems(size_t input_capacity, double selectivity) {
  double est = static_cast<double>(input_capacity) * selectivity;
  return static_cast<size_t>(est) + 64;
}

std::vector<OutputPlanEntry> PlanNodeOutputs(const GraphNode& node,
                                             size_t in_capacity) {
  const double sel = node.config.selectivity;
  switch (node.kind) {
    case PrimitiveKind::kMap:
      return {{0, in_capacity * ElementSize(node.config.out_type),
               DataSemantic::kNumeric}};
    case PrimitiveKind::kFilterBitmap:
      if (node.config.combine_and) return {};  // writes into input bitmap
      return {{0, bit_util::BytesForBits(in_capacity),
               DataSemantic::kBitmap}};
    case PrimitiveKind::kFilterPosition:
      return {{0, EstimateElems(in_capacity, sel) * sizeof(int32_t),
               DataSemantic::kPosition},
              {2, sizeof(int64_t), DataSemantic::kNumeric}};
    case PrimitiveKind::kMaterialize:
      return {{0, EstimateElems(in_capacity, sel) * 8,
               DataSemantic::kNumeric},
              {2, sizeof(int64_t), DataSemantic::kNumeric}};
    case PrimitiveKind::kMaterializePosition:
      return {{0, in_capacity * 8, DataSemantic::kNumeric}};
    case PrimitiveKind::kHashProbe:
      return {{0, EstimateElems(in_capacity, sel) * sizeof(int32_t),
               DataSemantic::kPosition},
              {1, EstimateElems(in_capacity, sel) * sizeof(int32_t),
               DataSemantic::kNumeric},
              {2, sizeof(int64_t), DataSemantic::kNumeric}};
    case PrimitiveKind::kFused:
      // Single compacted output + count, like MATERIALIZE — and nothing
      // else: the fused group's interior intermediates need no ring slots.
      return {{0, EstimateElems(in_capacity, sel) * 8,
               DataSemantic::kNumeric},
              {2, sizeof(int64_t), DataSemantic::kNumeric}};
    // Breakers write into their persists; no per-chunk outputs.
    case PrimitiveKind::kAggBlock:
    case PrimitiveKind::kHashBuild:
    case PrimitiveKind::kHashAgg:
    case PrimitiveKind::kSortAgg:
    case PrimitiveKind::kPrefixSum:
    case PrimitiveKind::kFusedAgg:
      return {};
  }
  return {};
}

Result<PersistShape> PlanPersist(const GraphNode& node, size_t input_rows) {
  PersistShape shape;
  switch (node.kind) {
    case PrimitiveKind::kAggBlock:
    case PrimitiveKind::kFusedAgg:
      shape.bytes = sizeof(int64_t);
      break;
    case PrimitiveKind::kHashBuild: {
      if (node.config.expected_build_rows <= 0) {
        return Status::InvalidArgument(
            node.label + ": expected_build_rows must be set for HASH_BUILD");
      }
      shape.num_slots = HashTableLayout::SlotsFor(
          static_cast<size_t>(node.config.expected_build_rows));
      shape.bytes = HashTableLayout::BuildTableBytes(shape.num_slots);
      break;
    }
    case PrimitiveKind::kHashAgg: {
      if (node.config.expected_build_rows <= 0) {
        return Status::InvalidArgument(
            node.label + ": expected_build_rows must be set for HASH_AGG");
      }
      shape.num_slots = HashTableLayout::SlotsFor(
          static_cast<size_t>(node.config.expected_build_rows));
      shape.bytes = HashTableLayout::AggTableBytes(shape.num_slots);
      break;
    }
    case PrimitiveKind::kSortAgg:
      if (node.config.num_groups == 0) {
        return Status::InvalidArgument(node.label + ": num_groups must be set");
      }
      shape.bytes = node.config.num_groups * sizeof(int64_t);
      shape.capacity = node.config.num_groups;
      break;
    case PrimitiveKind::kPrefixSum:
      shape.bytes = input_rows * sizeof(int32_t);
      shape.capacity = input_rows;
      break;
    default:
      return Status::Internal(node.label + " is not a pipeline breaker");
  }
  return shape;
}

size_t PipelineChunkCapacity(const Pipeline& pipeline,
                             const ExecutionOptions& options, bool oaat,
                             double scale) {
  size_t cap = pipeline.input_rows;
  if (!oaat) {
    auto actual =
        static_cast<size_t>(static_cast<double>(options.chunk_elems) / scale);
    cap = std::min(pipeline.input_rows, std::max<size_t>(actual, 1));
  }
  return cap;
}

}  // namespace adamant::exec
