#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "runtime/exec/drivers.h"
#include "task/hash_table.h"
#include "task/merge.h"

namespace adamant::exec {

namespace {

/// One partition device's private execution state: a clone of the query
/// graph retargeted to the device, and a chunked-model RunContext over it.
/// Keeping the contexts fully disjoint (own graph, own bindings, own hub,
/// own persists) is what makes the partition threads race-free — the only
/// shared mutable state is the scan cache and memory ledger, which lock
/// internally, and each SimulatedDevice, which only its own thread touches.
struct SubRun {
  DeviceId device = 0;
  std::unique_ptr<PrimitiveGraph> graph;
  std::unique_ptr<RunContext> ctx;
  size_t chunks_run = 0;
};

/// Contiguous split of [0, total) chunks across n partitions; earlier
/// partitions take the remainder. Contiguity keeps each device's scan
/// window a single dense row range (sequential host reads, cache-friendly).
std::vector<std::pair<size_t, size_t>> SplitChunks(size_t total, size_t n) {
  std::vector<std::pair<size_t, size_t>> ranges(n);
  size_t begin = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t count = total / n + (i < total % n ? 1 : 0);
    ranges[i] = {begin, begin + count};
    begin += count;
  }
  return ranges;
}

/// Advances every device past the slowest partition: a zero-duration entry
/// at the joint completion time on all three resource timelines models the
/// cross-device synchronization the host performs before merging.
Status ScheduleBarrier(DeviceManager* manager,
                       const std::vector<DeviceId>& devices) {
  sim::SimTime barrier = 0;
  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager->GetDevice(id));
    barrier = std::max(barrier, dev->MaxCompletion());
  }
  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager->GetDevice(id));
    dev->transfer_timeline().Schedule(barrier, 0, "dp-barrier");
    dev->d2h_timeline().Schedule(barrier, 0, "dp-barrier");
    dev->compute_timeline().Schedule(barrier, 0, "dp-barrier");
  }
  return Status::OK();
}

/// Merges one breaker's per-partition containers and redistributes the
/// result. `contributors` are sub-run indices that executed at least one
/// chunk of the pipeline (a device with an empty range never ran the
/// breaker kernel, so its persist holds no identity to merge).
Status MergeBreaker(RunContext& parent, std::vector<SubRun>& subs,
                    const GraphNode& node,
                    const std::vector<size_t>& contributors,
                    double* merge_host_ms) {
  if (!parent.graph()->IsTerminal(node.id) && subs.size() == 1) {
    // Single-partition run: the device already holds the only container
    // and its own next pipeline reads it in place — reading it back to the
    // host would be a pure D2H waste (a full hash table per pipeline).
    // With several partitions the round-trip is required even for a sole
    // contributor: the other devices may own chunks of later pipelines.
    return Status::OK();
  }
  std::vector<std::vector<uint8_t>> partials;
  partials.reserve(contributors.size());
  for (size_t i : contributors) {
    ADAMANT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                             subs[i].ctx->ReadPersistBytes(node.id));
    partials.push_back(std::move(bytes));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<uint8_t> merged = std::move(partials[0]);
  for (size_t i = 1; i < partials.size(); ++i) {
    if (partials[i].size() != merged.size()) {
      return Status::Internal(node.label +
                              ": partition containers differ in size");
    }
    switch (node.kind) {
      // FUSED_AGG mirrors its terminal aggregate in config.agg_op, so the
      // per-partition int64 accumulators merge exactly like AGG_BLOCK.
      case PrimitiveKind::kFusedAgg:
      case PrimitiveKind::kAggBlock: {
        int64_t acc, part;
        std::memcpy(&acc, merged.data(), sizeof(acc));
        std::memcpy(&part, partials[i].data(), sizeof(part));
        acc = MergeAggPartials(node.config.agg_op, acc, part);
        std::memcpy(merged.data(), &acc, sizeof(acc));
        break;
      }
      case PrimitiveKind::kHashAgg:
        ADAMANT_RETURN_NOT_OK(
            MergeAggTables(node.config.agg_op, partials[i].data(),
                           merged.size() / sizeof(HashTableLayout::AggSlot),
                           merged.data())
                .WithContext(node.label));
        break;
      case PrimitiveKind::kHashBuild:
        ADAMANT_RETURN_NOT_OK(
            MergeBuildTables(partials[i].data(),
                             merged.size() /
                                 sizeof(HashTableLayout::BuildSlot),
                             merged.data())
                .WithContext(node.label));
        break;
      default:
        return Status::NotSupported(node.label +
                                    ": breaker kind has no partition merge");
    }
  }
  *merge_host_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (parent.graph()->IsTerminal(node.id)) {
    // Terminal breaker: the merged container IS the query result; stash it
    // on the parent execution exactly as RetrieveBreaker would have.
    const Persist* persist = subs[contributors[0]].ctx->FindPersist(node.id);
    QueryExecution::NodeOutput& output =
        parent.exec().mutable_outputs()[node.id];
    output.kind = node.kind;
    output.num_slots = persist != nullptr ? persist->num_slots : 0;
    output.bytes = std::move(merged);
    return Status::OK();
  }

  // Interior breaker: every partition device consumes the merged container
  // in the next pipeline, so push it back out — except a sole contributor,
  // whose device already holds exactly these bytes.
  for (size_t i = 0; i < subs.size(); ++i) {
    if (contributors.size() == 1 && i == contributors[0]) continue;
    ADAMANT_RETURN_NOT_OK(
        subs[i].ctx->PlacePersistBytes(node.id, merged.data(), merged.size())
            .WithContext(node.label));
  }
  return Status::OK();
}

Status RunPartitioned(RunContext& ctx, std::vector<SubRun>& subs,
                      const std::vector<DeviceId>& devices,
                      double* merge_host_ms) {
  const std::vector<Pipeline>& pipelines = ctx.pipelines();
  // Per-pipeline device slices for the profile: the sub-contexts run with
  // reset_device_state=false (the parent owns the snapshot), so the parent
  // thread samples each device's busy time at the pipeline boundaries —
  // safe here because the partition threads are joined at both sample
  // points and the lease is exclusive (parent reset_device_state).
  const bool profile = ctx.options().collect_profile &&
                       ctx.options().reset_device_state;
  struct Busy {
    sim::SimTime h2d = 0;
    sim::SimTime d2h = 0;
    sim::SimTime compute = 0;
  };
  auto sample_busy = [&ctx, &devices]() {
    std::vector<Busy> samples;
    for (DeviceId id : devices) {
      Busy busy;
      auto dev = ctx.manager()->GetDevice(id);
      if (dev.ok()) {
        busy.h2d = (*dev)->transfer_timeline().busy_time();
        busy.d2h = (*dev)->d2h_timeline().busy_time();
        busy.compute = (*dev)->compute_timeline().busy_time();
      }
      samples.push_back(busy);
    }
    return samples;
  };
  for (size_t pi = 0; pi < pipelines.size(); ++pi) {
    const Pipeline& pipeline = pipelines[pi];
    const size_t cap = ctx.ChunkCapacity(pipeline);
    const ChunkSource chunks(pipeline.input_rows, cap);
    const auto ranges = SplitChunks(chunks.total(), subs.size());
    const auto pipeline_t0 = std::chrono::steady_clock::now();
    const std::vector<Busy> busy_before = profile ? sample_busy()
                                                  : std::vector<Busy>{};

    // Every partition runs its disjoint chunk sub-range concurrently; a
    // device with an empty range still runs BeginPipeline so its persists
    // exist to receive merged containers.
    std::vector<Status> statuses(subs.size());
    std::vector<std::thread> threads;
    threads.reserve(subs.size());
    for (size_t i = 0; i < subs.size(); ++i) {
      RunContext* sub = subs[i].ctx.get();
      const Pipeline* sub_pipeline = &sub->pipelines()[pi];
      const auto range = ranges[i];
      Status* status = &statuses[i];
      threads.emplace_back([sub, sub_pipeline, range, status] {
        *status = ChunkedDriver::RunPipelineRange(*sub, *sub_pipeline,
                                                  range.first, range.second);
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& st : statuses) {
      ADAMANT_RETURN_NOT_OK(st);
    }
    for (size_t i = 0; i < subs.size(); ++i) {
      subs[i].chunks_run += ranges[i].second - ranges[i].first;
    }

    // Host-side synchronization point before the merge.
    ADAMANT_RETURN_NOT_OK(ScheduleBarrier(ctx.manager(), devices));

    std::vector<size_t> contributors;
    for (size_t i = 0; i < subs.size(); ++i) {
      if (ranges[i].second > ranges[i].first) contributors.push_back(i);
    }
    for (int node_id : pipeline.nodes) {
      const GraphNode& node = ctx.graph()->node(node_id);
      if (!GetSignature(node.kind).pipeline_breaker) continue;
      obs::TraceSpan merge_span;
      if (obs::TracingEnabled()) {
        merge_span.Start(obs::kHostTrack, "merge:" + node.label);
      }
      ADAMANT_RETURN_NOT_OK(
          MergeBreaker(ctx, subs, node, contributors, merge_host_ms));
    }
    for (SubRun& sub : subs) {
      ADAMANT_RETURN_NOT_OK(
          sub.ctx->BindPersistOutputs(sub.ctx->pipelines()[pi]));
    }
    if (profile) {
      const std::vector<Busy> busy_after = sample_busy();
      obs::PipelineProfile pp;
      pp.index = static_cast<int>(pi);
      pp.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - pipeline_t0)
                       .count();
      pp.chunks = chunks.total();
      for (size_t i = 0; i < devices.size(); ++i) {
        obs::PipelineDeviceSlice slice;
        slice.device = static_cast<int>(devices[i]);
        slice.transfer_ms =
            static_cast<double>(busy_after[i].h2d - busy_before[i].h2d) /
            1000.0;
        slice.d2h_ms =
            static_cast<double>(busy_after[i].d2h - busy_before[i].d2h) /
            1000.0;
        slice.compute_ms = static_cast<double>(busy_after[i].compute -
                                               busy_before[i].compute) /
                           1000.0;
        pp.devices.push_back(slice);
      }
      ctx.exec().stats.profile.pipelines.push_back(std::move(pp));
    }
  }

  // Streaming terminal outputs: collect every partition's chunk parts and
  // restore global order by base row (partitions are contiguous ranges, so
  // this is a concatenation-and-sort, not an interleave).
  for (SubRun& sub : subs) {
    for (auto& [node_id, out] : sub.ctx->exec().mutable_outputs()) {
      if (out.parts.empty()) continue;
      QueryExecution::NodeOutput& merged =
          ctx.exec().mutable_outputs()[node_id];
      merged.kind = out.kind;
      merged.elem_type = out.elem_type;
      for (QueryExecution::ChunkPart& part : out.parts) {
        merged.parts.push_back(std::move(part));
      }
      out.parts.clear();
    }
  }
  for (auto& [node_id, out] : ctx.exec().mutable_outputs()) {
    (void)node_id;
    std::sort(out.parts.begin(), out.parts.end(),
              [](const QueryExecution::ChunkPart& a,
                 const QueryExecution::ChunkPart& b) {
                return a.base_row < b.base_row;
              });
  }

  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                             ctx.manager()->GetDevice(id));
    dev->Synchronize();
  }
  return Status::OK();
}

}  // namespace

Status DeviceParallelDriver::Execute(RunContext& ctx) {
  // Resolve the partition device set: the options' set, or every plugged
  // device when unspecified.
  std::vector<DeviceId> devices = ctx.options().device_set;
  if (devices.empty()) {
    for (size_t i = 0; i < ctx.manager()->num_devices(); ++i) {
      devices.push_back(static_cast<DeviceId>(i));
    }
  }
  std::sort(devices.begin(), devices.end());
  devices.erase(std::unique(devices.begin(), devices.end()), devices.end());
  if (devices.empty()) {
    return Status::InvalidArgument(
        "device-parallel execution needs at least one device");
  }
  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                             ctx.manager()->GetDevice(id));
    (void)dev;
  }
  for (const GraphNode& node : ctx.graph()->nodes()) {
    if (node.kind == PrimitiveKind::kPrefixSum ||
        node.kind == PrimitiveKind::kSortAgg) {
      return Status::NotSupported(
          node.label +
          ": global breakers (PREFIX_SUM / SORT_AGG) have no partition "
          "merge; use a single-device model");
    }
  }

  ADAMANT_RETURN_NOT_OK(ctx.Prepare(devices));

  // One private graph clone + chunked RunContext per partition device. The
  // clone keeps the plan identical while retargeting every node, so each
  // sub-run is an ordinary single-device chunked execution.
  std::vector<SubRun> subs;
  subs.reserve(devices.size());
  Status st;
  for (DeviceId id : devices) {
    SubRun sub;
    sub.device = id;
    sub.graph = std::make_unique<PrimitiveGraph>(*ctx.graph());
    for (const GraphNode& node : ctx.graph()->nodes()) {
      sub.graph->mutable_node(node.id).device = id;
    }
    ExecutionOptions sub_options = ctx.options();
    sub_options.model = ExecutionModelKind::kChunked;
    sub_options.device_set.clear();
    // The parent already reset/snapshots device state for the whole set,
    // and collects the per-pipeline profile itself (around the partition
    // threads' join points).
    sub_options.reset_device_state = false;
    sub_options.collect_profile = false;
    sub.ctx = std::make_unique<RunContext>(ctx.manager(), sub.graph.get(),
                                           sub_options);
    st = sub.ctx->Prepare();
    subs.push_back(std::move(sub));
    if (!st.ok()) break;
  }

  double merge_host_ms = 0;
  if (st.ok()) {
    st = RunPartitioned(ctx, subs, devices, &merge_host_ms);
  }

  // Fold partition accounting into the parent before its FinalizeStats
  // (which adds, rather than assigns, exactly for this composition).
  if (st.ok()) {
    QueryStats& stats = ctx.exec().stats;
    stats.merge_host_ms += merge_host_ms;
    for (const SubRun& sub : subs) {
      const QueryStats& sub_stats = sub.ctx->exec().stats;
      stats.chunks += sub_stats.chunks;
      stats.chunks_by_device[static_cast<int>(sub.device)] += sub.chunks_run;
      stats.bytes_h2d += sub.ctx->hub().bytes_host_to_device();
      stats.bytes_d2h += sub.ctx->hub().bytes_device_to_host();
      stats.scan_cache_hits += sub.ctx->hub().scan_cache_hits();
      stats.scan_cache_misses += sub.ctx->hub().scan_cache_misses();
      stats.bytes_h2d_saved += sub.ctx->hub().bytes_h2d_saved();
    }
  }

  // EXPLAIN ANALYZE: fold partition operator stats on every path — the
  // partial tree of a cancelled or failed run still finalizes in the
  // parent (sub-graphs are clones, so node ids line up).
  if (ctx.options().collect_operator_stats) {
    for (const SubRun& sub : subs) {
      if (sub.ctx != nullptr) {
        ctx.MergeOperatorStats(sub.ctx->operator_stats());
      }
    }
  }

  // Partition cleanup on every path; the parent context's own ReleaseAll
  // runs in QueryExecutor::Run.
  for (SubRun& sub : subs) {
    if (sub.ctx != nullptr) sub.ctx->ReleaseAll();
  }
  return st;
}

}  // namespace adamant::exec
