#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/exec/drivers.h"
#include "runtime/exec/hetero_split.h"
#include "task/hash_table.h"
#include "task/merge.h"

namespace adamant::exec {

namespace {

/// One partition device's private execution state: a clone of the query
/// graph retargeted to the device, and a chunked-model RunContext over it.
/// Keeping the contexts fully disjoint (own graph, own bindings, own hub,
/// own persists) is what makes the partition threads race-free — the only
/// shared mutable state is the scan cache and memory ledger, which lock
/// internally, the rebalancing pool, which holds one mutex, and each
/// SimulatedDevice, which only its own thread touches between joins.
struct SubRun {
  DeviceId device = 0;
  std::unique_ptr<PrimitiveGraph> graph;
  std::unique_ptr<RunContext> ctx;
  size_t chunks_run = 0;
  size_t chunks_stolen = 0;
  /// Observed simulated busy time (us) of this partition's executed chunks,
  /// summed over all pipelines — the feedback quantity per device.
  double observed_us = 0;
};

/// Simulated busy time accumulated on a device across all three resource
/// timelines. Only the partition thread that owns the device may call this
/// mid-pipeline (the accessors are unsynchronized).
sim::SimTime DeviceBusy(SimulatedDevice& dev) {
  return dev.transfer_timeline().busy_time() + dev.d2h_timeline().busy_time() +
         dev.compute_timeline().busy_time();
}

/// Runtime rebalancing pool for one pipeline: partitions claim their
/// contiguous ranges chunk by chunk, and a partition that runs ahead on the
/// *simulated* clock steals whole chunks from the slowest partition's
/// unclaimed tail.
///
/// Why simulated clocks: a simulated-slow device executes wall-clock as
/// fast as a fast one (kernels run for real on the host; only booked time
/// differs), so wall-clock work stealing would never fire here. Instead
/// each partition carries a virtual clock `t` — the simulated cost of the
/// chunks it has claimed, charged with the current per-chunk estimate at
/// claim time and corrected to the device's observed timeline delta on
/// completion — and claims are admitted in virtual-time order: a partition
/// may take its next chunk only while its clock is minimal among live
/// partitions. That serializes *claims* (not execution) exactly the way
/// simulated time would, so the final chunk assignment matches what real
/// heterogeneous hardware would reach, deterministically.
///
/// Steal protocol: a partition whose own range is exhausted picks the
/// victim with the latest projected finish (t_v + cost_v * unclaimed_v) and
/// takes one chunk off that range's tail (end_v -= 1) iff it can finish the
/// chunk before the victim would (t_thief + cost_thief < projected finish).
/// Ranges stay contiguous — fronts only advance, tails only retreat — and
/// every chunk is claimed exactly once under the mutex, so results remain
/// bit-identical to any other schedule.
class StealPool {
 public:
  struct Claimed {
    bool has = false;
    size_t chunk = 0;
  };

  StealPool(const std::vector<std::pair<size_t, size_t>>& ranges,
            std::vector<double> chunk_cost_seed, bool allow_steal,
            CancelToken* cancel, std::vector<std::string> names,
            size_t pipeline_index)
      : allow_steal_(allow_steal),
        cancel_(cancel),
        names_(std::move(names)),
        pipeline_index_(pipeline_index) {
    parts_.resize(ranges.size());
    for (size_t i = 0; i < ranges.size(); ++i) {
      parts_[i].next = ranges[i].first;
      parts_[i].end = ranges[i].second;
      parts_[i].cost = chunk_cost_seed[i] > 0 ? chunk_cost_seed[i] : 1.0;
    }
  }

  /// Blocks until partition `i` may claim a chunk (virtual-time gate), then
  /// claims from its own front or a victim's tail. `has == false` means the
  /// pipeline holds no more work this partition can usefully take.
  Result<Claimed> Claim(size_t i) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (failed_) return Claimed{};
      if (cancel_ != nullptr) {
        Status cancelled = cancel_->Check();
        if (!cancelled.ok()) {
          failed_ = true;
          cv_.notify_all();
          return cancelled;
        }
      }
      Part& me = parts_[i];
      if (AtFront(i)) {
        if (me.next < me.end) {
          const size_t chunk = me.next++;
          me.charged = me.cost;
          me.t += me.charged;
          cv_.notify_all();
          return Claimed{true, chunk};
        }
        const int victim = allow_steal_ ? PickVictim(i) : -1;
        if (victim < 0) {
          me.live = false;
          cv_.notify_all();
          return Claimed{};
        }
        Part& v = parts_[static_cast<size_t>(victim)];
        const size_t chunk = --v.end;
        me.charged = me.cost;
        me.t += me.charged;
        ++me.stolen;
        obs::TraceInstant(
            obs::kHostTrack,
            "steal:" + names_[static_cast<size_t>(victim)] + "->" + names_[i],
            "{\"pipeline\":" + std::to_string(pipeline_index_) +
                ",\"chunk\":" + std::to_string(chunk) + "}");
        cv_.notify_all();
        return Claimed{true, chunk};
      }
      // Not this partition's simulated turn yet; the 1ms bound keeps the
      // wait responsive to cancellation and to clock corrections.
      cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }

  /// Folds one executed chunk back in: replaces the charged estimate with
  /// the device's observed timeline delta and refines the per-chunk cost.
  void Complete(size_t i, double observed_us) {
    std::lock_guard<std::mutex> lk(mu_);
    Part& me = parts_[i];
    me.t += observed_us - me.charged;
    me.charged = 0;
    me.cost = me.seen ? 0.5 * observed_us + 0.5 * me.cost
                      : (observed_us > 0 ? observed_us : me.cost);
    me.seen = true;
    ++me.run;
    cv_.notify_all();
  }

  /// Aborts the pipeline (a partition failed); waiters drain promptly.
  void Fail() {
    std::lock_guard<std::mutex> lk(mu_);
    failed_ = true;
    cv_.notify_all();
  }

  size_t run(size_t i) const { return parts_[i].run; }
  size_t stolen(size_t i) const { return parts_[i].stolen; }

 private:
  struct Part {
    size_t next = 0;
    size_t end = 0;
    double t = 0;        // virtual clock: simulated us of claimed chunks
    double cost = 1.0;   // per-chunk cost estimate (seeded, then observed)
    double charged = 0;  // estimate charged for the in-flight chunk
    bool seen = false;
    bool live = true;
    size_t run = 0;
    size_t stolen = 0;
  };

  /// Virtual-time gate: partition `i` claims only while no live partition
  /// carries a smaller clock (ties broken by index, so the order is total
  /// and the resulting assignment deterministic).
  bool AtFront(size_t i) const {
    const Part& me = parts_[i];
    for (size_t j = 0; j < parts_.size(); ++j) {
      if (j == i || !parts_[j].live) continue;
      if (parts_[j].t < me.t || (parts_[j].t == me.t && j < i)) return false;
    }
    return true;
  }

  /// The victim whose projected finish is latest — and only if the thief
  /// would finish the stolen chunk earlier than the victim would get to it.
  int PickVictim(size_t i) const {
    const Part& me = parts_[i];
    int best = -1;
    double best_finish = 0;
    for (size_t j = 0; j < parts_.size(); ++j) {
      if (j == i || parts_[j].next >= parts_[j].end) continue;
      const double unclaimed =
          static_cast<double>(parts_[j].end - parts_[j].next);
      const double finish = parts_[j].t + parts_[j].cost * unclaimed;
      if (best < 0 || finish > best_finish) {
        best = static_cast<int>(j);
        best_finish = finish;
      }
    }
    if (best < 0 || me.t + me.cost >= best_finish) return -1;
    return best;
  }

  const bool allow_steal_;
  CancelToken* const cancel_;
  const std::vector<std::string> names_;
  const size_t pipeline_index_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Part> parts_;
  bool failed_ = false;
};

/// One partition's chunk loop under the rebalancing pool: claim, execute,
/// fold the observed cost back in, repeat until the pool runs dry.
Status RunPartitionRebalanced(RunContext& sub, const Pipeline& pipeline,
                              size_t cap, size_t total_chunks, StealPool& pool,
                              size_t i, SimulatedDevice* dev,
                              double* observed_us) {
  Status st = sub.BeginPipeline(pipeline, total_chunks);
  if (!st.ok()) {
    pool.Fail();
    return st;
  }
  for (;;) {
    auto claim = pool.Claim(i);
    if (!claim.ok()) return claim.status();
    if (!claim->has) return Status::OK();
    const sim::SimTime busy_before = DeviceBusy(*dev);
    st = sub.RunChunks(pipeline, claim->chunk, claim->chunk + 1, cap);
    if (!st.ok()) {
      pool.Fail();
      return st;
    }
    const double observed =
        static_cast<double>(DeviceBusy(*dev) - busy_before);
    *observed_us += observed;
    pool.Complete(i, observed);
  }
}

/// Advances every device past the slowest partition: a zero-duration entry
/// at the joint completion time on all three resource timelines models the
/// cross-device synchronization the host performs before merging.
Status ScheduleBarrier(DeviceManager* manager,
                       const std::vector<DeviceId>& devices) {
  sim::SimTime barrier = 0;
  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager->GetDevice(id));
    barrier = std::max(barrier, dev->MaxCompletion());
  }
  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev, manager->GetDevice(id));
    dev->transfer_timeline().Schedule(barrier, 0, "dp-barrier");
    dev->d2h_timeline().Schedule(barrier, 0, "dp-barrier");
    dev->compute_timeline().Schedule(barrier, 0, "dp-barrier");
  }
  return Status::OK();
}

/// Merges one breaker's per-partition containers and redistributes the
/// result. `contributors` are sub-run indices that executed at least one
/// chunk of the pipeline (a device with an empty range never ran the
/// breaker kernel, so its persist holds no identity to merge).
Status MergeBreaker(RunContext& parent, std::vector<SubRun>& subs,
                    const GraphNode& node,
                    const std::vector<size_t>& contributors,
                    double* merge_host_ms) {
  if (!parent.graph()->IsTerminal(node.id) && subs.size() == 1) {
    // Single-partition run: the device already holds the only container
    // and its own next pipeline reads it in place — reading it back to the
    // host would be a pure D2H waste (a full hash table per pipeline).
    // With several partitions the round-trip is required even for a sole
    // contributor: the other devices may own chunks of later pipelines.
    return Status::OK();
  }
  std::vector<std::vector<uint8_t>> partials;
  partials.reserve(contributors.size());
  for (size_t i : contributors) {
    ADAMANT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                             subs[i].ctx->ReadPersistBytes(node.id));
    partials.push_back(std::move(bytes));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<uint8_t> merged = std::move(partials[0]);
  for (size_t i = 1; i < partials.size(); ++i) {
    if (partials[i].size() != merged.size()) {
      return Status::Internal(node.label +
                              ": partition containers differ in size");
    }
    switch (node.kind) {
      // FUSED_AGG mirrors its terminal aggregate in config.agg_op, so the
      // per-partition int64 accumulators merge exactly like AGG_BLOCK.
      case PrimitiveKind::kFusedAgg:
      case PrimitiveKind::kAggBlock: {
        int64_t acc, part;
        std::memcpy(&acc, merged.data(), sizeof(acc));
        std::memcpy(&part, partials[i].data(), sizeof(part));
        acc = MergeAggPartials(node.config.agg_op, acc, part);
        std::memcpy(merged.data(), &acc, sizeof(acc));
        break;
      }
      case PrimitiveKind::kHashAgg:
        ADAMANT_RETURN_NOT_OK(
            MergeAggTables(node.config.agg_op, partials[i].data(),
                           merged.size() / sizeof(HashTableLayout::AggSlot),
                           merged.data())
                .WithContext(node.label));
        break;
      case PrimitiveKind::kHashBuild:
        ADAMANT_RETURN_NOT_OK(
            MergeBuildTables(partials[i].data(),
                             merged.size() /
                                 sizeof(HashTableLayout::BuildSlot),
                             merged.data())
                .WithContext(node.label));
        break;
      default:
        return Status::NotSupported(node.label +
                                    ": breaker kind has no partition merge");
    }
  }
  *merge_host_ms +=
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (parent.graph()->IsTerminal(node.id)) {
    // Terminal breaker: the merged container IS the query result; stash it
    // on the parent execution exactly as RetrieveBreaker would have.
    const Persist* persist = subs[contributors[0]].ctx->FindPersist(node.id);
    QueryExecution::NodeOutput& output =
        parent.exec().mutable_outputs()[node.id];
    output.kind = node.kind;
    output.num_slots = persist != nullptr ? persist->num_slots : 0;
    output.bytes = std::move(merged);
    return Status::OK();
  }

  // Interior breaker: every partition device consumes the merged container
  // in the next pipeline, so push it back out — except a sole contributor,
  // whose device already holds exactly these bytes.
  for (size_t i = 0; i < subs.size(); ++i) {
    if (contributors.size() == 1 && i == contributors[0]) continue;
    ADAMANT_RETURN_NOT_OK(
        subs[i].ctx->PlacePersistBytes(node.id, merged.data(), merged.size())
            .WithContext(node.label));
  }
  return Status::OK();
}

Status RunPartitioned(RunContext& ctx, std::vector<SubRun>& subs,
                      const std::vector<DeviceId>& devices,
                      const std::vector<double>& weights,
                      const std::vector<DeviceCostEstimate>& estimates,
                      double* merge_host_ms) {
  const std::vector<Pipeline>& pipelines = ctx.pipelines();
  const bool rebalance = ctx.options().split_rebalance && subs.size() > 1;
  std::vector<std::string> names;
  for (DeviceId id : devices) names.push_back(ctx.manager()->device(id)->name());
  // Per-pipeline device slices for the profile: the sub-contexts run with
  // reset_device_state=false (the parent owns the snapshot), so the parent
  // thread samples each device's busy time at the pipeline boundaries —
  // safe here because the partition threads are joined at both sample
  // points and the lease is exclusive (parent reset_device_state).
  const bool profile = ctx.options().collect_profile &&
                       ctx.options().reset_device_state;
  struct Busy {
    sim::SimTime h2d = 0;
    sim::SimTime d2h = 0;
    sim::SimTime compute = 0;
  };
  auto sample_busy = [&ctx, &devices]() {
    std::vector<Busy> samples;
    for (DeviceId id : devices) {
      Busy busy;
      auto dev = ctx.manager()->GetDevice(id);
      if (dev.ok()) {
        busy.h2d = (*dev)->transfer_timeline().busy_time();
        busy.d2h = (*dev)->d2h_timeline().busy_time();
        busy.compute = (*dev)->compute_timeline().busy_time();
      }
      samples.push_back(busy);
    }
    return samples;
  };
  for (size_t pi = 0; pi < pipelines.size(); ++pi) {
    const Pipeline& pipeline = pipelines[pi];
    const size_t cap = ctx.ChunkCapacity(pipeline);
    const ChunkSource chunks(pipeline.input_rows, cap);
    const auto ranges = SplitChunksWeighted(chunks.total(), weights);
    // Per-chunk cost seeds for the virtual clocks, from the planning
    // estimate (same units — simulated us — as the observed corrections).
    std::vector<double> seeds(subs.size(), 1.0);
    if (estimates.size() == subs.size()) {
      for (size_t i = 0; i < subs.size(); ++i) {
        if (pi < estimates[i].pipeline_cost_us.size()) {
          seeds[i] = estimates[i].pipeline_cost_us[pi] /
                     static_cast<double>(chunks.total());
        }
      }
    }
    const auto pipeline_t0 = std::chrono::steady_clock::now();
    const std::vector<Busy> busy_before = profile ? sample_busy()
                                                  : std::vector<Busy>{};

    // Every partition runs its chunk sub-range concurrently — statically
    // when rebalancing is off, through the claim/steal pool when on. A
    // device with an empty range still runs BeginPipeline so its persists
    // exist to receive merged containers.
    StealPool pool(ranges, seeds, rebalance, ctx.options().cancel_token,
                   names, pi);
    std::vector<size_t> pipeline_runs(subs.size(), 0);
    std::vector<Status> statuses(subs.size());
    std::vector<std::thread> threads;
    threads.reserve(subs.size());
    for (size_t i = 0; i < subs.size(); ++i) {
      RunContext* sub = subs[i].ctx.get();
      const Pipeline* sub_pipeline = &sub->pipelines()[pi];
      Status* status = &statuses[i];
      auto dev = ctx.manager()->GetDevice(subs[i].device);
      if (!dev.ok()) return dev.status();
      SimulatedDevice* device = *dev;
      double* observed = &subs[i].observed_us;
      const size_t total = chunks.total();
      threads.emplace_back([sub, sub_pipeline, cap, total, &pool, i, device,
                            observed, status] {
        *status = RunPartitionRebalanced(*sub, *sub_pipeline, cap, total,
                                         pool, i, device, observed);
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& st : statuses) {
      ADAMANT_RETURN_NOT_OK(st);
    }
    for (size_t i = 0; i < subs.size(); ++i) {
      pipeline_runs[i] = pool.run(i);
      subs[i].chunks_run += pool.run(i);
      subs[i].chunks_stolen += pool.stolen(i);
    }

    // Host-side synchronization point before the merge.
    ADAMANT_RETURN_NOT_OK(ScheduleBarrier(ctx.manager(), devices));

    std::vector<size_t> contributors;
    for (size_t i = 0; i < subs.size(); ++i) {
      if (pipeline_runs[i] > 0) contributors.push_back(i);
    }
    for (int node_id : pipeline.nodes) {
      const GraphNode& node = ctx.graph()->node(node_id);
      if (!GetSignature(node.kind).pipeline_breaker) continue;
      obs::TraceSpan merge_span;
      if (obs::TracingEnabled()) {
        merge_span.Start(obs::kHostTrack, "merge:" + node.label);
      }
      ADAMANT_RETURN_NOT_OK(
          MergeBreaker(ctx, subs, node, contributors, merge_host_ms));
    }
    for (SubRun& sub : subs) {
      ADAMANT_RETURN_NOT_OK(
          sub.ctx->BindPersistOutputs(sub.ctx->pipelines()[pi]));
    }
    if (profile) {
      const std::vector<Busy> busy_after = sample_busy();
      obs::PipelineProfile pp;
      pp.index = static_cast<int>(pi);
      pp.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - pipeline_t0)
                       .count();
      pp.chunks = chunks.total();
      for (size_t i = 0; i < devices.size(); ++i) {
        obs::PipelineDeviceSlice slice;
        slice.device = static_cast<int>(devices[i]);
        slice.transfer_ms =
            static_cast<double>(busy_after[i].h2d - busy_before[i].h2d) /
            1000.0;
        slice.d2h_ms =
            static_cast<double>(busy_after[i].d2h - busy_before[i].d2h) /
            1000.0;
        slice.compute_ms = static_cast<double>(busy_after[i].compute -
                                               busy_before[i].compute) /
                           1000.0;
        pp.devices.push_back(slice);
      }
      ctx.exec().stats.profile.pipelines.push_back(std::move(pp));
    }
  }

  // Streaming terminal outputs: collect every partition's chunk parts and
  // restore global order by base row (each chunk ran exactly once on some
  // partition, so this is a concatenation-and-sort, not an interleave —
  // stealing moves whole chunks, never rows).
  for (SubRun& sub : subs) {
    for (auto& [node_id, out] : sub.ctx->exec().mutable_outputs()) {
      if (out.parts.empty()) continue;
      QueryExecution::NodeOutput& merged =
          ctx.exec().mutable_outputs()[node_id];
      merged.kind = out.kind;
      merged.elem_type = out.elem_type;
      for (QueryExecution::ChunkPart& part : out.parts) {
        merged.parts.push_back(std::move(part));
      }
      out.parts.clear();
    }
  }
  for (auto& [node_id, out] : ctx.exec().mutable_outputs()) {
    (void)node_id;
    std::sort(out.parts.begin(), out.parts.end(),
              [](const QueryExecution::ChunkPart& a,
                 const QueryExecution::ChunkPart& b) {
                return a.base_row < b.base_row;
              });
  }

  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                             ctx.manager()->GetDevice(id));
    dev->Synchronize();
  }
  return Status::OK();
}

}  // namespace

Status DeviceParallelDriver::Execute(RunContext& ctx) {
  // Resolve the partition device set: the options' set, or every plugged
  // device when unspecified.
  std::vector<DeviceId> devices = ctx.options().device_set;
  if (devices.empty()) {
    for (size_t i = 0; i < ctx.manager()->num_devices(); ++i) {
      devices.push_back(static_cast<DeviceId>(i));
    }
  }
  std::sort(devices.begin(), devices.end());
  devices.erase(std::unique(devices.begin(), devices.end()), devices.end());
  if (devices.empty()) {
    return Status::InvalidArgument(
        "device-parallel execution needs at least one device");
  }
  for (DeviceId id : devices) {
    ADAMANT_ASSIGN_OR_RETURN(SimulatedDevice * dev,
                             ctx.manager()->GetDevice(id));
    (void)dev;
  }
  for (const GraphNode& node : ctx.graph()->nodes()) {
    if (node.kind == PrimitiveKind::kPrefixSum ||
        node.kind == PrimitiveKind::kSortAgg) {
      return Status::NotSupported(
          node.label +
          ": global breakers (PREFIX_SUM / SORT_AGG) have no partition "
          "merge; use a single-device model");
    }
  }

  // Cost-ratio partitioning: price the graph on every partition device and
  // split the chunk range proportionally to effective throughput. Explicit
  // shares (options.device_split, parallel to the pre-sort device_set)
  // override the model; the estimate is still kept for the virtual-clock
  // seeds of the rebalancer.
  std::vector<DeviceCostEstimate> estimates;
  auto estimated =
      EstimateDeviceCosts(*ctx.graph(), ctx.manager(), devices, ctx.options());
  if (estimated.ok()) estimates = std::move(*estimated);
  std::vector<double> weights;
  if (!ctx.options().device_split.empty()) {
    std::map<DeviceId, double> by_device;
    const auto& set = ctx.options().device_set;
    for (size_t i = 0; i < set.size() && i < ctx.options().device_split.size();
         ++i) {
      by_device.emplace(set[i], ctx.options().device_split[i]);
    }
    for (DeviceId id : devices) {
      auto it = by_device.find(id);
      weights.push_back(it != by_device.end() ? it->second : 0.0);
    }
    weights = NormalizeSplit(std::move(weights), devices.size());
  } else if (!estimates.empty()) {
    weights = ThroughputWeights(estimates);
  } else {
    weights = NormalizeSplit({}, devices.size());
  }

  // An oversized device set collapses up front: a partition beyond the
  // largest pipeline's chunk count would run zero chunks in *every*
  // pipeline yet still pay BeginPipeline / persist setup and force breaker
  // round-trips. Keep the highest-share devices (ties to lower ids).
  ADAMANT_ASSIGN_OR_RETURN(
      size_t max_chunks,
      MaxPipelineChunks(*ctx.graph(), ctx.options(),
                        ctx.manager()->data_scale()));
  max_chunks = std::max<size_t>(max_chunks, 1);
  if (devices.size() > max_chunks) {
    std::vector<size_t> order(devices.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&weights](size_t a, size_t b) {
      return weights[a] != weights[b] ? weights[a] > weights[b] : a < b;
    });
    order.resize(max_chunks);
    std::sort(order.begin(), order.end());
    std::vector<DeviceId> kept_devices;
    std::vector<double> kept_weights;
    std::vector<DeviceCostEstimate> kept_estimates;
    for (size_t i : order) {
      kept_devices.push_back(devices[i]);
      kept_weights.push_back(weights[i]);
      if (estimates.size() == devices.size()) {
        kept_estimates.push_back(estimates[i]);
      }
    }
    devices = std::move(kept_devices);
    weights = NormalizeSplit(std::move(kept_weights), devices.size());
    estimates = std::move(kept_estimates);
  }

  ADAMANT_RETURN_NOT_OK(ctx.Prepare(devices));

  // One private graph clone + chunked RunContext per partition device. The
  // clone keeps the plan identical while retargeting every node, so each
  // sub-run is an ordinary single-device chunked execution.
  std::vector<SubRun> subs;
  subs.reserve(devices.size());
  Status st;
  for (DeviceId id : devices) {
    SubRun sub;
    sub.device = id;
    sub.graph = std::make_unique<PrimitiveGraph>(*ctx.graph());
    for (const GraphNode& node : ctx.graph()->nodes()) {
      sub.graph->mutable_node(node.id).device = id;
    }
    ExecutionOptions sub_options = ctx.options();
    sub_options.model = ExecutionModelKind::kChunked;
    sub_options.device_set.clear();
    sub_options.device_split.clear();
    // The parent already reset/snapshots device state for the whole set,
    // and collects the per-pipeline profile itself (around the partition
    // threads' join points).
    sub_options.reset_device_state = false;
    sub_options.collect_profile = false;
    sub.ctx = std::make_unique<RunContext>(ctx.manager(), sub.graph.get(),
                                           sub_options);
    st = sub.ctx->Prepare();
    subs.push_back(std::move(sub));
    if (!st.ok()) break;
  }

  double merge_host_ms = 0;
  if (st.ok()) {
    st = RunPartitioned(ctx, subs, devices, weights, estimates,
                        &merge_host_ms);
  }

  // Fold partition accounting into the parent before its FinalizeStats
  // (which adds, rather than assigns, exactly for this composition).
  if (st.ok()) {
    QueryStats& stats = ctx.exec().stats;
    stats.merge_host_ms += merge_host_ms;
    size_t total_chunks = 0;
    for (const SubRun& sub : subs) total_chunks += sub.chunks_run;
    size_t stolen_total = 0;
    for (size_t i = 0; i < subs.size(); ++i) {
      const SubRun& sub = subs[i];
      const int id = static_cast<int>(sub.device);
      const QueryStats& sub_stats = sub.ctx->exec().stats;
      stats.chunks += sub_stats.chunks;
      stats.chunks_by_device[id] += sub.chunks_run;
      stats.bytes_h2d += sub.ctx->hub().bytes_host_to_device();
      stats.bytes_d2h += sub.ctx->hub().bytes_device_to_host();
      stats.scan_cache_hits += sub.ctx->hub().scan_cache_hits();
      stats.scan_cache_misses += sub.ctx->hub().scan_cache_misses();
      stats.bytes_h2d_saved += sub.ctx->hub().bytes_h2d_saved();
      stats.split_ratio_by_device[id] = weights[i];
      stats.chunks_stolen_by_device[id] = sub.chunks_stolen;
      stolen_total += sub.chunks_stolen;
      if (estimates.size() == subs.size() && total_chunks > 0) {
        stats.split_predicted_chunk_us[id] =
            estimates[i].total_cost_us / static_cast<double>(total_chunks);
      }
      if (sub.chunks_run > 0) {
        stats.split_observed_chunk_us[id] =
            sub.observed_us / static_cast<double>(sub.chunks_run);
      }
      // Prometheus exposition: the planned split per device and the
      // process-wide steal total (obs_test asserts both).
      obs::GlobalMetrics()
          .GetGauge("adamant_split_ratio", "device",
                    ctx.manager()->device(sub.device)->name())
          ->Set(weights[i]);
    }
    obs::GlobalMetrics()
        .GetCounter("adamant_chunks_stolen_total")
        ->Add(static_cast<double>(stolen_total));
  }

  // EXPLAIN ANALYZE: fold partition operator stats on every path — the
  // partial tree of a cancelled or failed run still finalizes in the
  // parent (sub-graphs are clones, so node ids line up).
  if (ctx.options().collect_operator_stats) {
    for (const SubRun& sub : subs) {
      if (sub.ctx != nullptr) {
        ctx.MergeOperatorStats(sub.ctx->operator_stats());
      }
    }
  }

  // Partition cleanup on every path; the parent context's own ReleaseAll
  // runs in QueryExecutor::Run.
  for (SubRun& sub : subs) {
    if (sub.ctx != nullptr) sub.ctx->ReleaseAll();
  }
  return st;
}

}  // namespace adamant::exec
