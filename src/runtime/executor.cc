#include "runtime/executor.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "obs/trace.h"
#include "runtime/exec/model_driver.h"
#include "task/hash_table.h"

namespace adamant {

const char* ExecutionModelName(ExecutionModelKind kind) {
  switch (kind) {
    case ExecutionModelKind::kOperatorAtATime:
      return "operator-at-a-time";
    case ExecutionModelKind::kChunked:
      return "chunked";
    case ExecutionModelKind::kPipelined:
      return "pipelined";
    case ExecutionModelKind::kFourPhaseChunked:
      return "4-phase";
    case ExecutionModelKind::kFourPhasePipelined:
      return "4-phase-pipelined";
    case ExecutionModelKind::kDeviceParallel:
      return "device-parallel";
  }
  return "?";
}

const char* FusionModeName(FusionMode mode) {
  switch (mode) {
    case FusionMode::kOff:
      return "off";
    case FusionMode::kOn:
      return "on";
    case FusionMode::kAuto:
      return "auto";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Knob validation: the single authority for ExecutionOptions enums/ranges.
// ---------------------------------------------------------------------------

Status ValidateExecutionOptions(const ExecutionOptions& options) {
  switch (options.model) {
    case ExecutionModelKind::kOperatorAtATime:
    case ExecutionModelKind::kChunked:
    case ExecutionModelKind::kPipelined:
    case ExecutionModelKind::kFourPhaseChunked:
    case ExecutionModelKind::kFourPhasePipelined:
    case ExecutionModelKind::kDeviceParallel:
      break;
    default:
      return Status::InvalidArgument(
          "unknown execution model " +
          std::to_string(static_cast<int>(options.model)));
  }
  switch (options.kernel_variant) {
    case KernelVariantRequest::kAuto:
    case KernelVariantRequest::kScalar:
    case KernelVariantRequest::kParallel:
      break;
    default:
      return Status::InvalidArgument(
          "unknown kernel variant " +
          std::to_string(static_cast<int>(options.kernel_variant)));
  }
  switch (options.fusion) {
    case FusionMode::kOff:
    case FusionMode::kOn:
    case FusionMode::kAuto:
      break;
    default:
      return Status::InvalidArgument(
          "unknown fusion mode " +
          std::to_string(static_cast<int>(options.fusion)));
  }
  if (options.kernel_threads < 0 || options.kernel_threads > 1024) {
    return Status::InvalidArgument(
        "kernel_threads must be in [0, 1024], got " +
        std::to_string(options.kernel_threads));
  }
  if (options.chunk_elems == 0) {
    return Status::InvalidArgument("chunk_elems must be positive");
  }
  if (options.pipeline_depth > 1024) {
    return Status::InvalidArgument(
        "pipeline_depth must be at most 1024, got " +
        std::to_string(options.pipeline_depth));
  }
  if (!options.device_split.empty()) {
    if (options.model != ExecutionModelKind::kDeviceParallel) {
      return Status::InvalidArgument(
          "device_split only applies to the device-parallel model");
    }
    if (options.device_set.empty() ||
        options.device_split.size() != options.device_set.size()) {
      return Status::InvalidArgument(
          "device_split must name one share per device_set entry (" +
          std::to_string(options.device_split.size()) + " shares for " +
          std::to_string(options.device_set.size()) + " devices)");
    }
    for (double share : options.device_split) {
      if (!(share > 0) || share > 1e9) {
        return Status::InvalidArgument(
            "device_split shares must be positive finite values");
      }
    }
  }
  return Status::OK();
}

Result<KernelVariantRequest> ParseKernelVariant(const std::string& value) {
  if (value == "auto") return KernelVariantRequest::kAuto;
  if (value == "scalar") return KernelVariantRequest::kScalar;
  if (value == "parallel") return KernelVariantRequest::kParallel;
  return Status::InvalidArgument(
      "unknown kernel variant '" + value +
      "' (expected auto|scalar|parallel)");
}

Result<FusionMode> ParseFusionMode(const std::string& value) {
  if (value == "off") return FusionMode::kOff;
  if (value == "on") return FusionMode::kOn;
  if (value == "auto") return FusionMode::kAuto;
  return Status::InvalidArgument("unknown fusion mode '" + value +
                                 "' (expected off|on|auto)");
}

Result<ExecutionModelKind> ParseExecutionModel(const std::string& value) {
  if (value == "oaat") return ExecutionModelKind::kOperatorAtATime;
  if (value == "chunked") return ExecutionModelKind::kChunked;
  if (value == "pipelined") return ExecutionModelKind::kPipelined;
  if (value == "4phase") return ExecutionModelKind::kFourPhaseChunked;
  if (value == "4phase-pipelined") {
    return ExecutionModelKind::kFourPhasePipelined;
  }
  if (value == "device-parallel") return ExecutionModelKind::kDeviceParallel;
  return Status::InvalidArgument(
      "unknown execution model '" + value +
      "' (expected oaat|chunked|pipelined|4phase|4phase-pipelined|"
      "device-parallel)");
}

// ---------------------------------------------------------------------------
// QueryExecution result accessors.
// ---------------------------------------------------------------------------

Result<const QueryExecution::NodeOutput*> QueryExecution::Output(
    int node_id) const {
  auto it = outputs_.find(node_id);
  if (it == outputs_.end()) {
    return Status::NotFound("no output for node " + std::to_string(node_id));
  }
  return &it->second;
}

Result<int64_t> QueryExecution::AggValue(int node_id) const {
  ADAMANT_ASSIGN_OR_RETURN(const NodeOutput* output, Output(node_id));
  const bool agg_kind = output->kind == PrimitiveKind::kAggBlock ||
                        output->kind == PrimitiveKind::kFusedAgg;
  if (!agg_kind || output->bytes.size() != sizeof(int64_t)) {
    return Status::InvalidArgument("node " + std::to_string(node_id) +
                                   " is not an AGG_BLOCK result");
  }
  int64_t value;
  std::memcpy(&value, output->bytes.data(), sizeof(value));
  return value;
}

Result<std::vector<std::pair<int32_t, int64_t>>> QueryExecution::GroupResults(
    int node_id) const {
  ADAMANT_ASSIGN_OR_RETURN(const NodeOutput* output, Output(node_id));
  if (output->kind != PrimitiveKind::kHashAgg) {
    return Status::InvalidArgument("node " + std::to_string(node_id) +
                                   " is not a HASH_AGG result");
  }
  const auto* slots =
      reinterpret_cast<const HashTableLayout::AggSlot*>(output->bytes.data());
  const size_t n = output->bytes.size() / sizeof(HashTableLayout::AggSlot);
  std::vector<std::pair<int32_t, int64_t>> groups;
  for (size_t i = 0; i < n; ++i) {
    if (slots[i].key != HashTableLayout::kEmptyKey) {
      groups.emplace_back(slots[i].key, slots[i].value);
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

Result<std::vector<std::pair<int32_t, int32_t>>> QueryExecution::BuildEntries(
    int node_id) const {
  ADAMANT_ASSIGN_OR_RETURN(const NodeOutput* output, Output(node_id));
  if (output->kind != PrimitiveKind::kHashBuild) {
    return Status::InvalidArgument("node " + std::to_string(node_id) +
                                   " is not a HASH_BUILD result");
  }
  const auto* slots = reinterpret_cast<const HashTableLayout::BuildSlot*>(
      output->bytes.data());
  const size_t n = output->bytes.size() / sizeof(HashTableLayout::BuildSlot);
  std::vector<std::pair<int32_t, int32_t>> entries;
  for (size_t i = 0; i < n; ++i) {
    if (slots[i].key != HashTableLayout::kEmptyKey) {
      entries.emplace_back(slots[i].key, slots[i].payload);
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

Result<std::vector<int64_t>> QueryExecution::SortAggValues(int node_id) const {
  ADAMANT_ASSIGN_OR_RETURN(const NodeOutput* output, Output(node_id));
  if (output->kind != PrimitiveKind::kSortAgg) {
    return Status::InvalidArgument("node " + std::to_string(node_id) +
                                   " is not a SORT_AGG result");
  }
  std::vector<int64_t> values(output->bytes.size() / sizeof(int64_t));
  std::memcpy(values.data(), output->bytes.data(), output->bytes.size());
  return values;
}

// ---------------------------------------------------------------------------
// Executor: setup + driver dispatch + cleanup + stats finalization. All
// per-model control flow lives in the drivers under src/runtime/exec/.
// ---------------------------------------------------------------------------

Result<QueryExecution> QueryExecutor::Run(PrimitiveGraph* graph,
                                          const ExecutionOptions& options) {
  if (graph == nullptr) return Status::InvalidArgument("null graph");
  if (manager_ == nullptr || manager_->num_devices() == 0) {
    return Status::InvalidArgument("no devices plugged");
  }
  ADAMANT_RETURN_NOT_OK(ValidateExecutionOptions(options));
  ADAMANT_ASSIGN_OR_RETURN(std::unique_ptr<exec::ModelDriver> driver,
                           exec::MakeModelDriver(options.model));
  obs::TraceSpan query_span;
  if (obs::TracingEnabled()) {
    query_span.Start(obs::kHostTrack,
                     std::string("query:") + ExecutionModelName(options.model));
  }
  exec::RunContext context(manager_, graph, options);
  Status st = driver->Execute(context);
  // Delete phase / error cleanup: give every allocation back. Stats are
  // finalized on the error path too, so a stats_sink observes the partial
  // profile/operator tree of a cancelled or failed run.
  context.ReleaseAll();
  context.FinalizeStats();
  if (options.stats_sink != nullptr) *options.stats_sink = context.exec().stats;
  if (!st.ok()) return st;
  return context.TakeExecution();
}

}  // namespace adamant
