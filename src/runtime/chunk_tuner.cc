#include "runtime/chunk_tuner.h"

#include <algorithm>
#include <set>

#include "common/bit_util.h"
#include "task/kernels.h"

namespace adamant {

Result<size_t> SuggestChunkElems(const SimulatedDevice& device,
                                 const PrimitiveGraph& graph) {
  ADAMANT_ASSIGN_OR_RETURN(std::vector<Pipeline> pipelines,
                           graph.SplitPipelines());

  // Bytes of scan data per row of the widest pipeline (distinct columns).
  size_t widest_row_bytes = 0;
  for (const Pipeline& pipeline : pipelines) {
    std::set<const Column*> seen;
    size_t row_bytes = 0;
    for (int edge_id : pipeline.scan_edges) {
      const GraphEdge& edge = graph.edges()[static_cast<size_t>(edge_id)];
      if (seen.insert(edge.column.get()).second) {
        row_bytes += ElementSize(edge.elem_type);
      }
    }
    widest_row_bytes = std::max(widest_row_bytes, row_bytes);
  }
  if (widest_row_bytes == 0) {
    return Status::InvalidArgument("graph has no scan inputs");
  }

  // Budget: a quarter of device memory, split between dual staging buffers
  // (2x) and an equal allowance for intermediates (2x again). Graphs that
  // carry fused composites skip the interior materializations — the fused
  // group writes a single compacted output — so their transient allowance
  // halves and the chunk can grow into the reclaimed space.
  bool has_fused = false;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind == PrimitiveKind::kFused ||
        node.kind == PrimitiveKind::kFusedAgg) {
      has_fused = true;
      break;
    }
  }
  const size_t budget = device.perf_model().device_memory_bytes / 4;
  const size_t per_row = widest_row_bytes * (has_fused ? 3 : 4);
  size_t elems = budget / per_row;
  elems = bit_util::NextPowerOfTwo(std::max<size_t>(elems, 2)) / 2;  // floor
  size_t min_chunk = size_t{1} << 16;
  // Parallel-native devices want chunks holding several tiles per thread,
  // or the worker-pool variants run under-occupied (and tiny chunks fall
  // below the auto-fallback threshold entirely, wasting the cores).
  if (device.default_kernel_variant() == KernelVariant::kParallel) {
    const size_t parallel_floor =
        bit_util::NextPowerOfTwo(kernels::ParallelTileElems() *
                                 static_cast<size_t>(device.kernel_threads()) *
                                 4);
    min_chunk = std::max(min_chunk, parallel_floor);
  }
  constexpr size_t kMaxChunk = size_t{1} << 26;
  return std::clamp(elems, min_chunk, kMaxChunk);
}

}  // namespace adamant
