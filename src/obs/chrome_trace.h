#ifndef ADAMANT_OBS_CHROME_TRACE_H_
#define ADAMANT_OBS_CHROME_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adamant::obs {

/// The shared Chrome Trace Event serializer (chrome://tracing / Perfetto).
/// Both the live TraceRecorder and the simulated-timeline exporter
/// (sim/trace_export) render through this builder, so real and simulated
/// runs produce byte-compatible trace files.
///
/// One pid (0); each `track` becomes a thread with an "M" thread_name
/// metadata event followed by its "X" (complete) and "i" (instant) events
/// sorted by timestamp — Perfetto requires non-decreasing timestamps per
/// track, which the sort guarantees regardless of the order events were
/// recorded in.
class ChromeTraceBuilder {
 public:
  /// Names the track (thread) in the viewer. Unnamed tracks fall back to
  /// "track <id>".
  void SetTrackName(int track, const std::string& name);

  /// "X" complete event: [ts_us, ts_us + dur_us] on `track`. `args_json`,
  /// when non-empty, must be a complete JSON object (e.g. {"bytes":42})
  /// and is emitted verbatim as the event's args.
  void AddComplete(int track, double ts_us, double dur_us,
                   const std::string& name, const std::string& args_json = "");

  /// "i" instant event (thread scope) at ts_us on `track`.
  void AddInstant(int track, double ts_us, const std::string& name,
                  const std::string& args_json = "");

  /// "C" counter event at ts_us on `track`. `args_json` must be a JSON
  /// object of numeric series values ({"completed":12}); viewers plot each
  /// key as a stacked series, and trace_check enforces per-series
  /// monotonicity for counters named like totals.
  void AddCounter(int track, double ts_us, const std::string& name,
                  const std::string& args_json);

  size_t event_count() const { return events_.size(); }

  /// Serializes {"displayTimeUnit":"ms","traceEvents":[...]} with events
  /// grouped per track and sorted by timestamp within each track.
  std::string ToJson() const;

 private:
  struct Event {
    int track = 0;
    char phase = 'X';  // 'X' complete | 'i' instant | 'C' counter
    double ts = 0;
    double dur = 0;
    std::string name;
    std::string args;
  };

  std::map<int, std::string> track_names_;
  std::vector<Event> events_;
};

/// Escapes `"` and `\` for embedding in a JSON string literal.
std::string JsonEscape(const std::string& text);

}  // namespace adamant::obs

#endif  // ADAMANT_OBS_CHROME_TRACE_H_
