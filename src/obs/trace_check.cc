#include "obs/trace_check.h"

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

namespace adamant::obs {

namespace {

/// Minimal recursive-descent JSON parser — just enough structure to walk a
/// Chrome trace (objects, arrays, strings, numbers, literals). No external
/// dependency; the repo has no JSON library and must not grow one.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<std::unique_ptr<JsonValue>> items;
  std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>> fields;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::unique_ptr<JsonValue> Parse(std::string* error) {
    auto value = ParseValue();
    if (!value) {
      *error = error_.empty() ? "parse error" : error_;
      return nullptr;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      *error = "trailing data at offset " + std::to_string(pos_);
      return nullptr;
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  std::unique_ptr<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return nullptr;
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      auto value = std::make_unique<JsonValue>();
      value->kind = JsonValue::kBool;
      value->boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      auto value = std::make_unique<JsonValue>();
      value->kind = JsonValue::kBool;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::make_unique<JsonValue>();
    }
    Fail("unexpected character");
    return nullptr;
  }

  std::unique_ptr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key) return nullptr;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        Fail("expected ':'");
        return nullptr;
      }
      ++pos_;
      auto item = ParseValue();
      if (!item) return nullptr;
      value->fields.emplace_back(key->text, std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) {
        Fail("unterminated object");
        return nullptr;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return value;
      }
      Fail("expected ',' or '}'");
      return nullptr;
    }
  }

  std::unique_ptr<JsonValue> ParseArray() {
    ++pos_;  // '['
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      auto item = ParseValue();
      if (!item) return nullptr;
      value->items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) {
        Fail("unterminated array");
        return nullptr;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return value;
      }
      Fail("expected ',' or ']'");
      return nullptr;
    }
  }

  std::unique_ptr<JsonValue> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      Fail("expected string");
      return nullptr;
    }
    ++pos_;
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return value;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case 'n':
            value->text.push_back('\n');
            break;
          case 't':
            value->text.push_back('\t');
            break;
          case 'r':
            value->text.push_back('\r');
            break;
          case 'u':
            // Keep the raw escape; validation never compares unicode.
            value->text.append("\\u");
            if (pos_ + 5 < text_.size()) {
              value->text.append(text_.substr(pos_ + 2, 4));
              pos_ += 4;
            }
            break;
          default:
            value->text.push_back(esc);
        }
        pos_ += 2;
        continue;
      }
      value->text.push_back(c);
      ++pos_;
    }
    Fail("unterminated string");
    return nullptr;
  }

  std::unique_ptr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    auto value = std::make_unique<JsonValue>();
    value->kind = JsonValue::kNumber;
    try {
      value->number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      Fail("bad number");
      return nullptr;
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

bool StartsWith(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

}  // namespace

std::string TraceCheckResult::Summary() const {
  std::ostringstream out;
  out << (ok ? "OK" : "FAIL") << ": " << event_count << " events on "
      << track_count << " tracks";
  for (const auto& error : errors) out << "\n  error: " << error;
  return out.str();
}

TraceCheckResult ValidateChromeTrace(const std::string& json) {
  TraceCheckResult result;
  std::string parse_error;
  JsonParser parser(json);
  auto root = parser.Parse(&parse_error);
  if (!root) {
    result.errors.push_back("invalid JSON: " + parse_error);
    return result;
  }
  if (root->kind != JsonValue::kObject) {
    result.errors.push_back("top level is not an object");
    return result;
  }
  const JsonValue* events = root->Find("traceEvents");
  if (!events || events->kind != JsonValue::kArray) {
    result.errors.push_back("missing traceEvents array");
    return result;
  }

  struct Span {
    double start = 0;
    double end = 0;
    std::string name;
  };
  struct TrackState {
    double last_ts = 0;
    bool has_ts = false;
    std::vector<std::string> open_begins;      // B/E stack
    std::vector<Span> pipeline_spans;          // "pipeline..." complete spans
    std::vector<Span> chunk_spans;             // "chunk..." complete spans
    /// Last sample per counter series ("event name/arg key"). Every 'C'
    /// series ADAMANT emits is cumulative (service.queries finished/slow),
    /// so a decreasing sample means double counting or a clock glitch.
    std::map<std::string, double> counter_last;
  };
  std::map<std::pair<double, double>, TrackState> tracks;

  auto err = [&result](const std::string& message) {
    if (result.errors.size() < 16) result.errors.push_back(message);
  };

  for (size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& event = *events->items[i];
    if (event.kind != JsonValue::kObject) {
      err("event " + std::to_string(i) + " is not an object");
      continue;
    }
    const JsonValue* ph = event.Find("ph");
    const JsonValue* pid = event.Find("pid");
    const JsonValue* tid = event.Find("tid");
    if (!ph || ph->kind != JsonValue::kString || !pid || !tid) {
      err("event " + std::to_string(i) + " missing ph/pid/tid");
      continue;
    }
    const std::string& phase = ph->text;
    if (phase == "M") continue;  // metadata carries no timestamp
    ++result.event_count;

    TrackState& track = tracks[{pid->number, tid->number}];
    const JsonValue* ts = event.Find("ts");
    if (!ts || ts->kind != JsonValue::kNumber) {
      err("event " + std::to_string(i) + " missing numeric ts");
      continue;
    }
    if (track.has_ts && ts->number < track.last_ts) {
      err("event " + std::to_string(i) + " ts " + std::to_string(ts->number) +
          " goes backwards on its track (prev " +
          std::to_string(track.last_ts) + ")");
    }
    track.last_ts = ts->number;
    track.has_ts = true;

    const JsonValue* name = event.Find("name");
    const std::string event_name =
        name && name->kind == JsonValue::kString ? name->text : "";
    result.event_names.push_back(event_name);

    if (phase == "X") {
      const JsonValue* dur = event.Find("dur");
      if (!dur || dur->kind != JsonValue::kNumber) {
        err("complete event " + std::to_string(i) + " missing numeric dur");
        continue;
      }
      if (dur->number < 0) {
        err("complete event " + std::to_string(i) + " has negative dur");
        continue;
      }
      Span span{ts->number, ts->number + dur->number, event_name};
      if (StartsWith(event_name, "pipeline")) {
        track.pipeline_spans.push_back(span);
      } else if (StartsWith(event_name, "chunk")) {
        track.chunk_spans.push_back(span);
      }
    } else if (phase == "B") {
      track.open_begins.push_back(event_name);
    } else if (phase == "E") {
      if (track.open_begins.empty()) {
        err("E without matching B at event " + std::to_string(i));
      } else {
        if (!event_name.empty() && track.open_begins.back() != event_name) {
          err("E name '" + event_name + "' does not match open B '" +
              track.open_begins.back() + "'");
        }
        track.open_begins.pop_back();
      }
    } else if (phase == "C") {
      // Counter sample: args must be an object of numeric series, and each
      // series must be non-decreasing along its track (ADAMANT counters are
      // cumulative by contract — see TraceRecorder::RecordCounter).
      const JsonValue* cargs = event.Find("args");
      if (!cargs || cargs->kind != JsonValue::kObject) {
        err("counter event " + std::to_string(i) +
            " ('" + event_name + "') missing args object");
        continue;
      }
      for (const auto& [key, val] : cargs->fields) {
        if (!val || val->kind != JsonValue::kNumber) {
          err("counter event " + std::to_string(i) + " series '" +
              event_name + "/" + key + "' is not numeric");
          continue;
        }
        const std::string series = event_name + "/" + key;
        auto it = track.counter_last.find(series);
        if (it != track.counter_last.end() && val->number < it->second) {
          err("counter series '" + series + "' decreases at event " +
              std::to_string(i) + " (" + std::to_string(val->number) +
              " after " + std::to_string(it->second) + ")");
        }
        track.counter_last[series] = val->number;
      }
    } else if (phase != "i" && phase != "I") {
      err("unsupported phase '" + phase + "' at event " + std::to_string(i));
    }
  }

  for (const auto& [key, track] : tracks) {
    if (!track.open_begins.empty()) {
      err(std::to_string(track.open_begins.size()) +
          " unbalanced B event(s) on track " + std::to_string(key.second));
    }
    for (const Span& chunk : track.chunk_spans) {
      bool nested = false;
      for (const Span& pipeline : track.pipeline_spans) {
        if (pipeline.start <= chunk.start && chunk.end <= pipeline.end) {
          nested = true;
          break;
        }
      }
      if (!nested) {
        err("chunk span '" + chunk.name + "' [" + std::to_string(chunk.start) +
            "," + std::to_string(chunk.end) +
            "] not nested in any pipeline span on track " +
            std::to_string(key.second));
      }
    }
  }

  result.track_count = tracks.size();
  result.ok = result.errors.empty();
  return result;
}

}  // namespace adamant::obs
