#ifndef ADAMANT_OBS_PROFILE_H_
#define ADAMANT_OBS_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adamant::obs {

class MetricsRegistry;

/// One device's share of one pipeline: time this device spent moving data
/// in (H2D), moving results out (D2H), and computing, while the pipeline
/// was running. Milliseconds throughout.
struct PipelineDeviceSlice {
  int device = 0;
  double transfer_ms = 0;  // H2D
  double d2h_ms = 0;
  double compute_ms = 0;
};

/// Per-pipeline breakdown within a query run.
struct PipelineProfile {
  int index = 0;
  double wall_ms = 0;
  size_t chunks = 0;
  /// True when the run was cancelled (deadline, client cancel, watchdog)
  /// while this pipeline was executing — its chunk count and timings cover
  /// only the work done before the token tripped.
  bool cancelled = false;
  std::vector<PipelineDeviceSlice> devices;
};

/// Whole-run totals for one device across all pipelines.
struct DeviceProfile {
  std::string name;
  double transfer_ms = 0;  // H2D
  double d2h_ms = 0;
  double compute_ms = 0;
  double kernel_body_ms = 0;
  size_t kernel_launches = 0;
  /// Fused-composite launches and their share of kernel_body_ms, split out
  /// so fusion wins are attributable (kernel_launches counts them too).
  size_t fused_launches = 0;
  double fused_body_ms = 0;
};

/// One operator's share of one run on one partition device. Single-device
/// models record exactly one slice per operator; the device-parallel model
/// merges one slice per partition device.
struct OperatorDeviceSlice {
  int device = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  size_t launches = 0;
  double kernel_ms = 0;
};

/// EXPLAIN ANALYZE: one lowered-plan node's predicted vs measured runtime,
/// aligned node-for-node with the primitive graph (node_id/label/kind).
/// Collected by RunContext when ExecutionOptions::collect_operator_stats is
/// set; predictions are stamped from the graph annotations and the node
/// device's perf model at finalize time.
struct OperatorStats {
  int node_id = -1;
  int pipeline = -1;
  std::string label;
  std::string kind;
  /// Links this operator back to the logical construct it lowered from
  /// (e.g. "step:lower.filter(l_shipdate)"); empty when the operator
  /// carries no selectivity estimate. Consumed by the selectivity feedback
  /// cache (plan/feedback.h).
  std::string feedback_key;
  /// True for kinds whose NodeConfig::selectivity sizes output buffers
  /// (FILTER_POSITION / MATERIALIZE / HASH_PROBE / FUSED) — the operators
  /// a selectivity q-error is meaningful for.
  bool selective = false;

  // --- Predicted ---
  double predicted_selectivity = 1.0;
  double predicted_rows_in = 0;
  double predicted_rows_out = 0;
  /// Arithmetic per-node simulated cost (us), same model as
  /// EstimateSimCostUs: one launch per chunk at full chunk cardinality.
  double predicted_cost_us = 0;

  // --- Measured ---
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Largest per-chunk rows_out/rows_in — what output buffers must actually
  /// absorb (the feedback cache applies this, not the run average).
  double max_chunk_selectivity = 0;
  size_t launches = 0;
  double kernel_ms = 0;  // wall time inside Execute, all variants
  double scalar_ms = 0;
  double parallel_ms = 0;
  double fused_ms = 0;
  uint64_t bytes_h2d = 0;
  uint64_t bytes_d2h = 0;
  size_t cache_hits = 0;
  std::vector<OperatorDeviceSlice> devices;

  double ActualSelectivity() const {
    return rows_in == 0 ? 0.0
                        : static_cast<double>(rows_out) /
                              static_cast<double>(rows_in);
  }
};

/// q-error (Leis et al., "How Good Are Query Optimizers, Really?"):
/// max(predicted/actual, actual/predicted), >= 1. Zero-sided estimates
/// clamp to a tiny floor so a missed empty/full prediction yields a large
/// finite error instead of inf.
double QError(double predicted, double actual);

/// The paper's Fig. 10/11-style phase breakdown for one live query:
/// where did the time go — queue wait, device transfer vs compute per
/// pipeline and per device, host-side merges. Filled by the executor when
/// ExecutionOptions::collect_profile is set; queue_wait_ms is stamped by
/// the service layer. All times are milliseconds.
struct QueryProfile {
  bool collected = false;
  /// Why the run ended early, or empty for a completed run: "user",
  /// "deadline", or "watchdog" (CancelCauseToString of the tripped token).
  std::string cancelled_cause;
  double queue_wait_ms = 0;
  double run_ms = 0;
  double merge_host_ms = 0;
  std::vector<PipelineProfile> pipelines;
  std::vector<DeviceProfile> devices;
  /// EXPLAIN ANALYZE tree (node-id order), present when the run collected
  /// operator stats.
  std::vector<OperatorStats> operators;

  std::string ToJson() const;
};

/// Observes every operator's selectivity and cost q-error into the
/// `adamant_plan_qerror_selectivity` / `adamant_plan_qerror_cost`
/// histograms of `metrics` (labelled by query name). Cost q-errors compare
/// normalized cost *shares* (each side divided by its total), so the
/// comparison needs no sim-us-to-wall calibration.
void RecordPlanQErrors(MetricsRegistry* metrics, const std::string& query_name,
                       const std::vector<OperatorStats>& operators);

}  // namespace adamant::obs

#endif  // ADAMANT_OBS_PROFILE_H_
