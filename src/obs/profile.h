#ifndef ADAMANT_OBS_PROFILE_H_
#define ADAMANT_OBS_PROFILE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace adamant::obs {

/// One device's share of one pipeline: time this device spent moving data
/// in (H2D), moving results out (D2H), and computing, while the pipeline
/// was running. Milliseconds throughout.
struct PipelineDeviceSlice {
  int device = 0;
  double transfer_ms = 0;  // H2D
  double d2h_ms = 0;
  double compute_ms = 0;
};

/// Per-pipeline breakdown within a query run.
struct PipelineProfile {
  int index = 0;
  double wall_ms = 0;
  size_t chunks = 0;
  /// True when the run was cancelled (deadline, client cancel, watchdog)
  /// while this pipeline was executing — its chunk count and timings cover
  /// only the work done before the token tripped.
  bool cancelled = false;
  std::vector<PipelineDeviceSlice> devices;
};

/// Whole-run totals for one device across all pipelines.
struct DeviceProfile {
  std::string name;
  double transfer_ms = 0;  // H2D
  double d2h_ms = 0;
  double compute_ms = 0;
  double kernel_body_ms = 0;
  size_t kernel_launches = 0;
};

/// The paper's Fig. 10/11-style phase breakdown for one live query:
/// where did the time go — queue wait, device transfer vs compute per
/// pipeline and per device, host-side merges. Filled by the executor when
/// ExecutionOptions::collect_profile is set; queue_wait_ms is stamped by
/// the service layer. All times are milliseconds.
struct QueryProfile {
  bool collected = false;
  /// Why the run ended early, or empty for a completed run: "user",
  /// "deadline", or "watchdog" (CancelCauseToString of the tripped token).
  std::string cancelled_cause;
  double queue_wait_ms = 0;
  double run_ms = 0;
  double merge_host_ms = 0;
  std::vector<PipelineProfile> pipelines;
  std::vector<DeviceProfile> devices;

  std::string ToJson() const;
};

}  // namespace adamant::obs

#endif  // ADAMANT_OBS_PROFILE_H_
