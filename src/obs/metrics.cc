#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace adamant::obs {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current && !target->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

std::string FormatValue(double value) {
  if (value == std::floor(value) && std::abs(value) < 9e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string SeriesKey(const std::string& name, const std::string& label_key,
                      const std::string& label_value) {
  if (label_key.empty()) return name;
  return name + "{" + label_key + "=\"" + label_value + "\"}";
}

}  // namespace

void Counter::Add(double delta) { AtomicAddDouble(&value_, delta); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  bool seen = has_data_.load(std::memory_order_relaxed);
  if (!seen) {
    // First observer seeds min/max; losers of this race fall through to the
    // CAS min/max below, which handle the value correctly either way.
    double expected = 0.0;
    if (min_.compare_exchange_strong(expected, value,
                                     std::memory_order_relaxed)) {
      max_.store(value, std::memory_order_relaxed);
    }
    has_data_.store(true, std::memory_order_release);
  }
  AtomicMinDouble(&min_, value);
  AtomicMaxDouble(&max_, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Min() const {
  return has_data_.load(std::memory_order_acquire)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::Max() const {
  return has_data_.load(std::memory_order_acquire)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::Quantile(double q) const {
  const uint64_t count = Count();
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : Max();
      const double within =
          in_bucket == 1
              ? 0.5
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket - 1);
      const double estimate = lo + (hi - lo) * within;
      return std::min(Max(), std::max(Min(), estimate));
    }
    seen += in_bucket;
  }
  return Max();
}

std::vector<double> LatencyBucketsMs() {
  return {0.01, 0.02, 0.05, 0.1,  0.2,  0.5,   1.0,   2.0,    5.0,    10.0,
          20.0, 50.0, 100., 200., 500., 1000., 2000., 5000., 10000., 30000.,
          100000.};
}

std::vector<double> ByteBuckets() {
  std::vector<double> bounds;
  for (double b = 1024.0; b <= 4.0 * 1024 * 1024 * 1024; b *= 4.0) {
    bounds.push_back(b);
  }
  return bounds;
}

std::vector<double> QErrorBuckets() {
  return {1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0, 1000.0};
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& label_key,
                                     const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  family.type = "counter";
  auto& slot = family.counters[{label_key, label_value}];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& label_key,
                                 const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  family.type = "gauge";
  auto& slot = family.gauges[{label_key, label_value}];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& label_key,
                                         const std::string& label_value) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  family.type = "histogram";
  auto& slot = family.histograms[{label_key, label_value}];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, family] : families_) {
    out << "# TYPE " << name << " " << family.type << "\n";
    auto label_text = [](const std::pair<std::string, std::string>& label,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
      std::string text;
      if (!label.first.empty()) {
        text = label.first + "=\"" + label.second + "\"";
      }
      if (!extra_key.empty()) {
        if (!text.empty()) text += ",";
        text += extra_key + "=\"" + extra_value + "\"";
      }
      if (text.empty()) return std::string();
      return "{" + text + "}";
    };
    for (const auto& [label, counter] : family.counters) {
      out << name << label_text(label) << " " << FormatValue(counter->Value())
          << "\n";
    }
    for (const auto& [label, gauge] : family.gauges) {
      out << name << label_text(label) << " " << FormatValue(gauge->Value())
          << "\n";
    }
    for (const auto& [label, histogram] : family.histograms) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < histogram->NumBuckets(); ++i) {
        cumulative += histogram->BucketCount(i);
        const std::string le = i < histogram->bounds().size()
                                   ? FormatValue(histogram->bounds()[i])
                                   : "+Inf";
        out << name << "_bucket" << label_text(label, "le", le) << " "
            << cumulative << "\n";
      }
      out << name << "_sum" << label_text(label) << " "
          << FormatValue(histogram->Sum()) << "\n";
      out << name << "_count" << label_text(label) << " " << histogram->Count()
          << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  auto emit_key = [&](const std::string& key) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    for (char c : key) {  // series keys embed label quotes — escape for JSON
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\":";
  };
  for (const auto& [name, family] : families_) {
    for (const auto& [label, counter] : family.counters) {
      emit_key(SeriesKey(name, label.first, label.second));
      out << FormatValue(counter->Value());
    }
    for (const auto& [label, gauge] : family.gauges) {
      emit_key(SeriesKey(name, label.first, label.second));
      out << FormatValue(gauge->Value());
    }
    for (const auto& [label, histogram] : family.histograms) {
      emit_key(SeriesKey(name, label.first, label.second));
      out << "{\"count\":" << histogram->Count()
          << ",\"sum\":" << FormatValue(histogram->Sum())
          << ",\"p50\":" << FormatValue(histogram->Quantile(0.5))
          << ",\"p95\":" << FormatValue(histogram->Quantile(0.95)) << "}";
    }
  }
  out << "}";
  return out.str();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

}  // namespace adamant::obs
