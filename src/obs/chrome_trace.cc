#include "obs/chrome_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace adamant::obs {

namespace {

/// Timestamps are microseconds; integral values print without a decimal
/// point (the common case for both simulated times and steady_clock deltas)
/// so traces stay compact and byte-stable.
void AppendNumber(double value, std::ostringstream* out) {
  if (value == std::floor(value) && std::abs(value) < 9e15) {
    *out << static_cast<long long>(value);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  *out << buf;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return escaped;
}

void ChromeTraceBuilder::SetTrackName(int track, const std::string& name) {
  track_names_[track] = name;
}

void ChromeTraceBuilder::AddComplete(int track, double ts_us, double dur_us,
                                     const std::string& name,
                                     const std::string& args_json) {
  Event event;
  event.track = track;
  event.ts = ts_us;
  event.dur = dur_us;
  event.name = name;
  event.args = args_json;
  events_.push_back(std::move(event));
}

void ChromeTraceBuilder::AddInstant(int track, double ts_us,
                                    const std::string& name,
                                    const std::string& args_json) {
  Event event;
  event.track = track;
  event.phase = 'i';
  event.ts = ts_us;
  event.name = name;
  event.args = args_json;
  events_.push_back(std::move(event));
}

void ChromeTraceBuilder::AddCounter(int track, double ts_us,
                                    const std::string& name,
                                    const std::string& args_json) {
  Event event;
  event.track = track;
  event.phase = 'C';
  event.ts = ts_us;
  event.name = name;
  event.args = args_json;
  events_.push_back(std::move(event));
}

std::string ChromeTraceBuilder::ToJson() const {
  // Per-track timestamp order; a longer span sorts before a shorter one at
  // the same start so nesting reads outer-to-inner. stable_sort keeps the
  // recording order as the final tiebreak.
  std::vector<const Event*> sorted;
  sorted.reserve(events_.size());
  for (const Event& event : events_) sorted.push_back(&event);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) {
                     if (a->track != b->track) return a->track < b->track;
                     if (a->ts != b->ts) return a->ts < b->ts;
                     return a->dur > b->dur;
                   });

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  int open_track = -1;
  bool open_track_valid = false;
  auto emit_track_meta = [&](int track) {
    if (open_track_valid && open_track == track) return;
    open_track = track;
    open_track_valid = true;
    if (!first) out << ",";
    first = false;
    auto it = track_names_.find(track);
    const std::string name = it != track_names_.end()
                                 ? it->second
                                 : "track " + std::to_string(track);
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << JsonEscape(name) << "\"}}";
  };
  // Tracks that were named but recorded no events still get their metadata
  // (an idle device shows as an empty named track, not nothing).
  for (const auto& [track, name] : track_names_) {
    (void)name;
    bool has_events = false;
    for (const Event* event : sorted) {
      if (event->track == track) {
        has_events = true;
        break;
      }
    }
    if (!has_events) emit_track_meta(track);
  }
  open_track_valid = false;
  for (const Event* event : sorted) {
    emit_track_meta(event->track);
    out << ",{\"ph\":\"" << event->phase
        << "\",\"pid\":0,\"tid\":" << event->track << ",\"ts\":";
    AppendNumber(event->ts, &out);
    if (event->phase == 'X') {
      out << ",\"dur\":";
      AppendNumber(event->dur, &out);
    } else if (event->phase == 'i') {
      out << ",\"s\":\"t\"";
    }
    out << ",\"name\":\"" << JsonEscape(event->name.empty() ? "op"
                                                            : event->name)
        << "\"";
    if (!event->args.empty()) out << ",\"args\":" << event->args;
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace adamant::obs
