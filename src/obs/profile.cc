#include "obs/profile.h"

#include <cstdio>
#include <sstream>

#include "obs/chrome_trace.h"

namespace adamant::obs {

namespace {

std::string Ms(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace

std::string QueryProfile::ToJson() const {
  std::ostringstream out;
  out << "{\"queue_wait_ms\":" << Ms(queue_wait_ms);
  if (!cancelled_cause.empty()) {
    out << ",\"cancelled\":\"" << JsonEscape(cancelled_cause) << "\"";
  }
  out << ",\"run_ms\":" << Ms(run_ms)
      << ",\"merge_host_ms\":" << Ms(merge_host_ms) << ",\"pipelines\":[";
  for (size_t i = 0; i < pipelines.size(); ++i) {
    const PipelineProfile& pipeline = pipelines[i];
    if (i) out << ",";
    out << "{\"index\":" << pipeline.index
        << ",\"wall_ms\":" << Ms(pipeline.wall_ms)
        << ",\"chunks\":" << pipeline.chunks;
    if (pipeline.cancelled) out << ",\"cancelled\":true";
    out << ",\"devices\":[";
    for (size_t j = 0; j < pipeline.devices.size(); ++j) {
      const PipelineDeviceSlice& slice = pipeline.devices[j];
      if (j) out << ",";
      out << "{\"device\":" << slice.device
          << ",\"transfer_ms\":" << Ms(slice.transfer_ms)
          << ",\"d2h_ms\":" << Ms(slice.d2h_ms)
          << ",\"compute_ms\":" << Ms(slice.compute_ms) << "}";
    }
    out << "]}";
  }
  out << "],\"devices\":[";
  for (size_t i = 0; i < devices.size(); ++i) {
    const DeviceProfile& device = devices[i];
    if (i) out << ",";
    out << "{\"name\":\"" << JsonEscape(device.name)
        << "\",\"transfer_ms\":" << Ms(device.transfer_ms)
        << ",\"d2h_ms\":" << Ms(device.d2h_ms)
        << ",\"compute_ms\":" << Ms(device.compute_ms)
        << ",\"kernel_body_ms\":" << Ms(device.kernel_body_ms)
        << ",\"kernel_launches\":" << device.kernel_launches << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace adamant::obs
