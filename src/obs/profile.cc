#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"

namespace adamant::obs {

namespace {

std::string Ms(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

// Floor for q-error operands: a prediction (or actual) of exactly zero
// against a nonzero counterpart becomes a large finite error, and 0-vs-0
// becomes a perfect 1.0.
constexpr double kQErrorFloor = 1e-9;

}  // namespace

double QError(double predicted, double actual) {
  const double p = std::max(predicted, kQErrorFloor);
  const double a = std::max(actual, kQErrorFloor);
  return std::max(p / a, a / p);
}

std::string QueryProfile::ToJson() const {
  std::ostringstream out;
  out << "{\"queue_wait_ms\":" << Ms(queue_wait_ms);
  if (!cancelled_cause.empty()) {
    out << ",\"cancelled\":\"" << JsonEscape(cancelled_cause) << "\"";
  }
  out << ",\"run_ms\":" << Ms(run_ms)
      << ",\"merge_host_ms\":" << Ms(merge_host_ms) << ",\"pipelines\":[";
  for (size_t i = 0; i < pipelines.size(); ++i) {
    const PipelineProfile& pipeline = pipelines[i];
    if (i) out << ",";
    out << "{\"index\":" << pipeline.index
        << ",\"wall_ms\":" << Ms(pipeline.wall_ms)
        << ",\"chunks\":" << pipeline.chunks;
    if (pipeline.cancelled) out << ",\"cancelled\":true";
    out << ",\"devices\":[";
    for (size_t j = 0; j < pipeline.devices.size(); ++j) {
      const PipelineDeviceSlice& slice = pipeline.devices[j];
      if (j) out << ",";
      out << "{\"device\":" << slice.device
          << ",\"transfer_ms\":" << Ms(slice.transfer_ms)
          << ",\"d2h_ms\":" << Ms(slice.d2h_ms)
          << ",\"compute_ms\":" << Ms(slice.compute_ms) << "}";
    }
    out << "]}";
  }
  out << "],\"devices\":[";
  for (size_t i = 0; i < devices.size(); ++i) {
    const DeviceProfile& device = devices[i];
    if (i) out << ",";
    out << "{\"name\":\"" << JsonEscape(device.name)
        << "\",\"transfer_ms\":" << Ms(device.transfer_ms)
        << ",\"d2h_ms\":" << Ms(device.d2h_ms)
        << ",\"compute_ms\":" << Ms(device.compute_ms)
        << ",\"kernel_body_ms\":" << Ms(device.kernel_body_ms)
        << ",\"kernel_launches\":" << device.kernel_launches
        << ",\"fused_launches\":" << device.fused_launches
        << ",\"fused_body_ms\":" << Ms(device.fused_body_ms) << "}";
  }
  out << "]";
  if (!operators.empty()) {
    out << ",\"operators\":[";
    for (size_t i = 0; i < operators.size(); ++i) {
      const OperatorStats& op = operators[i];
      if (i) out << ",";
      out << "{\"node\":" << op.node_id << ",\"pipeline\":" << op.pipeline
          << ",\"kind\":\"" << JsonEscape(op.kind) << "\",\"label\":\""
          << JsonEscape(op.label) << "\"";
      if (!op.feedback_key.empty()) {
        out << ",\"feedback_key\":\"" << JsonEscape(op.feedback_key) << "\"";
      }
      out << ",\"rows_in\":" << op.rows_in << ",\"rows_out\":" << op.rows_out
          << ",\"predicted_rows_out\":" << Ms(op.predicted_rows_out);
      if (op.selective) {
        out << ",\"predicted_selectivity\":" << Ms(op.predicted_selectivity)
            << ",\"actual_selectivity\":" << Ms(op.ActualSelectivity())
            << ",\"max_chunk_selectivity\":" << Ms(op.max_chunk_selectivity)
            << ",\"selectivity_qerror\":"
            << Ms(QError(op.predicted_selectivity, op.ActualSelectivity()));
      }
      out << ",\"predicted_cost_us\":" << Ms(op.predicted_cost_us)
          << ",\"kernel_ms\":" << Ms(op.kernel_ms)
          << ",\"scalar_ms\":" << Ms(op.scalar_ms)
          << ",\"parallel_ms\":" << Ms(op.parallel_ms)
          << ",\"fused_ms\":" << Ms(op.fused_ms)
          << ",\"launches\":" << op.launches
          << ",\"bytes_h2d\":" << op.bytes_h2d
          << ",\"bytes_d2h\":" << op.bytes_d2h
          << ",\"cache_hits\":" << op.cache_hits << ",\"devices\":[";
      for (size_t j = 0; j < op.devices.size(); ++j) {
        const OperatorDeviceSlice& slice = op.devices[j];
        if (j) out << ",";
        out << "{\"device\":" << slice.device
            << ",\"rows_in\":" << slice.rows_in
            << ",\"rows_out\":" << slice.rows_out
            << ",\"launches\":" << slice.launches
            << ",\"kernel_ms\":" << Ms(slice.kernel_ms) << "}";
      }
      out << "]}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

void RecordPlanQErrors(MetricsRegistry* metrics, const std::string& query_name,
                       const std::vector<OperatorStats>& operators) {
  if (metrics == nullptr || operators.empty()) return;
  Histogram* sel_hist = metrics->GetHistogram("adamant_plan_qerror_selectivity",
                                              QErrorBuckets(), "query",
                                              query_name);
  Histogram* cost_hist = metrics->GetHistogram("adamant_plan_qerror_cost",
                                               QErrorBuckets(), "query",
                                               query_name);
  double pred_total = 0;
  double actual_total = 0;
  for (const OperatorStats& op : operators) {
    pred_total += op.predicted_cost_us;
    actual_total += op.kernel_ms;
  }
  for (const OperatorStats& op : operators) {
    if (op.selective && op.rows_in > 0) {
      sel_hist->Observe(QError(op.predicted_selectivity,
                               op.ActualSelectivity()));
    }
    // Cost q-error compares each operator's *share* of the total, so the
    // simulated-us prediction and wall-ms measurement need no common unit.
    if (pred_total > 0 && actual_total > 0 && op.launches > 0) {
      cost_hist->Observe(QError(op.predicted_cost_us / pred_total,
                                op.kernel_ms / actual_total));
    }
  }
}

}  // namespace adamant::obs
