#ifndef ADAMANT_OBS_METRICS_H_
#define ADAMANT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace adamant::obs {

/// Monotonic counter. Backed by an atomic double (CAS add) so fractional
/// quantities (milliseconds, fractions of bytes saved) work; integer adds
/// stay exact up to 2^53, far beyond any counter in this codebase.
class Counter {
 public:
  void Add(double delta);
  void Increment() { Add(1.0); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// plus an implicit overflow bucket. Observations are lock-free (atomic
/// bucket counts + CAS-updated sum/min/max), so hot paths can record
/// without coordination.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;
  double Max() const;

  /// Quantile estimate (q in [0,1]): finds the bucket holding rank
  /// q*(count-1) and interpolates linearly inside it, clamped to the
  /// observed [min, max] so estimates never fall outside real data.
  /// Returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t NumBuckets() const { return buckets_.size(); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_data_{false};
};

/// Default bucket layout for latency histograms, in milliseconds. Spans
/// 10us-class kernel launches through 100s-class soaks at ~2-2.5x steps.
std::vector<double> LatencyBucketsMs();

/// Default bucket layout for byte-count histograms (1KiB .. 4GiB).
std::vector<double> ByteBuckets();

/// Default bucket layout for q-error histograms (dimensionless, >= 1):
/// dense near the perfect-estimate end, sparse toward order-of-magnitude
/// misses.
std::vector<double> QErrorBuckets();

/// Named metric registry. Instruments are created on first use and live as
/// long as the registry (pointers remain stable), keyed by
/// `name{label_key="label_value"}` in Prometheus style. Lookup takes the
/// registry mutex; hot paths should cache the returned pointer.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& label_key = "",
                      const std::string& label_value = "");
  Gauge* GetGauge(const std::string& name, const std::string& label_key = "",
                  const std::string& label_value = "");
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& label_key = "",
                          const std::string& label_value = "");

  /// Prometheus text exposition format (one `# TYPE` line per metric
  /// family; histograms expose _bucket/_sum/_count series).
  std::string ToPrometheusText() const;

  /// JSON object {"metric{label}":value,...}; histograms expose
  /// count/sum/p50/p95.
  std::string ToJson() const;

 private:
  struct Family {
    std::string type;  // "counter" | "gauge" | "histogram"
    // Keyed by label pair ("","") for unlabeled.
    std::map<std::pair<std::string, std::string>, std::unique_ptr<Counter>>
        counters;
    std::map<std::pair<std::string, std::string>, std::unique_ptr<Gauge>> gauges;
    std::map<std::pair<std::string, std::string>, std::unique_ptr<Histogram>>
        histograms;
  };

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Process-wide registry for ownerless instrumentation (transfer-hub byte
/// totals, kernel launches, fault injections). Service-layer metrics live
/// in each QueryService's own registry so concurrent services in one
/// process (as in tests) stay independent.
MetricsRegistry& GlobalMetrics();

}  // namespace adamant::obs

#endif  // ADAMANT_OBS_METRICS_H_
