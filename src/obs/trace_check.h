#ifndef ADAMANT_OBS_TRACE_CHECK_H_
#define ADAMANT_OBS_TRACE_CHECK_H_

#include <string>
#include <vector>

namespace adamant::obs {

/// Result of validating a Chrome Trace Event JSON document.
struct TraceCheckResult {
  bool ok = false;
  size_t event_count = 0;   // non-metadata events
  size_t track_count = 0;   // distinct (pid, tid) pairs with events
  std::vector<std::string> errors;
  /// Every non-metadata event's name in file order (duplicates kept), so
  /// callers (check_trace --require=...) can assert specific spans exist.
  std::vector<std::string> event_names;

  std::string Summary() const;
};

/// Structural validation of a Chrome trace:
///  - the document parses as JSON with a `traceEvents` array;
///  - every event has ph/pid/tid, "X" events have numeric ts and dur >= 0,
///    "B"/"E" pairs balance per track (LIFO) with matching names;
///  - timestamps are non-decreasing per track in file order (what Perfetto
///    requires for clean rendering);
///  - every span named `chunk...` is contained within some span named
///    `pipeline...` on the same track (nesting invariant of the executor's
///    instrumentation).
TraceCheckResult ValidateChromeTrace(const std::string& json);

}  // namespace adamant::obs

#endif  // ADAMANT_OBS_TRACE_CHECK_H_
