#ifndef ADAMANT_OBS_TRACE_H_
#define ADAMANT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace adamant::obs {

/// Track ids: device events record on the DeviceId itself (0..N-1); the
/// reserved tracks below hold host-side and service-layer events. Keeping
/// them far above any plausible device count means a plugged device can
/// never collide with a reserved track.
inline constexpr int kHostTrack = 900;
inline constexpr int kServiceTrack = 901;
/// Worker-pool tracks: worker i of the Task-layer WorkerPool records its
/// `tile:*` spans on kPoolTrackBase + i; the thread that submitted the
/// parallel region (and participates in it) records on kPoolCallerTrack.
inline constexpr int kPoolTrackBase = 910;
inline constexpr int kPoolCallerTrack = 926;

/// The disabled-path guard: one relaxed atomic load and a branch, inlinable
/// at every instrumentation site. All Record*/TraceSpan entry points check
/// it again internally, so an unguarded call is correct — just one function
/// call slower.
extern std::atomic<bool> g_tracing_enabled;
inline bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Process-wide trace recorder: wall-clock (steady_clock) spans and instant
/// events on per-thread buffers, exported as Chrome Trace Event JSON via
/// the shared ChromeTraceBuilder.
///
/// Thread safety: each thread appends to its own buffer under that buffer's
/// mutex (uncontended in steady state — only export takes it from another
/// thread), so recording scales across the device-parallel partition
/// threads and the service workers without a global lock. Buffers outlive
/// their threads (the registry holds shared ownership), so spans recorded
/// by a joined partition thread still export.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Clears prior events, restarts the time epoch, and turns recording on.
  void Enable();
  void Disable();
  bool enabled() const { return TracingEnabled(); }

  /// Microseconds since Enable().
  uint64_t NowUs() const;

  /// Names a track in the exported trace (e.g. a device's name). Safe to
  /// call whether or not recording is enabled.
  void SetTrackName(int track, const std::string& name);

  void RecordComplete(int track, uint64_t start_us, uint64_t dur_us,
                      std::string name, std::string args_json = std::string());
  void RecordInstant(int track, std::string name,
                     std::string args_json = std::string());
  /// Counter ("C") sample: `args_json` must be a JSON object of numeric
  /// series values, e.g. {"completed":12}. Emit samples of one series from
  /// a single thread (or under one lock) so per-track timestamps give a
  /// well-defined series order.
  void RecordCounter(int track, std::string name, std::string args_json);

  /// Chrome Trace Event JSON of everything recorded since Enable().
  std::string ExportChromeJson();

  /// Drops all recorded events (Enable() also clears).
  void Clear();

  size_t TotalEvents();
  size_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Per-thread buffer bound: long soaks stop recording (and count drops)
  /// rather than exhaust memory, mirroring ResourceTimeline::kMaxTraceEntries.
  static constexpr size_t kMaxEventsPerThread = size_t{1} << 18;

 private:
  struct Event {
    int track = 0;
    char phase = 'X';  // 'X' complete | 'i' instant | 'C' counter
    uint64_t ts = 0;
    uint64_t dur = 0;
    std::string name;
    std::string args;
  };
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<Event> events;
  };

  TraceRecorder() = default;
  ThreadBuffer* LocalBuffer();
  void Append(Event event);

  std::atomic<int64_t> epoch_ns_{0};
  std::atomic<size_t> dropped_{0};
  std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::map<int, std::string> track_names_;
};

/// RAII span: declare unconditionally, Start() behind the TracingEnabled()
/// guard, and the destructor records the complete event:
///
///   obs::TraceSpan span;
///   if (obs::TracingEnabled()) span.Start(device, "h2d");
///   ... work ...
///   // span closes here (or call End() explicitly / set_args first)
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  void Start(int track, std::string name) {
    track_ = track;
    name_ = std::move(name);
    start_ = TraceRecorder::Global().NowUs();
    active_ = true;
  }

  /// Attaches args (a complete JSON object) to the event recorded at End().
  void set_args(std::string args_json) { args_ = std::move(args_json); }

  void End();

 private:
  bool active_ = false;
  int track_ = 0;
  uint64_t start_ = 0;
  std::string name_;
  std::string args_;
};

/// Instant-event shorthand, guarded internally.
inline void TraceInstant(int track, std::string name,
                         std::string args_json = std::string()) {
  if (!TracingEnabled()) return;
  TraceRecorder::Global().RecordInstant(track, std::move(name),
                                        std::move(args_json));
}

/// Counter-event shorthand, guarded internally. Same series discipline as
/// TraceRecorder::RecordCounter: sample one series from one thread / lock.
inline void TraceCounter(int track, std::string name, std::string args_json) {
  if (!TracingEnabled()) return;
  TraceRecorder::Global().RecordCounter(track, std::move(name),
                                        std::move(args_json));
}

}  // namespace adamant::obs

#endif  // ADAMANT_OBS_TRACE_H_
