#include "obs/trace.h"

#include "obs/chrome_trace.h"

namespace adamant::obs {

std::atomic<bool> g_tracing_enabled{false};

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // leaked: process-wide
  return *recorder;
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  // The thread_local shared_ptr keeps the buffer alive for this thread; the
  // registry keeps it alive after the thread exits so joined partition
  // threads' events still export. One registration per (thread, recorder).
  thread_local std::shared_ptr<ThreadBuffer> local;
  thread_local TraceRecorder* owner = nullptr;
  if (owner != this) {
    local = std::make_shared<ThreadBuffer>();
    owner = this;
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(local);
  }
  return local.get();
}

void TraceRecorder::Enable() {
  Clear();
  epoch_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (track_names_.find(kHostTrack) == track_names_.end()) {
      track_names_[kHostTrack] = "host";
    }
    if (track_names_.find(kServiceTrack) == track_names_.end()) {
      track_names_[kServiceTrack] = "service";
    }
  }
  g_tracing_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  g_tracing_enabled.store(false, std::memory_order_release);
}

uint64_t TraceRecorder::NowUs() const {
  const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  const int64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  const int64_t delta = now_ns - epoch;
  return delta > 0 ? static_cast<uint64_t>(delta) / 1000 : 0;
}

void TraceRecorder::SetTrackName(int track, const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  track_names_[track] = name;
}

void TraceRecorder::Append(Event event) {
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::RecordComplete(int track, uint64_t start_us,
                                   uint64_t dur_us, std::string name,
                                   std::string args_json) {
  if (!TracingEnabled()) return;
  Event event;
  event.track = track;
  event.ts = start_us;
  event.dur = dur_us;
  event.name = std::move(name);
  event.args = std::move(args_json);
  Append(std::move(event));
}

void TraceRecorder::RecordInstant(int track, std::string name,
                                  std::string args_json) {
  if (!TracingEnabled()) return;
  Event event;
  event.track = track;
  event.phase = 'i';
  event.ts = NowUs();
  event.name = std::move(name);
  event.args = std::move(args_json);
  Append(std::move(event));
}

void TraceRecorder::RecordCounter(int track, std::string name,
                                  std::string args_json) {
  if (!TracingEnabled()) return;
  Event event;
  event.track = track;
  event.phase = 'C';
  event.ts = NowUs();
  event.name = std::move(name);
  event.args = std::move(args_json);
  Append(std::move(event));
}

std::string TraceRecorder::ExportChromeJson() {
  ChromeTraceBuilder builder;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& [track, name] : track_names_) {
    builder.SetTrackName(track, name);
  }
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (const Event& event : buffer->events) {
      if (event.phase == 'i') {
        builder.AddInstant(event.track, static_cast<double>(event.ts),
                           event.name, event.args);
      } else if (event.phase == 'C') {
        builder.AddCounter(event.track, static_cast<double>(event.ts),
                           event.name, event.args);
      } else {
        builder.AddComplete(event.track, static_cast<double>(event.ts),
                            static_cast<double>(event.dur), event.name,
                            event.args);
      }
    }
  }
  return builder.ToJson();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

size_t TraceRecorder::TotalEvents() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  TraceRecorder& recorder = TraceRecorder::Global();
  const uint64_t end = recorder.NowUs();
  recorder.RecordComplete(track_, start_, end > start_ ? end - start_ : 0,
                          std::move(name_), std::move(args_));
  name_.clear();
  args_.clear();
}

}  // namespace adamant::obs
