#ifndef ADAMANT_STORAGE_DICTIONARY_H_
#define ADAMANT_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace adamant {

/// Order-preserving-enough string dictionary: maps strings to dense int32
/// codes so that string columns (o_orderpriority, l_returnflag, ...) can run
/// through the integer-only device kernels. Codes are assigned in first-seen
/// order; equality predicates and group-bys only need code identity.
class StringDictionary {
 public:
  /// Returns the code for `value`, interning it if new.
  int32_t GetOrInsert(const std::string& value);

  /// Returns the code for `value` or NotFound.
  Result<int32_t> Lookup(const std::string& value) const;

  /// Returns the string for `code`; dies on out-of-range codes
  /// (programming error — codes only come from this dictionary).
  const std::string& GetString(int32_t code) const;

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> strings_;
};

}  // namespace adamant

#endif  // ADAMANT_STORAGE_DICTIONARY_H_
