#include "storage/table.h"

namespace adamant {

Status Table::AddColumn(ColumnPtr column) {
  if (column == nullptr) {
    return Status::InvalidArgument("null column");
  }
  if (!columns_.empty() && column->length() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column->name() + "' has " +
        std::to_string(column->length()) + " rows, table '" + name_ +
        "' has " + std::to_string(num_rows()));
  }
  for (const auto& existing : columns_) {
    if (existing->name() == column->name()) {
      return Status::AlreadyExists("column '" + column->name() + "' in table '" +
                                   name_ + "'");
    }
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<ColumnPtr> Table::GetColumn(const std::string& name) const {
  for (const auto& column : columns_) {
    if (column->name() == name) return column;
  }
  return Status::NotFound("column '" + name + "' in table '" + name_ + "'");
}

StringDictionary* Table::GetDictionary(const std::string& column_name) {
  for (auto& [name, dict] : dictionaries_) {
    if (name == column_name) return dict.get();
  }
  dictionaries_.emplace_back(column_name, std::make_unique<StringDictionary>());
  return dictionaries_.back().second.get();
}

const StringDictionary* Table::FindDictionary(
    const std::string& column_name) const {
  for (const auto& [name, dict] : dictionaries_) {
    if (name == column_name) return dict.get();
  }
  return nullptr;
}

size_t Table::TotalBytes() const {
  size_t total = 0;
  for (const auto& column : columns_) total += column->byte_size();
  return total;
}

Status Catalog::AddTable(TablePtr table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  for (const auto& existing : tables_) {
    if (existing->name() == table->name()) {
      return Status::AlreadyExists("table '" + table->name() + "'");
    }
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  for (const auto& table : tables_) {
    if (table->name() == name) return table;
  }
  return Status::NotFound("table '" + name + "'");
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& table : tables_) names.push_back(table->name());
  return names;
}

}  // namespace adamant
