#ifndef ADAMANT_STORAGE_TYPES_H_
#define ADAMANT_STORAGE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace adamant {

/// Physical element types of ADAMANT columns. The executor is integer-
/// centric like the paper's prototype ("2^29.7 32 bit integer values"):
/// strings are dictionary-encoded to kInt32 codes, dates are day numbers,
/// and money is fixed-point kInt64 cents.
enum class ElementType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
};

constexpr size_t ElementSize(ElementType type) {
  switch (type) {
    case ElementType::kInt32:
      return 4;
    case ElementType::kInt64:
      return 8;
    case ElementType::kFloat64:
      return 8;
  }
  return 0;
}

constexpr const char* ElementTypeName(ElementType type) {
  switch (type) {
    case ElementType::kInt32:
      return "int32";
    case ElementType::kInt64:
      return "int64";
    case ElementType::kFloat64:
      return "float64";
  }
  return "?";
}

template <typename T>
struct ElementTypeOf;
template <>
struct ElementTypeOf<int32_t> {
  static constexpr ElementType value = ElementType::kInt32;
};
template <>
struct ElementTypeOf<int64_t> {
  static constexpr ElementType value = ElementType::kInt64;
};
template <>
struct ElementTypeOf<double> {
  static constexpr ElementType value = ElementType::kFloat64;
};

}  // namespace adamant

#endif  // ADAMANT_STORAGE_TYPES_H_
