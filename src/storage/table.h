#ifndef ADAMANT_STORAGE_TABLE_H_
#define ADAMANT_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace adamant {

/// A named collection of equal-length columns plus the dictionaries backing
/// any dictionary-encoded (string) columns.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0]->length(); }
  size_t num_columns() const { return columns_.size(); }

  /// Adds a column; all columns of a table must have equal length
  /// (checked at add time once the table is non-empty).
  Status AddColumn(ColumnPtr column);

  Result<ColumnPtr> GetColumn(const std::string& name) const;
  ColumnPtr column(size_t i) const { return columns_.at(i); }
  const std::vector<ColumnPtr>& columns() const { return columns_; }

  /// Dictionary used by a given dictionary-encoded column (shared; created
  /// on first access).
  StringDictionary* GetDictionary(const std::string& column_name);
  const StringDictionary* FindDictionary(const std::string& column_name) const;

  /// Total bytes across all columns (what a full-table device residency —
  /// the HeavyDB model — would occupy).
  size_t TotalBytes() const;

 private:
  std::string name_;
  std::vector<ColumnPtr> columns_;
  std::vector<std::pair<std::string, std::unique_ptr<StringDictionary>>>
      dictionaries_;
};

using TablePtr = std::shared_ptr<Table>;

/// Name -> table registry for a database instance.
class Catalog {
 public:
  Status AddTable(TablePtr table);
  Result<TablePtr> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

 private:
  std::vector<TablePtr> tables_;
};

}  // namespace adamant

#endif  // ADAMANT_STORAGE_TABLE_H_
