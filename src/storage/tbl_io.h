#ifndef ADAMANT_STORAGE_TBL_IO_H_
#define ADAMANT_STORAGE_TBL_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace adamant {

/// Import/export of dbgen-style `.tbl` files ('|'-separated values, one
/// trailing separator per row) so the executor can consume data produced by
/// the official TPC-H dbgen — and emit its own tables in the same format.
///
/// On import, text values are converted into ADAMANT's device-friendly
/// encodings: dates become day numbers, decimals become int64 cents,
/// low-cardinality strings become dictionary codes.

struct TblColumnSpec {
  enum class Kind {
    kInt32,  // plain integer
    kInt64,  // plain 64-bit integer
    kMoney,  // decimal like "1234.56" -> int64 cents
    kPct,    // decimal fraction like "0.06" -> int32 percent (6)
    kDate,   // "YYYY-MM-DD" -> int32 day number
    kDict,   // string -> dictionary code (per-column dictionary)
    kSkip,   // column present in the file but not imported
  };

  std::string name;
  Kind kind = Kind::kInt32;
};

/// Parses `path` into a table named `table_name` with the given column
/// layout (specs must cover every field of the file, in order; use kSkip
/// for fields to drop). Fails with IOError on unreadable files and
/// InvalidArgument on malformed rows (row number in the message).
Result<TablePtr> ReadTblFile(const std::string& path,
                             const std::string& table_name,
                             const std::vector<TblColumnSpec>& specs);

/// Writes `table` in .tbl format. Columns exported per `specs` (which must
/// name existing columns; kSkip is not meaningful here). Money is printed
/// with two decimals, dates as YYYY-MM-DD, dictionary codes as their
/// strings.
Status WriteTblFile(const Table& table, const std::string& path,
                    const std::vector<TblColumnSpec>& specs);

}  // namespace adamant

#endif  // ADAMANT_STORAGE_TBL_IO_H_
