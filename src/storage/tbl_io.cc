#include "storage/tbl_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/date.h"
#include "common/units.h"

namespace adamant {

namespace {

Result<int64_t> ParseInt(const std::string& field, size_t row) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   ": not an integer: '" + field + "'");
  }
  return value;
}

/// Parses a decimal like "-123.45" into scaled hundredths without floating
/// point (exact for the two-digit decimals dbgen emits).
Result<int64_t> ParseHundredths(const std::string& field, size_t row) {
  const size_t dot = field.find('.');
  const bool negative = !field.empty() && field[0] == '-';
  std::string whole = dot == std::string::npos ? field : field.substr(0, dot);
  std::string frac = dot == std::string::npos ? "" : field.substr(dot + 1);
  if (frac.size() > 2) frac.resize(2);  // truncate extra digits
  while (frac.size() < 2) frac += '0';
  ADAMANT_ASSIGN_OR_RETURN(int64_t whole_value, ParseInt(whole, row));
  ADAMANT_ASSIGN_OR_RETURN(int64_t frac_value,
                           ParseInt(frac.empty() ? "0" : frac, row));
  const int64_t magnitude = std::abs(whole_value) * 100 + frac_value;
  return negative || whole_value < 0 ? -magnitude : magnitude;
}

}  // namespace

Result<TablePtr> ReadTblFile(const std::string& path,
                             const std::string& table_name,
                             const std::vector<TblColumnSpec>& specs) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "'");
  }

  auto table = std::make_shared<Table>(table_name);
  std::vector<ColumnPtr> columns(specs.size());
  std::vector<StringDictionary*> dicts(specs.size(), nullptr);
  for (size_t c = 0; c < specs.size(); ++c) {
    const TblColumnSpec& spec = specs[c];
    if (spec.kind == TblColumnSpec::Kind::kSkip) continue;
    const ElementType type = spec.kind == TblColumnSpec::Kind::kInt64 ||
                                     spec.kind == TblColumnSpec::Kind::kMoney
                                 ? ElementType::kInt64
                                 : ElementType::kInt32;
    columns[c] = std::make_shared<Column>(spec.name, type);
    if (spec.kind == TblColumnSpec::Kind::kDict) {
      dicts[c] = table->GetDictionary(spec.name);
    }
  }

  std::string line;
  size_t row = 0;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    // dbgen rows end with a trailing '|'.
    std::istringstream fields(line);
    std::string field;
    for (size_t c = 0; c < specs.size(); ++c) {
      if (!std::getline(fields, field, '|')) {
        return Status::InvalidArgument(
            "row " + std::to_string(row) + ": expected " +
            std::to_string(specs.size()) + " fields, got " +
            std::to_string(c));
      }
      const TblColumnSpec& spec = specs[c];
      switch (spec.kind) {
        case TblColumnSpec::Kind::kSkip:
          break;
        case TblColumnSpec::Kind::kInt32: {
          ADAMANT_ASSIGN_OR_RETURN(int64_t value, ParseInt(field, row));
          columns[c]->Append(static_cast<int32_t>(value));
          break;
        }
        case TblColumnSpec::Kind::kInt64: {
          ADAMANT_ASSIGN_OR_RETURN(int64_t value, ParseInt(field, row));
          columns[c]->Append(value);
          break;
        }
        case TblColumnSpec::Kind::kMoney: {
          ADAMANT_ASSIGN_OR_RETURN(int64_t cents, ParseHundredths(field, row));
          columns[c]->Append(cents);
          break;
        }
        case TblColumnSpec::Kind::kPct: {
          ADAMANT_ASSIGN_OR_RETURN(int64_t pct, ParseHundredths(field, row));
          columns[c]->Append(static_cast<int32_t>(pct));
          break;
        }
        case TblColumnSpec::Kind::kDate: {
          auto date = Date::Parse(field);
          if (!date.ok()) {
            return date.status().WithContext("row " + std::to_string(row));
          }
          columns[c]->Append(date->days());
          break;
        }
        case TblColumnSpec::Kind::kDict:
          columns[c]->Append(dicts[c]->GetOrInsert(field));
          break;
      }
    }
  }

  for (size_t c = 0; c < specs.size(); ++c) {
    if (columns[c] != nullptr) {
      ADAMANT_RETURN_NOT_OK(table->AddColumn(columns[c]));
    }
  }
  return table;
}

Status WriteTblFile(const Table& table, const std::string& path,
                    const std::vector<TblColumnSpec>& specs) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }

  std::vector<ColumnPtr> columns;
  std::vector<const StringDictionary*> dicts;
  for (const TblColumnSpec& spec : specs) {
    if (spec.kind == TblColumnSpec::Kind::kSkip) {
      return Status::InvalidArgument("kSkip is not valid for export");
    }
    ADAMANT_ASSIGN_OR_RETURN(ColumnPtr column, table.GetColumn(spec.name));
    columns.push_back(column);
    dicts.push_back(spec.kind == TblColumnSpec::Kind::kDict
                        ? table.FindDictionary(spec.name)
                        : nullptr);
    if (spec.kind == TblColumnSpec::Kind::kDict && dicts.back() == nullptr) {
      return Status::InvalidArgument("column '" + spec.name +
                                     "' has no dictionary");
    }
  }

  char buf[32];
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (size_t c = 0; c < specs.size(); ++c) {
      switch (specs[c].kind) {
        case TblColumnSpec::Kind::kInt32:
          out << columns[c]->Value<int32_t>(row);
          break;
        case TblColumnSpec::Kind::kInt64:
          out << columns[c]->Value<int64_t>(row);
          break;
        case TblColumnSpec::Kind::kMoney: {
          const int64_t cents = columns[c]->Value<int64_t>(row);
          std::snprintf(buf, sizeof(buf), "%lld.%02lld",
                        static_cast<long long>(cents / 100),
                        static_cast<long long>(std::abs(cents % 100)));
          out << buf;
          break;
        }
        case TblColumnSpec::Kind::kPct: {
          const int32_t pct = columns[c]->Value<int32_t>(row);
          std::snprintf(buf, sizeof(buf), "%d.%02d", pct / 100,
                        std::abs(pct % 100));
          out << buf;
          break;
        }
        case TblColumnSpec::Kind::kDate:
          out << Date(columns[c]->Value<int32_t>(row)).ToString();
          break;
        case TblColumnSpec::Kind::kDict:
          out << dicts[c]->GetString(columns[c]->Value<int32_t>(row));
          break;
        case TblColumnSpec::Kind::kSkip:
          break;
      }
      out << '|';
    }
    out << '\n';
  }
  if (!out.good()) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace adamant
