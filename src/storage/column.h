#ifndef ADAMANT_STORAGE_COLUMN_H_
#define ADAMANT_STORAGE_COLUMN_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/logging.h"
#include "storage/types.h"

namespace adamant {

/// A typed, densely-packed column. Columns are the unit of data the runtime
/// ships to co-processors: the transfer hub chunks a column's raw bytes and
/// calls place_data on the target device. Storage is 64-byte aligned so
/// chunk boundaries stay SIMD/DMA friendly.
class Column {
 public:
  Column(std::string name, ElementType type)
      : name_(std::move(name)), type_(type) {}

  Column(Column&&) noexcept = default;
  Column& operator=(Column&&) noexcept = default;
  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  const std::string& name() const { return name_; }
  ElementType type() const { return type_; }
  size_t length() const { return length_; }
  size_t byte_size() const { return length_ * ElementSize(type_); }

  const uint8_t* raw_data() const { return data_.data(); }
  uint8_t* mutable_raw_data() { return data_.data(); }

  /// Grows to `n` elements (new elements zeroed).
  void Resize(size_t n) {
    data_.Resize(n * ElementSize(type_));
    length_ = n;
  }

  template <typename T>
  const T* data() const {
    ADAMANT_DCHECK(ElementTypeOf<T>::value == type_)
        << "column " << name_ << " is " << ElementTypeName(type_);
    return data_.data_as<T>();
  }

  template <typename T>
  T* mutable_data() {
    ADAMANT_DCHECK(ElementTypeOf<T>::value == type_)
        << "column " << name_ << " is " << ElementTypeName(type_);
    return data_.data_as<T>();
  }

  template <typename T>
  T Value(size_t i) const {
    ADAMANT_DCHECK(i < length_);
    return data<T>()[i];
  }

  template <typename T>
  void Append(T value) {
    size_t i = length_;
    Resize(length_ + 1);
    mutable_data<T>()[i] = value;
  }

  /// Builds a column from a vector in one shot.
  template <typename T>
  static std::shared_ptr<Column> FromVector(std::string name,
                                            const std::vector<T>& values) {
    auto col = std::make_shared<Column>(std::move(name),
                                        ElementTypeOf<T>::value);
    col->Resize(values.size());
    std::copy(values.begin(), values.end(), col->template mutable_data<T>());
    return col;
  }

 private:
  std::string name_;
  ElementType type_;
  AlignedBuffer data_;
  size_t length_ = 0;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace adamant

#endif  // ADAMANT_STORAGE_COLUMN_H_
