#include "storage/dictionary.h"

#include "common/logging.h"

namespace adamant {

int32_t StringDictionary::GetOrInsert(const std::string& value) {
  auto [it, inserted] =
      index_.emplace(value, static_cast<int32_t>(strings_.size()));
  if (inserted) strings_.push_back(value);
  return it->second;
}

Result<int32_t> StringDictionary::Lookup(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) {
    return Status::NotFound("dictionary code for '" + value + "'");
  }
  return it->second;
}

const std::string& StringDictionary::GetString(int32_t code) const {
  ADAMANT_CHECK(code >= 0 && static_cast<size_t>(code) < strings_.size())
      << "dictionary code " << code << " out of range (size "
      << strings_.size() << ")";
  return strings_[static_cast<size_t>(code)];
}

}  // namespace adamant
