#ifndef ADAMANT_TPCH_QUERIES_H_
#define ADAMANT_TPCH_QUERIES_H_

#include <cstdint>
#include <string>

#include "common/date.h"

namespace adamant::tpch {

/// Validation-run parameters of the evaluated TPC-H queries. Money is int64
/// cents, percentages are int32 percent, dates are day numbers (see
/// tpch_gen.h for the encoding).

/// Q1: pricing summary report.
///   l_shipdate <= 1998-12-01 - delta days; group by returnflag, linestatus.
struct Q1Params {
  int delta_days = 90;
  int32_t ship_cutoff() const {
    return Date::FromYmd(1998, 12, 1).AddDays(-delta_days).days();
  }
};

/// Q3: shipping priority (multiple joins — the paper's join-heavy query).
///   customer.mktsegment = segment, o_orderdate < date, l_shipdate > date;
///   group by orderkey; top-k by revenue.
struct Q3Params {
  std::string segment = "BUILDING";
  int32_t date = Date::FromYmd(1995, 3, 15).days();
  size_t limit = 10;
};

/// Q4: order priority checking (subquery — EXISTS turned into a semi join).
///   o_orderdate in [date, date + 3 months), EXISTS(lineitem with
///   l_commitdate < l_receiptdate); count per priority.
struct Q4Params {
  int32_t date = Date::FromYmd(1993, 7, 1).days();
  int32_t date_end() const {
    return Date(date).AddMonths(3).days();
  }
};

/// Q5: local supplier volume — the six-table join (customer, orders,
/// lineitem, supplier, nation, region) with the cross-side condition
/// c_nationkey = s_nationkey. Revenue per nation of one region and year.
struct Q5Params {
  std::string region = "ASIA";
  int32_t date = Date::FromYmd(1994, 1, 1).days();
  int32_t date_end() const { return Date(date).AddMonths(12).days(); }
};

/// Q10: returned-item reporting (customers who returned items, by revenue
/// lost). The order's custkey travels as the hash payload and becomes the
/// aggregation key.
///   o_orderdate in [date, date+3mo), l_returnflag = 'R';
///   revenue per customer; top-k by revenue.
struct Q10Params {
  int32_t date = Date::FromYmd(1993, 10, 1).days();
  int32_t date_end() const { return Date(date).AddMonths(3).days(); }
  size_t limit = 20;
};

/// Q12: shipping modes and order priority (join whose build side
/// contributes a payload attribute — exercises HASH_PROBE's right output).
///   l_shipmode IN (mode1, mode2), l_commitdate < l_receiptdate,
///   l_shipdate < l_commitdate, l_receiptdate in [date, date+1y);
///   per ship mode: count of high-priority (1-URGENT/2-HIGH) and other
///   lines.
struct Q12Params {
  std::string shipmode1 = "MAIL";
  std::string shipmode2 = "SHIP";
  int32_t date = Date::FromYmd(1994, 1, 1).days();
  int32_t date_end() const { return Date(date).AddMonths(12).days(); }
};

/// Q14: promotion effect (join against part; conditional aggregation).
///   l_partkey = p_partkey, l_shipdate in [date, date+1mo);
///   promo_revenue = 100 * sum(revenue where p_type like 'PROMO%')
///                        / sum(revenue).
struct Q14Params {
  int32_t date = Date::FromYmd(1995, 9, 1).days();
  int32_t date_end() const { return Date(date).AddMonths(1).days(); }
};

/// Q6: forecasting revenue change (heavy scan + aggregation).
///   l_shipdate in [date, date+1y), discount in [pct-1, pct+1],
///   quantity < qty; revenue = sum(extendedprice * discount).
struct Q6Params {
  int32_t date = Date::FromYmd(1994, 1, 1).days();
  int32_t date_end() const { return Date(date).AddMonths(12).days(); }
  int32_t discount_pct = 6;  // spec 0.06 -> [5, 7] inclusive
  int32_t quantity = 24;     // l_quantity < 24
};

}  // namespace adamant::tpch

#endif  // ADAMANT_TPCH_QUERIES_H_
