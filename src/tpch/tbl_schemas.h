#ifndef ADAMANT_TPCH_TBL_SCHEMAS_H_
#define ADAMANT_TPCH_TBL_SCHEMAS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "storage/tbl_io.h"

namespace adamant::tpch {

/// Column layouts of the official dbgen `.tbl` files, mapped onto ADAMANT's
/// encodings (text columns the executor never touches are dropped with
/// kSkip). Importing official dbgen output therefore yields the same
/// catalog shape the built-in generator produces.
std::vector<TblColumnSpec> LineitemTblSpec();
std::vector<TblColumnSpec> OrdersTblSpec();
std::vector<TblColumnSpec> CustomerTblSpec();
std::vector<TblColumnSpec> PartTblSpec();
std::vector<TblColumnSpec> SupplierTblSpec();
std::vector<TblColumnSpec> PartsuppTblSpec();
std::vector<TblColumnSpec> NationTblSpec();
std::vector<TblColumnSpec> RegionTblSpec();

/// Adds the pre-decoded `p_ispromo` flag ("p_type LIKE 'PROMO%'" evaluated
/// against the dictionary) that TPC-H Q14 consumes; call after importing a
/// part table.
Status DerivePartPromoFlag(Table* part);

/// Loads every recognized `<table>.tbl` file from `dir` into a catalog
/// (missing files are skipped; at least one must exist).
Result<std::shared_ptr<Catalog>> LoadTblDirectory(const std::string& dir);

}  // namespace adamant::tpch

#endif  // ADAMANT_TPCH_TBL_SCHEMAS_H_
