#ifndef ADAMANT_TPCH_REFERENCE_H_
#define ADAMANT_TPCH_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "tpch/queries.h"

namespace adamant::tpch {

/// Scalar host reference implementations of the evaluated queries. The
/// executor's results are bit-compared against these in the integration
/// tests; all arithmetic uses the same fixed-point conventions as the
/// device kernels so equality is exact.

struct Q1Row {
  int32_t returnflag;  // dictionary code
  int32_t linestatus;  // dictionary code
  int64_t sum_qty;
  int64_t sum_base_price;   // cents
  int64_t sum_disc_price;   // cents
  int64_t sum_charge;       // cents
  int64_t count;
  bool operator==(const Q1Row&) const = default;
};

struct Q3Row {
  int32_t orderkey;
  int64_t revenue;  // cents
  int32_t orderdate;
  int32_t shippriority;
  bool operator==(const Q3Row&) const = default;
};

struct Q4Row {
  int32_t priority;  // dictionary code 0..4 (spec order)
  int64_t order_count;
  bool operator==(const Q4Row&) const = default;
};

/// Q1 rows sorted by (returnflag, linestatus) dictionary code.
Result<std::vector<Q1Row>> Q1Reference(const Catalog& catalog,
                                       const Q1Params& params);

/// Q3 top-`limit` rows by (revenue desc, orderdate asc, orderkey asc).
Result<std::vector<Q3Row>> Q3Reference(const Catalog& catalog,
                                       const Q3Params& params);

/// Q4 rows sorted by priority code (== spec priority order).
Result<std::vector<Q4Row>> Q4Reference(const Catalog& catalog,
                                       const Q4Params& params);

/// Q6 revenue in cents.
Result<int64_t> Q6Reference(const Catalog& catalog, const Q6Params& params);

struct Q5Row {
  int32_t nationkey;
  std::string nation;
  int64_t revenue;  // cents
  bool operator==(const Q5Row&) const = default;
};

/// Q5 rows sorted by revenue descending.
Result<std::vector<Q5Row>> Q5Reference(const Catalog& catalog,
                                       const Q5Params& params);

struct Q10Row {
  int32_t custkey;
  int64_t revenue;  // cents
  bool operator==(const Q10Row&) const = default;
};

/// Q10 top-`limit` rows by (revenue desc, custkey asc).
Result<std::vector<Q10Row>> Q10Reference(const Catalog& catalog,
                                         const Q10Params& params);

struct Q12Row {
  int32_t shipmode;  // dictionary code (spec ship-mode order)
  int64_t high_line_count;
  int64_t low_line_count;
  bool operator==(const Q12Row&) const = default;
};

/// Q12 rows sorted by ship-mode code.
Result<std::vector<Q12Row>> Q12Reference(const Catalog& catalog,
                                         const Q12Params& params);

struct Q14Result {
  int64_t promo_revenue_cents;
  int64_t total_revenue_cents;
  /// 100 * promo / total.
  double promo_pct() const {
    return total_revenue_cents == 0
               ? 0.0
               : 100.0 * static_cast<double>(promo_revenue_cents) /
                     static_cast<double>(total_revenue_cents);
  }
  bool operator==(const Q14Result&) const = default;
};

Result<Q14Result> Q14Reference(const Catalog& catalog,
                               const Q14Params& params);

}  // namespace adamant::tpch

#endif  // ADAMANT_TPCH_REFERENCE_H_
