#include "tpch/reference.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace adamant::tpch {

namespace {

struct LineitemCols {
  const int32_t* orderkey;
  const int32_t* quantity;
  const int64_t* extendedprice;
  const int32_t* discount;
  const int32_t* tax;
  const int32_t* returnflag;
  const int32_t* linestatus;
  const int32_t* shipdate;
  const int32_t* commitdate;
  const int32_t* receiptdate;
  size_t rows;
};

Result<LineitemCols> GetLineitem(const Catalog& catalog) {
  ADAMANT_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable("lineitem"));
  LineitemCols cols{};
  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr c, table->GetColumn("l_orderkey"));
  cols.orderkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_quantity"));
  cols.quantity = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_extendedprice"));
  cols.extendedprice = c->data<int64_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_discount"));
  cols.discount = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_tax"));
  cols.tax = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_returnflag"));
  cols.returnflag = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_linestatus"));
  cols.linestatus = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_shipdate"));
  cols.shipdate = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_commitdate"));
  cols.commitdate = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, table->GetColumn("l_receiptdate"));
  cols.receiptdate = c->data<int32_t>();
  cols.rows = table->num_rows();
  return cols;
}

}  // namespace

Result<std::vector<Q1Row>> Q1Reference(const Catalog& catalog,
                                       const Q1Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(LineitemCols li, GetLineitem(catalog));
  const int32_t cutoff = params.ship_cutoff();

  std::map<std::pair<int32_t, int32_t>, Q1Row> groups;
  for (size_t i = 0; i < li.rows; ++i) {
    if (li.shipdate[i] > cutoff) continue;
    auto key = std::make_pair(li.returnflag[i], li.linestatus[i]);
    auto [it, inserted] = groups.try_emplace(
        key, Q1Row{key.first, key.second, 0, 0, 0, 0, 0});
    Q1Row& row = it->second;
    // Same truncating fixed-point formulas as the device map kernels.
    const int64_t disc_price =
        li.extendedprice[i] * (100 - li.discount[i]) / 100;
    const int64_t charge = disc_price * (100 + li.tax[i]) / 100;
    row.sum_qty += li.quantity[i];
    row.sum_base_price += li.extendedprice[i];
    row.sum_disc_price += disc_price;
    row.sum_charge += charge;
    row.count += 1;
  }

  std::vector<Q1Row> result;
  result.reserve(groups.size());
  for (const auto& [key, row] : groups) result.push_back(row);
  return result;
}

Result<std::vector<Q3Row>> Q3Reference(const Catalog& catalog,
                                       const Q3Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(TablePtr customer, catalog.GetTable("customer"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr orders, catalog.GetTable("orders"));
  ADAMANT_ASSIGN_OR_RETURN(LineitemCols li, GetLineitem(catalog));

  const StringDictionary* seg_dict = customer->FindDictionary("c_mktsegment");
  if (seg_dict == nullptr) {
    return Status::Internal("customer has no c_mktsegment dictionary");
  }
  ADAMANT_ASSIGN_OR_RETURN(int32_t segment_code,
                           seg_dict->Lookup(params.segment));

  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr c, customer->GetColumn("c_custkey"));
  const int32_t* c_custkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, customer->GetColumn("c_mktsegment"));
  const int32_t* c_segment = c->data<int32_t>();
  const size_t n_cust = customer->num_rows();

  std::unordered_set<int32_t> building_custs;
  for (size_t i = 0; i < n_cust; ++i) {
    if (c_segment[i] == segment_code) building_custs.insert(c_custkey[i]);
  }

  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderkey"));
  const int32_t* o_orderkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_custkey"));
  const int32_t* o_custkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderdate"));
  const int32_t* o_orderdate = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_shippriority"));
  const int32_t* o_shippriority = c->data<int32_t>();
  const size_t n_orders = orders->num_rows();

  struct OrderInfo {
    int32_t orderdate;
    int32_t shippriority;
  };
  std::unordered_map<int32_t, OrderInfo> qualifying_orders;
  for (size_t i = 0; i < n_orders; ++i) {
    if (o_orderdate[i] < params.date &&
        building_custs.count(o_custkey[i]) > 0) {
      qualifying_orders.emplace(o_orderkey[i],
                                OrderInfo{o_orderdate[i], o_shippriority[i]});
    }
  }

  std::unordered_map<int32_t, int64_t> revenue;
  for (size_t i = 0; i < li.rows; ++i) {
    if (li.shipdate[i] <= params.date) continue;
    auto it = qualifying_orders.find(li.orderkey[i]);
    if (it == qualifying_orders.end()) continue;
    revenue[li.orderkey[i]] +=
        li.extendedprice[i] * (100 - li.discount[i]) / 100;
  }

  std::vector<Q3Row> rows;
  rows.reserve(revenue.size());
  for (const auto& [orderkey, rev] : revenue) {
    const OrderInfo& info = qualifying_orders.at(orderkey);
    rows.push_back(Q3Row{orderkey, rev, info.orderdate, info.shippriority});
  }
  std::sort(rows.begin(), rows.end(), [](const Q3Row& a, const Q3Row& b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    if (a.orderdate != b.orderdate) return a.orderdate < b.orderdate;
    return a.orderkey < b.orderkey;
  });
  if (rows.size() > params.limit) rows.resize(params.limit);
  return rows;
}

Result<std::vector<Q4Row>> Q4Reference(const Catalog& catalog,
                                       const Q4Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(TablePtr orders, catalog.GetTable("orders"));
  ADAMANT_ASSIGN_OR_RETURN(LineitemCols li, GetLineitem(catalog));

  std::unordered_set<int32_t> late_orders;
  for (size_t i = 0; i < li.rows; ++i) {
    if (li.commitdate[i] < li.receiptdate[i]) late_orders.insert(li.orderkey[i]);
  }

  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr c, orders->GetColumn("o_orderkey"));
  const int32_t* o_orderkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderdate"));
  const int32_t* o_orderdate = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderpriority"));
  const int32_t* o_priority = c->data<int32_t>();
  const size_t n_orders = orders->num_rows();

  std::map<int32_t, int64_t> counts;
  const int32_t end = params.date_end();
  for (size_t i = 0; i < n_orders; ++i) {
    if (o_orderdate[i] < params.date || o_orderdate[i] >= end) continue;
    if (late_orders.count(o_orderkey[i]) == 0) continue;
    counts[o_priority[i]] += 1;
  }

  std::vector<Q4Row> rows;
  rows.reserve(counts.size());
  for (const auto& [priority, count] : counts) {
    rows.push_back(Q4Row{priority, count});
  }
  return rows;
}

Result<std::vector<Q5Row>> Q5Reference(const Catalog& catalog,
                                       const Q5Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(TablePtr region, catalog.GetTable("region"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr nation, catalog.GetTable("nation"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr customer, catalog.GetTable("customer"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr supplier, catalog.GetTable("supplier"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr orders, catalog.GetTable("orders"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr lineitem, catalog.GetTable("lineitem"));

  const StringDictionary* region_dict = region->FindDictionary("r_name");
  const StringDictionary* nation_dict = nation->FindDictionary("n_name");
  if (region_dict == nullptr || nation_dict == nullptr) {
    return Status::Internal("region/nation dictionaries missing");
  }
  ADAMANT_ASSIGN_OR_RETURN(int32_t region_code,
                           region_dict->Lookup(params.region));
  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr c, region->GetColumn("r_regionkey"));
  const int32_t* r_key = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, region->GetColumn("r_name"));
  const int32_t* r_name = c->data<int32_t>();
  int32_t regionkey = -1;
  for (size_t i = 0; i < region->num_rows(); ++i) {
    if (r_name[i] == region_code) regionkey = r_key[i];
  }
  if (regionkey < 0) return Status::NotFound("region " + params.region);

  ADAMANT_ASSIGN_OR_RETURN(c, nation->GetColumn("n_nationkey"));
  const int32_t* n_key = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, nation->GetColumn("n_regionkey"));
  const int32_t* n_region = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, nation->GetColumn("n_name"));
  const int32_t* n_name = c->data<int32_t>();
  std::unordered_map<int32_t, int32_t> region_nations;  // key -> name code
  for (size_t i = 0; i < nation->num_rows(); ++i) {
    if (n_region[i] == regionkey) region_nations.emplace(n_key[i], n_name[i]);
  }

  ADAMANT_ASSIGN_OR_RETURN(c, customer->GetColumn("c_custkey"));
  const int32_t* c_key = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, customer->GetColumn("c_nationkey"));
  const int32_t* c_nation = c->data<int32_t>();
  std::unordered_map<int32_t, int32_t> cust_nation;
  for (size_t i = 0; i < customer->num_rows(); ++i) {
    cust_nation.emplace(c_key[i], c_nation[i]);
  }

  ADAMANT_ASSIGN_OR_RETURN(c, supplier->GetColumn("s_suppkey"));
  const int32_t* s_key = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, supplier->GetColumn("s_nationkey"));
  const int32_t* s_nation = c->data<int32_t>();
  std::unordered_map<int32_t, int32_t> supp_nation;
  for (size_t i = 0; i < supplier->num_rows(); ++i) {
    supp_nation.emplace(s_key[i], s_nation[i]);
  }

  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderkey"));
  const int32_t* o_key = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_custkey"));
  const int32_t* o_cust = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderdate"));
  const int32_t* o_date = c->data<int32_t>();
  std::unordered_map<int32_t, int32_t> order_cust;  // qualifying orders
  const int32_t end = params.date_end();
  for (size_t i = 0; i < orders->num_rows(); ++i) {
    if (o_date[i] >= params.date && o_date[i] < end) {
      order_cust.emplace(o_key[i], o_cust[i]);
    }
  }

  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_orderkey"));
  const int32_t* l_order = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_suppkey"));
  const int32_t* l_supp = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_extendedprice"));
  const int64_t* l_price = c->data<int64_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_discount"));
  const int32_t* l_disc = c->data<int32_t>();

  std::unordered_map<int32_t, int64_t> revenue;  // nationkey -> cents
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    auto order = order_cust.find(l_order[i]);
    if (order == order_cust.end()) continue;
    auto cust = cust_nation.find(order->second);
    if (cust == cust_nation.end()) continue;
    auto supp = supp_nation.find(l_supp[i]);
    if (supp == supp_nation.end()) continue;
    if (cust->second != supp->second) continue;  // local supplier only
    if (region_nations.count(cust->second) == 0) continue;
    revenue[cust->second] += l_price[i] * (100 - l_disc[i]) / 100;
  }

  std::vector<Q5Row> rows;
  rows.reserve(revenue.size());
  for (const auto& [nationkey, rev] : revenue) {
    rows.push_back(Q5Row{nationkey,
                         nation_dict->GetString(region_nations.at(nationkey)),
                         rev});
  }
  std::sort(rows.begin(), rows.end(), [](const Q5Row& a, const Q5Row& b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return a.nationkey < b.nationkey;
  });
  return rows;
}

Result<std::vector<Q10Row>> Q10Reference(const Catalog& catalog,
                                         const Q10Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(TablePtr lineitem, catalog.GetTable("lineitem"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr orders, catalog.GetTable("orders"));
  const StringDictionary* rf_dict = lineitem->FindDictionary("l_returnflag");
  if (rf_dict == nullptr) {
    return Status::Internal("lineitem has no l_returnflag dictionary");
  }
  ADAMANT_ASSIGN_OR_RETURN(int32_t code_r, rf_dict->Lookup("R"));

  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr c, orders->GetColumn("o_orderkey"));
  const int32_t* o_orderkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_custkey"));
  const int32_t* o_custkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderdate"));
  const int32_t* o_orderdate = c->data<int32_t>();
  std::unordered_map<int32_t, int32_t> cust_of;  // qualifying orders
  const int32_t end = params.date_end();
  for (size_t i = 0; i < orders->num_rows(); ++i) {
    if (o_orderdate[i] >= params.date && o_orderdate[i] < end) {
      cust_of.emplace(o_orderkey[i], o_custkey[i]);
    }
  }

  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_orderkey"));
  const int32_t* l_orderkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_returnflag"));
  const int32_t* l_returnflag = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_extendedprice"));
  const int64_t* l_extendedprice = c->data<int64_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_discount"));
  const int32_t* l_discount = c->data<int32_t>();

  std::unordered_map<int32_t, int64_t> revenue;
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    if (l_returnflag[i] != code_r) continue;
    auto it = cust_of.find(l_orderkey[i]);
    if (it == cust_of.end()) continue;
    revenue[it->second] +=
        l_extendedprice[i] * (100 - l_discount[i]) / 100;
  }

  std::vector<Q10Row> rows;
  rows.reserve(revenue.size());
  for (const auto& [custkey, rev] : revenue) {
    rows.push_back(Q10Row{custkey, rev});
  }
  std::sort(rows.begin(), rows.end(), [](const Q10Row& a, const Q10Row& b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    return a.custkey < b.custkey;
  });
  if (rows.size() > params.limit) rows.resize(params.limit);
  return rows;
}

Result<std::vector<Q12Row>> Q12Reference(const Catalog& catalog,
                                         const Q12Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(TablePtr lineitem, catalog.GetTable("lineitem"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr orders, catalog.GetTable("orders"));
  const StringDictionary* modes = lineitem->FindDictionary("l_shipmode");
  if (modes == nullptr) {
    return Status::Internal("lineitem has no l_shipmode dictionary");
  }
  ADAMANT_ASSIGN_OR_RETURN(int32_t mode1, modes->Lookup(params.shipmode1));
  ADAMANT_ASSIGN_OR_RETURN(int32_t mode2, modes->Lookup(params.shipmode2));

  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr c, orders->GetColumn("o_orderkey"));
  const int32_t* o_orderkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, orders->GetColumn("o_orderpriority"));
  const int32_t* o_priority = c->data<int32_t>();
  std::unordered_map<int32_t, int32_t> priority_of;
  priority_of.reserve(orders->num_rows());
  for (size_t i = 0; i < orders->num_rows(); ++i) {
    priority_of.emplace(o_orderkey[i], o_priority[i]);
  }

  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_orderkey"));
  const int32_t* l_orderkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_shipmode"));
  const int32_t* l_shipmode = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_shipdate"));
  const int32_t* l_shipdate = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_commitdate"));
  const int32_t* l_commitdate = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_receiptdate"));
  const int32_t* l_receiptdate = c->data<int32_t>();

  std::map<int32_t, Q12Row> rows;
  const int32_t end = params.date_end();
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    if (l_shipmode[i] != mode1 && l_shipmode[i] != mode2) continue;
    if (l_commitdate[i] >= l_receiptdate[i]) continue;
    if (l_shipdate[i] >= l_commitdate[i]) continue;
    if (l_receiptdate[i] < params.date || l_receiptdate[i] >= end) continue;
    auto it = priority_of.find(l_orderkey[i]);
    if (it == priority_of.end()) continue;
    Q12Row& row = rows.try_emplace(l_shipmode[i],
                                   Q12Row{l_shipmode[i], 0, 0})
                      .first->second;
    // Priority codes interned in spec order: 0 = 1-URGENT, 1 = 2-HIGH.
    if (it->second <= 1) {
      row.high_line_count += 1;
    } else {
      row.low_line_count += 1;
    }
  }
  std::vector<Q12Row> result;
  result.reserve(rows.size());
  for (const auto& [mode, row] : rows) result.push_back(row);
  return result;
}

Result<Q14Result> Q14Reference(const Catalog& catalog,
                               const Q14Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(TablePtr lineitem, catalog.GetTable("lineitem"));
  ADAMANT_ASSIGN_OR_RETURN(TablePtr part, catalog.GetTable("part"));

  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr c, part->GetColumn("p_partkey"));
  const int32_t* p_partkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, part->GetColumn("p_ispromo"));
  const int32_t* p_ispromo = c->data<int32_t>();
  std::unordered_map<int32_t, bool> promo_of;
  promo_of.reserve(part->num_rows());
  for (size_t i = 0; i < part->num_rows(); ++i) {
    promo_of.emplace(p_partkey[i], p_ispromo[i] != 0);
  }

  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_partkey"));
  const int32_t* l_partkey = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_shipdate"));
  const int32_t* l_shipdate = c->data<int32_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_extendedprice"));
  const int64_t* l_extendedprice = c->data<int64_t>();
  ADAMANT_ASSIGN_OR_RETURN(c, lineitem->GetColumn("l_discount"));
  const int32_t* l_discount = c->data<int32_t>();

  Q14Result result{0, 0};
  const int32_t end = params.date_end();
  for (size_t i = 0; i < lineitem->num_rows(); ++i) {
    if (l_shipdate[i] < params.date || l_shipdate[i] >= end) continue;
    auto it = promo_of.find(l_partkey[i]);
    if (it == promo_of.end()) continue;
    const int64_t revenue =
        l_extendedprice[i] * (100 - l_discount[i]) / 100;
    result.total_revenue_cents += revenue;
    if (it->second) result.promo_revenue_cents += revenue;
  }
  return result;
}

Result<int64_t> Q6Reference(const Catalog& catalog, const Q6Params& params) {
  ADAMANT_ASSIGN_OR_RETURN(LineitemCols li, GetLineitem(catalog));
  const int32_t end = params.date_end();
  const int32_t lo = params.discount_pct - 1;
  const int32_t hi = params.discount_pct + 1;

  int64_t revenue = 0;
  for (size_t i = 0; i < li.rows; ++i) {
    if (li.shipdate[i] < params.date || li.shipdate[i] >= end) continue;
    if (li.discount[i] < lo || li.discount[i] > hi) continue;
    if (li.quantity[i] >= params.quantity) continue;
    revenue += li.extendedprice[i] * li.discount[i] / 100;
  }
  return revenue;
}

}  // namespace adamant::tpch
