#include "tpch/tpch_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/random.h"
#include "common/units.h"

namespace adamant::tpch {

namespace {

// Spec anchors.
const Date kStartDate = Date::FromYmd(1992, 1, 1);
const Date kEndDate = Date::FromYmd(1998, 12, 31);
const Date kCurrentDate = Date::FromYmd(1995, 6, 17);
// Latest o_orderdate = ENDDATE - 151 days so every lineitem date fits.
const int32_t kMaxOrderDate = kEndDate.days() - 151;

int64_t ScaledRows(double sf, int64_t base) {
  auto rows = static_cast<int64_t>(std::llround(sf * static_cast<double>(base)));
  return std::max<int64_t>(rows, 1);
}

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// n_regionkey per nation (spec Appendix).
const int32_t kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kShipModes[] = {"REG AIR", "AIR",   "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
// Spec 4.2.2.13 p_type = Types1 Types2 Types3 (6 x 5 x 5 = 150 strings).
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM",
                         "LARGE",    "ECONOMY", "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

struct LineitemBuilder {
  std::vector<int32_t> orderkey, partkey, suppkey, linenumber, quantity;
  std::vector<int64_t> extendedprice;
  std::vector<int32_t> discount, tax, returnflag, linestatus, shipmode;
  std::vector<int32_t> shipdate, commitdate, receiptdate;

  void Reserve(size_t n) {
    for (auto* v : {&orderkey, &partkey, &suppkey, &linenumber, &quantity,
                    &discount, &tax, &returnflag, &linestatus, &shipmode,
                    &shipdate, &commitdate, &receiptdate}) {
      v->reserve(n);
    }
    extendedprice.reserve(n);
  }
};

Status AddInt32(Table* table, std::string name, std::vector<int32_t> values) {
  return table->AddColumn(Column::FromVector(std::move(name), values));
}

Status AddInt64(Table* table, std::string name, std::vector<int64_t> values) {
  return table->AddColumn(Column::FromVector(std::move(name), values));
}

}  // namespace

int64_t CustomerRows(double sf) { return ScaledRows(sf, 150000); }
int64_t OrdersRows(double sf) { return ScaledRows(sf, 1500000); }
int64_t LineitemRowsApprox(double sf) { return ScaledRows(sf, 6000000); }
int64_t PartRows(double sf) { return ScaledRows(sf, 200000); }
int64_t SupplierRows(double sf) { return ScaledRows(sf, 10000); }
int64_t PartsuppRows(double sf) { return ScaledRows(sf, 800000); }

int64_t RetailPriceCents(int32_t partkey) {
  // Spec 4.2.3: (90000 + ((partkey/10) mod 20001) + 100*(partkey mod 1000))
  // expressed in cents.
  return 90000 + (partkey / 10) % 20001 + 100 * (partkey % 1000);
}

Result<std::shared_ptr<Catalog>> Generate(const TpchConfig& config) {
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  auto catalog = std::make_shared<Catalog>();
  Rng rng(config.seed);

  const int64_t num_customers = CustomerRows(config.scale_factor);
  const int64_t num_orders = OrdersRows(config.scale_factor);
  const int64_t num_parts = PartRows(config.scale_factor);
  const int64_t num_suppliers = SupplierRows(config.scale_factor);

  // --- customer ---
  {
    auto table = std::make_shared<Table>("customer");
    auto* seg_dict = table->GetDictionary("c_mktsegment");
    std::vector<int32_t> custkey(num_customers), nationkey(num_customers),
        mktsegment(num_customers);
    std::vector<int64_t> acctbal(num_customers);
    for (int64_t i = 0; i < num_customers; ++i) {
      custkey[i] = static_cast<int32_t>(i + 1);
      nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
      mktsegment[i] =
          seg_dict->GetOrInsert(kSegments[rng.Uniform(0, 4)]);
      acctbal[i] = rng.Uniform(-99999, 999999);  // cents, spec [-999.99,9999.99]
    }
    ADAMANT_RETURN_NOT_OK(AddInt32(table.get(), "c_custkey", std::move(custkey)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(table.get(), "c_nationkey", std::move(nationkey)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(table.get(), "c_mktsegment", std::move(mktsegment)));
    ADAMANT_RETURN_NOT_OK(AddInt64(table.get(), "c_acctbal", std::move(acctbal)));
    ADAMANT_RETURN_NOT_OK(catalog->AddTable(table));
  }

  // --- orders + lineitem (generated together; lineitem dates chain off
  //     o_orderdate per spec) ---
  {
    auto orders = std::make_shared<Table>("orders");
    auto* prio_dict = orders->GetDictionary("o_orderpriority");
    auto* status_dict = orders->GetDictionary("o_orderstatus");
    // Intern priorities in spec order so code k <-> kPriorities[k].
    for (const char* p : kPriorities) prio_dict->GetOrInsert(p);

    std::vector<int32_t> o_orderkey(num_orders), o_custkey(num_orders),
        o_orderstatus(num_orders), o_orderdate(num_orders),
        o_orderpriority(num_orders), o_shippriority(num_orders);
    std::vector<int64_t> o_totalprice(num_orders);

    auto lineitem = std::make_shared<Table>("lineitem");
    auto* rf_dict = lineitem->GetDictionary("l_returnflag");
    auto* ls_dict = lineitem->GetDictionary("l_linestatus");
    auto* sm_dict = lineitem->GetDictionary("l_shipmode");
    // Intern ship modes in spec order so code k <-> kShipModes[k].
    for (const char* mode : kShipModes) sm_dict->GetOrInsert(mode);
    const int32_t kCodeR = rf_dict->GetOrInsert("R");
    const int32_t kCodeA = rf_dict->GetOrInsert("A");
    const int32_t kCodeN = rf_dict->GetOrInsert("N");
    const int32_t kCodeO = ls_dict->GetOrInsert("O");
    const int32_t kCodeF = ls_dict->GetOrInsert("F");

    LineitemBuilder li;
    li.Reserve(static_cast<size_t>(num_orders) * 4);

    const int32_t code_f = status_dict->GetOrInsert("F");
    const int32_t code_o = status_dict->GetOrInsert("O");
    const int32_t code_p = status_dict->GetOrInsert("P");

    for (int64_t o = 0; o < num_orders; ++o) {
      const auto orderkey = static_cast<int32_t>(o + 1);
      o_orderkey[o] = orderkey;
      o_custkey[o] = static_cast<int32_t>(rng.Uniform(1, num_customers));
      o_orderdate[o] = static_cast<int32_t>(
          rng.Uniform(kStartDate.days(), kMaxOrderDate));
      o_orderpriority[o] = static_cast<int32_t>(rng.Uniform(0, 4));
      o_shippriority[o] = 0;

      const int64_t num_lines = rng.Uniform(1, 7);
      int64_t total_price = 0;
      int shipped_lines = 0;
      for (int64_t l = 0; l < num_lines; ++l) {
        const auto pk = static_cast<int32_t>(rng.Uniform(1, num_parts));
        const auto qty = static_cast<int32_t>(rng.Uniform(1, 50));
        const int64_t extprice = qty * RetailPriceCents(pk);
        const auto disc = static_cast<int32_t>(rng.Uniform(0, 10));
        const auto tax = static_cast<int32_t>(rng.Uniform(0, 8));
        const int32_t shipdate =
            o_orderdate[o] + static_cast<int32_t>(rng.Uniform(1, 121));
        const int32_t commitdate =
            o_orderdate[o] + static_cast<int32_t>(rng.Uniform(30, 90));
        const int32_t receiptdate =
            shipdate + static_cast<int32_t>(rng.Uniform(1, 30));

        li.orderkey.push_back(orderkey);
        li.partkey.push_back(pk);
        li.suppkey.push_back(static_cast<int32_t>(rng.Uniform(1, num_suppliers)));
        li.linenumber.push_back(static_cast<int32_t>(l + 1));
        li.quantity.push_back(qty);
        li.extendedprice.push_back(extprice);
        li.discount.push_back(disc);
        li.tax.push_back(tax);
        // Spec: R/A when the line was received by the current date, N after.
        if (receiptdate <= kCurrentDate.days()) {
          li.returnflag.push_back(rng.Bernoulli(0.5) ? kCodeR : kCodeA);
        } else {
          li.returnflag.push_back(kCodeN);
        }
        li.shipmode.push_back(static_cast<int32_t>(rng.Uniform(0, 6)));
        const bool shipped = shipdate <= kCurrentDate.days();
        li.linestatus.push_back(shipped ? kCodeF : kCodeO);
        shipped_lines += shipped ? 1 : 0;
        li.shipdate.push_back(shipdate);
        li.commitdate.push_back(commitdate);
        li.receiptdate.push_back(receiptdate);
        total_price += extprice * (100 - disc) * (100 + tax) / 10000;
      }
      o_totalprice[o] = total_price;
      o_orderstatus[o] = shipped_lines == num_lines ? code_f
                         : shipped_lines == 0       ? code_o
                                                    : code_p;
    }

    ADAMANT_RETURN_NOT_OK(
        AddInt32(orders.get(), "o_orderkey", std::move(o_orderkey)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(orders.get(), "o_custkey", std::move(o_custkey)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(orders.get(), "o_orderstatus", std::move(o_orderstatus)));
    ADAMANT_RETURN_NOT_OK(
        AddInt64(orders.get(), "o_totalprice", std::move(o_totalprice)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(orders.get(), "o_orderdate", std::move(o_orderdate)));
    ADAMANT_RETURN_NOT_OK(AddInt32(orders.get(), "o_orderpriority",
                                   std::move(o_orderpriority)));
    ADAMANT_RETURN_NOT_OK(AddInt32(orders.get(), "o_shippriority",
                                   std::move(o_shippriority)));
    ADAMANT_RETURN_NOT_OK(catalog->AddTable(orders));

    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_orderkey", std::move(li.orderkey)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_partkey", std::move(li.partkey)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_suppkey", std::move(li.suppkey)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_linenumber", std::move(li.linenumber)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_quantity", std::move(li.quantity)));
    ADAMANT_RETURN_NOT_OK(AddInt64(lineitem.get(), "l_extendedprice",
                                   std::move(li.extendedprice)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_discount", std::move(li.discount)));
    ADAMANT_RETURN_NOT_OK(AddInt32(lineitem.get(), "l_tax", std::move(li.tax)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_returnflag", std::move(li.returnflag)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_linestatus", std::move(li.linestatus)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_shipmode", std::move(li.shipmode)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_shipdate", std::move(li.shipdate)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_commitdate", std::move(li.commitdate)));
    ADAMANT_RETURN_NOT_OK(
        AddInt32(lineitem.get(), "l_receiptdate", std::move(li.receiptdate)));
    ADAMANT_RETURN_NOT_OK(catalog->AddTable(lineitem));
  }

  if (config.include_dimension_tables) {
    // --- part ---
    {
      auto table = std::make_shared<Table>("part");
      auto* type_dict = table->GetDictionary("p_type");
      // Intern all 150 spec type strings so codes are SF-independent; codes
      // [125, 150) are the PROMO types.
      for (const char* t1 : kTypes1) {
        for (const char* t2 : kTypes2) {
          for (const char* t3 : kTypes3) {
            type_dict->GetOrInsert(std::string(t1) + " " + t2 + " " + t3);
          }
        }
      }
      std::vector<int32_t> partkey(num_parts), size(num_parts),
          type(num_parts), ispromo(num_parts);
      std::vector<int64_t> retailprice(num_parts);
      for (int64_t i = 0; i < num_parts; ++i) {
        partkey[i] = static_cast<int32_t>(i + 1);
        size[i] = static_cast<int32_t>(rng.Uniform(1, 50));
        retailprice[i] = RetailPriceCents(partkey[i]);
        type[i] = static_cast<int32_t>(rng.Uniform(0, 149));
        // Pre-decoded "p_type LIKE 'PROMO%'" flag: dictionary predicates are
        // evaluated once against the dictionary and stored as an int column
        // the integer-only device kernels can consume.
        ispromo[i] =
            type_dict->GetString(type[i]).rfind("PROMO", 0) == 0 ? 1 : 0;
      }
      ADAMANT_RETURN_NOT_OK(AddInt32(table.get(), "p_partkey", std::move(partkey)));
      ADAMANT_RETURN_NOT_OK(AddInt32(table.get(), "p_size", std::move(size)));
      ADAMANT_RETURN_NOT_OK(
          AddInt64(table.get(), "p_retailprice", std::move(retailprice)));
      ADAMANT_RETURN_NOT_OK(AddInt32(table.get(), "p_type", std::move(type)));
      ADAMANT_RETURN_NOT_OK(
          AddInt32(table.get(), "p_ispromo", std::move(ispromo)));
      ADAMANT_RETURN_NOT_OK(catalog->AddTable(table));
    }

    // --- supplier ---
    {
      auto table = std::make_shared<Table>("supplier");
      std::vector<int32_t> suppkey(num_suppliers), nationkey(num_suppliers);
      std::vector<int64_t> acctbal(num_suppliers);
      for (int64_t i = 0; i < num_suppliers; ++i) {
        suppkey[i] = static_cast<int32_t>(i + 1);
        nationkey[i] = static_cast<int32_t>(rng.Uniform(0, 24));
        acctbal[i] = rng.Uniform(-99999, 999999);
      }
      ADAMANT_RETURN_NOT_OK(AddInt32(table.get(), "s_suppkey", std::move(suppkey)));
      ADAMANT_RETURN_NOT_OK(
          AddInt32(table.get(), "s_nationkey", std::move(nationkey)));
      ADAMANT_RETURN_NOT_OK(AddInt64(table.get(), "s_acctbal", std::move(acctbal)));
      ADAMANT_RETURN_NOT_OK(catalog->AddTable(table));
    }

    // --- partsupp ---
    {
      auto table = std::make_shared<Table>("partsupp");
      const int64_t rows = PartsuppRows(config.scale_factor);
      std::vector<int32_t> ps_partkey(rows), ps_suppkey(rows), availqty(rows);
      std::vector<int64_t> supplycost(rows);
      for (int64_t i = 0; i < rows; ++i) {
        ps_partkey[i] = static_cast<int32_t>(i % num_parts + 1);
        ps_suppkey[i] = static_cast<int32_t>(rng.Uniform(1, num_suppliers));
        availqty[i] = static_cast<int32_t>(rng.Uniform(1, 9999));
        supplycost[i] = rng.Uniform(100, 100000);
      }
      ADAMANT_RETURN_NOT_OK(
          AddInt32(table.get(), "ps_partkey", std::move(ps_partkey)));
      ADAMANT_RETURN_NOT_OK(
          AddInt32(table.get(), "ps_suppkey", std::move(ps_suppkey)));
      ADAMANT_RETURN_NOT_OK(
          AddInt32(table.get(), "ps_availqty", std::move(availqty)));
      ADAMANT_RETURN_NOT_OK(
          AddInt64(table.get(), "ps_supplycost", std::move(supplycost)));
      ADAMANT_RETURN_NOT_OK(catalog->AddTable(table));
    }

    // --- nation / region ---
    {
      auto nation = std::make_shared<Table>("nation");
      auto* name_dict = nation->GetDictionary("n_name");
      std::vector<int32_t> nationkey(25), regionkey(25), name(25);
      for (int i = 0; i < 25; ++i) {
        nationkey[i] = i;
        regionkey[i] = kNationRegion[i];
        name[i] = name_dict->GetOrInsert(kNations[i]);
      }
      ADAMANT_RETURN_NOT_OK(
          AddInt32(nation.get(), "n_nationkey", std::move(nationkey)));
      ADAMANT_RETURN_NOT_OK(
          AddInt32(nation.get(), "n_regionkey", std::move(regionkey)));
      ADAMANT_RETURN_NOT_OK(AddInt32(nation.get(), "n_name", std::move(name)));
      ADAMANT_RETURN_NOT_OK(catalog->AddTable(nation));

      auto region = std::make_shared<Table>("region");
      auto* region_dict = region->GetDictionary("r_name");
      std::vector<int32_t> rkey(5), rname(5);
      for (int i = 0; i < 5; ++i) {
        rkey[i] = i;
        rname[i] = region_dict->GetOrInsert(kRegions[i]);
      }
      ADAMANT_RETURN_NOT_OK(AddInt32(region.get(), "r_regionkey", std::move(rkey)));
      ADAMANT_RETURN_NOT_OK(AddInt32(region.get(), "r_name", std::move(rname)));
      ADAMANT_RETURN_NOT_OK(catalog->AddTable(region));
    }
  }

  return catalog;
}

}  // namespace adamant::tpch
