#include "tpch/tbl_schemas.h"

#include <sys/stat.h>

namespace adamant::tpch {

namespace {
using K = TblColumnSpec::Kind;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}
}  // namespace

std::vector<TblColumnSpec> LineitemTblSpec() {
  return {{"l_orderkey", K::kInt32},     {"l_partkey", K::kInt32},
          {"l_suppkey", K::kInt32},      {"l_linenumber", K::kInt32},
          {"l_quantity", K::kInt32},     {"l_extendedprice", K::kMoney},
          {"l_discount", K::kPct},       {"l_tax", K::kPct},
          {"l_returnflag", K::kDict},    {"l_linestatus", K::kDict},
          {"l_shipdate", K::kDate},      {"l_commitdate", K::kDate},
          {"l_receiptdate", K::kDate},   {"l_shipinstruct", K::kSkip},
          {"l_shipmode", K::kDict},      {"l_comment", K::kSkip}};
}

std::vector<TblColumnSpec> OrdersTblSpec() {
  return {{"o_orderkey", K::kInt32},     {"o_custkey", K::kInt32},
          {"o_orderstatus", K::kDict},   {"o_totalprice", K::kMoney},
          {"o_orderdate", K::kDate},     {"o_orderpriority", K::kDict},
          {"o_clerk", K::kSkip},         {"o_shippriority", K::kInt32},
          {"o_comment", K::kSkip}};
}

std::vector<TblColumnSpec> CustomerTblSpec() {
  return {{"c_custkey", K::kInt32},   {"c_name", K::kSkip},
          {"c_address", K::kSkip},    {"c_nationkey", K::kInt32},
          {"c_phone", K::kSkip},      {"c_acctbal", K::kMoney},
          {"c_mktsegment", K::kDict}, {"c_comment", K::kSkip}};
}

std::vector<TblColumnSpec> PartTblSpec() {
  return {{"p_partkey", K::kInt32},     {"p_name", K::kSkip},
          {"p_mfgr", K::kSkip},         {"p_brand", K::kSkip},
          {"p_type", K::kDict},         {"p_size", K::kInt32},
          {"p_container", K::kSkip},    {"p_retailprice", K::kMoney},
          {"p_comment", K::kSkip}};
}

std::vector<TblColumnSpec> SupplierTblSpec() {
  return {{"s_suppkey", K::kInt32}, {"s_name", K::kSkip},
          {"s_address", K::kSkip},  {"s_nationkey", K::kInt32},
          {"s_phone", K::kSkip},    {"s_acctbal", K::kMoney},
          {"s_comment", K::kSkip}};
}

std::vector<TblColumnSpec> PartsuppTblSpec() {
  return {{"ps_partkey", K::kInt32},
          {"ps_suppkey", K::kInt32},
          {"ps_availqty", K::kInt32},
          {"ps_supplycost", K::kMoney},
          {"ps_comment", K::kSkip}};
}

std::vector<TblColumnSpec> NationTblSpec() {
  return {{"n_nationkey", K::kInt32},
          {"n_name", K::kDict},
          {"n_regionkey", K::kInt32},
          {"n_comment", K::kSkip}};
}

std::vector<TblColumnSpec> RegionTblSpec() {
  return {{"r_regionkey", K::kInt32},
          {"r_name", K::kDict},
          {"r_comment", K::kSkip}};
}

Status DerivePartPromoFlag(Table* part) {
  if (part == nullptr) return Status::InvalidArgument("null table");
  ADAMANT_ASSIGN_OR_RETURN(ColumnPtr type, part->GetColumn("p_type"));
  const StringDictionary* dict = part->FindDictionary("p_type");
  if (dict == nullptr) {
    return Status::InvalidArgument("part has no p_type dictionary");
  }
  std::vector<int32_t> ispromo(part->num_rows());
  const int32_t* codes = type->data<int32_t>();
  for (size_t i = 0; i < part->num_rows(); ++i) {
    ispromo[i] = dict->GetString(codes[i]).rfind("PROMO", 0) == 0 ? 1 : 0;
  }
  return part->AddColumn(Column::FromVector("p_ispromo", ispromo));
}

Result<std::shared_ptr<Catalog>> LoadTblDirectory(const std::string& dir) {
  struct Entry {
    const char* table;
    std::vector<TblColumnSpec> (*spec)();
  };
  const Entry entries[] = {
      {"lineitem", &LineitemTblSpec}, {"orders", &OrdersTblSpec},
      {"customer", &CustomerTblSpec}, {"part", &PartTblSpec},
      {"supplier", &SupplierTblSpec}, {"partsupp", &PartsuppTblSpec},
      {"nation", &NationTblSpec},     {"region", &RegionTblSpec},
  };
  auto catalog = std::make_shared<Catalog>();
  size_t loaded = 0;
  for (const Entry& entry : entries) {
    const std::string path = dir + "/" + entry.table + ".tbl";
    if (!FileExists(path)) continue;
    ADAMANT_ASSIGN_OR_RETURN(TablePtr table,
                             ReadTblFile(path, entry.table, entry.spec()));
    if (std::string(entry.table) == "part") {
      ADAMANT_RETURN_NOT_OK(DerivePartPromoFlag(table.get()));
    }
    ADAMANT_RETURN_NOT_OK(catalog->AddTable(table));
    ++loaded;
  }
  if (loaded == 0) {
    return Status::NotFound("no .tbl files in '" + dir + "'");
  }
  return catalog;
}

}  // namespace adamant::tpch
