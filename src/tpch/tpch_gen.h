#ifndef ADAMANT_TPCH_TPCH_GEN_H_
#define ADAMANT_TPCH_TPCH_GEN_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "storage/table.h"

namespace adamant::tpch {

/// Configuration of the from-scratch TPC-H data generator. The generator is
/// integer-centric to match ADAMANT's device kernels: dates are day numbers,
/// money is int64 cents, percentages (discount/tax) are int32 percent, and
/// low-cardinality strings are dictionary codes.
///
/// Deviations from the reference dbgen (documented substitutions):
///   * order keys are dense 1..N instead of the spec's sparse keys — the
///     evaluated queries only need key identity;
///   * o_custkey is uniform over all customers (the spec skips every third
///     customer);
///   * text columns (comments, names, addresses) are not generated — no
///     evaluated query touches them, and they would only pad table bytes.
/// Column distributions the evaluated queries *do* depend on (dates,
/// quantities, discounts, prices, priorities, segments, flags) follow the
/// spec formulas, so selectivities and aggregate shapes match.
struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 19920101;
  /// Generate the small dimension tables (part/supplier/partsupp/nation/
  /// region) in addition to customer/orders/lineitem.
  bool include_dimension_tables = true;
};

/// Spec row counts at scale factor `sf` (fractional SF supported).
int64_t CustomerRows(double sf);
int64_t OrdersRows(double sf);
/// Expected lineitem rows (~4 per order; the exact count is data-dependent).
int64_t LineitemRowsApprox(double sf);
int64_t PartRows(double sf);
int64_t SupplierRows(double sf);
int64_t PartsuppRows(double sf);

/// TPC-H retail price of a part, in cents (spec 4.2.3 formula).
int64_t RetailPriceCents(int32_t partkey);

/// Generates a catalog holding the TPC-H tables at the configured scale.
Result<std::shared_ptr<Catalog>> Generate(const TpchConfig& config);

}  // namespace adamant::tpch

#endif  // ADAMANT_TPCH_TPCH_GEN_H_
