#ifndef ADAMANT_PLAN_SELECTIVITY_H_
#define ADAMANT_PLAN_SELECTIVITY_H_

#include "common/result.h"
#include "plan/logical_plan.h"
#include "storage/table.h"

namespace adamant::plan {

/// Sampling-based cardinality estimation: runs the reference interpreter
/// over a systematic sample of the base tables (every `sample_every`-th
/// row) and rewrites the plan with measured estimates:
///   * each filter predicate's conditional selectivity,
///   * each join's output fraction of its probe input,
///   * each GroupBy's expected group count (when the plan left it at 0).
///
/// The result is a new tree (logical nodes are immutable); the original is
/// untouched. Estimates are clamped away from 0 and padded by the lowering
/// pass's safety margin downstream, so a sampling miss costs buffer
/// capacity rather than a query failure.
Result<LogicalNodePtr> AnnotateSelectivities(const LogicalNode& root,
                                             const Catalog& catalog,
                                             size_t sample_every = 7);

}  // namespace adamant::plan

#endif  // ADAMANT_PLAN_SELECTIVITY_H_
