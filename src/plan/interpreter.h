#ifndef ADAMANT_PLAN_INTERPRETER_H_
#define ADAMANT_PLAN_INTERPRETER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/logical_plan.h"
#include "storage/table.h"

namespace adamant::plan {

/// A row-wise reference interpreter for the logical algebra. It shares no
/// code with the device kernels or the executor — only the operator
/// semantics — so it serves as an independent oracle: the plan fuzzer
/// compares every lowered/executed plan against it, and users can verify
/// their own plans the same way. It is also the sampling engine behind the
/// selectivity annotator (selectivity.h). All values are widened to int64.
struct InterpreterStream {
  std::map<std::string, std::vector<int64_t>> cols;
  size_t rows = 0;
};

/// Evaluates the subtree under a sink (everything except GroupBy/Reduce).
Result<InterpreterStream> InterpretStream(const LogicalNode& node,
                                          const Catalog& catalog);

/// Full-plan results: output name -> (group key -> value). Reduce results
/// use the single key 0. A Reduce over zero rows yields the aggregate's
/// identity (matching AGG_BLOCK's accumulator initialization).
using InterpreterResults = std::map<std::string, std::map<int32_t, int64_t>>;

Result<InterpreterResults> InterpretPlan(const LogicalNode& root,
                                         const Catalog& catalog);

/// Scalar-expression and predicate evaluation, shared with the annotator.
int64_t InterpretExpr(const ScalarExpr& expr, const InterpreterStream& s,
                      size_t row);
bool InterpretPredicate(const Predicate& pred, int64_t value);

}  // namespace adamant::plan

#endif  // ADAMANT_PLAN_INTERPRETER_H_
