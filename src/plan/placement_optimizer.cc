#include "plan/placement_optimizer.h"

#include <algorithm>
#include <map>

#include "plan/fusion.h"
#include "runtime/exec/plan_shapes.h"

namespace adamant::plan {

namespace {

/// Host-side merge throughput assumed for interior-breaker container unions
/// (hash-table entry rehash / partial-sum folds). Deliberately optimistic:
/// the gate should only fire when the round-trip wire time alone already
/// dominates.
constexpr double kHostMergeGibps = 8.0;

const PrimitiveKind kStreaming[] = {
    PrimitiveKind::kMap,         PrimitiveKind::kFilterBitmap,
    PrimitiveKind::kFilterPosition, PrimitiveKind::kMaterialize,
    PrimitiveKind::kMaterializePosition, PrimitiveKind::kPrefixSum};
const PrimitiveKind kHash[] = {PrimitiveKind::kHashBuild,
                               PrimitiveKind::kHashProbe,
                               PrimitiveKind::kHashAgg,
                               PrimitiveKind::kSortAgg};
const PrimitiveKind kSink[] = {PrimitiveKind::kAggBlock};

PlacementPolicy MakeCandidate(DeviceId streaming, DeviceId hash,
                              DeviceId sink) {
  PlacementPolicy policy;
  policy.default_device = streaming;
  for (PrimitiveKind kind : kStreaming) policy.by_kind[kind] = streaming;
  for (PrimitiveKind kind : kHash) policy.by_kind[kind] = hash;
  for (PrimitiveKind kind : kSink) policy.by_kind[kind] = sink;
  return policy;
}

}  // namespace

Result<MergeCostEstimate> EstimateDeviceParallelMerge(
    const PrimitiveGraph& graph, DeviceManager* manager,
    const std::vector<DeviceId>& device_set,
    sim::SimTime baseline_elapsed_us) {
  if (manager == nullptr) return Status::InvalidArgument("null manager");
  if (device_set.empty()) {
    return Status::InvalidArgument("empty device set");
  }
  MergeCostEstimate estimate;
  const auto n = static_cast<double>(device_set.size());
  estimate.savings_us =
      baseline_elapsed_us > 0 ? baseline_elapsed_us * (1.0 - 1.0 / n) : 0.0;
  if (device_set.size() < 2) return estimate;

  const sim::DevicePerfModel& model =
      manager->device(device_set[0])->perf_model();
  const double scale = manager->data_scale();
  ADAMANT_ASSIGN_OR_RETURN(std::vector<Pipeline> pipelines,
                           graph.SplitPipelines());
  for (const Pipeline& pipeline : pipelines) {
    for (int node_id : pipeline.nodes) {
      const GraphNode& node = graph.node(node_id);
      if (!GetSignature(node.kind).pipeline_breaker) continue;
      // Terminal breakers are merged once into the host-side result — no
      // redistribution; only interior breakers pay the full round-trip.
      if (graph.IsTerminal(node_id)) continue;
      ADAMANT_ASSIGN_OR_RETURN(
          exec::PersistShape shape,
          exec::PlanPersist(node, pipeline.input_rows));
      estimate.interior_persist_bytes += shape.bytes;
      const double wire_bytes = static_cast<double>(shape.bytes) * scale;
      // Gather every partition's persist, merge, redistribute the union.
      estimate.merge_cost_us +=
          n * (model.transfer.latency_us +
               model.TransferDuration(wire_bytes,
                                      sim::TransferDirection::kDeviceToHost,
                                      /*pinned=*/false)) +
          n * (model.transfer.latency_us +
               model.TransferDuration(wire_bytes,
                                      sim::TransferDirection::kHostToDevice,
                                      /*pinned=*/false)) +
          sim::TransferUs(wire_bytes, kHostMergeGibps);
    }
  }
  estimate.merge_dominated =
      baseline_elapsed_us > 0 && estimate.merge_cost_us > estimate.savings_us;
  return estimate;
}

Result<PlacementSearchResult> SearchPlacements(
    const LogicalNode& root, const Catalog& catalog, DeviceManager* manager,
    const ExecutionOptions& options) {
  if (manager == nullptr || manager->num_devices() == 0) {
    return Status::InvalidArgument("no devices plugged");
  }

  PlacementSearchResult result;
  bool have_best = false;
  const auto devices = static_cast<DeviceId>(manager->num_devices());
  for (DeviceId streaming = 0; streaming < devices; ++streaming) {
    for (DeviceId hash = 0; hash < devices; ++hash) {
      for (DeviceId sink = 0; sink < devices; ++sink) {
        const std::string name =
            "streaming=" + manager->device(streaming)->name() +
            ",hash=" + manager->device(hash)->name() +
            ",sink=" + manager->device(sink)->name();
        PlacementPolicy policy = MakeCandidate(streaming, hash, sink);
        ADAMANT_ASSIGN_OR_RETURN(PlanBundle bundle,
                                 LowerPlan(root, catalog, policy));
        // Candidates are simulated the way they would run: with the
        // fusion pass applied under the same options.
        ADAMANT_RETURN_NOT_OK(
            ApplyFusion(&bundle, options, manager).status());
        QueryExecutor executor(manager);
        auto exec = executor.Run(bundle.graph.get(), options);
        if (!exec.ok()) {
          // A candidate can legitimately fail (e.g. the hash table exceeds
          // one device's memory); record and move on.
          result.evaluated.emplace_back(name + " (" +
                                            exec.status().ToString() + ")",
                                        -1.0);
          continue;
        }
        result.evaluated.emplace_back(name, exec->stats.elapsed_us);
        if (!have_best || exec->stats.elapsed_us < result.best_elapsed_us) {
          have_best = true;
          result.best = policy;
          result.best_name = name;
          result.best_elapsed_us = exec->stats.elapsed_us;
        }
      }
    }
  }
  // One extra candidate beyond the D^3 single-device grid: if the manager
  // holds two or more identical devices, try splitting the chunk range
  // across all of them (the device-parallel model). The driver retargets
  // every node itself, so the policy only decides what a partition looks
  // like; use the homogeneous all-on-first-set-member placement.
  ADAMANT_ASSIGN_OR_RETURN(std::vector<DeviceId> set,
                           ChooseDeviceSet(manager, 0));
  if (set.size() >= 2) {
    std::string name = "device-parallel{";
    for (size_t i = 0; i < set.size(); ++i) {
      if (i > 0) name += ",";
      name += manager->device(set[i])->name();
    }
    name += "}";
    PlacementPolicy policy = MakeCandidate(set[0], set[0], set[0]);
    ADAMANT_ASSIGN_OR_RETURN(PlanBundle bundle,
                             LowerPlan(root, catalog, policy));
    ADAMANT_RETURN_NOT_OK(ApplyFusion(&bundle, options, manager).status());
    // Merge-cost gate: when the interior-breaker round-trip is predicted to
    // eat the compute savings of the split, don't even simulate the
    // candidate (BENCH_multidevice's Q4 regression: a fact-table HASH_BUILD
    // union dominating a 2-device split).
    ADAMANT_ASSIGN_OR_RETURN(
        MergeCostEstimate merge,
        EstimateDeviceParallelMerge(*bundle.graph, manager, set,
                                    have_best ? result.best_elapsed_us : 0));
    if (have_best && merge.merge_dominated) {
      result.evaluated.emplace_back(
          name + " (rejected: predicted merge " +
              std::to_string(static_cast<long long>(merge.merge_cost_us)) +
              "us > savings " +
              std::to_string(static_cast<long long>(merge.savings_us)) + "us)",
          -1.0);
    } else {
      ExecutionOptions parallel = options;
      parallel.model = ExecutionModelKind::kDeviceParallel;
      parallel.device_set = set;
      QueryExecutor executor(manager);
      auto exec = executor.Run(bundle.graph.get(), parallel);
      if (!exec.ok()) {
        // Graphs with global breakers (PREFIX_SUM, SORT_AGG) reject the
        // model; record and fall back to the grid winner.
        result.evaluated.emplace_back(
            name + " (" + exec.status().ToString() + ")", -1.0);
      } else {
        result.evaluated.emplace_back(name, exec->stats.elapsed_us);
        if (!have_best || exec->stats.elapsed_us < result.best_elapsed_us) {
          have_best = true;
          result.best = policy;
          result.best_name = name;
          result.best_elapsed_us = exec->stats.elapsed_us;
        }
      }
    }
  }

  if (!have_best) {
    return Status::ExecutionError("every placement candidate failed");
  }
  return result;
}

Result<std::vector<DeviceId>> ChooseDeviceSet(DeviceManager* manager,
                                              size_t max_devices) {
  if (manager == nullptr || manager->num_devices() == 0) {
    return Status::InvalidArgument("no devices plugged");
  }
  std::map<std::string, std::vector<DeviceId>> groups;
  for (size_t i = 0; i < manager->num_devices(); ++i) {
    const auto id = static_cast<DeviceId>(i);
    groups[manager->device(id)->perf_model().name].push_back(id);
  }
  const std::vector<DeviceId>* best = nullptr;
  for (const auto& [model_name, ids] : groups) {
    if (best == nullptr || ids.size() > best->size()) best = &ids;
  }
  std::vector<DeviceId> set = *best;  // already sorted: ids ascend per group
  if (max_devices > 0 && set.size() > max_devices) set.resize(max_devices);
  return set;
}

}  // namespace adamant::plan
