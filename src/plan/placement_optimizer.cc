#include "plan/placement_optimizer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "plan/fusion.h"
#include "runtime/exec/hetero_split.h"
#include "runtime/exec/plan_shapes.h"

namespace adamant::plan {

namespace {

/// Host-side merge throughput assumed for interior-breaker container unions
/// (hash-table entry rehash / partial-sum folds). Deliberately optimistic:
/// the gate should only fire when the round-trip wire time alone already
/// dominates.
constexpr double kHostMergeGibps = 8.0;

const PrimitiveKind kStreaming[] = {
    PrimitiveKind::kMap,         PrimitiveKind::kFilterBitmap,
    PrimitiveKind::kFilterPosition, PrimitiveKind::kMaterialize,
    PrimitiveKind::kMaterializePosition, PrimitiveKind::kPrefixSum};
const PrimitiveKind kHash[] = {PrimitiveKind::kHashBuild,
                               PrimitiveKind::kHashProbe,
                               PrimitiveKind::kHashAgg,
                               PrimitiveKind::kSortAgg};
const PrimitiveKind kSink[] = {PrimitiveKind::kAggBlock};

PlacementPolicy MakeCandidate(DeviceId streaming, DeviceId hash,
                              DeviceId sink) {
  PlacementPolicy policy;
  policy.default_device = streaming;
  for (PrimitiveKind kind : kStreaming) policy.by_kind[kind] = streaming;
  for (PrimitiveKind kind : kHash) policy.by_kind[kind] = hash;
  for (PrimitiveKind kind : kSink) policy.by_kind[kind] = sink;
  return policy;
}

}  // namespace

Result<MergeCostEstimate> EstimateDeviceParallelMerge(
    const PrimitiveGraph& graph, DeviceManager* manager,
    const std::vector<DeviceId>& device_set, sim::SimTime baseline_elapsed_us,
    const std::vector<double>& split) {
  if (manager == nullptr) return Status::InvalidArgument("null manager");
  if (device_set.empty()) {
    return Status::InvalidArgument("empty device set");
  }
  MergeCostEstimate estimate;
  const std::vector<double> shares =
      exec::NormalizeSplit(split, device_set.size());
  const double max_share = *std::max_element(shares.begin(), shares.end());
  // The split's elapsed is bounded by its largest partition; the even case
  // reduces to the familiar baseline * (1 - 1/N).
  estimate.savings_us = baseline_elapsed_us > 0
                            ? baseline_elapsed_us * (1.0 - max_share)
                            : 0.0;
  if (device_set.size() < 2) return estimate;

  const double scale = manager->data_scale();
  ADAMANT_ASSIGN_OR_RETURN(std::vector<Pipeline> pipelines,
                           graph.SplitPipelines());
  for (const Pipeline& pipeline : pipelines) {
    for (int node_id : pipeline.nodes) {
      const GraphNode& node = graph.node(node_id);
      if (!GetSignature(node.kind).pipeline_breaker) continue;
      // Terminal breakers are merged once into the host-side result — no
      // redistribution; only interior breakers pay the full round-trip.
      if (graph.IsTerminal(node_id)) continue;
      ADAMANT_ASSIGN_OR_RETURN(
          exec::PersistShape shape,
          exec::PlanPersist(node, pipeline.input_rows));
      estimate.interior_persist_bytes += shape.bytes;
      const double wire_bytes = static_cast<double>(shape.bytes) * scale;
      // Gather every partition's persist, merge, redistribute the union —
      // each device over its own bus (a heterogeneous set mixes transfer
      // models, and the slow bus is usually the expensive leg).
      for (DeviceId id : device_set) {
        const sim::DevicePerfModel& model = manager->device(id)->perf_model();
        estimate.merge_cost_us +=
            (model.transfer.latency_us +
             model.TransferDuration(wire_bytes,
                                    sim::TransferDirection::kDeviceToHost,
                                    /*pinned=*/false)) +
            (model.transfer.latency_us +
             model.TransferDuration(wire_bytes,
                                    sim::TransferDirection::kHostToDevice,
                                    /*pinned=*/false));
      }
      estimate.merge_cost_us += sim::TransferUs(wire_bytes, kHostMergeGibps);
    }
  }
  estimate.merge_dominated =
      baseline_elapsed_us > 0 && estimate.merge_cost_us > estimate.savings_us;
  return estimate;
}

Result<PlacementSearchResult> SearchPlacements(
    const LogicalNode& root, const Catalog& catalog, DeviceManager* manager,
    const ExecutionOptions& options, const SplitCalibration* calibration) {
  if (manager == nullptr || manager->num_devices() == 0) {
    return Status::InvalidArgument("no devices plugged");
  }

  PlacementSearchResult result;
  bool have_best = false;
  const auto devices = static_cast<DeviceId>(manager->num_devices());
  for (DeviceId streaming = 0; streaming < devices; ++streaming) {
    for (DeviceId hash = 0; hash < devices; ++hash) {
      for (DeviceId sink = 0; sink < devices; ++sink) {
        const std::string name =
            "streaming=" + manager->device(streaming)->name() +
            ",hash=" + manager->device(hash)->name() +
            ",sink=" + manager->device(sink)->name();
        PlacementPolicy policy = MakeCandidate(streaming, hash, sink);
        ADAMANT_ASSIGN_OR_RETURN(PlanBundle bundle,
                                 LowerPlan(root, catalog, policy));
        // Candidates are simulated the way they would run: with the
        // fusion pass applied under the same options.
        ADAMANT_RETURN_NOT_OK(
            ApplyFusion(&bundle, options, manager).status());
        QueryExecutor executor(manager);
        auto exec = executor.Run(bundle.graph.get(), options);
        if (!exec.ok()) {
          // A candidate can legitimately fail (e.g. the hash table exceeds
          // one device's memory); record and move on.
          result.evaluated.emplace_back(name + " (" +
                                            exec.status().ToString() + ")",
                                        -1.0);
          continue;
        }
        result.evaluated.emplace_back(name, exec->stats.elapsed_us);
        if (!have_best || exec->stats.elapsed_us < result.best_elapsed_us) {
          have_best = true;
          result.best = policy;
          result.best_name = name;
          result.best_elapsed_us = exec->stats.elapsed_us;
        }
      }
    }
  }
  // Device-parallel candidates beyond the D^3 single-device grid. The
  // driver retargets every node itself, so the policy only decides what a
  // partition looks like; use the all-on-first-set-member placement. Two
  // shapes: the homogeneous even split across the largest identical-device
  // group (PR 5's candidate), and — when the manager mixes device classes —
  // a heterogeneous cost-ratio split across every plugged device, with
  // ratios from the per-device graph price (optionally rescaled by the
  // calibration feedback of earlier runs).
  auto try_device_parallel = [&](const std::vector<DeviceId>& set,
                                 bool ratio_split) -> Status {
    std::string name = ratio_split ? "device-parallel-hetero{"
                                   : "device-parallel{";
    std::vector<double> split;
    std::vector<double> partition_cost;
    PlacementPolicy policy = MakeCandidate(set[0], set[0], set[0]);
    ADAMANT_ASSIGN_OR_RETURN(PlanBundle bundle,
                             LowerPlan(root, catalog, policy));
    ADAMANT_RETURN_NOT_OK(ApplyFusion(&bundle, options, manager).status());
    std::vector<exec::DeviceCostEstimate> estimates;
    if (ratio_split) {
      ExecutionOptions estimate_options = options;
      estimate_options.model = ExecutionModelKind::kDeviceParallel;
      ADAMANT_ASSIGN_OR_RETURN(
          estimates, exec::EstimateDeviceCosts(*bundle.graph, manager, set,
                                               estimate_options));
      split = exec::ThroughputWeights(estimates);
      if (calibration != nullptr) {
        std::vector<std::string> names;
        for (DeviceId id : set) names.push_back(manager->device(id)->name());
        split = calibration->CalibrateWeights(names, std::move(split));
      }
      for (size_t i = 0; i < set.size(); ++i) {
        partition_cost.push_back(estimates[i].total_cost_us * split[i]);
      }
    }
    for (size_t i = 0; i < set.size(); ++i) {
      if (i > 0) name += ",";
      name += manager->device(set[i])->name();
      if (ratio_split) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), ":%.2f", split[i]);
        name += buf;
      }
    }
    name += "}";
    // Merge-cost gate: when the interior-breaker round-trip is predicted to
    // eat the compute savings of the split, don't even simulate the
    // candidate (BENCH_multidevice's Q4 regression: a fact-table HASH_BUILD
    // union dominating a 2-device split).
    ADAMANT_ASSIGN_OR_RETURN(
        MergeCostEstimate merge,
        EstimateDeviceParallelMerge(*bundle.graph, manager, set,
                                    have_best ? result.best_elapsed_us : 0,
                                    split));
    if (have_best && merge.merge_dominated) {
      result.evaluated.emplace_back(
          name + " (rejected: predicted merge " +
              std::to_string(static_cast<long long>(merge.merge_cost_us)) +
              "us > savings " +
              std::to_string(static_cast<long long>(merge.savings_us)) + "us)",
          -1.0);
      return Status::OK();
    }
    ExecutionOptions parallel = options;
    parallel.model = ExecutionModelKind::kDeviceParallel;
    parallel.device_set = set;
    parallel.device_split = split;
    QueryExecutor executor(manager);
    auto exec = executor.Run(bundle.graph.get(), parallel);
    if (!exec.ok()) {
      // Graphs with global breakers (PREFIX_SUM, SORT_AGG) reject the
      // model; record and fall back to the grid winner.
      result.evaluated.emplace_back(
          name + " (" + exec.status().ToString() + ")", -1.0);
      return Status::OK();
    }
    result.evaluated.emplace_back(name, exec->stats.elapsed_us);
    if (!have_best || exec->stats.elapsed_us < result.best_elapsed_us) {
      have_best = true;
      result.best = policy;
      result.best_name = name;
      result.best_elapsed_us = exec->stats.elapsed_us;
      result.best_device_set = set;
      result.best_split =
          split.empty() ? exec::NormalizeSplit({}, set.size()) : split;
      result.best_partition_cost_us = partition_cost;
    }
    return Status::OK();
  };
  ADAMANT_ASSIGN_OR_RETURN(std::vector<DeviceId> set,
                           ChooseDeviceSet(manager, 0));
  if (set.size() >= 2) {
    ADAMANT_RETURN_NOT_OK(try_device_parallel(set, /*ratio_split=*/false));
  }
  auto hetero = ChooseHeterogeneousDeviceSet(manager, 0);
  if (hetero.ok() && hetero->size() >= 2) {
    ADAMANT_RETURN_NOT_OK(try_device_parallel(*hetero, /*ratio_split=*/true));
  }

  if (!have_best) {
    return Status::ExecutionError("every placement candidate failed");
  }
  return result;
}

Result<std::vector<DeviceId>> ChooseDeviceSet(DeviceManager* manager,
                                              size_t max_devices) {
  if (manager == nullptr || manager->num_devices() == 0) {
    return Status::InvalidArgument("no devices plugged");
  }
  std::map<std::string, std::vector<DeviceId>> groups;
  for (size_t i = 0; i < manager->num_devices(); ++i) {
    const auto id = static_cast<DeviceId>(i);
    groups[manager->device(id)->perf_model().name].push_back(id);
  }
  const std::vector<DeviceId>* best = nullptr;
  for (const auto& [model_name, ids] : groups) {
    if (best == nullptr || ids.size() > best->size()) best = &ids;
  }
  std::vector<DeviceId> set = *best;  // already sorted: ids ascend per group
  if (max_devices > 0 && set.size() > max_devices) set.resize(max_devices);
  return set;
}

Result<std::vector<DeviceId>> ChooseHeterogeneousDeviceSet(
    DeviceManager* manager, size_t max_devices) {
  if (manager == nullptr || manager->num_devices() == 0) {
    return Status::InvalidArgument("no devices plugged");
  }
  std::set<std::string> models;
  std::vector<DeviceId> set;
  for (size_t i = 0; i < manager->num_devices(); ++i) {
    const auto id = static_cast<DeviceId>(i);
    models.insert(manager->device(id)->perf_model().name);
    set.push_back(id);
  }
  if (models.size() < 2) {
    return Status::NotFound(
        "all plugged devices share one performance model; use "
        "ChooseDeviceSet");
  }
  if (max_devices > 0 && set.size() > max_devices) set.resize(max_devices);
  return set;
}

}  // namespace adamant::plan
