#include "plan/placement_optimizer.h"

namespace adamant::plan {

namespace {

const PrimitiveKind kStreaming[] = {
    PrimitiveKind::kMap,         PrimitiveKind::kFilterBitmap,
    PrimitiveKind::kFilterPosition, PrimitiveKind::kMaterialize,
    PrimitiveKind::kMaterializePosition, PrimitiveKind::kPrefixSum};
const PrimitiveKind kHash[] = {PrimitiveKind::kHashBuild,
                               PrimitiveKind::kHashProbe,
                               PrimitiveKind::kHashAgg,
                               PrimitiveKind::kSortAgg};
const PrimitiveKind kSink[] = {PrimitiveKind::kAggBlock};

PlacementPolicy MakeCandidate(DeviceId streaming, DeviceId hash,
                              DeviceId sink) {
  PlacementPolicy policy;
  policy.default_device = streaming;
  for (PrimitiveKind kind : kStreaming) policy.by_kind[kind] = streaming;
  for (PrimitiveKind kind : kHash) policy.by_kind[kind] = hash;
  for (PrimitiveKind kind : kSink) policy.by_kind[kind] = sink;
  return policy;
}

}  // namespace

Result<PlacementSearchResult> SearchPlacements(
    const LogicalNode& root, const Catalog& catalog, DeviceManager* manager,
    const ExecutionOptions& options) {
  if (manager == nullptr || manager->num_devices() == 0) {
    return Status::InvalidArgument("no devices plugged");
  }

  PlacementSearchResult result;
  bool have_best = false;
  const auto devices = static_cast<DeviceId>(manager->num_devices());
  for (DeviceId streaming = 0; streaming < devices; ++streaming) {
    for (DeviceId hash = 0; hash < devices; ++hash) {
      for (DeviceId sink = 0; sink < devices; ++sink) {
        const std::string name =
            "streaming=" + manager->device(streaming)->name() +
            ",hash=" + manager->device(hash)->name() +
            ",sink=" + manager->device(sink)->name();
        PlacementPolicy policy = MakeCandidate(streaming, hash, sink);
        ADAMANT_ASSIGN_OR_RETURN(PlanBundle bundle,
                                 LowerPlan(root, catalog, policy));
        QueryExecutor executor(manager);
        auto exec = executor.Run(bundle.graph.get(), options);
        if (!exec.ok()) {
          // A candidate can legitimately fail (e.g. the hash table exceeds
          // one device's memory); record and move on.
          result.evaluated.emplace_back(name + " (" +
                                            exec.status().ToString() + ")",
                                        -1.0);
          continue;
        }
        result.evaluated.emplace_back(name, exec->stats.elapsed_us);
        if (!have_best || exec->stats.elapsed_us < result.best_elapsed_us) {
          have_best = true;
          result.best = policy;
          result.best_name = name;
          result.best_elapsed_us = exec->stats.elapsed_us;
        }
      }
    }
  }
  if (!have_best) {
    return Status::ExecutionError("every placement candidate failed");
  }
  return result;
}

}  // namespace adamant::plan
