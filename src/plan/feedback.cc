#include "plan/feedback.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

namespace adamant::plan {

namespace {

double Clamp01(double v) {
  return std::min(1.0, std::max(SelectivityFeedback::kFloor, v));
}

bool IsSelectiveKind(PrimitiveKind kind) {
  return kind == PrimitiveKind::kFilterPosition ||
         kind == PrimitiveKind::kMaterialize ||
         kind == PrimitiveKind::kHashProbe || kind == PrimitiveKind::kFused;
}

std::string LabelKey(const std::string& label, int ordinal) {
  return "label:" + label + "#" + std::to_string(ordinal);
}

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

}  // namespace

void SelectivityFeedback::Fold(Entry* entry, double actual, double peak) {
  if (entry->observations == 0) {
    entry->ewma = actual;
  } else {
    entry->ewma = kAlpha * actual + (1.0 - kAlpha) * entry->ewma;
  }
  entry->peak = std::max(entry->peak, peak);
  ++entry->observations;
}

void SelectivityFeedback::Observe(
    const std::string& query_name,
    const std::vector<obs::OperatorStats>& operators) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryModel& model = queries_[query_name];
  ++model.runs;
  std::map<std::string, int> ordinals;
  for (const obs::OperatorStats& op : operators) {
    if (!op.selective) continue;
    const int ordinal = ordinals[op.label]++;
    if (op.rows_in == 0) continue;  // cancelled before any chunk landed
    const double actual = op.ActualSelectivity();
    const double peak =
        op.max_chunk_selectivity > 0 ? op.max_chunk_selectivity : actual;
    if (!op.feedback_key.empty()) {
      Fold(&model.keys[op.feedback_key], actual, peak);
    }
    Fold(&model.keys[LabelKey(op.label, ordinal)], actual, peak);
  }
}

int SelectivityFeedback::ApplyToGraph(const std::string& query_name,
                                      PrimitiveGraph* graph) const {
  if (graph == nullptr) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto qit = queries_.find(query_name);
  if (qit == queries_.end()) return 0;
  const QueryModel& model = qit->second;
  int adjusted = 0;
  std::map<std::string, int> ordinals;
  for (const GraphNode& node : graph->nodes()) {
    if (!IsSelectiveKind(node.kind)) continue;
    const int ordinal = ordinals[node.label]++;
    auto it = model.keys.find(LabelKey(node.label, ordinal));
    if (it == model.keys.end() || it->second.observations == 0) continue;
    const Entry& e = it->second;
    // The peak (not the mean) sizes the buffer: a chunk that overflows its
    // capacity estimate fails the query, so head-room pads the worst chunk
    // ever seen.
    graph->mutable_node(node.id).config.selectivity =
        Clamp01(std::max(e.peak, e.ewma) * kSizingMargin);
    ++adjusted;
  }
  return adjusted;
}

LogicalNodePtr SelectivityFeedback::ApplyToLogicalPlan(
    const std::string& query_name, LogicalNodePtr root, int* adjusted) const {
  int local = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto qit = queries_.find(query_name);
    if (qit != queries_.end()) {
      // Private rewrite over a snapshot reference; the lock is held for the
      // whole (cheap, allocation-only) walk.
      struct Walker {
        const std::map<std::string, Entry>& keys;
        int* adjusted;

        LogicalNodePtr Walk(const LogicalNodePtr& node) {
          if (node == nullptr) return node;
          LogicalNodePtr child = Walk(node->child);
          LogicalNodePtr build =
              node->kind == LogicalNode::Kind::kHashJoin ? Walk(node->build)
                                                         : node->build;
          bool changed = child != node->child || build != node->build;
          auto copy = std::make_shared<LogicalNode>(*node);
          copy->child = child;
          copy->build = build;
          if (node->kind == LogicalNode::Kind::kFilter &&
              !node->predicates.empty()) {
            // The filter chain's cumulative selectivity is observed at its
            // MATERIALIZE, keyed by the last FILTER_BITMAP's label.
            auto it = keys.find("step:lower.filter(" +
                                node->predicates.back().column + ")");
            if (it != keys.end() && it->second.observations > 0) {
              double current = 1.0;
              for (const Predicate& p : node->predicates) {
                current *= p.selectivity;
              }
              const double measured = Clamp01(it->second.ewma);
              if (current > 0 && measured > 0) {
                // Spread the correction evenly across the conjuncts — only
                // the product is observable.
                const double factor =
                    std::pow(measured / current,
                             1.0 / static_cast<double>(
                                       node->predicates.size()));
                for (Predicate& p : copy->predicates) {
                  p.selectivity = Clamp01(p.selectivity * factor);
                }
                ++*adjusted;
                changed = true;
              }
            }
          } else if (node->kind == LogicalNode::Kind::kHashJoin) {
            auto it = keys.find("step:lower.probe(" + node->probe_key + ")");
            if (it != keys.end() && it->second.observations > 0) {
              copy->join_selectivity = Clamp01(it->second.ewma);
              ++*adjusted;
              changed = true;
            }
          }
          return changed ? LogicalNodePtr(copy) : node;
        }
      };
      Walker walker{qit->second.keys, &local};
      root = walker.Walk(root);
    }
  }
  if (adjusted != nullptr) *adjusted = local;
  return root;
}

Result<double> SelectivityFeedback::StepSelectivity(
    const std::string& query_name, const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto qit = queries_.find(query_name);
  if (qit == queries_.end()) {
    return Status::NotFound("no feedback for query '" + query_name + "'");
  }
  auto it = qit->second.keys.find(key);
  if (it == qit->second.keys.end() || it->second.observations == 0) {
    return Status::NotFound("no feedback for key '" + key + "'");
  }
  return it->second.ewma;
}

size_t SelectivityFeedback::RunsObserved(const std::string& query_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto qit = queries_.find(query_name);
  return qit == queries_.end() ? 0 : qit->second.runs;
}

std::string SelectivityFeedback::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << '{';
  bool first_query = true;
  for (const auto& [name, model] : queries_) {
    if (!first_query) out << ',';
    first_query = false;
    AppendJsonString(&out, name);
    out << ":{\"runs\":" << model.runs << ",\"keys\":{";
    bool first_key = true;
    for (const auto& [key, entry] : model.keys) {
      if (!first_key) out << ',';
      first_key = false;
      AppendJsonString(&out, key);
      out << ":{\"ewma\":" << entry.ewma << ",\"peak\":" << entry.peak
          << ",\"observations\":" << entry.observations << '}';
    }
    out << "}}";
  }
  out << '}';
  return out.str();
}

void SplitCalibration::Observe(const std::string& device_name,
                               double predicted_chunk_us,
                               double observed_chunk_us) {
  if (!(predicted_chunk_us > 0) || !(observed_chunk_us > 0)) return;
  const double sample =
      std::min(kMaxSkew,
               std::max(1.0 / kMaxSkew, observed_chunk_us / predicted_chunk_us));
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = devices_[device_name];
  entry.ratio = entry.observations == 0
                    ? sample
                    : kAlpha * sample + (1.0 - kAlpha) * entry.ratio;
  ++entry.observations;
}

double SplitCalibration::Ratio(const std::string& device_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = devices_.find(device_name);
  return it == devices_.end() || it->second.observations == 0
             ? 1.0
             : it->second.ratio;
}

std::vector<double> SplitCalibration::CalibrateWeights(
    const std::vector<std::string>& names, std::vector<double> weights) const {
  if (names.size() != weights.size()) return weights;
  std::lock_guard<std::mutex> lock(mu_);
  double sum = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    auto it = devices_.find(names[i]);
    if (it != devices_.end() && it->second.observations > 0) {
      // Observed cost ran ratio-times the prediction, so the device's
      // effective throughput is 1/ratio of the model's — shrink its share.
      weights[i] /= it->second.ratio;
    }
    sum += weights[i];
  }
  if (sum > 0) {
    for (double& w : weights) w /= sum;
  }
  return weights;
}

size_t SplitCalibration::Observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, entry] : devices_) total += entry.observations;
  return total;
}

std::string SplitCalibration::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [name, entry] : devices_) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ":{\"ratio\":" << entry.ratio
        << ",\"observations\":" << entry.observations << '}';
  }
  out << '}';
  return out.str();
}

}  // namespace adamant::plan
