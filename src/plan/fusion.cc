#include "plan/fusion.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "task/kernels_fused.h"

namespace adamant::plan {

namespace {

bool IntType(ElementType type) {
  return type == ElementType::kInt32 || type == ElementType::kInt64;
}

/// Kinds a fused recipe can express. NEQ_PREV maps are cross-row and stay
/// unfused.
bool FusableKind(const GraphNode& node) {
  switch (node.kind) {
    case PrimitiveKind::kMap:
      return node.config.map_op != MapOp::kNeqPrev;
    case PrimitiveKind::kFilterBitmap:
    case PrimitiveKind::kMaterialize:
    case PrimitiveKind::kAggBlock:
      return true;
    default:
      return false;
  }
}

bool TerminalKind(PrimitiveKind kind) {
  return kind == PrimitiveKind::kMap || kind == PrimitiveKind::kMaterialize ||
         kind == PrimitiveKind::kAggBlock;
}

/// One fusable group: its members in topological order, the single
/// terminal, and the composite node the rewrite will create.
struct GroupPlan {
  std::vector<int> members;  // topological order
  int terminal = -1;
  PrimitiveKind kind = PrimitiveKind::kFused;
  std::vector<ColumnPtr> input_columns;  // fused node input slots, in order
  NodeConfig config;
  std::string label;
};

/// Translates a group's member sub-DAG into a linear FusedStep recipe.
/// Returns false when the recipe cannot reproduce the unfused chain
/// bit-for-bit — non-integer columns, a percentage map whose operand is
/// not an int32 load, or a row-alignment hazard: the fused interpreter
/// pairs values of the same *original* row, so a multi-input map must read
/// operands compacted under the same filters, and the emitted/aggregated
/// value must be gated by every filter in the group. The group is then
/// simply left unfused.
bool BuildRecipe(const PrimitiveGraph& g, GroupPlan* group) {
  std::vector<FusedStep>& steps = group->config.fused_steps;
  std::map<const Column*, int32_t> load_reg;  // dedup scan columns
  std::map<int, int32_t> value_reg;           // member node -> value register
  // Compaction context of a member's value: the filter members whose
  // predicates have compacted it (via MATERIALIZE) on its way here.
  std::map<int, std::set<int>> value_ctx;

  // The member producing input slot `slot` of `node_id`; -1 for a scan.
  auto input_source = [&](int node_id, int slot) -> const GraphEdge* {
    for (int eid : g.InEdges(node_id)) {
      const GraphEdge& e = g.edges()[static_cast<size_t>(eid)];
      if (e.to_slot == slot) return &e;
    }
    return nullptr;
  };

  // Register of a member's slot-`slot` value input; -2 on failure.
  auto input_reg = [&](int node_id, int slot) -> int32_t {
    const GraphEdge* e = input_source(node_id, slot);
    if (e == nullptr) return -2;
    if (e->is_scan()) {
      auto it = load_reg.find(e->column.get());
      if (it != load_reg.end()) return it->second;
      if (!IntType(e->elem_type)) return -2;
      if (steps.size() >= kernels::kMaxFusedSteps) return -2;
      FusedStep load;
      load.op = FusedStep::Op::kLoad;
      load.a = static_cast<int64_t>(group->input_columns.size());
      load.b = static_cast<int64_t>(e->elem_type);
      group->input_columns.push_back(e->column);
      load_reg[e->column.get()] = static_cast<int32_t>(steps.size());
      steps.push_back(load);
      return load_reg[e->column.get()];
    }
    auto it = value_reg.find(e->from_node);
    return it == value_reg.end() ? -2 : it->second;
  };

  auto input_ctx = [&](int node_id, int slot) -> std::set<int> {
    const GraphEdge* e = input_source(node_id, slot);
    if (e == nullptr || e->is_scan()) return {};
    auto it = value_ctx.find(e->from_node);
    return it == value_ctx.end() ? std::set<int>{} : it->second;
  };

  // All filters in a bitmap's combine chain (the predicate a MATERIALIZE
  // of that bitmap applies).
  std::function<std::set<int>(int)> filter_closure = [&](int filter_id) {
    std::set<int> closure{filter_id};
    const GraphEdge* chain = input_source(filter_id, 1);
    if (chain != nullptr && !chain->is_scan() &&
        g.node(chain->from_node).kind == PrimitiveKind::kFilterBitmap) {
      std::set<int> up = filter_closure(chain->from_node);
      closure.insert(up.begin(), up.end());
    }
    return closure;
  };

  std::set<int> all_filters;
  for (int id : group->members) {
    if (g.node(id).kind == PrimitiveKind::kFilterBitmap) {
      all_filters.insert(id);
    }
  }

  // Element type a value register holds after store/load between kernels.
  auto reg_elem = [&](int32_t reg) {
    const FusedStep& step = steps[static_cast<size_t>(reg)];
    return static_cast<ElementType>(step.op == FusedStep::Op::kLoad ? step.b
                                                                    : step.c);
  };

  for (int id : group->members) {
    const GraphNode& node = g.node(id);
    const bool terminal = id == group->terminal;
    if (steps.size() + 2 > kernels::kMaxFusedSteps) return false;
    switch (node.kind) {
      case PrimitiveKind::kFilterBitmap: {
        const int32_t src = input_reg(id, 0);
        if (src < 0) return false;
        FusedStep step;
        step.op = FusedStep::Op::kFilter;
        step.a = static_cast<int64_t>(node.config.cmp_op);
        step.b = node.config.lo;
        step.c = node.config.hi;
        step.src0 = src;
        steps.push_back(step);
        break;
      }
      case PrimitiveKind::kMap: {
        const int32_t src0 = input_reg(id, 0);
        if (src0 < 0) return false;
        int32_t src1 = -1;
        const MapOp op = node.config.map_op;
        const bool needs_in1 =
            op == MapOp::kAddCol || op == MapOp::kSubCol ||
            op == MapOp::kMulCol || op == MapOp::kMulPctComplement ||
            op == MapOp::kMulPct || op == MapOp::kMulPctPlus;
        if (needs_in1) {
          src1 = input_reg(id, 1);
          if (src1 < 0) return false;
          // Both operands must pair rows under the same compaction, or the
          // unfused chain combines values of different original rows.
          if (input_ctx(id, 0) != input_ctx(id, 1)) return false;
        }
        // The unfused percentage maps read their in1 buffer as raw int32;
        // the fused interpreter reads a register. They agree only when the
        // register is an int32 load.
        const bool pct = op == MapOp::kMulPctComplement ||
                         op == MapOp::kMulPct || op == MapOp::kMulPctPlus;
        if (pct &&
            (steps[static_cast<size_t>(src1)].op != FusedStep::Op::kLoad ||
             static_cast<ElementType>(steps[static_cast<size_t>(src1)].b) !=
                 ElementType::kInt32)) {
          return false;
        }
        if (!IntType(node.config.out_type)) return false;
        FusedStep step;
        step.op = FusedStep::Op::kMap;
        step.a = static_cast<int64_t>(op);
        step.b = node.config.imm;
        step.c = static_cast<int64_t>(node.config.out_type);
        step.src0 = src0;
        step.src1 = src1;
        value_reg[id] = static_cast<int32_t>(steps.size());
        value_ctx[id] = input_ctx(id, 0);
        steps.push_back(step);
        if (terminal) {
          if (value_ctx[id] != all_filters) return false;
          FusedStep emit;
          emit.op = FusedStep::Op::kEmit;
          emit.a = static_cast<int64_t>(node.config.out_type);
          emit.src0 = value_reg[id];
          steps.push_back(emit);
          group->config.out_type = node.config.out_type;
        }
        break;
      }
      case PrimitiveKind::kMaterialize: {
        // Compaction is implicit in the fused emit; the member only aliases
        // its value input (slot 1's bitmap became part of the predicate).
        const int32_t src = input_reg(id, 0);
        if (src < 0) return false;
        const GraphEdge* bitmap = input_source(id, 1);
        if (bitmap == nullptr || bitmap->is_scan() ||
            g.node(bitmap->from_node).kind != PrimitiveKind::kFilterBitmap) {
          return false;
        }
        value_reg[id] = src;
        std::set<int> ctx = input_ctx(id, 0);
        std::set<int> gate = filter_closure(bitmap->from_node);
        ctx.insert(gate.begin(), gate.end());
        value_ctx[id] = std::move(ctx);
        group->config.selectivity =
            std::min(group->config.selectivity, node.config.selectivity);
        if (terminal) {
          if (value_ctx[id] != all_filters) return false;
          const ElementType elem = reg_elem(src);
          FusedStep emit;
          emit.op = FusedStep::Op::kEmit;
          emit.a = static_cast<int64_t>(elem);
          emit.src0 = src;
          steps.push_back(emit);
          group->config.out_type = elem;
        }
        break;
      }
      case PrimitiveKind::kAggBlock: {
        const int32_t src = input_reg(id, 0);
        if (src < 0) return false;
        // The aggregate must fold exactly the rows surviving every filter
        // the fused predicate will apply.
        if (input_ctx(id, 0) != all_filters) return false;
        FusedStep agg;
        agg.op = FusedStep::Op::kAgg;
        agg.a = static_cast<int64_t>(node.config.agg_op);
        agg.src0 = src;
        steps.push_back(agg);
        group->config.agg_op = node.config.agg_op;
        group->config.out_type = ElementType::kInt64;
        break;
      }
      default:
        return false;
    }
  }
  if (steps.size() < 2 || steps.size() > kernels::kMaxFusedSteps ||
      group->input_columns.empty()) {
    return false;
  }
  group->kind = g.node(group->terminal).kind == PrimitiveKind::kAggBlock
                    ? PrimitiveKind::kFusedAgg
                    : PrimitiveKind::kFused;
  group->config.in_type =
      static_cast<ElementType>(steps[0].b);  // first step is always a load
  group->label = "fused(" + FusedRecipeLabel(steps) + ")";
  return true;
}

/// Auto-mode cost check: one fused traversal (launch + body) vs the sum of
/// the member kernels' launches + bodies, at a representative chunk size.
bool FusionPaysOff(const PrimitiveGraph& g, const GroupPlan& group,
                   DeviceManager* manager) {
  if (manager == nullptr) return true;
  auto dev = manager->GetDevice(g.node(group.terminal).device);
  if (!dev.ok()) return true;
  const sim::DevicePerfModel& m = (*dev)->perf_model();
  const double tuples = static_cast<double>(size_t{1} << 20);
  double unfused_us = 0.0;
  for (int id : group.members) {
    const GraphNode& node = g.node(id);
    unfused_us += m.kernel_launch_us +
                  m.KernelDuration(GetSignature(node.kind).kernel_name,
                                   tuples, /*cost_param=*/0.0);
  }
  const double fused_us =
      m.kernel_launch_us + m.KernelDuration("fused", tuples, 0.0);
  return fused_us < unfused_us;
}

}  // namespace

Result<FusionReport> ApplyFusion(PlanBundle* bundle,
                                 const ExecutionOptions& options,
                                 DeviceManager* manager) {
  FusionReport report;
  if (options.fusion == FusionMode::kOff) return report;
  if (bundle == nullptr || bundle->graph == nullptr) {
    return Status::InvalidArgument("fusion pass needs a lowered plan");
  }
  const PrimitiveGraph& g = *bundle->graph;
  const size_t num_nodes = g.nodes().size();

  // Nodes the caller extracts results from must survive the rewrite; they
  // may fuse only as a group's terminal.
  std::set<int> named;
  for (const auto& [name, id] : bundle->nodes) named.insert(id);
  if (bundle->result_node >= 0) named.insert(bundle->result_node);

  // Candidate membership, refined to a fixpoint: a member's non-scan
  // inputs must come from same-device members (so the group's external
  // inputs are all column scans), interior intermediates may not leak
  // outside the group, breakers and named nodes may only be terminals,
  // and a bitmap cannot be a fused output.
  std::vector<bool> member(num_nodes, false);
  for (const GraphNode& node : g.nodes()) {
    member[static_cast<size_t>(node.id)] = FusableKind(node);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const GraphNode& node : g.nodes()) {
      if (!member[static_cast<size_t>(node.id)]) continue;
      bool drop = false;
      for (int eid : g.InEdges(node.id)) {
        const GraphEdge& e = g.edges()[static_cast<size_t>(eid)];
        if (e.is_scan()) continue;
        if (!member[static_cast<size_t>(e.from_node)] ||
            g.node(e.from_node).device != node.device) {
          drop = true;
        }
      }
      bool interior_out = false;
      bool escaping_out = false;
      for (int eid : g.OutEdges(node.id)) {
        const GraphEdge& e = g.edges()[static_cast<size_t>(eid)];
        if (member[static_cast<size_t>(e.to_node)] &&
            g.node(e.to_node).device == node.device) {
          interior_out = true;
        } else {
          escaping_out = true;
        }
      }
      if (interior_out && escaping_out) drop = true;
      if (interior_out &&
          (node.kind == PrimitiveKind::kAggBlock || named.count(node.id))) {
        drop = true;  // breakers / named nodes may only be terminals
      }
      if (!interior_out && !TerminalKind(node.kind)) drop = true;
      if (drop) {
        member[static_cast<size_t>(node.id)] = false;
        changed = true;
      }
    }
  }

  // Connected components over interior edges.
  std::vector<int> comp(num_nodes, -1);
  int num_comps = 0;
  for (size_t seed = 0; seed < num_nodes; ++seed) {
    if (!member[seed] || comp[seed] >= 0) continue;
    std::vector<int> stack{static_cast<int>(seed)};
    comp[seed] = num_comps;
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      for (const GraphEdge& e : g.edges()) {
        if (e.is_scan()) continue;
        int other = -1;
        if (e.from_node == id && member[static_cast<size_t>(e.to_node)]) {
          other = e.to_node;
        } else if (e.to_node == id &&
                   member[static_cast<size_t>(e.from_node)]) {
          other = e.from_node;
        }
        if (other >= 0 && comp[static_cast<size_t>(other)] < 0) {
          comp[static_cast<size_t>(other)] = num_comps;
          stack.push_back(other);
        }
      }
    }
    ++num_comps;
  }

  ADAMANT_ASSIGN_OR_RETURN(std::vector<int> topo, g.TopoOrder());

  // Validate each component into a GroupPlan (exactly one terminal, >= 2
  // members, expressible recipe, and — in auto mode — a cost-model win).
  std::vector<GroupPlan> groups;
  std::vector<int> group_of(num_nodes, -1);
  for (int c = 0; c < num_comps; ++c) {
    GroupPlan group;
    for (int id : topo) {
      if (comp[static_cast<size_t>(id)] == c) group.members.push_back(id);
    }
    if (group.members.size() < 2) continue;
    int terminals = 0;
    for (int id : group.members) {
      bool interior_out = false;
      for (int eid : g.OutEdges(id)) {
        const GraphEdge& e = g.edges()[static_cast<size_t>(eid)];
        if (comp[static_cast<size_t>(e.to_node)] == c) interior_out = true;
      }
      if (!interior_out) {
        group.terminal = id;
        ++terminals;
      }
    }
    if (terminals != 1) continue;
    if (!BuildRecipe(g, &group)) continue;
    if (options.fusion == FusionMode::kAuto &&
        !FusionPaysOff(g, group, manager)) {
      continue;
    }
    for (int id : group.members) {
      group_of[static_cast<size_t>(id)] = static_cast<int>(groups.size());
    }
    groups.push_back(std::move(group));
  }
  if (groups.empty()) return report;

  // Rebuild the graph in the original topological order, replacing each
  // group with its composite at the terminal's position.
  auto rewritten = std::make_unique<PrimitiveGraph>();
  std::vector<int> new_id(num_nodes, -1);
  for (int old_id : topo) {
    const GraphNode& node = g.node(old_id);
    const int gi = group_of[static_cast<size_t>(old_id)];
    if (gi >= 0 && old_id != groups[static_cast<size_t>(gi)].terminal) {
      continue;  // folded into the composite
    }
    if (gi >= 0) {
      const GroupPlan& group = groups[static_cast<size_t>(gi)];
      const int fid = rewritten->AddNode(group.kind, node.device,
                                         group.config, group.label);
      for (size_t slot = 0; slot < group.input_columns.size(); ++slot) {
        ADAMANT_ASSIGN_OR_RETURN(
            int scan_edge,
            rewritten->ConnectScan(group.input_columns[slot], fid,
                                   static_cast<int>(slot)));
        (void)scan_edge;
      }
      new_id[static_cast<size_t>(old_id)] = fid;
      continue;
    }
    const int nid =
        rewritten->AddNode(node.kind, node.device, node.config, node.label);
    new_id[static_cast<size_t>(old_id)] = nid;
    for (int eid : g.InEdges(old_id)) {
      const GraphEdge& e = g.edges()[static_cast<size_t>(eid)];
      if (e.is_scan()) {
        ADAMANT_ASSIGN_OR_RETURN(
            int scan_edge, rewritten->ConnectScan(e.column, nid, e.to_slot));
        (void)scan_edge;
        continue;
      }
      const int src = new_id[static_cast<size_t>(e.from_node)];
      // A fused source exposes its single output on slot 0; everything
      // else keeps its slot. Semantics/types carry over from the original
      // edge either way.
      const int src_slot =
          group_of[static_cast<size_t>(e.from_node)] >= 0 ? 0 : e.from_slot;
      ADAMANT_ASSIGN_OR_RETURN(
          int edge_id, rewritten->Connect(src, src_slot, nid, e.to_slot,
                                          e.elem_type, e.semantic));
      (void)edge_id;
    }
  }
  ADAMANT_RETURN_NOT_OK(rewritten->Validate());

  for (auto& [name, id] : bundle->nodes) {
    id = new_id[static_cast<size_t>(id)];
  }
  if (bundle->result_node >= 0) {
    bundle->result_node = new_id[static_cast<size_t>(bundle->result_node)];
  }
  bundle->graph = std::move(rewritten);

  report.groups = static_cast<int>(groups.size());
  for (const GroupPlan& group : groups) {
    report.nodes_fused += static_cast<int>(group.members.size());
    report.recipes.push_back(FusedRecipeLabel(group.config.fused_steps));
  }
  return report;
}

}  // namespace adamant::plan
