#include "plan/logical_plan.h"

#include <sstream>

namespace adamant::plan {

namespace {
std::shared_ptr<LogicalNode> NewNode(LogicalNode::Kind kind) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = kind;
  return node;
}
}  // namespace

LogicalNodePtr Scan(std::string table) {
  auto node = NewNode(LogicalNode::Kind::kScan);
  node->table = std::move(table);
  return node;
}

LogicalNodePtr Filter(LogicalNodePtr child,
                      std::vector<Predicate> predicates) {
  auto node = NewNode(LogicalNode::Kind::kFilter);
  node->child = std::move(child);
  node->predicates = std::move(predicates);
  return node;
}

LogicalNodePtr Project(LogicalNodePtr child,
                       std::vector<std::pair<std::string, ScalarExpr>> exprs) {
  auto node = NewNode(LogicalNode::Kind::kProject);
  node->child = std::move(child);
  node->projections = std::move(exprs);
  return node;
}

LogicalNodePtr HashJoin(LogicalNodePtr probe, LogicalNodePtr build,
                        std::string probe_key, std::string build_key,
                        ProbeMode mode, double join_selectivity) {
  auto node = NewNode(LogicalNode::Kind::kHashJoin);
  node->child = std::move(probe);
  node->build = std::move(build);
  node->probe_key = std::move(probe_key);
  node->build_key = std::move(build_key);
  node->join_mode = mode;
  node->join_selectivity = join_selectivity;
  return node;
}

LogicalNodePtr GroupBy(LogicalNodePtr child, std::string key,
                       std::vector<AggSpec> aggregates, double expected_groups,
                       bool groups_scale_with_data) {
  auto node = NewNode(LogicalNode::Kind::kGroupBy);
  node->child = std::move(child);
  node->group_key = std::move(key);
  node->aggregates = std::move(aggregates);
  node->expected_groups = expected_groups;
  node->groups_scale_with_data = groups_scale_with_data;
  return node;
}

LogicalNodePtr Reduce(LogicalNodePtr child, std::vector<AggSpec> aggregates) {
  auto node = NewNode(LogicalNode::Kind::kReduce);
  node->child = std::move(child);
  node->aggregates = std::move(aggregates);
  return node;
}

namespace {

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "SUM";
    case AggOp::kCount:
      return "COUNT";
    case AggOp::kMin:
      return "MIN";
    case AggOp::kMax:
      return "MAX";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kBetween:
      return "BETWEEN";
    case CmpOp::kInPair:
      return "IN";
  }
  return "?";
}

void ExplainInto(const LogicalNode& node, int depth, std::ostringstream* out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out << indent;
  switch (node.kind) {
    case LogicalNode::Kind::kScan:
      *out << "Scan(" << node.table << ")\n";
      return;
    case LogicalNode::Kind::kFilter: {
      *out << "Filter(";
      for (size_t i = 0; i < node.predicates.size(); ++i) {
        const Predicate& p = node.predicates[i];
        if (i > 0) *out << " AND ";
        *out << p.column << " " << CmpOpName(p.op) << " " << p.lo;
        if (p.op == CmpOp::kBetween) *out << ".." << p.hi;
      }
      *out << ")\n";
      break;
    }
    case LogicalNode::Kind::kProject: {
      *out << "Project(";
      for (size_t i = 0; i < node.projections.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << node.projections[i].first;
      }
      *out << ")\n";
      break;
    }
    case LogicalNode::Kind::kHashJoin:
      *out << (node.join_mode == ProbeMode::kSemi ? "SemiJoin(" : "HashJoin(")
           << node.probe_key << " = " << node.build_key << ")\n";
      break;
    case LogicalNode::Kind::kGroupBy: {
      *out << "GroupBy(" << node.group_key << "; ";
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << AggOpName(node.aggregates[i].op) << "("
             << node.aggregates[i].value_column << ")";
      }
      *out << ")\n";
      break;
    }
    case LogicalNode::Kind::kReduce: {
      *out << "Reduce(";
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << AggOpName(node.aggregates[i].op) << "("
             << node.aggregates[i].value_column << ")";
      }
      *out << ")\n";
      break;
    }
  }
  if (node.child != nullptr) ExplainInto(*node.child, depth + 1, out);
  if (node.build != nullptr) {
    *out << indent << "  [build]\n";
    ExplainInto(*node.build, depth + 2, out);
  }
}

}  // namespace

std::string ExplainPlan(const LogicalNode& root) {
  std::ostringstream out;
  ExplainInto(root, 0, &out);
  return out.str();
}

}  // namespace adamant::plan
